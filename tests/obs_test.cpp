// Tests for the observability layer (futrace::obs): the metrics registry
// and its canonical bench schema, the sharded owned counters, and the
// Chrome-trace emitter — including a golden-file test that pins the trace
// JSON schema and a differential test that the paper counters reported
// through the registry are identical across the inline, no-fastpath, and
// pipelined engines.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "futrace/detect/pipeline.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/obs/metrics.hpp"
#include "futrace/obs/trace.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/json.hpp"

namespace futrace {
namespace {

using support::json;

// ------------------------------------------------------ metrics_snapshot

TEST(MetricsSnapshot, EntriesKeepInsertionOrderAndNest) {
  obs::metrics_snapshot snap;
  snap.counter("counters", "tasks", 5);
  snap.gauge("rates", "memo_hit_rate", 0.5);
  snap.counter("counters", "reads", 7);

  ASSERT_EQ(snap.entries().size(), 3u);
  EXPECT_TRUE(snap.has("counters", "tasks"));
  EXPECT_FALSE(snap.has("counters", "memo_hit_rate"));
  EXPECT_DOUBLE_EQ(snap.value("rates", "memo_hit_rate"), 0.5);
  EXPECT_DOUBLE_EQ(snap.value("absent", "key"), 0.0);

  const json doc = snap.to_json();
  ASSERT_NE(doc.find("counters"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("counters")->find("tasks")->as_double(), 5.0);
  EXPECT_DOUBLE_EQ(doc.find("counters")->find("reads")->as_double(), 7.0);
  EXPECT_DOUBLE_EQ(doc.find("rates")->find("memo_hit_rate")->as_double(),
                   0.5);
}

// ------------------------------------------------------ metrics_registry

TEST(MetricsRegistry, SourcesAddReplaceRemove) {
  obs::metrics_registry reg;
  obs::add_detector_source(reg, [] { return detect::detector_counters{}; });
  EXPECT_EQ(reg.source_count(), 1u);

  detect::detector_counters c;
  c.tasks = 42;
  // Same name replaces in place instead of double-reporting.
  obs::add_detector_source(reg, [c] { return c; });
  EXPECT_EQ(reg.source_count(), 1u);
  EXPECT_DOUBLE_EQ(reg.snapshot().value("counters", "tasks"), 42.0);

  EXPECT_TRUE(reg.remove_source("detector"));
  EXPECT_FALSE(reg.remove_source("detector"));
  EXPECT_TRUE(reg.snapshot().entries().empty());
}

TEST(MetricsRegistry, DetectorSourceCoversPaperCounters) {
  obs::metrics_registry reg;
  detect::detector_counters c;
  c.tasks = 3;
  c.reads = 10;
  c.writes = 4;
  obs::add_detector_source(reg, [c] { return c; });
  const obs::metrics_snapshot snap = reg.snapshot();
  for (const char* key : obs::k_paper_counter_keys) {
    EXPECT_TRUE(snap.has("counters", key)) << key;
    EXPECT_TRUE(obs::is_paper_counter(key)) << key;
  }
  EXPECT_FALSE(obs::is_paper_counter("memo_hits"));
  EXPECT_FALSE(obs::is_paper_counter("occupancy_pct"));
}

TEST(MetricsRegistry, OwnedCounterSumsConcurrentAdds) {
  obs::metrics_registry reg;
  obs::sharded_counter& dropped = reg.owned_counter("trace", "test_adds");
  // Same (ns, key) returns the same counter, not a second one.
  EXPECT_EQ(&dropped, &reg.owned_counter("trace", "test_adds"));

  constexpr int k_threads = 8;
  constexpr std::uint64_t k_adds = 20000;
  std::vector<std::thread> workers;
  workers.reserve(k_threads);
  for (int t = 0; t < k_threads; ++t) {
    workers.emplace_back([&dropped] {
      for (std::uint64_t i = 0; i < k_adds; ++i) dropped.add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(dropped.sum(), k_threads * k_adds);
  EXPECT_DOUBLE_EQ(reg.snapshot().value("trace", "test_adds"),
                   static_cast<double>(k_threads * k_adds));
}

// --------------------------------------- engine-equality differential

// One mixed workload (async/finish/future structure, scalar + array
// traffic, one deliberate race) measured through three engine
// configurations. The paper counters — the numbers Table 2 reports — must
// be identical: fast paths and pipelining are implementation choices, not
// semantic ones. Engine-tier diagnostics (direct/memo/stamp hits)
// legitimately differ and are excluded.
void differential_workload() {
  shared_array<int> grid(64);
  shared<int> acc(0);
  finish([&] {
    for (int t = 0; t < 4; ++t) {
      async([&grid, t] {
        for (std::size_t i = 0; i < 16; ++i) {
          grid.write(static_cast<std::size_t>(t) * 16 + i, t);
        }
      });
    }
  });
  auto f = async_future([&grid] {
    int sum = 0;
    for (std::size_t i = 0; i < 64; ++i) sum += grid.read(i);
    return sum;
  });
  acc.write(f.get());
  async([&acc] { acc.write(9); });  // the deliberate race with the parent
  acc.write(1);
}

json counters_via_registry(const detect::detector_counters& c) {
  obs::metrics_registry reg;
  obs::add_detector_source(reg, [c] { return c; });
  return reg.snapshot().to_json();
}

TEST(MetricsDifferential, PaperCountersIdenticalAcrossEngines) {
  detect::detector_counters inline_c, nofast_c, piped_c;
  {
    detect::race_detector det;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run(differential_workload);
    inline_c = det.counters();
  }
  {
    detect::race_detector::options opts;
    opts.enable_fastpath = false;
    detect::race_detector det(opts);
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run(differential_workload);
    nofast_c = det.counters();
  }
  {
    detect::race_detector::options opts;
    opts.detect_threads = 4;
    detect::pipelined_detector det(opts);
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run(differential_workload);
    ASSERT_TRUE(det.pipelined());
    piped_c = det.counters();
  }

  const json a = counters_via_registry(inline_c);
  const json b = counters_via_registry(nofast_c);
  const json p = counters_via_registry(piped_c);
  const json* ac = a.find("counters");
  const json* bc = b.find("counters");
  const json* pc = p.find("counters");
  ASSERT_NE(ac, nullptr);
  for (const json::member& m : ac->members()) {
    if (!obs::is_paper_counter(m.first)) continue;
    EXPECT_DOUBLE_EQ(m.second.as_double(), bc->find(m.first)->as_double())
        << "no-fastpath diverges on " << m.first;
    EXPECT_DOUBLE_EQ(m.second.as_double(), pc->find(m.first)->as_double())
        << "pipelined diverges on " << m.first;
  }
  // The workload really exercised the interesting counters.
  EXPECT_GT(ac->find("races_observed")->as_double(), 0.0);
  EXPECT_GT(ac->find("precede_queries")->as_double(), 0.0);
}

// -------------------------------------------------------------- tracing

TEST(Trace, DisabledByDefaultAndEmitIsANoOp) {
  EXPECT_FALSE(obs::trace_enabled());
  obs::trace_emit(obs::trace_kind::get, obs::trace_track::task, 1, 2, 3);
  EXPECT_FALSE(obs::trace_enabled());
}

TEST(Trace, BufferDropsPastCapacityAndCounts) {
  obs::trace_session session("", /*capacity=*/4);
  ASSERT_TRUE(obs::trace_enabled());
  for (std::uint32_t i = 0; i < 10; ++i) {
    obs::trace_emit(obs::trace_kind::put, obs::trace_track::task, i);
  }
  EXPECT_EQ(session.recorded(), 4u);
  EXPECT_EQ(session.dropped(), 6u);

  const json doc = json::parse(session.to_json());
  const json* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->find("recorded_events")->as_double(), 4.0);
  EXPECT_DOUBLE_EQ(other->find("dropped_events")->as_double(), 6.0);
}

TEST(Trace, SessionsNestInnermostCaptures) {
  obs::trace_session outer("", 16);
  obs::trace_emit(obs::trace_kind::put, obs::trace_track::task, 0);
  {
    obs::trace_session inner("", 16);
    obs::trace_emit(obs::trace_kind::put, obs::trace_track::task, 1);
    obs::trace_emit(obs::trace_kind::put, obs::trace_track::task, 2);
    EXPECT_EQ(inner.recorded(), 2u);
  }
  // Outer sink restored; its buffer never saw the inner events.
  ASSERT_TRUE(obs::trace_enabled());
  obs::trace_emit(obs::trace_kind::put, obs::trace_track::task, 3);
  EXPECT_EQ(outer.recorded(), 2u);
}

TEST(Trace, SessionRegistersAsMetricsSource) {
  obs::trace_session session("", 8);
  obs::trace_emit(obs::trace_kind::put, obs::trace_track::task, 0);
  obs::metrics_registry reg;
  obs::add_trace_source(reg, session);
  const obs::metrics_snapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("trace", "recorded_events"), 1.0);
  EXPECT_DOUBLE_EQ(snap.value("trace", "dropped_events"), 0.0);
  EXPECT_DOUBLE_EQ(snap.value("trace", "capacity"), 8.0);
}

// ------------------------------------------------------ golden-file test

/// The deterministic projection of a Chrome trace document: everything the
/// emitter writes except wall-clock timestamps, which are normalized to 0.
json project_trace(const json& doc) {
  json out = json::object();
  json events = json::array();
  const json* list = doc.find("traceEvents");
  if (list != nullptr) {
    for (std::size_t i = 0; i < list->size(); ++i) {
      const json& ev = list->at(i);
      json copy = json::object();
      for (const json::member& m : ev.members()) {
        if (m.first == "ts") {
          copy["ts"] = 0.0;
        } else {
          copy[m.first] = m.second;
        }
      }
      events.push_back(std::move(copy));
    }
  }
  out["traceEvents"] = std::move(events);
  if (const json* unit = doc.find("displayTimeUnit")) {
    out["displayTimeUnit"] = *unit;
  }
  if (const json* other = doc.find("otherData")) {
    out["otherData"] = *other;
  }
  return out;
}

/// The program behind tests/golden/trace_small.json: a finish over an
/// async writer, then a future read joined by the root. Race-free and
/// fully deterministic under serial depth-first execution.
void golden_program() {
  shared<int> x(0);
  finish([&] {
    async([&x] { x.write(1); });
  });
  auto f = async_future([&x] { return x.read(); });
  (void)f.get();
}

TEST(TraceGolden, SmallProgramMatchesCheckedInSchema) {
  const std::string path =
      testing::TempDir() + "futrace_trace_golden_test.json";
  {
    detect::race_detector::options opts;
    opts.trace_path = path;
    detect::race_detector det(opts);
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run(golden_program);
    EXPECT_FALSE(det.race_detected());
  }  // detector destruction flushes the JSON

  std::ifstream in(path);
  ASSERT_TRUE(in) << "trace file not written: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const json produced = json::parse(buf.str());

  std::ifstream golden_in(std::string(FUTRACE_SOURCE_DIR) +
                          "/tests/golden/trace_small.json");
  ASSERT_TRUE(golden_in) << "missing tests/golden/trace_small.json";
  std::ostringstream golden_buf;
  golden_buf << golden_in.rdbuf();

  EXPECT_EQ(project_trace(produced).dump(1), golden_buf.str())
      << "trace schema drifted; regenerate tests/golden/trace_small.json "
         "if the change is intentional";
  std::remove(path.c_str());
}

TEST(TraceGolden, PipelinedTraceParsesAndClosesRootSlice) {
  const std::string path =
      testing::TempDir() + "futrace_trace_piped_test.json";
  shared_array<int> data(32);
  {
    detect::race_detector::options opts;
    opts.detect_threads = 2;
    opts.trace_path = path;
    detect::pipelined_detector det(opts);
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run([&data] {
      finish([&data] {
        async([&data] {
          for (std::size_t i = 0; i < data.size(); ++i) data.write(i, 1);
        });
      });
    });
    ASSERT_TRUE(det.pipelined());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in) << "pipelined trace not written: " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  const json doc = json::parse(buf.str());

  // One authoritative runtime-event stream (workers are muted): every
  // task_begin ("B") has a matching end ("E"), root included.
  int begins = 0, ends = 0;
  const json* list = doc.find("traceEvents");
  ASSERT_NE(list, nullptr);
  for (std::size_t i = 0; i < list->size(); ++i) {
    const std::string& ph = list->at(i).find("ph")->as_string();
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
  }
  EXPECT_GT(begins, 0);
  EXPECT_EQ(begins, ends);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace futrace
