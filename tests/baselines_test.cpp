// Tests for the baseline detectors: the brute-force oracle, ESP-bags
// (async-finish only), and the vector-clock detector.

#include <gtest/gtest.h>

#include "futrace/baselines/esp_bags_detector.hpp"
#include "futrace/baselines/oracle_detector.hpp"
#include "futrace/baselines/vector_clock_detector.hpp"
#include "futrace/runtime/runtime.hpp"

namespace futrace::baselines {
namespace {

template <typename Detector, typename Fn>
Detector run_under(Fn&& program) {
  Detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run(std::forward<Fn>(program));
  return det;
}

// ---------------------------------------------------------------------- oracle

TEST(OracleDetector, CleanFinishProgram) {
  auto det = run_under<oracle_detector>([] {
    shared<int> x(0);
    finish([&] { async([&] { x.write(1); }); });
    (void)x.read();
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(OracleDetector, CatchesSiblingWriteWrite) {
  auto det = run_under<oracle_detector>([] {
    shared<int> x(0);
    async([&] { x.write(1); });
    async([&] { x.write(2); });
  });
  EXPECT_TRUE(det.race_detected());
  EXPECT_EQ(det.racy_locations().size(), 1u);
}

TEST(OracleDetector, FutureJoinOrdersAccesses) {
  auto det = run_under<oracle_detector>([] {
    shared<int> x(0);
    auto f = async_future([&] { x.write(1); });
    f.get();
    (void)x.read();
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(OracleDetector, StepGranularityWithinOneTask) {
  // Accesses before and after spawning a child are different steps; the
  // oracle must still see them as ordered (continue edges).
  auto det = run_under<oracle_detector>([] {
    shared<int> x(0);
    x.write(1);
    finish([&] { async([] {}); });
    x.write(2);
  });
  EXPECT_FALSE(det.race_detected());
}

// -------------------------------------------------------------------- ESP-bags

TEST(EspBags, CleanFinishProgram) {
  auto det = run_under<esp_bags_detector>([] {
    shared<int> x(0);
    finish([&] { async([&] { x.write(1); }); });
    (void)x.read();
    x.write(2);
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(EspBags, CatchesUnsynchronizedSiblings) {
  auto det = run_under<esp_bags_detector>([] {
    shared<int> x(0);
    async([&] { x.write(1); });
    async([&] { x.write(2); });
  });
  EXPECT_TRUE(det.race_detected());
}

TEST(EspBags, CatchesParentChildRace) {
  auto det = run_under<esp_bags_detector>([] {
    shared<int> x(0);
    async([&] { x.write(1); });
    (void)x.read();
  });
  EXPECT_TRUE(det.race_detected());
}

TEST(EspBags, NestedFinishScopesOrderCorrectly) {
  auto det = run_under<esp_bags_detector>([] {
    shared<int> x(0);
    finish([&] {
      async([&] { x.write(1); });
      finish([&] { async([&] { x.write(2); }); });
      // The inner-finish write is ordered with this one...
      async([&] { x.write(3); });  // ...but races with write(1)? No: x.write(1)
      // is parallel with x.write(3) — both only joined by the outer finish.
    });
  });
  EXPECT_TRUE(det.race_detected());
}

TEST(EspBags, ReadersCoveredLikeSpBags) {
  auto det = run_under<esp_bags_detector>([] {
    shared<int> x(0);
    finish([&] {
      for (int i = 0; i < 4; ++i) async([&] { (void)x.read(); });
    });
    x.write(1);  // safe: finish joined all readers
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(EspBags, RejectsFuturePrograms) {
  esp_bags_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  EXPECT_THROW(rt.run([] {
    auto f = async_future([] { return 1; });
    (void)f.get();
  }),
               usage_error);
}

// Agreement with the oracle on random-ish async-finish structures is covered
// by the property suite through the vector-clock detector; here we pin a
// tricky hand case: transitive ordering through two nested finishes.
TEST(EspBags, TransitiveOrderingThroughFinishes) {
  auto det = run_under<esp_bags_detector>([] {
    shared<int> x(0);
    finish([&] {
      async([&] {
        finish([&] { async([&] { x.write(1); }); });
        x.write(2);  // ordered after write(1) by the inner finish
      });
    });
    x.write(3);  // ordered after both by the outer finish
  });
  EXPECT_FALSE(det.race_detected());
}

// ---------------------------------------------------------------- vector clock

TEST(VectorClock, FutureChainOrdersAccesses) {
  auto det = run_under<vector_clock_detector>([] {
    shared<int> x(0);
    auto a = async_future([&] { x.write(1); });
    auto b = async_future([&, a] {
      a.get();
      x.write(2);
    });
    b.get();
    (void)x.read();
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(VectorClock, CatchesUnjoinedFuture) {
  auto det = run_under<vector_clock_detector>([] {
    shared<int> x(0);
    auto a = async_future([&] { x.write(1); });
    (void)a;
    x.write(2);
  });
  EXPECT_TRUE(det.race_detected());
}

TEST(VectorClock, ClockBytesGrowQuadratically) {
  // Sequential spawn-join phases: each new task copies the owner's clock,
  // which has grown linearly with the joins performed so far — the paper's
  // impracticality argument (clock size proportional to live-task count,
  // total space quadratic).
  auto spawn_join_n = [](int n) {
    return [n] {
      for (int i = 0; i < n; ++i) {
        finish([] { async([] {}); });
      }
    };
  };
  auto small = run_under<vector_clock_detector>(spawn_join_n(256));
  auto large = run_under<vector_clock_detector>(spawn_join_n(1024));
  // 4× the tasks must cost clearly more than 4× the clock bytes.
  EXPECT_GT(large.clock_bytes(), small.clock_bytes() * 8);
}

}  // namespace
}  // namespace futrace::baselines
