// Executable versions of the paper's own examples: the Figure 1 program, a
// Figure 2/3-style reachability-graph scenario, and the Appendix A deadlock
// program. These pin the detector's behaviour to the text.

#include <gtest/gtest.h>

#include "futrace/baselines/oracle_detector.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/graph/graph_recorder.hpp"
#include "futrace/runtime/runtime.hpp"

namespace futrace {
namespace {

// Figure 1: futures A, B, C with sibling joins; the comment trail in §2
// says Stmt3/Stmt6/Stmt8 may run parallel with task A while Stmt4/Stmt7/
// Stmt9 run after it, and Stmt10 runs after A, B, and C.
TEST(PaperFigure1, StepOrderingMatchesText) {
  baselines::oracle_detector oracle;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&oracle);

  graph::step_id a_last{}, stmt3{}, stmt4{}, stmt6{}, stmt7{}, stmt10{};
  task_id a_task{}, b_task{}, c_task{};

  rt.run([&] {
    const auto& rec = oracle.recorder();
    auto a = async_future([&] {
      a_task = current_task();
      return 1;
    });
    a_last = rec.last_step(a.task());
    auto b = async_future([&, a] {
      b_task = current_task();
      stmt3 = rec.current_step(current_task());
      (void)a.get();
      stmt4 = rec.current_step(current_task());
      return 2;
    });
    auto c = async_future([&, a, b] {
      c_task = current_task();
      stmt6 = rec.current_step(current_task());
      (void)a.get();
      stmt7 = rec.current_step(current_task());
      (void)b.get();
      return 3;
    });
    (void)a.get();
    (void)c.get();
    stmt10 = rec.current_step(current_task());
  });

  const auto& g = oracle.graph();
  EXPECT_TRUE(g.parallel(stmt3, a_last));
  EXPECT_TRUE(g.parallel(stmt6, a_last));
  EXPECT_TRUE(g.reachable(a_last, stmt4));
  EXPECT_TRUE(g.reachable(a_last, stmt7));
  // Stmt10 executes after A, B and C complete — including B, which the main
  // task never joined directly (transitive dependence through C).
  EXPECT_TRUE(g.reachable(oracle.recorder().last_step(a_task), stmt10));
  EXPECT_TRUE(g.reachable(oracle.recorder().last_step(b_task), stmt10));
  EXPECT_TRUE(g.reachable(oracle.recorder().last_step(c_task), stmt10));
  // Three non-tree joins: B←A, C←A, C←B (main's joins are tree joins).
  EXPECT_EQ(g.count_edges(graph::edge_kind::join_non_tree), 3u);
}

// Figure 3-style scenario: a task performs two sibling joins and then spawns
// descendants, which therefore have it as their lowest significant ancestor;
// the reachability through the LSA chain orders the earlier futures before
// the descendants' accesses.
TEST(PaperFigure3, LsaChainOrdersDescendantAccesses) {
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([&] {
    shared<int> x(0);
    shared<int> y(0);
    auto t1 = async_future([&] { x.write(1); });
    auto t2 = async_future([&] { y.write(1); });
    auto t3 = async_future([&, t1, t2] {
      (void)t1.get();  // non-tree join
      (void)t2.get();  // non-tree join
      // Descendants of t3: their LSA is t3; reads of x and y are ordered
      // after the writes through t3's predecessor list.
      finish([&] {
        async([&] { (void)x.read(); });
        async([&] {
          async([&] { (void)y.read(); });
        });
      });
    });
    t3.get();
  });
  EXPECT_FALSE(det.race_detected())
      << "LSA-chain reachability must order the descendant reads";
  EXPECT_EQ(det.counters().non_tree_joins, 2u);
}

// Appendix A: the two-future handle-race program. In the serial depth-first
// execution the inner get() hits a still-null handle — the analogue of the
// NullPointerException/deadlock the appendix describes.
TEST(PaperAppendixA, HandleRaceProgramFaultsInSerialExecution) {
  runtime rt({.mode = exec_mode::serial_dfs});
  EXPECT_THROW(rt.run([] {
    future<int> a, b;
    async([&] {
      a = async_future([&] {
        return b.get();  // b is still unset in depth-first order
      });
    });
    async([&] {
      b = async_future([&] { return a.get(); });
    });
    // Future-body exceptions are captured into the future state (they
    // surface at joins, as in HJ); joining either future rethrows the
    // deadlock_error from the null-handle get().
    (void)b.get();
  }),
               deadlock_error);
}

// The same program with the cycle broken is fine and the handle cells,
// being written by one task and read by another without synchronization,
// race — which is exactly why Appendix A ties deadlock freedom to race
// freedom on future references.
TEST(PaperAppendixA, HandleCellsThemselvesRace) {
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([&] {
    shared<future<int>> a_cell;
    async([&] { a_cell.write(async_future([] { return 1; })); });
    async([&] {
      future<int> h = a_cell.read();  // races with the sibling's write
      if (h.valid()) (void)h.get();
    });
  });
  EXPECT_TRUE(det.race_detected());

  // The report's witness, checked against the hand-derived spawn-tree
  // numbering. Depth-first preorder: root=0, writer async=1, the inner
  // async_future=2 (runs to completion before the write), reader async=3.
  // Postorder ids: task 2 finishes with post 3, task 1 with post 4; task 3
  // is mid-read at query time, so its postorder is still temporary ("*").
  ASSERT_EQ(det.reports().size(), 1u);
  const detect::race_report& r = det.reports()[0];
  EXPECT_EQ(r.kind, detect::race_kind::write_read);
  EXPECT_EQ(r.first_task, 1u);
  EXPECT_EQ(r.second_task, 3u);
  EXPECT_EQ(r.occurrences, 1u);
  const detect::race_witness& w = r.witness;
  ASSERT_TRUE(w.valid);
  EXPECT_EQ(w.first_label.pre, 1u);
  EXPECT_EQ(w.first_label.post, 4u);
  EXPECT_TRUE(w.first_terminated);
  EXPECT_EQ(w.second_label.pre, 5u);
  EXPECT_FALSE(w.second_terminated);
  // [1,4] does not contain 5, so the labels alone prove non-ordering: no
  // non-tree predecessor of task 3 existed to search (its get() comes
  // after the racy read), and no LSA chain was walked.
  EXPECT_TRUE(w.frontier.empty());
  EXPECT_EQ(w.lsa_hops, 0u);
  // A bare shared<> scalar lives in the hashed shadow tier (only
  // shared_array regions direct-map).
  EXPECT_STREQ(w.tier, "hashed");

  const std::string text = r.to_string();
  EXPECT_NE(text.find("[1,4]"), std::string::npos) << text;
  EXPECT_NE(text.find("[5,*]"), std::string::npos) << text;
  EXPECT_NE(text.find("hashed tier"), std::string::npos) << text;
}

// Serial elision equivalence (§A.1): a race-free future program computes the
// same values as its serial elision.
TEST(PaperSerialElision, RaceFreeProgramMatchesElision) {
  auto program = [](int& out) {
    return [&out] {
      shared<int> acc(0);
      auto a = async_future([&] { return 3; });
      auto b = async_future([&, a] { return a.get() + 4; });
      acc.write(b.get());
      finish([&] {
        async([&] { acc.write(acc.read() + 10); });
      });
      out = acc.read();
    };
  };
  int elision = 0, serial = 0;
  {
    runtime rt({.mode = exec_mode::serial_elision});
    rt.run(program(elision));
  }
  {
    detect::race_detector det;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run(program(serial));
    EXPECT_FALSE(det.race_detected());
  }
  EXPECT_EQ(elision, 17);
  EXPECT_EQ(serial, elision);
}

}  // namespace
}  // namespace futrace
