// Tests for async_for / parallel_for and accumulator across execution modes
// and under the detector.

#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <vector>

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/parallel_ops.hpp"
#include "futrace/runtime/runtime.hpp"

namespace futrace {
namespace {

TEST(AsyncFor, CoversEveryIterationExactlyOnce) {
  for (const exec_mode mode :
       {exec_mode::serial_elision, exec_mode::serial_dfs,
        exec_mode::parallel}) {
    runtime rt({.mode = mode, .workers = 3});
    std::vector<std::atomic<int>> hits(257);
    rt.run([&] {
      parallel_for(0, hits.size(), 16,
                   [&](std::size_t i) { hits[i].fetch_add(1); });
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "mode=" << exec_mode_name(mode)
                                   << " i=" << i;
    }
  }
}

TEST(AsyncFor, EmptyAndTinyRanges) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    int count = 0;
    parallel_for(5, 5, 4, [&](std::size_t) { ++count; });
    EXPECT_EQ(count, 0);
    parallel_for(5, 6, 4, [&](std::size_t i) {
      EXPECT_EQ(i, 5u);
      ++count;
    });
    EXPECT_EQ(count, 1);
  });
}

TEST(AsyncFor, GrainBoundsTaskCount) {
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([] {
    shared_array<int> out(1024);
    parallel_for(0, 1024, 64,
                 [&](std::size_t i) { out.write(i, static_cast<int>(i)); });
  });
  // 1024/64 = 16 leaf tasks plus the divide-and-conquer interior.
  EXPECT_GE(det.counters().tasks, 16u);
  EXPECT_LE(det.counters().tasks, 64u);
  EXPECT_FALSE(det.race_detected());
}

TEST(AsyncFor, DisjointWritesAreRaceFree) {
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([] {
    shared_array<long> squares(300);
    parallel_for(0, 300, 10, [&](std::size_t i) {
      squares.write(i, static_cast<long>(i) * static_cast<long>(i));
    });
    long total = 0;
    for (std::size_t i = 0; i < 300; ++i) total += squares.read(i);
    EXPECT_EQ(total, 299L * 300 * 599 / 6);
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(AsyncFor, OverlappingWritesAreCaught) {
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([] {
    shared<long> sum(0);
    // The classic bug accumulator-style code has: += on a shared cell.
    parallel_for(0, 64, 8,
                 [&](std::size_t i) { sum.write(sum.read() + (long)i); });
  });
  EXPECT_TRUE(det.race_detected());
}

TEST(Accumulator, SumAcrossModes) {
  for (const exec_mode mode :
       {exec_mode::serial_elision, exec_mode::serial_dfs,
        exec_mode::parallel}) {
    runtime rt({.mode = mode, .workers = 4});
    accumulator<long, std::plus<long>> sum(0);
    rt.run([&] {
      parallel_for(1, 1001, 25, [&](std::size_t i) {
        sum.contribute(static_cast<long>(i));
      });
    });
    EXPECT_EQ(sum.get(), 500500L) << exec_mode_name(mode);
  }
}

TEST(Accumulator, ContributionsAreNotRaces) {
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  accumulator<long, std::plus<long>> sum(0);
  rt.run([&] {
    parallel_for(0, 128, 8,
                 [&](std::size_t i) { sum.contribute(static_cast<long>(i)); });
  });
  EXPECT_FALSE(det.race_detected())
      << "accumulator contributions synchronize internally";
  EXPECT_EQ(sum.get(), 127L * 128 / 2);
}

TEST(Accumulator, MaxReductionAndReset) {
  struct max_op {
    long operator()(long a, long b) const { return a > b ? a : b; }
  };
  runtime rt({.mode = exec_mode::serial_dfs});
  accumulator<long, max_op> best(-1);
  rt.run([&] {
    parallel_for(0, 100, 7, [&](std::size_t i) {
      best.contribute(static_cast<long>((i * 37) % 89));
    });
  });
  EXPECT_EQ(best.get(), 88);
  best.reset();
  EXPECT_EQ(best.get(), -1);
}

}  // namespace
}  // namespace futrace
