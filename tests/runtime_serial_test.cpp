// Tests for the serial engines: elision semantics, depth-first execution
// order, observer event sequences, IEF registration, future semantics, and
// the Appendix A error behaviours.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "futrace/runtime/runtime.hpp"

namespace futrace {
namespace {

// Observer that records the event stream as readable strings.
class event_log : public execution_observer {
 public:
  void on_program_start(task_id root) override {
    log.push_back("start:" + std::to_string(root));
  }
  void on_task_spawn(task_id parent, task_id child, task_kind kind) override {
    log.push_back("spawn:" + std::to_string(parent) + ">" +
                  std::to_string(child) + ":" + task_kind_name(kind));
  }
  void on_task_end(task_id t) override {
    log.push_back("end:" + std::to_string(t));
  }
  void on_finish_start(task_id owner) override {
    log.push_back("fstart:" + std::to_string(owner));
  }
  void on_finish_end(task_id owner, std::span<const task_id> joined) override {
    std::string entry = "fend:" + std::to_string(owner) + "[";
    for (const task_id t : joined) entry += std::to_string(t) + ",";
    entry += "]";
    log.push_back(entry);
  }
  void on_get(task_id waiter, task_id target) override {
    log.push_back("get:" + std::to_string(waiter) + "<" +
                  std::to_string(target));
  }
  void on_read(task_id t, const void*, std::size_t, access_site) override {
    log.push_back("read:" + std::to_string(t));
  }
  void on_write(task_id t, const void*, std::size_t, access_site) override {
    log.push_back("write:" + std::to_string(t));
  }
  void on_program_end() override { log.push_back("pend"); }

  std::vector<std::string> log;
};

// ---------------------------------------------------------------- elision mode

TEST(ElisionMode, RunsBodiesInlineInProgramOrder) {
  runtime rt({.mode = exec_mode::serial_elision});
  std::vector<int> order;
  rt.run([&] {
    order.push_back(1);
    async([&] { order.push_back(2); });
    order.push_back(3);
    finish([&] {
      async([&] { order.push_back(4); });
      order.push_back(5);
    });
    auto f = async_future([&] {
      order.push_back(6);
      return 42;
    });
    EXPECT_EQ(f.get(), 42);
    order.push_back(7);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(ElisionMode, NoTasksTracked) {
  runtime rt({.mode = exec_mode::serial_elision});
  rt.run([] {
    async([] {});
    async([] {});
  });
  EXPECT_EQ(rt.tasks_spawned(), 0u);
}

// ----------------------------------------------------------------- serial mode

TEST(SerialMode, DepthFirstOrderMatchesElision) {
  std::vector<int> elision_order, serial_order;
  auto program = [](std::vector<int>& order) {
    return [&order] {
      order.push_back(1);
      async([&order] {
        order.push_back(2);
        async([&order] { order.push_back(3); });
        order.push_back(4);
      });
      order.push_back(5);
      auto f = async_future([&order] {
        order.push_back(6);
        return 0;
      });
      (void)f.get();
      order.push_back(7);
    };
  };
  {
    runtime rt({.mode = exec_mode::serial_elision});
    rt.run(program(elision_order));
  }
  {
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.run(program(serial_order));
  }
  EXPECT_EQ(elision_order, serial_order)
      << "serial depth-first execution must equal the serial elision order "
         "(paper §A.1)";
}

TEST(SerialMode, EventSequenceForSingleAsync) {
  event_log log;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&log);
  rt.run([] { async([] {}); });
  const std::vector<std::string> expected{
      "start:0", "fstart:0",      // implicit finish around main
      "spawn:0>1:async", "end:1",  // inline child execution
      "fend:0[1,]", "end:0", "pend",
  };
  EXPECT_EQ(log.log, expected);
}

TEST(SerialMode, TaskIdsAssignedInSpawnOrder) {
  std::vector<task_id> ids;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([&] {
    ids.push_back(current_task());
    async([&] {
      ids.push_back(current_task());
      async([&] { ids.push_back(current_task()); });
    });
    async([&] { ids.push_back(current_task()); });
  });
  EXPECT_EQ(ids, (std::vector<task_id>{0, 1, 2, 3}));
  EXPECT_EQ(rt.tasks_spawned(), 4u);
}

TEST(SerialMode, NestedFinishJoinsOnlyItsOwnTasks) {
  event_log log;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&log);
  rt.run([] {
    async([] {});  // task 1: IEF is the implicit finish
    finish([] {
      async([] {});  // task 2: IEF is the explicit finish
    });
    async([] {});  // task 3: implicit finish again
  });
  // The explicit finish joins exactly task 2; the implicit one joins 1 and 3.
  bool saw_inner = false, saw_outer = false;
  for (const auto& e : log.log) {
    if (e == "fend:0[2,]") saw_inner = true;
    if (e == "fend:0[1,3,]") saw_outer = true;
  }
  EXPECT_TRUE(saw_inner) << "inner finish should join task 2 only";
  EXPECT_TRUE(saw_outer) << "implicit finish should join tasks 1 and 3";
}

TEST(SerialMode, FutureTasksRegisterWithIEF) {
  event_log log;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&log);
  rt.run([] {
    finish([] {
      auto f = async_future([] { return 5; });
      (void)f;  // never get() — the finish must still join it
    });
  });
  bool saw = false;
  for (const auto& e : log.log) {
    if (e == "fend:0[1,]") saw = true;
  }
  EXPECT_TRUE(saw) << "futures join their IEF even without get()";
}

TEST(SerialMode, GetFiresObserverEvent) {
  event_log log;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&log);
  rt.run([] {
    auto f = async_future([] { return 1; });
    (void)f.get();
    (void)f.get();  // a second get fires a second join event
  });
  int gets = 0;
  for (const auto& e : log.log) gets += e == "get:0<1";
  EXPECT_EQ(gets, 2);
}

TEST(SerialMode, MemoryEventsCarryTaskAndOrder) {
  event_log log;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&log);
  rt.run([] {
    shared<int> x(0);
    x.write(3);
    async([&x] { (void)x.read(); });
    x.write(4);
  });
  const std::vector<std::string> mem = [&] {
    std::vector<std::string> v;
    for (const auto& e : log.log) {
      if (e.rfind("read:", 0) == 0 || e.rfind("write:", 0) == 0) {
        v.push_back(e);
      }
    }
    return v;
  }();
  EXPECT_EQ(mem, (std::vector<std::string>{"write:0", "read:1", "write:0"}));
}

TEST(SerialMode, SharedAccessesNotInstrumentedWithoutObservers) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    shared<int> x(1);
    x.write(2);
    EXPECT_EQ(x.read(), 2);
  });
}

TEST(SerialMode, PromisePutEventSequence) {
  class put_log : public event_log {
   public:
    void on_promise_put(task_id fulfiller) override {
      log.push_back("put:" + std::to_string(fulfiller));
    }
  };
  put_log log;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&log);
  rt.run([] {
    promise<int> p;
    finish([&] {
      async([&] { p.put(3); });  // task 1, continuation 2
    });
    EXPECT_EQ(p.get(), 3);
  });
  const std::vector<std::string> expected{
      "start:0",
      "fstart:0",                // implicit finish
      "fstart:0",                // explicit finish
      "spawn:0>1:async",
      "put:1",                   // put recorded against task 1...
      "spawn:1>2:continuation",  // ...then the identity splits
      "end:2", "end:1",          // continuation closes before its base
      "spawn:0>3:continuation",  // the root splits as it resumes
      "fend:3[1,2,]",            // both identities join; owner is the
                                 // root's current continuation identity
      "get:3<1",                 // get joins the pre-put identity
      "fend:3[]",                // implicit finish (nothing registered)
      "end:3", "end:0", "pend",
  };
  EXPECT_EQ(log.log, expected);
}

// ---------------------------------------------------------------------- futures

TEST(Futures, ValueSemanticsAcrossKinds) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    auto i = async_future([] { return 7; });
    auto s = async_future([] { return std::string("abc"); });
    auto v = async_future([] {});
    EXPECT_EQ(i.get(), 7);
    EXPECT_EQ(s.get(), "abc");
    v.get();
    EXPECT_TRUE(v.is_done());
  });
}

TEST(Futures, GetOnUnsetHandleThrowsDeadlockError) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    future<int> unset;
    EXPECT_FALSE(unset.valid());
    EXPECT_THROW((void)unset.get(), deadlock_error);
  });
}

TEST(Futures, ExceptionInFutureSurfacesAtGet) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    auto f = async_future([]() -> int { throw std::runtime_error("boom"); });
    EXPECT_TRUE(f.is_done());
    EXPECT_THROW((void)f.get(), std::runtime_error);
  });
}

TEST(Futures, HandlesAreCopyableAndShareState) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    auto f = async_future([] { return 10; });
    future<int> g = f;
    EXPECT_EQ(f.get() + g.get(), 20);
    EXPECT_EQ(f.task(), g.task());
  });
}

TEST(Futures, GetOutsideRunOnCompletedFutureWorks) {
  future<int> escaped;
  {
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.run([&] { escaped = async_future([] { return 9; }); });
  }
  EXPECT_EQ(escaped.get(), 9);
}

// ------------------------------------------------------------------ exceptions

TEST(Exceptions, AsyncExceptionPropagatesInSerialMode) {
  runtime rt({.mode = exec_mode::serial_dfs});
  EXPECT_THROW(
      rt.run([] { async([] { throw std::logic_error("child failed"); }); }),
      std::logic_error);
}

TEST(Exceptions, ConstructsOutsideRunThrowUsageError) {
  EXPECT_THROW(async([] {}), usage_error);
  EXPECT_THROW(finish([] {}), usage_error);
  EXPECT_THROW((void)async_future([] { return 1; }), usage_error);
}

TEST(Exceptions, RuntimeRunsExactlyOnce) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {});
  EXPECT_DEATH(rt.run([] {}), "exactly one execution");
}

}  // namespace
}  // namespace futrace
