// Tests for the parallel work-stealing engine and the Chase-Lev deque.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include "futrace/runtime/runtime.hpp"
#include "futrace/runtime/ws_deque.hpp"

namespace futrace {
namespace {

// -------------------------------------------------------------------- ws_deque

TEST(WsDeque, LifoForOwner) {
  ws_deque<int> d;
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.pop(), 3);
  EXPECT_EQ(d.pop(), 2);
  EXPECT_EQ(d.pop(), 1);
  EXPECT_EQ(d.pop(), std::nullopt);
}

TEST(WsDeque, FifoForThief) {
  ws_deque<int> d;
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.steal(), 1);
  EXPECT_EQ(d.steal(), 2);
  EXPECT_EQ(d.steal(), 3);
  EXPECT_EQ(d.steal(), std::nullopt);
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  ws_deque<int> d(4);
  for (int i = 0; i < 1000; ++i) d.push(i);
  for (int i = 999; i >= 0; --i) EXPECT_EQ(d.pop(), i);
}

TEST(WsDeque, ConcurrentStealersReceiveEachElementOnce) {
  ws_deque<int> d;
  constexpr int kItems = 20000;
  std::atomic<long long> sum{0};
  std::atomic<int> taken{0};
  std::atomic<bool> done{false};

  auto thief = [&] {
    while (!done.load() || !d.empty_estimate()) {
      if (auto v = d.steal()) {
        sum.fetch_add(*v);
        taken.fetch_add(1);
      }
    }
  };
  std::thread t1(thief), t2(thief);

  long long pushed = 0;
  for (int i = 1; i <= kItems; ++i) {
    d.push(i);
    pushed += i;
    if (i % 3 == 0) {
      if (auto v = d.pop()) {
        sum.fetch_add(*v);
        taken.fetch_add(1);
      }
    }
  }
  while (auto v = d.pop()) {
    sum.fetch_add(*v);
    taken.fetch_add(1);
  }
  done.store(true);
  t1.join();
  t2.join();
  // Late steals after the final pop sweep:
  while (auto v = d.steal()) {
    sum.fetch_add(*v);
    taken.fetch_add(1);
  }
  EXPECT_EQ(taken.load(), kItems);
  EXPECT_EQ(sum.load(), pushed);
}

// -------------------------------------------------------------- parallel engine

TEST(ParallelEngine, FinishWaitsForAllTasks) {
  runtime rt({.mode = exec_mode::parallel, .workers = 4});
  std::atomic<int> counter{0};
  rt.run([&] {
    finish([&] {
      for (int i = 0; i < 100; ++i) {
        async([&] { counter.fetch_add(1); });
      }
    });
    EXPECT_EQ(counter.load(), 100);
  });
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(rt.tasks_spawned(), 100u);
}

TEST(ParallelEngine, NestedSpawnsAllJoinOuterFinish) {
  runtime rt({.mode = exec_mode::parallel, .workers = 3});
  std::atomic<int> counter{0};
  rt.run([&] {
    finish([&] {
      for (int i = 0; i < 8; ++i) {
        async([&] {
          for (int j = 0; j < 8; ++j) {
            async([&] { counter.fetch_add(1); });
          }
        });
      }
    });
    EXPECT_EQ(counter.load(), 64);
  });
}

TEST(ParallelEngine, FutureGetReturnsValue) {
  runtime rt({.mode = exec_mode::parallel, .workers = 4});
  rt.run([] {
    auto f = async_future([] { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
  });
}

TEST(ParallelEngine, FutureChainComputesCorrectly) {
  runtime rt({.mode = exec_mode::parallel, .workers = 4});
  rt.run([] {
    auto a = async_future([] { return 1; });
    auto b = async_future([a] { return a.get() + 1; });
    auto c = async_future([b] { return b.get() + 1; });
    EXPECT_EQ(c.get(), 3);
  });
}

TEST(ParallelEngine, ManyFuturesFanIn) {
  runtime rt({.mode = exec_mode::parallel, .workers = 4});
  rt.run([] {
    std::vector<future<int>> futs;
    for (int i = 0; i < 200; ++i) {
      futs.push_back(async_future([i] { return i; }));
    }
    int total = 0;
    for (auto& f : futs) total += f.get();
    EXPECT_EQ(total, 199 * 200 / 2);
  });
}

TEST(ParallelEngine, RecursiveFibonacciWithFutures) {
  runtime rt({.mode = exec_mode::parallel, .workers = 4});
  rt.run([] {
    struct fib_fn {
      int operator()(int n) const {
        if (n < 2) return n;
        const fib_fn self;
        auto left = async_future([n, self] { return self(n - 1); });
        const int right = self(n - 2);
        return left.get() + right;
      }
    };
    EXPECT_EQ(fib_fn{}(18), 2584);
  });
}

TEST(ParallelEngine, ExceptionInFinishPropagates) {
  runtime rt({.mode = exec_mode::parallel, .workers = 2});
  EXPECT_THROW(rt.run([] {
    finish([] {
      async([] { throw std::runtime_error("task failed"); });
    });
  }),
               std::runtime_error);
}

TEST(ParallelEngine, ExceptionInFutureSurfacesAtGet) {
  runtime rt({.mode = exec_mode::parallel, .workers = 2});
  rt.run([] {
    auto f = async_future([]() -> int { throw std::logic_error("bad"); });
    EXPECT_THROW((void)f.get(), std::logic_error);
  });
}

TEST(ParallelEngine, SingleWorkerStillCompletes) {
  runtime rt({.mode = exec_mode::parallel, .workers = 1});
  std::atomic<int> counter{0};
  rt.run([&] {
    finish([&] {
      for (int i = 0; i < 50; ++i) async([&] { counter.fetch_add(1); });
    });
  });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelEngine, ObserversAreRejected) {
  class noop_observer : public execution_observer {};
  noop_observer obs;
  runtime rt({.mode = exec_mode::parallel});
  EXPECT_DEATH(rt.add_observer(&obs), "serial depth-first");
}

TEST(ParallelEngine, DeeplyNestedFinishScopes) {
  runtime rt({.mode = exec_mode::parallel, .workers = 3});
  std::atomic<int> depth_sum{0};
  rt.run([&] {
    std::function<void(int)> nest = [&](int depth) {
      if (depth == 0) {
        depth_sum.fetch_add(1);
        return;
      }
      finish([&, depth] {
        async([&, depth] { nest(depth - 1); });
        async([&, depth] { nest(depth - 1); });
      });
    };
    nest(8);
  });
  EXPECT_EQ(depth_sum.load(), 256);
}

TEST(ParallelEngine, MixedFuturesPromisesAndFinish) {
  runtime rt({.mode = exec_mode::parallel, .workers = 4});
  rt.run([] {
    promise<int> seed;
    std::vector<future<long>> stages;
    finish([&] {
      async([&] { seed.put(5); });
      for (int i = 0; i < 16; ++i) {
        stages.push_back(async_future([&seed, i] {
          return static_cast<long>(seed.get()) * (i + 1);
        }));
      }
    });
    long total = 0;
    for (auto& s : stages) total += s.get();
    EXPECT_EQ(total, 5L * (16 * 17 / 2));
  });
}

TEST(ParallelEngine, StressManySmallTasksRepeated) {
  for (int round = 0; round < 3; ++round) {
    runtime rt({.mode = exec_mode::parallel, .workers = 4});
    std::atomic<long> sum{0};
    rt.run([&] {
      finish([&] {
        for (int i = 1; i <= 2000; ++i) {
          async([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
        }
      });
    });
    EXPECT_EQ(sum.load(), 2000L * 2001 / 2);
  }
}

// Race-free shared<T> programs compute deterministically in parallel mode.
TEST(ParallelEngine, SharedCellsWithProperSynchronization) {
  for (int round = 0; round < 5; ++round) {
    runtime rt({.mode = exec_mode::parallel, .workers = 4});
    rt.run([] {
      shared_array<int> data(64);
      finish([&] {
        for (std::size_t i = 0; i < 64; ++i) {
          async([&data, i] { data.write(i, static_cast<int>(i) * 2); });
        }
      });
      long long total = 0;
      for (std::size_t i = 0; i < 64; ++i) total += data.read(i);
      EXPECT_EQ(total, 63LL * 64);
    });
  }
}

}  // namespace
}  // namespace futrace
