// Tests for the bulk-access layer: mixed-size scalar accesses that straddle
// several shadow strides (the size-decomposition regression from the range
// work), and the slab run-summary lifecycle (establishment, O(1) re-sweep
// hits, materialization back to per-cell state on divergence).
//
// Soundness contract under test: a scalar access of `size` bytes into a
// registered region of stride `s` must be checked against every element it
// overlaps — not just the first — and every configuration (ranges on,
// --no-ranges, --no-fastpath) must agree on the racy-location set.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/runtime/shared.hpp"

namespace futrace {
namespace {

std::set<const void*> racy_set(const detect::race_detector& det) {
  const auto locations = det.racy_locations();
  return {locations.begin(), locations.end()};
}

detect::race_detector::options config(bool fastpath, bool ranges) {
  detect::race_detector::options opts;
  opts.enable_fastpath = fastpath;
  opts.enable_range_checks = ranges;
  return opts;
}

template <typename Body>
detect::race_detector run_detected(detect::race_detector::options opts,
                                   Body&& body) {
  detect::race_detector det(opts);
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run(body);
  return det;
}

/// All three configurations on one program; returns the ranges-on detector
/// after asserting the racy sets agree.
template <typename Body>
detect::race_detector run_all_configs(Body&& body) {
  auto ranged = run_detected(config(true, true), body);
  auto scalar = run_detected(config(true, false), body);
  auto plain = run_detected(config(false, true), body);
  EXPECT_EQ(racy_set(ranged), racy_set(scalar)) << "ranges on vs --no-ranges";
  EXPECT_EQ(racy_set(ranged), racy_set(plain)) << "ranges on vs --no-fastpath";
  return ranged;
}

// ----------------------------------------------------------- mixed-size sizes

// Regression: an 8-byte scalar access into a byte array spans eight shadow
// strides. The detector must check all eight locations — under-checking
// here silently dropped seven racy cells before size decomposition existed.
TEST(MixedSizeAccess, WideScalarReadChecksEveryElement) {
  auto program = [] {
    shared_array<std::uint8_t> bytes(64, 0);
    auto f = async_future([&] {
      for (std::size_t i = 0; i < 8; ++i) {
        bytes.write(i, static_cast<std::uint8_t>(i));
      }
    });
    // One word-sized load covering bytes 0..7, as compiled field/array
    // accesses wider than the element stride would produce.
    detail::instrument_read(bytes.address(0), 8,
                            std::source_location::current());
    f.get();
  };
  auto det = run_all_configs(program);
  EXPECT_TRUE(det.race_detected());
  EXPECT_EQ(det.counters().racy_locations, 8u)
      << "every byte under the wide load must be flagged, not just the first";
}

TEST(MixedSizeAccess, WideScalarWriteChecksEveryElement) {
  auto program = [] {
    shared_array<std::uint32_t> words(16, 0);
    auto f = async_future([&] {
      (void)words.read(0);
      (void)words.read(1);
      (void)words.read(5);  // outside the wide store: must stay race-free
    });
    // An 8-byte store over elements 0 and 1.
    detail::instrument_write(words.address(0), 8,
                             std::source_location::current());
    f.get();
  };
  auto det = run_all_configs(program);
  EXPECT_TRUE(det.race_detected());
  EXPECT_EQ(det.counters().racy_locations, 2u);
}

// An access that straddles an element boundary without covering either
// element fully still conflicts with both.
TEST(MixedSizeAccess, UnalignedStraddleCoversBothElements) {
  auto program = [] {
    shared_array<std::uint32_t> words(8, 0);
    auto f = async_future([&] {
      words.write(0, 1);
      words.write(1, 2);
    });
    const void* mid =
        static_cast<const char*>(words.address(0)) + 2;  // bytes 2..5
    detail::instrument_read(mid, 4, std::source_location::current());
    f.get();
  };
  auto det = run_all_configs(program);
  EXPECT_TRUE(det.race_detected());
  EXPECT_EQ(det.counters().racy_locations, 2u);
}

// Element-sized accesses must keep taking the one-cell path: no behavioural
// change for the overwhelmingly common case.
TEST(MixedSizeAccess, ElementSizedAccessStaysScalar) {
  auto det = run_detected(config(true, true), [] {
    shared_array<std::uint32_t> words(8, 0);
    finish([&] {
      async([&] { words.write(3, 7); });
    });
    (void)words.read(3);
  });
  EXPECT_FALSE(det.race_detected());
  EXPECT_EQ(det.counters().range_events, 0u);
}

// ------------------------------------------------------------- run summaries

// After an unjoined future bulk-writes a whole array, a scalar read into the
// middle must materialize the slab summary back to per-cell state and still
// report the race on exactly the touched cell.
TEST(RangeSummary, ScalarAccessMaterializesAndKeepsVerdict) {
  auto program = [] {
    shared_array<int> data(128, 0);
    auto f = async_future([&] {
      const auto out = data.write_all();
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<int>(i);
      }
    });
    (void)data.read(64);  // races with the unjoined bulk writer
    f.get();
  };
  auto det = run_all_configs(program);
  EXPECT_TRUE(det.race_detected());
  EXPECT_EQ(det.counters().racy_locations, 1u);
}

// A partial range into a summarized slab materializes too; with the writer
// joined, no races appear and later full sweeps still work.
TEST(RangeSummary, PartialRangeAfterSummaryStaysRaceFree) {
  auto det = run_detected(config(true, true), [] {
    shared_array<int> data(128, 0);
    finish([&] {
      async([&] {
        const auto out = data.write_all();
        for (std::size_t i = 0; i < out.size(); ++i) {
          out[i] = static_cast<int>(i);
        }
      });
    });
    long sum = 0;
    const auto part = data.read_range(10, 50);
    for (const int v : part) sum += v;
    const auto all = data.read_all();
    for (const int v : all) sum += v;
    (void)sum;
  });
  EXPECT_FALSE(det.race_detected());
  EXPECT_EQ(det.counters().reads, 50u + 128u);
  EXPECT_EQ(det.counters().writes, 128u);
}

// Interleaved full-array sweeps by ordered tasks: each sweep after the first
// should be answered by the summary tier in O(1) graph work.
TEST(RangeSummary, OrderedFullSweepsHitSummaryTier) {
  auto det = run_detected(config(true, true), [] {
    shared_array<double> grid(512, 0.0);
    for (int pass = 0; pass < 4; ++pass) {
      finish([&] {
        async([&] {
          const auto out = grid.write_all();
          for (std::size_t i = 0; i < out.size(); ++i) {
            out[i] = static_cast<double>(pass) + static_cast<double>(i);
          }
        });
      });
    }
  });
  EXPECT_FALSE(det.race_detected());
  const auto c = det.counters();
  EXPECT_GT(c.summary_hits, 0u)
      << "iterated full-slab writes must use the O(1) summary update";
  EXPECT_EQ(c.writes, 4u * 512u);
}

}  // namespace
}  // namespace futrace
