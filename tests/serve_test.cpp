// Service-mode tests (DESIGN.md §12): suppression-file parsing and matching,
// error-limit throttling, report capping, and — the differential at the heart
// of the mode — epoch reset/compaction leaving verdicts and paper counters
// bit-identical across the serial, fastpath-off, and pipelined engines.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "futrace/detect/pipeline.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/detect/suppressions.hpp"
#include "futrace/progen/random_program.hpp"
#include "futrace/runtime/runtime.hpp"

namespace futrace::detect {
namespace {

// Runs `program` under a fresh detector built from `opts`.
template <typename Fn>
race_detector detect_with(race_detector::options opts, Fn&& program) {
  race_detector det(opts);
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run(std::forward<Fn>(program));
  return det;
}

// ------------------------------------------------------------- glob matching

TEST(SuppressionGlob, LiteralAndQuestionMark) {
  EXPECT_TRUE(suppression_set::glob_match("abc", "abc"));
  EXPECT_FALSE(suppression_set::glob_match("abc", "abd"));
  EXPECT_FALSE(suppression_set::glob_match("abc", "abcd"));
  EXPECT_TRUE(suppression_set::glob_match("a?c", "abc"));
  EXPECT_FALSE(suppression_set::glob_match("a?c", "ac"));
  EXPECT_TRUE(suppression_set::glob_match("", ""));
  EXPECT_FALSE(suppression_set::glob_match("", "x"));
}

TEST(SuppressionGlob, StarRuns) {
  EXPECT_TRUE(suppression_set::glob_match("*", ""));
  EXPECT_TRUE(suppression_set::glob_match("*", "anything"));
  EXPECT_TRUE(suppression_set::glob_match("*.cpp:*", "dir/file.cpp:42"));
  EXPECT_FALSE(suppression_set::glob_match("*.cpp:*", "dir/file.hpp:42"));
  EXPECT_TRUE(suppression_set::glob_match("a*b*c", "a__b__b__c"));
  EXPECT_FALSE(suppression_set::glob_match("a*b*c", "a__c__b"));
  // Backtracking: the first '*' must re-expand past the decoy 'b'.
  EXPECT_TRUE(suppression_set::glob_match("*bc", "abbc"));
}

// ------------------------------------------------------------------- parsing

TEST(SuppressionParse, AcceptsFullAndMinimalBlocks) {
  suppression_set set;
  std::string err;
  ASSERT_TRUE(set.parse("# comment\n"
                        "{\n"
                        "  full-rule\n"
                        "  kind: write-write\n"
                        "  first: a.cpp:10\n"
                        "  second: b.cpp:*\n"
                        "  addr: 0x?f*\n"
                        "  tier: slab\n"
                        "  labels: *\n"
                        "}\n"
                        "{\n"
                        "  minimal-rule\n"
                        "}\n",
                        &err))
      << err;
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.rule(0).name, "full-rule");
  EXPECT_EQ(set.rule(0).kind, "write-write");
  EXPECT_EQ(set.rule(0).second, "b.cpp:*");
  // Omitted fields default to match-anything.
  EXPECT_EQ(set.rule(1).kind, "*");
  EXPECT_EQ(set.rule(1).first, "*");
  EXPECT_EQ(set.rule(1).addr, "*");
  EXPECT_FALSE(set.rule(1).wants_labels());
}

TEST(SuppressionParse, ErrorsCarryLineNumbers) {
  const auto parse_error = [](std::string_view text) {
    suppression_set set;
    std::string err;
    EXPECT_FALSE(set.parse(text, &err));
    EXPECT_EQ(set.size(), 0u);  // failed parses leave the set untouched
    return err;
  };
  EXPECT_EQ(parse_error("{\n{\n"), "line 2: nested '{'");
  EXPECT_EQ(parse_error("}\n"), "line 1: '}' outside a block");
  EXPECT_EQ(parse_error("{\n}\n"), "line 2: rule block has no name line");
  EXPECT_EQ(parse_error("{\nkind: write-write\n}\n"),
            "line 2: rule block has no name line");
  EXPECT_EQ(parse_error("kind: x\n"),
            "line 1: expected '{' to open a rule block");
  EXPECT_EQ(parse_error("{\nname\nkind:\n}\n"), "line 3: empty pattern");
  EXPECT_EQ(parse_error("{\nname\nfrist: x\n}\n"),
            "line 3: unknown field 'frist'");
  EXPECT_EQ(parse_error("{\nname\n"), "line 3: unterminated rule block");
}

// ------------------------------------------------------------------ matching

suppression_query make_query() {
  suppression_query q;
  q.kind = "write-write";
  q.first = "a.cpp:10";
  q.second = "b.cpp:20";
  q.addr = "0x5c3f10";
  q.tier = "slab";
  q.labels = [] { return std::string("[1,2] || [3,4]"); };
  return q;
}

TEST(SuppressionMatch, FirstMatchingRuleWins) {
  suppression_set set;
  std::string err;
  ASSERT_TRUE(set.parse("{\n no-match\n kind: read-write\n}\n"
                        "{\n wide\n}\n"
                        "{\n also-matches\n kind: write-write\n}\n",
                        &err))
      << err;
  EXPECT_EQ(set.match(make_query()), 1);
}

TEST(SuppressionMatch, EveryFieldConstrains) {
  const auto matches = [](std::string_view rule_body) {
    suppression_set set;
    std::string err;
    std::string text = "{\n r\n " + std::string(rule_body) + "\n}\n";
    EXPECT_TRUE(set.parse(text, &err)) << err;
    return set.match(make_query()) == 0;
  };
  EXPECT_TRUE(matches("kind: write-write"));
  EXPECT_FALSE(matches("kind: write-read"));
  EXPECT_TRUE(matches("first: a.cpp:*"));
  EXPECT_FALSE(matches("first: z.cpp:*"));
  EXPECT_TRUE(matches("second: *:20"));
  EXPECT_FALSE(matches("second: *:21"));
  EXPECT_TRUE(matches("addr: 0x*"));
  EXPECT_FALSE(matches("addr: 0y*"));
  EXPECT_TRUE(matches("tier: slab"));
  EXPECT_FALSE(matches("tier: cell"));
  EXPECT_TRUE(matches("labels: [1,2]*"));
  EXPECT_FALSE(matches("labels: [9,9]*"));
}

TEST(SuppressionMatch, LabelsRenderedLazilyAndAtMostOnce) {
  suppression_set set;
  std::string err;
  ASSERT_TRUE(set.parse("{\n l1\n kind: nope\n labels: [9*\n}\n"
                        "{\n l2\n labels: [1*\n}\n"
                        "{\n l3\n labels: [2*\n}\n",
                        &err))
      << err;
  int renders = 0;
  suppression_query q = make_query();
  q.labels = [&renders] {
    ++renders;
    return std::string("[1,2] || [3,4]");
  };
  EXPECT_EQ(set.match(q), 1);
  // l1 failed on kind before labels; l2 and l3 share one rendering.
  EXPECT_EQ(renders, 1);

  suppression_set no_labels;
  ASSERT_TRUE(no_labels.parse("{\n wide\n}\n", &err)) << err;
  renders = 0;
  EXPECT_EQ(no_labels.match(q), 0);
  EXPECT_EQ(renders, 0);  // no rule wanted labels, so never rendered
}

// ------------------------------------------------- detector-level suppression

TEST(Suppressions, MatchedRacesAreCountedButNotMaterialized) {
  suppression_set set;
  std::string err;
  ASSERT_TRUE(set.parse("{\n other-file\n first: elsewhere.cpp:*\n}\n"
                        "{\n this-test\n kind: write-write\n"
                        " first: *serve_test.cpp:*\n"
                        " second: *serve_test.cpp:*\n}\n",
                        &err))
      << err;
  race_detector::options opts;
  opts.suppressions = &set;
  auto det = detect_with(opts, [] {
    shared<int> x(0);
    for (int i = 0; i < 3; ++i) {
      finish([&] {
        async([&] { x.write(1); });
        async([&] { x.write(2); });
      });
    }
  });
  // races_observed (a paper counter) keeps counting; reports do not.
  EXPECT_EQ(det.race_count(), 3u);
  EXPECT_TRUE(det.reports().empty());
  EXPECT_EQ(det.suppressed_races(), 3u);
  ASSERT_EQ(det.suppression_hits().size(), 2u);
  EXPECT_EQ(det.suppression_hits()[0], 0u);  // first-match-wins bookkeeping
  EXPECT_EQ(det.suppression_hits()[1], 3u);
  EXPECT_EQ(det.errors_throttled(), 0u);  // suppression precedes throttling
  // Racy locations still reflect the suppressed race (Theorem 2 surface).
  EXPECT_EQ(det.racy_locations().size(), 1u);
}

TEST(Suppressions, SuppressedRaceDoesNotTripFailFast) {
  suppression_set set;
  std::string err;
  ASSERT_TRUE(set.parse("{\n benign\n kind: write-write\n}\n", &err)) << err;
  race_detector::options opts;
  opts.fail_fast = true;
  opts.suppressions = &set;
  auto det = detect_with(opts, [] {
    shared<int> x(0);
    finish([&] {
      async([&] { x.write(1); });
      async([&] { x.write(2); });
    });
  });
  EXPECT_EQ(det.suppressed_races(), 1u);
  EXPECT_TRUE(det.reports().empty());
}

TEST(Suppressions, PipelinedWorkersShareOneRuleSet) {
  suppression_set set;
  std::string err;
  ASSERT_TRUE(set.parse("{\n benign\n kind: write-write\n}\n", &err)) << err;
  race_detector::options opts;
  opts.suppressions = &set;
  opts.detect_threads = 2;
  pipelined_detector det(opts);
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([] {
    shared<int> x(0);
    for (int i = 0; i < 4; ++i) {
      finish([&] {
        async([&] { x.write(1); });
        async([&] { x.write(2); });
      });
    }
  });
  EXPECT_EQ(det.race_count(), 4u);
  EXPECT_TRUE(det.reports().empty());
  EXPECT_EQ(det.counters().suppressed_races, 4u);
  ASSERT_EQ(det.suppression_hits().size(), 1u);
  EXPECT_EQ(det.suppression_hits()[0], 4u);
}

// ------------------------------------------------------ error-limit throttle

TEST(Throttling, PerPairLimitBoundsOccurrences) {
  race_detector::options opts;
  opts.error_limit_per_pair = 3;
  auto det = detect_with(opts, [] {
    shared<int> x(0);
    for (int i = 0; i < 10; ++i) {
      finish([&] {
        async([&] { x.write(1); });
        async([&] { x.write(2); });
      });
    }
  });
  EXPECT_EQ(det.race_count(), 10u);  // paper counter stays exact
  ASSERT_EQ(det.reports().size(), 1u);
  EXPECT_EQ(det.reports()[0].occurrences, 3u);
  EXPECT_EQ(det.errors_throttled(), 7u);
  // Throttling is the benign degradation bit: visible in the reasons mask,
  // excluded from degraded().
  EXPECT_NE(det.degradation_reasons() & k_degraded_error_limit, 0u);
  EXPECT_FALSE(det.degraded());
  EXPECT_FALSE(det.counters().degraded);
}

TEST(Throttling, GlobalLimitSpansSitePairs) {
  race_detector::options opts;
  opts.error_limit_global = 1;
  auto det = detect_with(opts, [] {
    shared<int> x(0);
    shared<int> y(0);
    finish([&] {
      async([&] { x.write(1); });
      async([&] { x.write(2); });
    });
    finish([&] {
      async([&] { y.write(1); });
      async([&] { y.write(2); });
    });
  });
  EXPECT_EQ(det.race_count(), 2u);
  EXPECT_EQ(det.reports().size(), 1u);  // second pair hit the global limit
  EXPECT_EQ(det.errors_throttled(), 1u);
  EXPECT_NE(det.degradation_reasons() & k_degraded_error_limit, 0u);
  EXPECT_FALSE(det.degraded());
}

// -------------------------------------------------------------- report cap

TEST(Reporting, CapCountsDistinctDroppedSitePairs) {
  race_detector::options opts;
  opts.max_reports = 2;
  auto det = detect_with(opts, [] {
    shared_array<int> a(4);
    finish([&] {
      async([&] { a.write(0, 1); });
      async([&] { a.write(0, 2); });
    });
    finish([&] {
      async([&] { a.write(1, 1); });
      async([&] { a.write(1, 2); });
    });
    finish([&] {
      async([&] { a.write(2, 1); });
      async([&] { a.write(2, 2); });
    });
    finish([&] {
      async([&] { a.write(3, 1); });
      async([&] { a.write(3, 2); });
    });
  });
  EXPECT_EQ(det.race_count(), 4u);
  EXPECT_EQ(det.reports().size(), 2u);
  EXPECT_EQ(det.reports_capped(), 2u);
  EXPECT_EQ(det.counters().reports_capped, 2u);
  // The cap bounds materialization only, not the verdict surface.
  EXPECT_EQ(det.racy_locations().size(), 4u);
  EXPECT_FALSE(det.degraded());
}

// --------------------------------------------------- epoch reset regression

TEST(EpochReset, OrderedCrossEpochAccessDoesNotRace) {
  race_detector::options opts;
  opts.epoch_reset_interval = 4;
  auto det = detect_with(opts, [] {
    shared<int> x(0);
    finish([&] { async([&] { x.write(1); }); });
    // Enough quiescent root-level spawns to force several compactions while
    // x's shadow state still names the (now retired) epoch-1 writer.
    for (int i = 0; i < 16; ++i) finish([] { async([] {}); });
    finish([&] { async([&] { x.write(2); }); });  // ordered vs retired writer
    (void)x.read();
  });
  EXPECT_GE(det.counters().epoch_resets, 2u);
  EXPECT_FALSE(det.race_detected());
}

TEST(EpochReset, RaceOnPreEpochShadowStateStillReported) {
  race_detector::options opts;
  opts.epoch_reset_interval = 4;
  auto det = detect_with(opts, [] {
    shared<int> x(0);
    finish([&] { async([&] { x.write(1); }); });
    for (int i = 0; i < 16; ++i) finish([] { async([] {}); });
    finish([&] {
      async([&] { x.write(2); });
      async([&] { x.write(3); });  // unordered with write(2): a real race
    });
  });
  EXPECT_GE(det.counters().epoch_resets, 2u);
  EXPECT_TRUE(det.race_detected());
  ASSERT_EQ(det.reports().size(), 1u);
  EXPECT_EQ(det.reports()[0].kind, race_kind::write_write);
}

TEST(EpochReset, CompactionDefersWhileRootFutureUnjoined) {
  race_detector::options opts;
  opts.epoch_reset_interval = 2;
  // The unjoined root-level future keeps a vertex outside every live task's
  // set, so no spawn point is quiescent and every reset attempt defers.
  auto det = detect_with(opts, [] {
    auto pending = async_future([] { return 1; });
    for (int i = 0; i < 12; ++i) finish([] { async([] {}); });
    (void)pending.get();
  });
  EXPECT_EQ(det.counters().epoch_resets, 0u);

  // The same program with spawns after the join compacts at the first
  // post-join spawn: the deferral is a postponement, not a cancellation.
  auto joined = detect_with(opts, [] {
    auto pending = async_future([] { return 1; });
    for (int i = 0; i < 12; ++i) finish([] { async([] {}); });
    (void)pending.get();
    finish([] { async([] {}); });
  });
  EXPECT_GE(joined.counters().epoch_resets, 1u);
}

// ------------------------------------------------- epoch reset differential

// The bit-exactness surface: Table 2 paper counters plus the degradation
// flag. Engine-tier diagnostics (stamp/memo/direct hit counts, visit steps)
// are layout-dependent and deliberately excluded.
void expect_paper_counters_equal(const detector_counters& a,
                                 const detector_counters& b) {
  EXPECT_EQ(a.tasks, b.tasks);
  EXPECT_EQ(a.async_tasks, b.async_tasks);
  EXPECT_EQ(a.future_tasks, b.future_tasks);
  EXPECT_EQ(a.continuation_tasks, b.continuation_tasks);
  EXPECT_EQ(a.promise_puts, b.promise_puts);
  EXPECT_EQ(a.get_operations, b.get_operations);
  EXPECT_EQ(a.non_tree_joins, b.non_tree_joins);
  EXPECT_EQ(a.shared_mem_accesses, b.shared_mem_accesses);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_DOUBLE_EQ(a.avg_readers, b.avg_readers);
  EXPECT_EQ(a.max_readers, b.max_readers);
  EXPECT_EQ(a.locations, b.locations);
  EXPECT_EQ(a.races_observed, b.races_observed);
  EXPECT_EQ(a.racy_locations, b.racy_locations);
  EXPECT_EQ(a.untracked_accesses, b.untracked_accesses);
  EXPECT_EQ(a.degraded, b.degraded);
}

// Stable rendering of one report for cross-run comparison (task ids are
// execution-order identical too, but sites + kind + address + occurrences
// are the user-visible surface).
std::string report_key(const race_report& r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%p", r.location);
  return std::string(r.first_site.file) + ":" +
         std::to_string(r.first_site.line) + "/" + r.second_site.file + ":" +
         std::to_string(r.second_site.line) + "/" +
         race_kind_name(r.kind) + "/" + buf + "/x" +
         std::to_string(r.occurrences);
}

template <typename Det>
std::vector<std::string> report_keys(const Det& det) {
  std::vector<std::string> keys;
  for (const race_report& r : det.reports()) keys.push_back(report_key(r));
  return keys;
}

// A multi-request service stream: several independent progen programs, each
// wrapped in a root-level finish (the quiescent points compaction needs).
// The programs — and with them every shared address — are built once and
// reused across detector runs, so reset-on and reset-off runs see the exact
// same event stream over the exact same addresses. Promise weights stay at
// their defaults: put()-driven root splits are exactly the hard case for
// compaction's root-chain handling.
class service_stream {
 public:
  service_stream(std::uint64_t seed, int requests, int tasks_per_request) {
    for (int i = 0; i < requests; ++i) {
      progen::progen_config pc;
      pc.seed = seed + static_cast<std::uint64_t>(i) * 1000003u;
      pc.max_tasks = tasks_per_request;
      progs_.push_back(std::make_unique<progen::random_program>(pc));
    }
  }

  void operator()() {
    for (auto& p : progs_) {
      finish([&p] { (*p)(); });
    }
  }

 private:
  std::vector<std::unique_ptr<progen::random_program>> progs_;
};

void expect_reset_differential(race_detector::options base,
                               service_stream& stream) {
  race_detector::options with_reset = base;
  with_reset.epoch_reset_interval = 8;

  race_detector plain(base);
  {
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&plain);
    rt.run([&stream] { stream(); });
  }
  race_detector reset(with_reset);
  {
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&reset);
    rt.run([&stream] { stream(); });
  }

  ASSERT_GE(reset.epoch_resets(), 1u);
  EXPECT_EQ(plain.epoch_resets(), 0u);
  expect_paper_counters_equal(plain.counters(), reset.counters());
  EXPECT_EQ(report_keys(plain), report_keys(reset));
  EXPECT_EQ(plain.racy_locations(), reset.racy_locations());
}

TEST(EpochReset, DifferentialSerial) {
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    service_stream stream(seed, /*requests=*/6, /*tasks_per_request=*/60);
    expect_reset_differential(race_detector::options{}, stream);
  }
}

TEST(EpochReset, DifferentialFastpathOff) {
  for (std::uint64_t seed : {3u, 11u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    service_stream stream(seed, /*requests=*/6, /*tasks_per_request=*/60);
    race_detector::options opts;
    opts.enable_fastpath = false;
    expect_reset_differential(opts, stream);
  }
}

TEST(EpochReset, DifferentialPipelined) {
  for (std::uint64_t seed : {5u, 17u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    service_stream stream(seed, /*requests=*/6, /*tasks_per_request=*/60);

    race_detector::options base;
    base.detect_threads = 2;
    race_detector::options with_reset = base;
    with_reset.epoch_reset_interval = 8;

    pipelined_detector plain(base);
    {
      runtime rt({.mode = exec_mode::serial_dfs});
      rt.add_observer(&plain);
      rt.run([&stream] { stream(); });
    }
    pipelined_detector reset(with_reset);
    {
      runtime rt({.mode = exec_mode::serial_dfs});
      rt.add_observer(&reset);
      rt.run([&stream] { stream(); });
    }

    ASSERT_GE(reset.counters().epoch_resets, 1u);
    expect_paper_counters_equal(plain.counters(), reset.counters());
    EXPECT_EQ(report_keys(plain), report_keys(reset));
    EXPECT_EQ(plain.racy_locations(), reset.racy_locations());
  }
}

// The reset run must agree with a plain *serial* run too (not only with the
// same engine's no-reset twin), closing the triangle across engines.
TEST(EpochReset, PipelinedResetMatchesSerialPlain) {
  service_stream stream(/*seed=*/29, /*requests=*/6, /*tasks_per_request=*/60);

  race_detector serial_plain{race_detector::options{}};
  {
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&serial_plain);
    rt.run([&stream] { stream(); });
  }

  race_detector::options opts;
  opts.detect_threads = 2;
  opts.epoch_reset_interval = 8;
  pipelined_detector piped(opts);
  {
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&piped);
    rt.run([&stream] { stream(); });
  }

  ASSERT_GE(piped.counters().epoch_resets, 1u);
  expect_paper_counters_equal(serial_plain.counters(), piped.counters());
  EXPECT_EQ(report_keys(serial_plain), report_keys(piped));
  EXPECT_EQ(serial_plain.racy_locations(), piped.racy_locations());
}

}  // namespace
}  // namespace futrace::detect
