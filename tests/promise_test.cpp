// Tests for promise<T>: runtime semantics in every mode, the put-splits-task
// mechanism, and detection precision around mid-task fulfillment — including
// the finish-across-put soundness scenario.

#include <gtest/gtest.h>

#include <atomic>

#include "futrace/baselines/oracle_detector.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"

namespace futrace {
namespace {

template <typename Fn>
detect::race_detector detect_on(Fn&& program) {
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run(std::forward<Fn>(program));
  return det;
}

// ------------------------------------------------------------------ semantics

TEST(PromiseSemantics, PutThenGetSameTask) {
  for (const exec_mode mode :
       {exec_mode::serial_elision, exec_mode::serial_dfs}) {
    runtime rt({.mode = mode});
    rt.run([] {
      promise<int> p;
      EXPECT_FALSE(p.is_fulfilled());
      p.put(7);
      EXPECT_TRUE(p.is_fulfilled());
      EXPECT_EQ(p.get(), 7);
    });
  }
}

TEST(PromiseSemantics, ProducerTaskFulfills) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    promise<int> p;
    finish([&] {
      async([&] { p.put(11); });
    });
    EXPECT_EQ(p.get(), 11);
  });
}

TEST(PromiseSemantics, VoidPromise) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    promise<void> p;
    finish([&] {
      async([&] { p.put(); });
    });
    p.get();
    EXPECT_TRUE(p.is_fulfilled());
  });
}

TEST(PromiseSemantics, DoublePutThrows) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    promise<int> p;
    p.put(1);
    EXPECT_THROW(p.put(2), usage_error);
  });
}

TEST(PromiseSemantics, GetBeforePutIsDeadlock) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    promise<int> p;
    EXPECT_THROW((void)p.get(), deadlock_error);
  });
}

TEST(PromiseSemantics, GetBeforePutIsDeadlockInElision) {
  runtime rt({.mode = exec_mode::serial_elision});
  rt.run([] {
    promise<int> p;
    async([&] { /* would put later in some schedule */ (void)p; });
    EXPECT_THROW((void)p.get(), deadlock_error);
  });
}

TEST(PromiseSemantics, ParallelProducerConsumer) {
  runtime rt({.mode = exec_mode::parallel, .workers = 3});
  std::atomic<int> result{0};
  rt.run([&] {
    promise<int> p;
    finish([&] {
      async([&] { p.put(21); });
      async([&] { result.store(p.get() * 2); });
    });
  });
  EXPECT_EQ(result.load(), 42);
}

TEST(PromiseSemantics, HandlesAreCopyableAndShared) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([] {
    promise<int> p;
    promise<int> q = p;  // same cell
    p.put(5);
    EXPECT_TRUE(q.is_fulfilled());
    EXPECT_EQ(q.get(), 5);
  });
}

// ----------------------------------------------------------- task splitting

TEST(PromiseSplit, PutCreatesContinuationTask) {
  auto det = detect_on([] {
    promise<void> p;
    finish([&] {
      async([&] {
        p.put();  // splits this async into (async, continuation)
      });
    });
    p.get();
  });
  const auto c = det.counters();
  EXPECT_EQ(c.async_tasks, 1u);
  // One continuation for the putter itself, one for the resuming root (all
  // live ancestors split lazily so their post-put steps get new identities).
  EXPECT_EQ(c.continuation_tasks, 2u);
  EXPECT_EQ(c.promise_puts, 1u);
  EXPECT_FALSE(det.race_detected());
}

TEST(PromiseSplit, CurrentTaskIdChangesAtPut) {
  runtime rt({.mode = exec_mode::serial_dfs});
  detect::race_detector det;
  rt.add_observer(&det);
  rt.run([] {
    promise<void> p;
    const task_id before = current_task();
    p.put();
    const task_id after = current_task();
    EXPECT_NE(before, after);
    EXPECT_EQ(p.fulfiller(), before);
  });
}

// The point of the split: code *after* the put must stay parallel with the
// getter, while code before the put is ordered.
TEST(PromiseDetection, PrePutOrderedPostPutParallel) {
  auto det = detect_on([] {
    shared<int> before_cell(0);
    shared<int> after_cell(0);
    promise<void> p;
    finish([&] {
      async([&] {
        before_cell.write(1);  // pre-put: ordered before the getter
        p.put();
        after_cell.write(2);  // post-put: parallel with the getter
      });
      async([&] {
        p.get();
        (void)before_cell.read();  // safe
        (void)after_cell.read();   // RACE with the post-put write
      });
    });
  });
  EXPECT_TRUE(det.race_detected());
  ASSERT_FALSE(det.reports().empty());
  // Exactly one racy location: the after_cell.
  EXPECT_EQ(det.racy_locations().size(), 1u);
  for (const auto& r : det.reports()) {
    EXPECT_EQ(r.kind, detect::race_kind::write_read);
  }
}

// The finish-across-put soundness scenario: a finish opened before the put
// must credit its joins to the continuation, not to the pre-put identity —
// otherwise tasks joined after the put would appear ordered before promise
// getters.
TEST(PromiseDetection, FinishAcrossPutDoesNotLeakOrdering) {
  auto det = detect_on([] {
    shared<int> cell(0);
    promise<void> p;
    async([&] {
      finish([&] {
        p.put();  // split happens inside the finish
        async([&] { cell.write(1); });  // joined by the finish, post-put
      });
      // finish ended: the write is ordered before *this* continuation...
    });
    p.get();
    // ...but NOT before the promise getter: this read races.
    (void)cell.read();
  });
  EXPECT_TRUE(det.race_detected())
      << "post-put finish joins must not be visible through the promise";
}

TEST(PromiseDetection, PromiseSynchronizesSiblings) {
  auto det = detect_on([] {
    shared<int> data(0);
    promise<void> ready;
    finish([&] {
      async([&] {
        data.write(42);
        ready.put();
      });
      async([&] {
        ready.get();
        EXPECT_EQ(data.read(), 42);
      });
    });
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(PromiseDetection, UnsynchronizedConsumerRaces) {
  auto det = detect_on([] {
    shared<int> data(0);
    promise<void> ready;
    finish([&] {
      async([&] {
        data.write(42);
        ready.put();
      });
      async([&] {
        (void)data.read();  // no get(): races with the write
      });
    });
  });
  EXPECT_TRUE(det.race_detected());
}

// Lemma 4's one-async-reader coverage interacts subtly with promises: a
// covered reader may later put() and become joinable. Coverage stays sound
// because (a) a covering reader is never live, so its joinability is final
// when the coverage decision is made, and (b) a covered reader's pre-put
// reads are ordered before every getter of its promise anyway. This test
// pins the scenario: r2's read is covered by r1, a writer synchronizes with
// r2 through its promise, and the race that remains (r1 vs the writer) must
// still be reported.
TEST(PromiseDetection, CoverageRemainsSoundWithLatePuts) {
  auto det = detect_on([] {
    shared<int> cell(1);
    promise<void> r2_done;
    async([&] { (void)cell.read(); });  // r1: stored
    async([&] {
      (void)cell.read();  // r2: covered by r1
      r2_done.put();      // r2 becomes joinable afterwards
    });
    async([&] {
      r2_done.get();   // ordered after r2's read...
      cell.write(2);   // ...but parallel with r1's read: a race
    });
  });
  EXPECT_TRUE(det.race_detected());
  ASSERT_FALSE(det.reports().empty());
  EXPECT_EQ(det.reports()[0].kind, detect::race_kind::read_write);
  EXPECT_EQ(det.reports()[0].first_task, 1u) << "the race partner is r1";
  EXPECT_EQ(det.race_count(), 1u)
      << "r2's read is ordered through its promise and must not be reported";
}

TEST(PromiseDetection, TransitivePromiseChain) {
  auto det = detect_on([] {
    shared<int> stage1(0), stage2(0);
    promise<void> p1, p2;
    finish([&] {
      async([&] {
        stage1.write(1);
        p1.put();
      });
      async([&] {
        p1.get();
        stage2.write(stage1.read() + 1);
        p2.put();
      });
      async([&] {
        p2.get();
        EXPECT_EQ(stage2.read(), 2);
        EXPECT_EQ(stage1.read(), 1);  // transitively ordered through p1,p2
      });
    });
  });
  EXPECT_FALSE(det.race_detected());
}

// Oracle agreement on a promise program (the recorder sees the split as an
// ordinary spawn, and the join edge originates at the put step).
TEST(PromiseDetection, OracleAgreesOnPromiseProgram) {
  detect::race_detector det;
  baselines::oracle_detector oracle;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.add_observer(&oracle);
  rt.run([] {
    shared<int> pre(0), post(0);
    promise<void> p;
    finish([&] {
      async([&] {
        pre.write(1);
        p.put();
        post.write(1);
      });
      async([&] {
        p.get();
        (void)pre.read();
        (void)post.read();
      });
    });
  });
  EXPECT_TRUE(det.race_detected());
  EXPECT_TRUE(oracle.race_detected());
  EXPECT_EQ(det.racy_locations(), oracle.racy_locations());
}

// Serial elision equivalence for a race-free promise program.
TEST(PromiseDetection, ElisionEquivalence) {
  auto program = [](int& out) {
    return [&out] {
      shared<int> acc(0);
      promise<int> p;
      finish([&] {
        async([&] { p.put(30); });
        async([&] { acc.write(p.get() + 12); });
      });
      out = acc.read();
    };
  };
  int elision = 0, serial = 0;
  {
    runtime rt({.mode = exec_mode::serial_elision});
    rt.run(program(elision));
  }
  {
    auto det = detect_on(program(serial));
    EXPECT_FALSE(det.race_detected());
  }
  EXPECT_EQ(elision, 42);
  EXPECT_EQ(serial, elision);
}

}  // namespace
}  // namespace futrace
