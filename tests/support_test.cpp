// Unit tests for futrace::support: small_vector, arena, rng, stats, table,
// flags, ptr_map.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>

#include "futrace/support/arena.hpp"
#include "futrace/support/flags.hpp"
#include "futrace/support/json.hpp"
#include "futrace/support/ptr_map.hpp"
#include "futrace/support/rng.hpp"
#include "futrace/support/small_vector.hpp"
#include "futrace/support/spsc_ring.hpp"
#include "futrace/support/stats.hpp"
#include "futrace/support/table.hpp"

namespace futrace::support {
namespace {

// ---------------------------------------------------------------- small_vector

TEST(SmallVector, StartsEmptyInline) {
  small_vector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.uses_inline_storage());
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushWithinInlineCapacity) {
  small_vector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.uses_inline_storage());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsToHeapAndPreservesContents) {
  small_vector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i * 7);
  EXPECT_FALSE(v.uses_inline_storage());
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 7);
}

TEST(SmallVector, EraseUnorderedRemovesBySwap) {
  small_vector<int, 4> v{10, 20, 30, 40};
  v.erase_unordered(1);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.contains(20));
  EXPECT_TRUE(v.contains(10));
  EXPECT_TRUE(v.contains(30));
  EXPECT_TRUE(v.contains(40));
}

TEST(SmallVector, EraseUnorderedLastElement) {
  small_vector<int, 2> v{1, 2, 3};
  v.erase_unordered(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_FALSE(v.contains(3));
}

TEST(SmallVector, CopyPreservesIndependence) {
  small_vector<int, 2> a{1, 2, 3};
  small_vector<int, 2> b = a;
  b.push_back(4);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(a, (small_vector<int, 2>{1, 2, 3}));
}

TEST(SmallVector, MoveFromHeapStealsBuffer) {
  small_vector<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  small_vector<int, 2> b = std::move(a);
  EXPECT_EQ(b.size(), 50u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b[49], 49);
}

TEST(SmallVector, MoveFromInlineCopies) {
  small_vector<int, 4> a{1, 2};
  small_vector<int, 4> b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_TRUE(b.uses_inline_storage());
}

TEST(SmallVector, AppendConcatenates) {
  small_vector<int, 2> a{1, 2};
  small_vector<int, 2> b{3, 4, 5};
  a.append(b);
  EXPECT_EQ(a, (small_vector<int, 2>{1, 2, 3, 4, 5}));
}

TEST(SmallVector, ResizeGrowsWithFill) {
  small_vector<int, 2> v;
  v.resize(5, 9);
  EXPECT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], 9);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
}

// ----------------------------------------------------------------------- arena

TEST(Arena, AllocationsAreAligned) {
  arena a(128);
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = a.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(Arena, CreateConstructsObjects) {
  arena a;
  struct point {
    int x, y;
  };
  point* p = a.create<point>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(Arena, GrowsPastBlockSize) {
  arena a(64);
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = a.allocate(48, 8);
    EXPECT_TRUE(seen.insert(p).second) << "allocation reused while live";
  }
  EXPECT_GE(a.bytes_used(), 48u * 1000);
  EXPECT_GE(a.bytes_reserved(), a.bytes_used());
}

TEST(Arena, OversizedAllocationGetsOwnBlock) {
  arena a(64);
  void* p = a.allocate(4096, 16);
  EXPECT_NE(p, nullptr);
}

TEST(Arena, ResetReleasesAccounting) {
  arena a;
  a.allocate(100, 8);
  a.reset();
  EXPECT_EQ(a.bytes_used(), 0u);
  EXPECT_EQ(a.bytes_reserved(), 0u);
}

// ------------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  xoshiro256 r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  xoshiro256 r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  xoshiro256 r(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// ----------------------------------------------------------------------- stats

TEST(RunningStats, MeanMinMax) {
  running_stats s;
  for (double x : {4.0, 8.0, 6.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningStats, VarianceMatchesTextbook) {
  running_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, MergeEqualsSequential) {
  running_stats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(SampleSet, PercentilesInterpolate) {
  sample_set s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.mean(), 25.0);
}

// ----------------------------------------------------------------------- table

TEST(TextTable, WithCommas) {
  EXPECT_EQ(text_table::with_commas(0), "0");
  EXPECT_EQ(text_table::with_commas(999), "999");
  EXPECT_EQ(text_table::with_commas(1000), "1,000");
  EXPECT_EQ(text_table::with_commas(1150000682ULL), "1,150,000,682");
}

TEST(TextTable, FixedPrecision) {
  EXPECT_EQ(text_table::fixed(9.923, 2), "9.92");
  EXPECT_EQ(text_table::fixed(1.0, 2), "1.00");
}

TEST(TextTable, RendersAlignedRows) {
  text_table t({"Benchmark", "Slowdown"});
  t.add_row({"Jacobi", "8.05"});
  t.add_row({"Smith-Waterman", "9.92"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Benchmark"), std::string::npos);
  EXPECT_NE(out.find("9.92"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

// ----------------------------------------------------------------------- flags

TEST(Flags, DefaultsAndOverrides) {
  flag_parser p;
  p.define("size", "100", "problem size")
      .define("scale", "1.5", "scale factor")
      .define("verify", "false", "run self check");
  const char* argv[] = {"prog", "--size=250", "--verify"};
  p.parse(3, const_cast<char**>(argv));
  EXPECT_EQ(p.get_int("size"), 250);
  EXPECT_DOUBLE_EQ(p.get_double("scale"), 1.5);
  EXPECT_TRUE(p.get_bool("verify"));
}

TEST(Flags, SpaceSeparatedValue) {
  flag_parser p;
  p.define("name", "x", "a name");
  const char* argv[] = {"prog", "--name", "series"};
  p.parse(3, const_cast<char**>(argv));
  EXPECT_EQ(p.get_string("name"), "series");
}

TEST(Flags, PositionalArgumentsCollected) {
  flag_parser p;
  p.define("n", "1", "count");
  const char* argv[] = {"prog", "alpha", "--n=3", "beta"};
  p.parse(4, const_cast<char**>(argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "alpha");
  EXPECT_EQ(p.positional()[1], "beta");
}

TEST(Flags, DuplicateKeepsLastValueAndWarns) {
  flag_parser p;
  p.define("scale", "1", "size multiplier");
  const char* argv[] = {"prog", "--scale=2", "--scale=8"};
  const auto result = p.try_parse(3, const_cast<char**>(argv));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(p.get_int("scale"), 8);  // last one wins
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("duplicate flag --scale"),
            std::string::npos);
  EXPECT_NE(result.warnings[0].find("'2' overridden by '8'"),
            std::string::npos);
  EXPECT_EQ(p.warnings(), result.warnings);
}

TEST(Flags, DuplicateWithSameValueIsQuiet) {
  flag_parser p;
  p.define("json", "false", "emit json");
  const char* argv[] = {"prog", "--json=true", "--json=true"};
  const auto result = p.try_parse(3, const_cast<char**>(argv));
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(p.get_bool("json"));
  EXPECT_TRUE(result.warnings.empty());
}

TEST(Flags, TryParseReportsUnknownFlagWithoutExiting) {
  flag_parser p;
  p.define("n", "1", "count");
  const char* argv[] = {"prog", "--bogus=3"};
  const auto result = p.try_parse(2, const_cast<char**>(argv));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("unknown flag --bogus"), std::string::npos);
}

TEST(Flags, TryParseReportsHelp) {
  flag_parser p;
  p.define("n", "1", "count");
  const char* argv[] = {"prog", "--help"};
  const auto result = p.try_parse(2, const_cast<char**>(argv));
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.help_requested);
}

TEST(Flags, SetFlagsResetBetweenParses) {
  flag_parser p;
  p.define("n", "1", "count");
  const char* argv1[] = {"prog", "--n=5"};
  EXPECT_TRUE(p.try_parse(2, const_cast<char**>(argv1)).ok);
  // A second parse must not see the first parse's assignment as a
  // duplicate of its own.
  const char* argv2[] = {"prog", "--n=7"};
  const auto result = p.try_parse(2, const_cast<char**>(argv2));
  EXPECT_TRUE(result.warnings.empty());
  EXPECT_EQ(p.get_int("n"), 7);
}

// The exact flag vocabulary of the bench/tool drivers, as regression cover
// for their real invocations (CI calls these with duplicates impossible,
// but a typoed doubled flag must warn, not silently drop a value).
TEST(Flags, Table2FlagSetParses) {
  flag_parser p;
  p.define("scale", "1", "")
      .define("repeats", "3", "")
      .define("json", "false", "")
      .define("json-out", "BENCH_table2.json", "")
      .define("no-fastpath", "false", "")
      .define("detect-threads", "0", "")
      .define("rows", "", "")
      .define("trace", "", "");
  const char* argv[] = {"prog",          "--scale=2",   "--repeats", "5",
                        "--json",        "--rows=Jacobi", "--scale=4"};
  const auto result = p.try_parse(7, const_cast<char**>(argv));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(p.get_int("scale"), 4);
  EXPECT_EQ(p.get_int("repeats"), 5);
  EXPECT_TRUE(p.get_bool("json"));
  EXPECT_EQ(p.get_string("rows"), "Jacobi");
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings[0].find("duplicate flag --scale"),
            std::string::npos);
}

TEST(Flags, FaultSoakFlagSetParses) {
  flag_parser p;
  p.define("seeds", "200", "")
      .define("seed-base", "1", "")
      .define("watchdog-ms", "600", "")
      .define("stress-accesses", "0", "")
      .define("pipe-seeds", "0", "")
      .define("metrics-out", "", "");
  const char* argv[] = {"prog", "--seeds", "12", "--watchdog-ms=250",
                        "--metrics-out=/tmp/m.json"};
  const auto result = p.try_parse(5, const_cast<char**>(argv));
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.warnings.empty());
  EXPECT_EQ(p.get_int("seeds"), 12);
  EXPECT_EQ(p.get_int("watchdog-ms"), 250);
  EXPECT_EQ(p.get_string("metrics-out"), "/tmp/m.json");
}

// --------------------------------------------------------------------- ptr_map

TEST(PtrMap, InsertAndFind) {
  ptr_map<int> m;
  int dummy[4] = {};
  m[&dummy[0]] = 10;
  m[&dummy[2]] = 20;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(&dummy[0]), nullptr);
  EXPECT_EQ(*m.find(&dummy[0]), 10);
  EXPECT_EQ(*m.find(&dummy[2]), 20);
  EXPECT_EQ(m.find(&dummy[1]), nullptr);
}

TEST(PtrMap, OperatorBracketDefaultConstructs) {
  ptr_map<int> m;
  int x = 0;
  EXPECT_EQ(m[&x], 0);
  m[&x] = 7;
  EXPECT_EQ(m[&x], 7);
  EXPECT_EQ(m.size(), 1u);
}

TEST(PtrMap, SurvivesGrowth) {
  ptr_map<std::size_t> m(16);
  std::vector<int> storage(10000);
  for (std::size_t i = 0; i < storage.size(); ++i) m[&storage[i]] = i;
  EXPECT_EQ(m.size(), storage.size());
  for (std::size_t i = 0; i < storage.size(); ++i) {
    ASSERT_NE(m.find(&storage[i]), nullptr);
    EXPECT_EQ(*m.find(&storage[i]), i);
  }
}

TEST(PtrMap, ForEachVisitsEveryEntry) {
  ptr_map<int> m;
  int cells[5] = {};
  for (int i = 0; i < 5; ++i) m[&cells[i]] = i;
  int count = 0, sum = 0;
  m.for_each([&](const void*, int& v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4);
}

TEST(PtrMap, ValueWithHeapStateSurvivesGrowth) {
  ptr_map<std::vector<int>> m(16);
  std::vector<int> keys(300);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    m[&keys[i]].push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(m[&keys[i]].size(), 1u);
    EXPECT_EQ(m[&keys[i]][0], static_cast<int>(i));
  }
}

TEST(PtrMap, ReserveAvoidsRehash) {
  ptr_map<int> m(16);
  m.reserve(10000);
  const std::size_t bytes_before = m.table_bytes();
  std::vector<int> storage(10000);
  for (std::size_t i = 0; i < storage.size(); ++i) {
    m[&storage[i]] = static_cast<int>(i);
  }
  EXPECT_EQ(m.table_bytes(), bytes_before)
      << "reserve() must pre-size the table so inserts never rehash";
  EXPECT_EQ(m.size(), storage.size());
}

TEST(PtrMap, ReserveNeverShrinks) {
  ptr_map<int> m(4096);
  const std::size_t bytes_before = m.table_bytes();
  m.reserve(4);
  EXPECT_EQ(m.table_bytes(), bytes_before);
}

TEST(PtrMap, EraseRemovesAndReports) {
  ptr_map<int> m;
  int dummy[4] = {};
  m[&dummy[0]] = 10;
  m[&dummy[2]] = 20;
  EXPECT_TRUE(m.erase(&dummy[0]));
  EXPECT_FALSE(m.erase(&dummy[0]));  // already gone
  EXPECT_FALSE(m.erase(&dummy[1]));  // never present
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.find(&dummy[0]), nullptr);
  ASSERT_NE(m.find(&dummy[2]), nullptr);
  EXPECT_EQ(*m.find(&dummy[2]), 20);
}

TEST(PtrMap, EraseResetsVacatedValue) {
  // Shadow cells keep a raw overflow pointer; erase() must not leave a
  // moved-out copy of it behind in a dead slot, or re-inserting the key
  // would resurrect a dangling pointer.
  ptr_map<int> m;
  int x = 0;
  m[&x] = 42;
  m.erase(&x);
  EXPECT_EQ(m[&x], 0) << "re-inserted key must see a fresh value";
}

TEST(PtrMap, EraseUnderCollisionClusterKeepsProbeChainsIntact) {
  // Small table, many keys: adjacent addresses force dense probe clusters.
  // Backward-shift deletion must keep every remaining key findable no
  // matter which cluster member is removed.
  ptr_map<std::size_t> m(16);
  std::vector<int> storage(512);
  for (std::size_t i = 0; i < storage.size(); ++i) m[&storage[i]] = i;
  // Erase every third key, checking the survivors after each removal wave.
  for (std::size_t i = 0; i < storage.size(); i += 3) {
    EXPECT_TRUE(m.erase(&storage[i]));
  }
  for (std::size_t i = 0; i < storage.size(); ++i) {
    if (i % 3 == 0) {
      EXPECT_EQ(m.find(&storage[i]), nullptr);
    } else {
      ASSERT_NE(m.find(&storage[i]), nullptr);
      EXPECT_EQ(*m.find(&storage[i]), i);
    }
  }
  // Erased keys can be re-inserted and found again.
  for (std::size_t i = 0; i < storage.size(); i += 3) m[&storage[i]] = i * 7;
  for (std::size_t i = 0; i < storage.size(); i += 3) {
    ASSERT_NE(m.find(&storage[i]), nullptr);
    EXPECT_EQ(*m.find(&storage[i]), i * 7);
  }
}

TEST(PtrMap, CollisionClusteringStaysBoundedAtTargetLoad) {
  // At the 50% load target a linear-probe lookup should stay near one
  // probe; sequential addresses are the worst realistic case because they
  // share high-entropy-free low bits. This guards the splitmix64 hashing
  // against regressions to weaker mixers.
  ptr_map<int> m;
  std::vector<int> storage(8192);
  for (std::size_t i = 0; i < storage.size(); ++i) {
    m[&storage[i]] = static_cast<int>(i);
  }
  for (std::size_t i = 0; i < storage.size(); ++i) {
    ASSERT_NE(m.find(&storage[i]), nullptr);
  }
  // The table doubled/quadrupled past 50% load: bytes stay within 4x of
  // the minimum power-of-two capacity for this entry count.
  EXPECT_LE(m.table_bytes(),
            4 * 2 * storage.size() * (sizeof(void*) + sizeof(int)));
}

// ------------------------------------------------------------------------ json

TEST(Json, BuildAndDump) {
  json doc = json::object();
  doc["name"] = "table2";
  doc["scale"] = 2;
  doc["verified"] = true;
  json rows = json::array();
  json row = json::object();
  row["slowdown"] = 1.5;
  rows.push_back(row);
  doc["rows"] = rows;
  const std::string text = doc.dump(0);
  EXPECT_EQ(text,
            "{\"name\":\"table2\",\"scale\":2,\"verified\":true,"
            "\"rows\":[{\"slowdown\":1.5}]}\n");
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      "{\"a\": [1, 2.5, -3], \"b\": {\"c\": \"x\\ny\", \"d\": null}, "
      "\"e\": false}";
  const json doc = json::parse(text);
  ASSERT_TRUE(doc.is_object());
  const json* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 3u);
  EXPECT_EQ(a->at(0).as_double(), 1.0);
  EXPECT_EQ(a->at(1).as_double(), 2.5);
  EXPECT_EQ(a->at(2).as_double(), -3.0);
  const json* c = doc.find("b")->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->as_string(), "x\ny");
  EXPECT_TRUE(doc.find("b")->find("d")->is_null());
  EXPECT_FALSE(doc.find("e")->as_bool());
  // dump → parse → dump is a fixed point.
  EXPECT_EQ(json::parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, IntegersRoundTripExactly) {
  json doc = json::object();
  doc["big"] = std::uint64_t{1} << 50;
  const json back = json::parse(doc.dump());
  EXPECT_EQ(back.find("big")->as_double(),
            static_cast<double>(std::uint64_t{1} << 50));
  EXPECT_NE(doc.dump().find("1125899906842624"), std::string::npos)
      << "integral values must print without an exponent";
}

TEST(Json, ParseErrorsCarryOffset) {
  EXPECT_THROW(json::parse("{\"a\": }"), json_parse_error);
  EXPECT_THROW(json::parse("[1, 2"), json_parse_error);
  EXPECT_THROW(json::parse("{} trailing"), json_parse_error);
  try {
    json::parse("[tru]");
    FAIL() << "expected json_parse_error";
  } catch (const json_parse_error& e) {
    EXPECT_GT(std::string(e.what()).size(), 0u);
  }
}

TEST(Json, ParsesGoogleBenchmarkShape) {
  // The shape --benchmark_out writes; bench_diff must walk it.
  const json doc = json::parse(R"({
    "context": {"date": "2026-08-07T12:00:00", "num_cpus": 8},
    "benchmarks": [
      {"name": "BM_PtrMapHit/1024", "real_time": 12.5, "cpu_time": 12.4,
       "time_unit": "ns", "iterations": 1000000}
    ]
  })");
  const json* benches = doc.find("benchmarks");
  ASSERT_NE(benches, nullptr);
  ASSERT_EQ(benches->size(), 1u);
  EXPECT_EQ(benches->at(0).find("name")->as_string(), "BM_PtrMapHit/1024");
  EXPECT_EQ(benches->at(0).find("real_time")->as_double(), 12.5);
}

// ------------------------------------------------------------------ spsc_ring

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(spsc_ring<int>(1).capacity(), 2u);
  EXPECT_EQ(spsc_ring<int>(4).capacity(), 4u);
  EXPECT_EQ(spsc_ring<int>(5).capacity(), 8u);
  EXPECT_EQ(spsc_ring<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, PublishConsumeBatch) {
  spsc_ring<int> ring(8);
  EXPECT_EQ(ring.free_slots(), 8u);
  EXPECT_EQ(ring.readable(), 0u);
  for (int i = 0; i < 5; ++i) ring.produce_slot(i) = i * 10;
  ring.publish(5);
  EXPECT_EQ(ring.free_slots(), 3u);
  ASSERT_EQ(ring.readable(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(ring.consume_slot(i), static_cast<int>(i) * 10);
  }
  ring.pop(5);
  EXPECT_EQ(ring.readable(), 0u);
  // free_slots refreshes its view of the consumer lazily (only when the
  // cached view looks full), so it may under-report after a pop — but a
  // full round of produce/consume must be possible again.
  for (int round = 0; round < 4; ++round) {
    ASSERT_GE(ring.free_slots(), 1u);
    ring.produce_slot(0) = round;
    ring.publish(1);
    ASSERT_GE(ring.readable_refresh(), 1u);
    EXPECT_EQ(ring.consume_slot(0), round);
    ring.pop(1);
  }
}

TEST(SpscRing, WrapsAroundManyTimes) {
  spsc_ring<std::uint64_t> ring(4);
  std::uint64_t next_out = 0;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    ASSERT_GE(ring.free_slots(), 1u);
    ring.produce_slot(0) = v;
    ring.publish(1);
    if (ring.readable_refresh() == ring.capacity() || v == 999) {
      const std::size_t n = ring.readable_refresh();
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ring.consume_slot(i), next_out++);
      }
      ring.pop(n);
    }
  }
  EXPECT_EQ(next_out, 1000u);
}

TEST(SpscRing, FullMeansZeroFreeSlots) {
  spsc_ring<int> ring(2);
  ring.produce_slot(0) = 1;
  ring.produce_slot(1) = 2;
  ring.publish(2);
  EXPECT_EQ(ring.free_slots(), 0u);
  ring.pop(1);
  EXPECT_EQ(ring.free_slots(), 1u);  // producer refreshes its head cache
}

// readable() deliberately skips the refresh while its cached view is
// nonempty; readable_refresh() must observe later publishes anyway — the
// partial-multi-slot-event wait depends on it.
TEST(SpscRing, ReadableRefreshSeesNewSlotsBehindStaleCache) {
  spsc_ring<int> ring(8);
  ring.produce_slot(0) = 1;
  ring.publish(1);
  EXPECT_EQ(ring.readable(), 1u);  // caches tail = 1
  ring.produce_slot(0) = 2;
  ring.publish(1);
  // The cached view is nonempty, so plain readable() may legitimately
  // still report 1; the refreshing variant must see both.
  EXPECT_EQ(ring.readable_refresh(), 2u);
}

// The producer-side livelock shape: free_slots() only refreshes its cached
// consumer index when the view is COMPLETELY full, so a stale view showing
// 0 < free < need would spin forever on a multi-slot event no matter how
// far the consumer has advanced. free_slots_refresh() must see the drain.
TEST(SpscRing, FreeSlotsRefreshSeesDrainBehindStalePartialView) {
  spsc_ring<int> ring(8);
  for (int i = 0; i < 6; ++i) ring.produce_slot(static_cast<std::size_t>(i)) = i;
  ring.publish(6);
  EXPECT_EQ(ring.free_slots(), 2u);  // view: 2 free, not full, no refresh
  ASSERT_EQ(ring.readable(), 6u);
  ring.pop(6);  // consumer drains everything
  // The lazy view still shows 2 free (it never looked full), which would
  // starve a producer waiting for, say, 4 slots.
  EXPECT_EQ(ring.free_slots(), 2u);
  EXPECT_EQ(ring.free_slots_refresh(), 8u);
  EXPECT_EQ(ring.free_slots(), 8u);  // cache now repaired
}

TEST(SpscRing, TwoThreadStress) {
  // 64-slot ring, 200k items, batched production: the consumer must see
  // every value exactly once, in order.
  spsc_ring<std::uint64_t> ring(64);
  constexpr std::uint64_t kItems = 50000;
  std::atomic<bool> failed{false};
  std::thread consumer([&] {
    std::uint64_t expect = 0;
    while (expect < kItems) {
      const std::size_t n = ring.readable();
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (ring.consume_slot(i) != expect + i) {
          failed.store(true);
          return;
        }
      }
      expect += n;
      ring.pop(n);
    }
  });
  std::uint64_t produced = 0;
  while (produced < kItems) {
    std::size_t batch = ring.free_slots();
    if (batch == 0) {
      std::this_thread::yield();
      continue;
    }
    if (batch > kItems - produced) batch = kItems - produced;
    for (std::size_t i = 0; i < batch; ++i) {
      ring.produce_slot(i) = produced + i;
    }
    ring.publish(batch);
    produced += batch;
  }
  consumer.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace futrace::support
