// Unit tests for futrace::support: small_vector, arena, rng, stats, table,
// flags, ptr_map.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "futrace/support/arena.hpp"
#include "futrace/support/flags.hpp"
#include "futrace/support/ptr_map.hpp"
#include "futrace/support/rng.hpp"
#include "futrace/support/small_vector.hpp"
#include "futrace/support/stats.hpp"
#include "futrace/support/table.hpp"

namespace futrace::support {
namespace {

// ---------------------------------------------------------------- small_vector

TEST(SmallVector, StartsEmptyInline) {
  small_vector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.uses_inline_storage());
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVector, PushWithinInlineCapacity) {
  small_vector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.uses_inline_storage());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(SmallVector, SpillsToHeapAndPreservesContents) {
  small_vector<int, 2> v;
  for (int i = 0; i < 100; ++i) v.push_back(i * 7);
  EXPECT_FALSE(v.uses_inline_storage());
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i * 7);
}

TEST(SmallVector, EraseUnorderedRemovesBySwap) {
  small_vector<int, 4> v{10, 20, 30, 40};
  v.erase_unordered(1);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_FALSE(v.contains(20));
  EXPECT_TRUE(v.contains(10));
  EXPECT_TRUE(v.contains(30));
  EXPECT_TRUE(v.contains(40));
}

TEST(SmallVector, EraseUnorderedLastElement) {
  small_vector<int, 2> v{1, 2, 3};
  v.erase_unordered(2);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_FALSE(v.contains(3));
}

TEST(SmallVector, CopyPreservesIndependence) {
  small_vector<int, 2> a{1, 2, 3};
  small_vector<int, 2> b = a;
  b.push_back(4);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(b.size(), 4u);
  EXPECT_EQ(a, (small_vector<int, 2>{1, 2, 3}));
}

TEST(SmallVector, MoveFromHeapStealsBuffer) {
  small_vector<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  small_vector<int, 2> b = std::move(a);
  EXPECT_EQ(b.size(), 50u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b[49], 49);
}

TEST(SmallVector, MoveFromInlineCopies) {
  small_vector<int, 4> a{1, 2};
  small_vector<int, 4> b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_TRUE(b.uses_inline_storage());
}

TEST(SmallVector, AppendConcatenates) {
  small_vector<int, 2> a{1, 2};
  small_vector<int, 2> b{3, 4, 5};
  a.append(b);
  EXPECT_EQ(a, (small_vector<int, 2>{1, 2, 3, 4, 5}));
}

TEST(SmallVector, ResizeGrowsWithFill) {
  small_vector<int, 2> v;
  v.resize(5, 9);
  EXPECT_EQ(v.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(v[i], 9);
  v.resize(2);
  EXPECT_EQ(v.size(), 2u);
}

// ----------------------------------------------------------------------- arena

TEST(Arena, AllocationsAreAligned) {
  arena a(128);
  for (std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void* p = a.allocate(3, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
        << "align=" << align;
  }
}

TEST(Arena, CreateConstructsObjects) {
  arena a;
  struct point {
    int x, y;
  };
  point* p = a.create<point>(3, 4);
  EXPECT_EQ(p->x, 3);
  EXPECT_EQ(p->y, 4);
}

TEST(Arena, GrowsPastBlockSize) {
  arena a(64);
  std::set<void*> seen;
  for (int i = 0; i < 1000; ++i) {
    void* p = a.allocate(48, 8);
    EXPECT_TRUE(seen.insert(p).second) << "allocation reused while live";
  }
  EXPECT_GE(a.bytes_used(), 48u * 1000);
  EXPECT_GE(a.bytes_reserved(), a.bytes_used());
}

TEST(Arena, OversizedAllocationGetsOwnBlock) {
  arena a(64);
  void* p = a.allocate(4096, 16);
  EXPECT_NE(p, nullptr);
}

TEST(Arena, ResetReleasesAccounting) {
  arena a;
  a.allocate(100, 8);
  a.reset();
  EXPECT_EQ(a.bytes_used(), 0u);
  EXPECT_EQ(a.bytes_reserved(), 0u);
}

// ------------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  xoshiro256 r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  xoshiro256 r(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  xoshiro256 r(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

// ----------------------------------------------------------------------- stats

TEST(RunningStats, MeanMinMax) {
  running_stats s;
  for (double x : {4.0, 8.0, 6.0, 2.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(RunningStats, VarianceMatchesTextbook) {
  running_stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStats, MergeEqualsSequential) {
  running_stats all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(SampleSet, PercentilesInterpolate) {
  sample_set s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 25.0);
  EXPECT_DOUBLE_EQ(s.mean(), 25.0);
}

// ----------------------------------------------------------------------- table

TEST(TextTable, WithCommas) {
  EXPECT_EQ(text_table::with_commas(0), "0");
  EXPECT_EQ(text_table::with_commas(999), "999");
  EXPECT_EQ(text_table::with_commas(1000), "1,000");
  EXPECT_EQ(text_table::with_commas(1150000682ULL), "1,150,000,682");
}

TEST(TextTable, FixedPrecision) {
  EXPECT_EQ(text_table::fixed(9.923, 2), "9.92");
  EXPECT_EQ(text_table::fixed(1.0, 2), "1.00");
}

TEST(TextTable, RendersAlignedRows) {
  text_table t({"Benchmark", "Slowdown"});
  t.add_row({"Jacobi", "8.05"});
  t.add_row({"Smith-Waterman", "9.92"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Benchmark"), std::string::npos);
  EXPECT_NE(out.find("9.92"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

// ----------------------------------------------------------------------- flags

TEST(Flags, DefaultsAndOverrides) {
  flag_parser p;
  p.define("size", "100", "problem size")
      .define("scale", "1.5", "scale factor")
      .define("verify", "false", "run self check");
  const char* argv[] = {"prog", "--size=250", "--verify"};
  p.parse(3, const_cast<char**>(argv));
  EXPECT_EQ(p.get_int("size"), 250);
  EXPECT_DOUBLE_EQ(p.get_double("scale"), 1.5);
  EXPECT_TRUE(p.get_bool("verify"));
}

TEST(Flags, SpaceSeparatedValue) {
  flag_parser p;
  p.define("name", "x", "a name");
  const char* argv[] = {"prog", "--name", "series"};
  p.parse(3, const_cast<char**>(argv));
  EXPECT_EQ(p.get_string("name"), "series");
}

TEST(Flags, PositionalArgumentsCollected) {
  flag_parser p;
  p.define("n", "1", "count");
  const char* argv[] = {"prog", "alpha", "--n=3", "beta"};
  p.parse(4, const_cast<char**>(argv));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "alpha");
  EXPECT_EQ(p.positional()[1], "beta");
}

// --------------------------------------------------------------------- ptr_map

TEST(PtrMap, InsertAndFind) {
  ptr_map<int> m;
  int dummy[4] = {};
  m[&dummy[0]] = 10;
  m[&dummy[2]] = 20;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(&dummy[0]), nullptr);
  EXPECT_EQ(*m.find(&dummy[0]), 10);
  EXPECT_EQ(*m.find(&dummy[2]), 20);
  EXPECT_EQ(m.find(&dummy[1]), nullptr);
}

TEST(PtrMap, OperatorBracketDefaultConstructs) {
  ptr_map<int> m;
  int x = 0;
  EXPECT_EQ(m[&x], 0);
  m[&x] = 7;
  EXPECT_EQ(m[&x], 7);
  EXPECT_EQ(m.size(), 1u);
}

TEST(PtrMap, SurvivesGrowth) {
  ptr_map<std::size_t> m(16);
  std::vector<int> storage(10000);
  for (std::size_t i = 0; i < storage.size(); ++i) m[&storage[i]] = i;
  EXPECT_EQ(m.size(), storage.size());
  for (std::size_t i = 0; i < storage.size(); ++i) {
    ASSERT_NE(m.find(&storage[i]), nullptr);
    EXPECT_EQ(*m.find(&storage[i]), i);
  }
}

TEST(PtrMap, ForEachVisitsEveryEntry) {
  ptr_map<int> m;
  int cells[5] = {};
  for (int i = 0; i < 5; ++i) m[&cells[i]] = i;
  int count = 0, sum = 0;
  m.for_each([&](const void*, int& v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4);
}

TEST(PtrMap, ValueWithHeapStateSurvivesGrowth) {
  ptr_map<std::vector<int>> m(16);
  std::vector<int> keys(300);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    m[&keys[i]].push_back(static_cast<int>(i));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(m[&keys[i]].size(), 1u);
    EXPECT_EQ(m[&keys[i]][0], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace futrace::support
