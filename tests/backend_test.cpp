// Differential tests for the pluggable PRECEDE backends
// (dsr::precede_backend): with --precede-backend in {graph, depa, vc} the
// same program must produce identical verdicts, identical report sequences,
// and identical paper-level counters — a backend is a query-acceleration
// change, never a semantic one. The sweep crosses backends with the
// detector's execution modes (fastpath on, fastpath off, pipelined,
// epoch-compacting) over generated programs in range-heavy and
// promise-bearing shapes, since promise-put continuation splits are exactly
// where a naive label/clock scheme diverges from the paper's graph.
//
// Plus the DePa fork-path label store's own mechanics against hand-derived
// labels: ordinal assignment, prefix queries, varint boundaries, and the
// compaction rebuild.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "futrace/detect/pipeline.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/dsr/depa_labels.hpp"
#include "futrace/dsr/precede_backend.hpp"
#include "futrace/progen/random_program.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/runtime/shared.hpp"

namespace futrace {
namespace {

using detect::pipelined_detector;
using detect::race_detector;

constexpr dsr::backend_kind k_backends[] = {
    dsr::backend_kind::graph, dsr::backend_kind::depa,
    dsr::backend_kind::vector_clock};

// --------------------------------------------------------------- harness

/// Address-free fingerprint of one race report (locations are only
/// comparable when runs share the arrays, which the sweeps arrange too).
struct report_sig {
  detect::race_kind kind;
  task_id first_task;
  task_id second_task;
  std::string first_file;
  std::uint32_t first_line;
  std::string second_file;
  std::uint32_t second_line;

  bool operator==(const report_sig&) const = default;
};

std::vector<report_sig> signatures(const std::vector<detect::race_report>& r) {
  std::vector<report_sig> sigs;
  sigs.reserve(r.size());
  for (const detect::race_report& rep : r) {
    sigs.push_back(report_sig{rep.kind, rep.first_task, rep.second_task,
                              rep.first_site.file, rep.first_site.line,
                              rep.second_site.file, rep.second_site.line});
  }
  return sigs;
}

/// Everything a backend must reproduce bit-identically: the paper counters
/// of Table 2 *plus* the query count (the base class counts it identically
/// by construction — this pins that construction). Engine-tier diagnostics
/// (memo/visit/lsa) legitimately differ per backend and are excluded.
void expect_paper_counters_equal(const detect::detector_counters& a,
                                 const detect::detector_counters& b,
                                 const std::string& label) {
  EXPECT_EQ(a.tasks, b.tasks) << label;
  EXPECT_EQ(a.async_tasks, b.async_tasks) << label;
  EXPECT_EQ(a.future_tasks, b.future_tasks) << label;
  EXPECT_EQ(a.continuation_tasks, b.continuation_tasks) << label;
  EXPECT_EQ(a.promise_puts, b.promise_puts) << label;
  EXPECT_EQ(a.get_operations, b.get_operations) << label;
  EXPECT_EQ(a.non_tree_joins, b.non_tree_joins) << label;
  EXPECT_EQ(a.shared_mem_accesses, b.shared_mem_accesses) << label;
  EXPECT_EQ(a.reads, b.reads) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.locations, b.locations) << label;
  EXPECT_EQ(a.races_observed, b.races_observed) << label;
  EXPECT_EQ(a.racy_locations, b.racy_locations) << label;
  EXPECT_EQ(a.max_readers, b.max_readers) << label;
  EXPECT_DOUBLE_EQ(a.avg_readers, b.avg_readers) << label;
  EXPECT_EQ(a.degraded, b.degraded) << label;
  EXPECT_EQ(a.precede_queries, b.precede_queries) << label;
  EXPECT_EQ(a.epoch_resets, b.epoch_resets) << label;
}

struct run_outcome {
  std::uint64_t races = 0;
  std::vector<const void*> racy_locations;
  std::vector<report_sig> sigs;
  std::vector<const void*> report_locations;
  detect::detector_counters counters;
};

template <typename Body>
run_outcome run_serial(race_detector::options opts, Body&& body) {
  race_detector det(opts);
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run(body);
  run_outcome out;
  out.races = det.race_count();
  out.racy_locations = det.racy_locations();
  out.sigs = signatures(det.reports());
  for (const detect::race_report& r : det.reports()) {
    out.report_locations.push_back(r.location);
  }
  out.counters = det.counters();
  return out;
}

template <typename Body>
run_outcome run_piped(race_detector::options opts, Body&& body) {
  pipelined_detector det(opts);
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run(body);
  run_outcome out;
  out.races = det.race_count();
  out.racy_locations = det.racy_locations();
  out.sigs = signatures(det.reports());
  for (const detect::race_report& r : det.reports()) {
    out.report_locations.push_back(r.location);
  }
  out.counters = det.counters();
  return out;
}

void expect_same_outcome(const run_outcome& a, const run_outcome& b,
                         const std::string& label) {
  EXPECT_EQ(a.races, b.races) << label;
  EXPECT_EQ(a.racy_locations, b.racy_locations) << label;
  EXPECT_EQ(a.sigs, b.sigs) << label;
  EXPECT_EQ(a.report_locations, b.report_locations) << label;
  expect_paper_counters_equal(a.counters, b.counters, label);
}

/// One progen seed under every backend × mode, all compared against the
/// graph backend in the same mode. The program object is reused across runs
/// so racy-location addresses stay comparable.
void sweep_seed(progen::progen_config cfg, const char* shape) {
  progen::random_program prog(cfg);
  auto body = [&prog] { prog(); };

  struct mode {
    const char* name;
    bool fastpath;
    unsigned threads;
    std::size_t epoch_interval;
  };
  const mode modes[] = {
      {"fastpath", true, 0, 0},
      {"no-fastpath", false, 0, 0},
      {"pipelined", true, 2, 0},
      {"epochs", true, 0, 64},
  };

  for (const mode& m : modes) {
    race_detector::options opts;
    opts.enable_fastpath = m.fastpath;
    opts.detect_threads = m.threads;
    opts.epoch_reset_interval = m.epoch_interval;

    opts.precede_backend = dsr::backend_kind::graph;
    const run_outcome reference = m.threads > 0 ? run_piped(opts, body)
                                                : run_serial(opts, body);
    for (const dsr::backend_kind backend :
         {dsr::backend_kind::depa, dsr::backend_kind::vector_clock}) {
      opts.precede_backend = backend;
      const run_outcome candidate = m.threads > 0 ? run_piped(opts, body)
                                                  : run_serial(opts, body);
      const std::string label = std::string(shape) + " seed " +
                                std::to_string(cfg.seed) + " " + m.name +
                                " " + dsr::backend_kind_name(backend) +
                                " vs graph";
      expect_same_outcome(candidate, reference, label);
    }
  }
}

// ------------------------------------------------------ progen seed sweeps

TEST(BackendDifferential, RangeHeavyShapes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    progen::progen_config cfg;
    cfg.seed = seed;
    cfg.w_range_read = 4.0;
    cfg.w_range_write = 3.0;
    cfg.w_get = 2.5;
    cfg.max_range_len = 6;
    sweep_seed(cfg, "range-heavy");
  }
}

TEST(BackendDifferential, PromiseBearingShapes) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    progen::progen_config cfg;
    cfg.seed = seed;
    cfg.w_promise = 2.0;
    cfg.w_put = 2.5;
    cfg.w_promise_get = 2.5;
    cfg.w_future = 2.0;
    cfg.w_get = 2.5;
    sweep_seed(cfg, "promise-bearing");
  }
}

TEST(BackendDifferential, UnsafeHandleFlows) {
  // Racy handle flows degrade the per-location guarantee identically for
  // every backend (the graph is still the one structural oracle), so the
  // differential must hold here too.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    progen::progen_config cfg;
    cfg.seed = seed;
    cfg.safe_handles = false;
    cfg.w_promise = 1.5;
    cfg.w_put = 1.5;
    sweep_seed(cfg, "unsafe-handles");
  }
}

// --------------------------------------------------- memo-after-union pin

/// Satellite regression: the backend-level memo caches positives keyed on
/// the queried vertex and is NOT invalidated by set unions or non-tree edge
/// insertions (reachability to a fixed live b only grows). This program
/// caches a positive, then forces unions (finish joins, future gets), then
/// re-queries — the memoized answer must still match the graph's, and no
/// phantom race may appear.
TEST(BackendMemo, HitsStayCorrectAfterUnions) {
  for (const dsr::backend_kind backend : k_backends) {
    shared_array<int> cells(4, 0);
    race_detector::options opts;
    opts.precede_backend = backend;
    race_detector det(opts);
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run([&] {
      future<void> producer = async_future([&] { cells.write(0, 1); });
      producer.get();
      (void)cells.read(0);  // query producer => main: cached positive
      // Unions: a finish block merges children into the main set, and a
      // second future chain adds a non-tree edge.
      finish([&] {
        async([&] { cells.write(1, 2); });
        async([&] { cells.write(2, 3); });
      });
      future<void> late = async_future([&] { (void)cells.read(0); });
      late.get();
      // Re-query the original producer ordering after all the unions: under
      // fastpath this is a memo hit; either way it must stay "ordered".
      (void)cells.read(0);
      cells.write(0, 4);
    });
    EXPECT_EQ(det.race_count(), 0u)
        << "backend " << dsr::backend_kind_name(backend);
  }
}

TEST(BackendMemo, RacesStillDetectedWithMemoWarm) {
  // The memo only caches positives; a racy pair after a warm positive on
  // the same querying task must still be reported — identically everywhere.
  std::vector<std::uint64_t> races;
  for (const dsr::backend_kind backend : k_backends) {
    shared_array<int> cells(2, 0);
    race_detector::options opts;
    opts.precede_backend = backend;
    race_detector det(opts);
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run([&] {
      future<void> ordered = async_future([&] { cells.write(0, 1); });
      ordered.get();
      (void)cells.read(0);  // warm positive for (ordered => main)
      // Unjoined sibling: its write races with the main task's read.
      async([&] { cells.write(1, 7); });
      (void)cells.read(1);
    });
    races.push_back(det.race_count());
  }
  EXPECT_EQ(races[0], races[1]);
  EXPECT_EQ(races[0], races[2]);
  EXPECT_GT(races[0], 0u);
}

TEST(BackendMemo, CompactionInvalidatesStaleEntries) {
  // Epoch compaction renumbers runtime ids, so cached keys from the prior
  // epoch must not answer for reborn ids. A long root-level chain with a
  // tiny reset interval exercises several compactions under each backend;
  // the verdict and the compaction count must match the graph's.
  run_outcome reference;
  for (const dsr::backend_kind backend : k_backends) {
    shared_array<int> cells(8, 0);
    race_detector::options opts;
    opts.precede_backend = backend;
    opts.epoch_reset_interval = 16;
    race_detector det(opts);
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run([&] {
      for (int round = 0; round < 200; ++round) {
        future<void> f = async_future(
            [&cells, round] { cells.write(round % 8, round); });
        f.get();
        (void)cells.read(round % 8);
      }
    });
    EXPECT_EQ(det.race_count(), 0u)
        << "backend " << dsr::backend_kind_name(backend);
    EXPECT_GT(det.epoch_resets(), 0u)
        << "backend " << dsr::backend_kind_name(backend);
    if (backend == dsr::backend_kind::graph) {
      reference.counters = det.counters();
    } else {
      expect_paper_counters_equal(det.counters(), reference.counters,
                                  dsr::backend_kind_name(backend));
    }
  }
}

// ------------------------------------------- DePa label store unit tests

/// Hand-derived fork-path labels for the canonical spawn tree
/// (DePa's labelling, Appendix-A style): the root is the empty path and the
/// k-th spawn of a task with path P is P·k.
TEST(DepaLabels, HandDerivedPaths) {
  dsr::depa_label_store store;
  store.add_root();        // 0: []
  store.add_child(0);      // 1: [0]
  store.add_child(0);      // 2: [1]
  store.add_child(1);      // 3: [0,0]
  store.add_child(1);      // 4: [0,1]
  store.add_child(3);      // 5: [0,0,0]
  store.add_child(0);      // 6: [2]

  EXPECT_EQ(store.components(0), (std::vector<std::uint32_t>{}));
  EXPECT_EQ(store.components(1), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(store.components(2), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(store.components(3), (std::vector<std::uint32_t>{0, 0}));
  EXPECT_EQ(store.components(4), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(store.components(5), (std::vector<std::uint32_t>{0, 0, 0}));
  EXPECT_EQ(store.components(6), (std::vector<std::uint32_t>{2}));

  EXPECT_EQ(store.depth(0), 0u);
  EXPECT_EQ(store.depth(5), 3u);

  // ancestor-or-self ⟺ byte prefix.
  EXPECT_TRUE(store.is_prefix(0, 5));   // root is everyone's ancestor
  EXPECT_TRUE(store.is_prefix(1, 3));
  EXPECT_TRUE(store.is_prefix(1, 5));
  EXPECT_TRUE(store.is_prefix(3, 5));
  EXPECT_TRUE(store.is_prefix(4, 4));   // self
  EXPECT_FALSE(store.is_prefix(2, 3));  // sibling subtree
  EXPECT_FALSE(store.is_prefix(3, 4));  // siblings
  EXPECT_FALSE(store.is_prefix(5, 3));  // descendant is not an ancestor
  EXPECT_FALSE(store.is_prefix(1, 2));
  EXPECT_FALSE(store.is_prefix(1, 6));
}

TEST(DepaLabels, VarintOrdinalsStayExact) {
  // Ordinal 200 needs two LEB128 bytes; prefix tests must stay exact at
  // the component boundary (no false prefix via a partial varint).
  dsr::depa_label_store store;
  store.add_root();
  for (int i = 0; i < 201; ++i) store.add_child(0);  // children [0]..[200]
  EXPECT_EQ(store.components(201), (std::vector<std::uint32_t>{200}));
  EXPECT_EQ(store.byte_length(201), 2u);
  EXPECT_EQ(store.byte_length(1), 1u);
  store.add_child(201);  // [200, 0]
  EXPECT_EQ(store.components(202), (std::vector<std::uint32_t>{200, 0}));
  EXPECT_TRUE(store.is_prefix(201, 202));
  // [128] shares its first byte with [128+k*128] encodings but must not be
  // a prefix of a different single-component path.
  EXPECT_FALSE(store.is_prefix(129, 130));  // [128] vs [129]
  EXPECT_FALSE(store.is_prefix(2, 202));    // [1] vs [200, 0]
}

TEST(DepaLabels, RebuildKeepsSurvivorsAndOrdinals) {
  dsr::depa_label_store store;
  store.add_root();    // 0: []
  store.add_child(0);  // 1: [0]
  store.add_child(0);  // 2: [1]
  store.add_child(2);  // 3: [1,0]

  // Compact away index 1; survivors {0, 2, 3} land at {0, 1, 2}, plus the
  // tombstone slot.
  store.rebuild({0, 2, 3, dsr::k_invalid_task});
  ASSERT_EQ(store.size(), 4u);
  EXPECT_EQ(store.components(0), (std::vector<std::uint32_t>{}));
  EXPECT_EQ(store.components(1), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(store.components(2), (std::vector<std::uint32_t>{1, 0}));
  EXPECT_TRUE(store.is_prefix(1, 2));
  EXPECT_FALSE(store.is_prefix(2, 1));

  // Ordinal counters survive: the root already spawned 2 children, so its
  // next child is [2], never a collision with the retired [0] or kept [1].
  store.add_child(0);
  EXPECT_EQ(store.components(4), (std::vector<std::uint32_t>{2}));
  // The kept task at new index 1 (old [1]) had one child; its next is
  // [1,1].
  store.add_child(1);
  EXPECT_EQ(store.components(5), (std::vector<std::uint32_t>{1, 1}));
}

}  // namespace
}  // namespace futrace
