// Integration tests for the race detector (Algorithms 1-10) on hand-built
// programs with known race sets, including the paper's running examples.

#include <gtest/gtest.h>

#include <cstdint>
#include <source_location>
#include <string>

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"

namespace futrace::detect {
namespace {

// Runs `program` under a fresh detector and returns the detector.
template <typename Fn>
race_detector detect(Fn&& program) {
  race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run(std::forward<Fn>(program));
  return det;
}

// ------------------------------------------------------------------ race-free

TEST(DetectorRaceFree, SequentialAccesses) {
  auto det = detect([] {
    shared<int> x(0);
    x.write(1);
    (void)x.read();
    x.write(2);
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(DetectorRaceFree, FinishOrdersChildWrites) {
  auto det = detect([] {
    shared<int> x(0);
    finish([&] { async([&] { x.write(1); }); });
    (void)x.read();
    x.write(2);
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(DetectorRaceFree, DisjointLocations) {
  auto det = detect([] {
    shared_array<int> a(8);
    finish([&] {
      for (std::size_t i = 0; i < 8; ++i) {
        async([&a, i] { a.write(i, 1); });
      }
    });
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(DetectorRaceFree, ParallelReadersNeverRace) {
  auto det = detect([] {
    shared<int> x(5);
    finish([&] {
      for (int i = 0; i < 4; ++i) async([&] { (void)x.read(); });
    });
    x.write(1);
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(DetectorRaceFree, FutureGetOrdersProducerConsumer) {
  auto det = detect([] {
    shared<int> x(0);
    auto f = async_future([&] { x.write(10); });
    f.get();
    EXPECT_EQ(x.read(), 10);
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(DetectorRaceFree, SiblingSynchronizedThroughNonTreeJoin) {
  auto det = detect([] {
    shared<int> x(0);
    auto producer = async_future([&] { x.write(1); });
    auto consumer = async_future([&, producer] {
      producer.get();      // non-tree join orders the accesses
      return x.read();
    });
    (void)consumer.get();
  });
  EXPECT_FALSE(det.race_detected());
  EXPECT_EQ(det.counters().non_tree_joins, 1u);
}

// The Figure 1 transitive-join pattern: main never joins B directly, but
// C.get() makes B's effects visible at Stmt10.
TEST(DetectorRaceFree, Figure1TransitiveJoin) {
  auto det = detect([] {
    shared<int> data(0);
    auto a = async_future([&] { return 1; });
    auto b = async_future([&, a] {
      (void)a.get();
      data.write(42);  // Stmt4-ish side effect
      return 2;
    });
    auto c = async_future([&, a, b] {
      (void)a.get();
      (void)b.get();
      return 3;
    });
    (void)a.get();
    (void)c.get();
    EXPECT_EQ(data.read(), 42);  // Stmt10: ordered after B through C
  });
  EXPECT_FALSE(det.race_detected());
  EXPECT_EQ(det.counters().non_tree_joins, 3u);
}

TEST(DetectorRaceFree, WavefrontPipeline) {
  // 1-D pipeline: cell i depends on cell i-1 through future joins.
  auto det = detect([] {
    constexpr std::size_t n = 16;
    shared_array<int> cells(n, 0);
    std::vector<future<void>> done(n);
    for (std::size_t i = 0; i < n; ++i) {
      future<void> prev = i > 0 ? done[i - 1] : future<void>{};
      done[i] = async_future([&cells, i, prev] {
        if (i > 0) {
          prev.get();
          cells.write(i, cells.read(i - 1) + 1);
        } else {
          cells.write(0, 1);
        }
      });
    }
    done[n - 1].get();
    EXPECT_EQ(cells.read(n - 1), static_cast<int>(n));
  });
  EXPECT_FALSE(det.race_detected());
  EXPECT_GE(det.counters().non_tree_joins, 14u);
}

// ----------------------------------------------------------------------- racy

TEST(DetectorRacy, AsyncWriteRacesParentRead) {
  auto det = detect([] {
    shared<int> x(0);
    async([&] { x.write(1); });
    (void)x.read();  // no join between the write and this read
  });
  EXPECT_TRUE(det.race_detected());
  ASSERT_FALSE(det.reports().empty());
  EXPECT_EQ(det.reports()[0].kind, race_kind::write_read);
}

TEST(DetectorRacy, TwoAsyncWritesRace) {
  auto det = detect([] {
    shared<int> x(0);
    async([&] { x.write(1); });
    async([&] { x.write(2); });
  });
  EXPECT_TRUE(det.race_detected());
  ASSERT_FALSE(det.reports().empty());
  EXPECT_EQ(det.reports()[0].kind, race_kind::write_write);
}

TEST(DetectorRacy, ReadThenParallelWrite) {
  auto det = detect([] {
    shared<int> x(0);
    async([&] { (void)x.read(); });
    async([&] { x.write(1); });
  });
  EXPECT_TRUE(det.race_detected());
  ASSERT_FALSE(det.reports().empty());
  EXPECT_EQ(det.reports()[0].kind, race_kind::read_write);
}

TEST(DetectorRacy, FutureWithoutGetRacesWithParent) {
  auto det = detect([] {
    shared<int> x(0);
    auto f = async_future([&] { x.write(1); });
    x.write(2);  // did not get() first
    f.get();
  });
  EXPECT_TRUE(det.race_detected());
}

TEST(DetectorRacy, OnlyOneOfTwoSiblingsJoined) {
  auto det = detect([] {
    shared<int> x(0);
    auto a = async_future([&] { x.write(1); });
    auto b = async_future([&] { x.write(2); });
    (void)a;
    b.get();
    (void)x.read();  // a is still unjoined: the read races with a's write
  });
  EXPECT_TRUE(det.race_detected());
}

TEST(DetectorRacy, RacyLocationIdentifiedPrecisely) {
  const void* racy_addr = nullptr;
  auto det = detect([&] {
    shared<int> safe(0);
    shared<int> racy(0);
    racy_addr = racy.address();
    finish([&] { async([&] { safe.write(1); }); });
    async([&] { racy.write(1); });
    racy.write(2);
  });
  const auto locations = det.racy_locations();
  ASSERT_EQ(locations.size(), 1u);
  EXPECT_EQ(locations[0], racy_addr);
}

TEST(DetectorRacy, RaceInsideNestedFinishStillDetected) {
  auto det = detect([] {
    shared<int> x(0);
    finish([&] {
      async([&] { x.write(1); });
      async([&] { x.write(2); });  // parallel with the first inside finish
    });
  });
  EXPECT_TRUE(det.race_detected());
}

TEST(DetectorRacy, WriteAfterFinishIsSafeButSiblingPairRaces) {
  auto det = detect([] {
    shared<int> x(0);
    finish([&] {
      async([&] { x.write(1); });
      async([&] { (void)x.read(); });
    });
    x.write(3);  // ordered by the finish: safe
  });
  // Exactly the read/write sibling pair inside the finish races.
  EXPECT_TRUE(det.race_detected());
  for (const auto& r : det.reports()) {
    EXPECT_NE(r.kind, race_kind::write_write);
  }
}

// Lemma 4 coverage: with multiple parallel async readers only one is stored,
// yet a later conflicting write is still caught.
TEST(DetectorRacy, AsyncReaderCoverageStillCatchesWriter) {
  auto det = detect([] {
    shared<int> x(0);
    finish([&] {
      for (int i = 0; i < 3; ++i) async([&] { (void)x.read(); });
    });
    async([&] { (void)x.read(); });  // reader parallel with next write
    x.write(1);
  });
  EXPECT_TRUE(det.race_detected());
  EXPECT_LE(det.counters().max_readers, 2u)
      << "async readers must be covered, not accumulated";
}

// Multiple future readers must all be retained (no coverage across futures):
// each one can be joined individually later.
TEST(DetectorRacy, FutureReadersAreAllTracked) {
  auto det = detect([] {
    shared<int> x(0);
    auto a = async_future([&] { return x.read(); });
    auto b = async_future([&] { return x.read(); });
    auto c = async_future([&] { return x.read(); });
    (void)a.get();
    (void)b.get();
    (void)c;  // c not joined: write below races with c's read only
    x.write(1);
  });
  EXPECT_TRUE(det.race_detected());
  EXPECT_EQ(det.race_count(), 1u)
      << "a and b were joined; only c's read races with the write";
  EXPECT_EQ(det.counters().max_readers, 3u);
}

// ------------------------------------------------------------------- counters

TEST(DetectorCounters, TasksAndKinds) {
  auto det = detect([] {
    async([] {});
    auto f = async_future([] { return 1; });
    (void)f.get();
    finish([] { async([] {}); });
  });
  const auto c = det.counters();
  EXPECT_EQ(c.tasks, 3u);
  EXPECT_EQ(c.async_tasks, 2u);
  EXPECT_EQ(c.future_tasks, 1u);
  EXPECT_EQ(c.get_operations, 1u);
  EXPECT_EQ(c.non_tree_joins, 0u);
}

TEST(DetectorCounters, SharedMemCountsEveryAccess) {
  auto det = detect([] {
    shared_array<int> a(4);
    for (std::size_t i = 0; i < 4; ++i) a.write(i, 1);
    int total = 0;
    for (std::size_t i = 0; i < 4; ++i) total += a.read(i);
    EXPECT_EQ(total, 4);
  });
  const auto c = det.counters();
  EXPECT_EQ(c.shared_mem_accesses, 8u);
  EXPECT_EQ(c.reads, 4u);
  EXPECT_EQ(c.writes, 4u);
  EXPECT_EQ(c.locations, 4u);
}

TEST(DetectorCounters, AvgReadersZeroForWriteOnly) {
  auto det = detect([] {
    shared<int> x(0);
    for (int i = 0; i < 10; ++i) x.write(i);
  });
  EXPECT_DOUBLE_EQ(det.counters().avg_readers, 0.0);
}

TEST(DetectorCounters, AvgReadersBoundedForAsyncFinish) {
  // For async-finish programs the stored-reader count is 0 or 1 (paper §5).
  auto det = detect([] {
    shared<int> x(0);
    x.write(1);
    finish([&] {
      for (int i = 0; i < 6; ++i) async([&] { (void)x.read(); });
    });
    x.write(2);
    finish([&] {
      for (int i = 0; i < 6; ++i) async([&] { (void)x.read(); });
    });
  });
  EXPECT_FALSE(det.race_detected());
  EXPECT_LE(det.counters().max_readers, 1u);
  EXPECT_LE(det.counters().avg_readers, 1.0);
}

// -------------------------------------------------------------------- reports

TEST(DetectorReports, CarrySourceLocations) {
  auto det = detect([] {
    shared<int> x(0);
    async([&] { x.write(1); });
    x.write(2);
  });
  ASSERT_FALSE(det.reports().empty());
  const auto& r = det.reports()[0];
  EXPECT_EQ(r.first_task, 1u);
  EXPECT_EQ(r.second_task, 0u);
  EXPECT_NE(std::string(r.first_site.file).find("detector_test"),
            std::string::npos);
  EXPECT_GT(r.first_site.line, 0u);
  const std::string text = r.to_string();
  EXPECT_NE(text.find("write-write"), std::string::npos);
}

TEST(DetectorReports, FailFastThrowsOnFirstRace) {
  race_detector det({.max_reports = 64, .fail_fast = true});
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  bool caught = false;
  try {
    rt.run([] {
      shared<int> x(0);
      async([&] { x.write(1); });
      x.write(2);           // first race: thrown here
      x.write(3);           // never reached
    });
  } catch (const race_found_error& e) {
    caught = true;
    EXPECT_EQ(e.report().kind, race_kind::write_write);
    EXPECT_NE(std::string(e.what()).find("write-write"), std::string::npos);
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(det.race_count(), 1u);
}

TEST(DetectorReports, FailFastQuietOnRaceFreeProgram) {
  race_detector det({.max_reports = 64, .fail_fast = true});
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([] {
    shared<int> x(0);
    finish([&] { async([&] { x.write(1); }); });
    EXPECT_EQ(x.read(), 1);
  });
  EXPECT_FALSE(det.race_detected());
}

TEST(DetectorReports, CapRespectedButCountingContinues) {
  race_detector det({.max_reports = 4});
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([] {
    shared_array<int> a(16);
    for (std::size_t i = 0; i < 16; ++i) {
      async([&a, i] { a.write(i, 1); });
      async([&a, i] { a.write(i, 2); });
    }
  });
  EXPECT_EQ(det.reports().size(), 4u);
  EXPECT_EQ(det.race_count(), 16u);
  EXPECT_EQ(det.racy_locations().size(), 16u);
}

// A racy loop hitting the same (site pair, location, kind) used to emit one
// report per iteration, exhausting max_reports with 64 copies of the same
// line and silencing every later distinct race. Now duplicates fold into
// the first report's occurrence counter.
TEST(DetectorReports, DuplicateRacesFoldIntoOneReport) {
  race_detector det({.max_reports = 64});
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  shared<int> x(0);
  shared<int> y(0);
  rt.run([&] {
    for (int i = 0; i < 100; ++i) {
      async([&x] { x.write(1); });  // every iteration: same sites, same cell
    }
    async([&y] { y.write(1); });
    (void)y.read();  // distinct race, after 99 duplicates
  });
  // 99 write-write occurrences of the x race (each new writer against the
  // previous one), all folded; the y write-read race still gets its report.
  ASSERT_EQ(det.reports().size(), 2u);
  EXPECT_EQ(det.reports()[0].occurrences, 99u);
  EXPECT_EQ(det.reports()[1].occurrences, 1u);
  EXPECT_EQ(det.reports()[1].kind, race_kind::write_read);
  // The fold is presentation-only: observed-race and racy-location counts
  // still see every occurrence.
  EXPECT_EQ(det.race_count(), 100u);
  const std::string text = det.reports()[0].to_string();
  EXPECT_NE(text.find("seen 99x"), std::string::npos) << text;
  EXPECT_EQ(det.reports()[1].to_string().find("seen"), std::string::npos);
}

TEST(DetectorReports, DuplicatesOfCappedOutReportsStayFolded) {
  // First fill the report table with distinct races, then race repeatedly
  // on one more location: its first occurrence is dropped by the cap, and
  // the duplicates must keep being recognized (not re-tried) each round.
  race_detector det({.max_reports = 2});
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([] {
    shared_array<int> a(3);
    for (std::size_t i = 0; i < 3; ++i) {
      async([&a, i] { a.write(i, 1); });
      async([&a, i] { a.write(i, 2); });
    }
    for (int r = 0; r < 5; ++r) {
      async([&a] { a.write(2, 9); });  // duplicates of the capped-out race
    }
  });
  EXPECT_EQ(det.reports().size(), 2u);
  EXPECT_GE(det.race_count(), 8u);
}

TEST(DetectorReports, SubElementAccessReportsTouchedAddress) {
  // A 4-byte access at offset 3 of an 8-byte element straddles no element
  // boundary but is unaligned, so span_of canonicalizes it to the element
  // base. The report must carry both: the canonical cell (stable location
  // identity) and the address the program actually touched.
  race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  shared_array<std::uint64_t> a(4);
  const void* canonical = a.address(1);
  const void* touched = static_cast<const char*>(canonical) + 3;
  rt.run([&] {
    async([&] {
      futrace::detail::instrument_write(touched, 4,
                                        std::source_location::current());
    });
    futrace::detail::instrument_write(touched, 4,
                                      std::source_location::current());
  });
  ASSERT_EQ(det.reports().size(), 1u);
  const race_report& r = det.reports()[0];
  EXPECT_EQ(r.location, canonical);
  EXPECT_EQ(r.user_location, touched);
  const std::string text = r.to_string();
  EXPECT_NE(text.find("touched"), std::string::npos) << text;

  // Element-base accesses have nothing extra to say: no "touched" clause.
  race_detector det2;
  runtime rt2({.mode = exec_mode::serial_dfs});
  rt2.add_observer(&det2);
  shared<int> x(0);
  rt2.run([&] {
    async([&x] { x.write(1); });
    x.write(2);
  });
  ASSERT_EQ(det2.reports().size(), 1u);
  EXPECT_EQ(det2.reports()[0].location, det2.reports()[0].user_location);
  EXPECT_EQ(det2.reports()[0].to_string().find("touched"), std::string::npos);
}

// ------------------------------------------------------------------ witness

TEST(DetectorWitness, CarriesLabelsFrontierAndTier) {
  race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  shared<int> x(0);
  rt.run([&] {
    async([&x] { x.write(1); });  // task 1
    x.write(2);                   // root, while task 1 is unjoined
  });
  ASSERT_EQ(det.reports().size(), 1u);
  const race_witness& w = det.reports()[0].witness;
  ASSERT_TRUE(w.valid);
  // Serial DFS ran task 1 to completion before the root's write: its
  // interval is final; the root is still live (temporary postorder).
  EXPECT_TRUE(w.first_terminated);
  EXPECT_FALSE(w.second_terminated);
  EXPECT_NE(w.first_label.pre, w.second_label.pre);
  // The DSR proves non-ordering from the labels alone here: no non-tree
  // predecessor frontier was searched.
  EXPECT_TRUE(w.frontier.empty());
  EXPECT_EQ(w.lsa_hops, 0u);
  EXPECT_STRNE(w.tier, "");
  const std::string text = det.reports()[0].to_string();
  EXPECT_NE(text.find("||"), std::string::npos) << text;
  EXPECT_NE(text.find(w.tier), std::string::npos) << text;
}

TEST(DetectorWitness, FrontierListsSearchedPredecessors) {
  // The racy task has a non-tree predecessor (a get of an unrelated
  // future), so the failed PRECEDE query had to search its predecessor
  // frontier before declaring the accesses unordered — and the witness
  // must show what was searched.
  race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  shared<int> x(0);
  rt.run([&] {
    auto writer = async_future([&x] { x.write(1); });  // task 1, never joined
    auto other = async_future([] { return 7; });       // task 2
    async([&x, other] {
      (void)other.get();  // non-tree pred of task 3: task 2, not task 1
      x.write(2);         // races with task 1's write
    });
    (void)writer;
  });
  ASSERT_EQ(det.reports().size(), 1u);
  const race_witness& w = det.reports()[0].witness;
  ASSERT_TRUE(w.valid);
  EXPECT_TRUE(w.first_terminated);     // task 1 completed at spawn (DFS)
  EXPECT_FALSE(w.second_terminated);   // task 3 is mid-write
  EXPECT_FALSE(w.frontier.empty());    // task 2's label was searched
  const std::string text = det.reports()[0].to_string();
  EXPECT_NE(text.find("frontier"), std::string::npos) << text;
}

}  // namespace
}  // namespace futrace::detect
