// Tests for the Table 2 workload kernels: each must self-verify in every
// execution mode and be race-free under the detector, and the IDEA cipher
// gets its own algebraic checks.

#include <gtest/gtest.h>

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/rng.hpp"
#include "futrace/workloads/workloads.hpp"

namespace futrace::workloads {
namespace {

// ------------------------------------------------------------------------ IDEA

TEST(Idea, MulMatchesGroupDefinition) {
  // a ⊙ b with 0 ≡ 2^16 in Z*_65537.
  auto reference = [](std::uint32_t a, std::uint32_t b) {
    const std::uint64_t aa = a == 0 ? 0x10000 : a;
    const std::uint64_t bb = b == 0 ? 0x10000 : b;
    const std::uint64_t r = (aa * bb) % 0x10001;
    return static_cast<std::uint16_t>(r == 0x10000 ? 0 : r);
  };
  support::xoshiro256 rng(9);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint16_t>(rng() & 0xFFFF);
    const auto b = static_cast<std::uint16_t>(rng() & 0xFFFF);
    ASSERT_EQ(idea_mul(a, b), reference(a, b)) << a << " * " << b;
  }
  EXPECT_EQ(idea_mul(0, 0), reference(0, 0));
  EXPECT_EQ(idea_mul(0, 1), reference(0, 1));
  EXPECT_EQ(idea_mul(1, 0), reference(1, 0));
}

TEST(Idea, MulInverse) {
  support::xoshiro256 rng(10);
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<std::uint16_t>(rng() & 0xFFFF);
    EXPECT_EQ(idea_mul(x, idea_mul_inv(x)), 1u) << "x=" << x;
  }
  EXPECT_EQ(idea_mul(0, idea_mul_inv(0)), 1u);  // 0 encodes 2^16 ≡ -1
}

TEST(Idea, BlockRoundTrip) {
  support::xoshiro256 rng(11);
  idea_key key{};
  for (auto& b : key) b = static_cast<std::uint8_t>(rng() & 0xFF);
  const idea_subkeys enc = idea_encrypt_subkeys(key);
  const idea_subkeys dec = idea_decrypt_subkeys(enc);

  for (int trial = 0; trial < 500; ++trial) {
    std::uint8_t plain[8], cipher[8], back[8];
    for (auto& b : plain) b = static_cast<std::uint8_t>(rng() & 0xFF);
    idea_crypt_block(plain, cipher, enc);
    idea_crypt_block(cipher, back, dec);
    for (int i = 0; i < 8; ++i) ASSERT_EQ(back[i], plain[i]);
    bool differs = false;
    for (int i = 0; i < 8; ++i) differs |= cipher[i] != plain[i];
    EXPECT_TRUE(differs);
  }
}

TEST(Idea, CanonicalPublishedTestVector) {
  // The classic IDEA reference vector: key 0001 0002 ... 0008, plaintext
  // 0000 0001 0002 0003 encrypts to 11FB ED2B 0198 6DE5.
  idea_key key{};
  for (int i = 0; i < 8; ++i) {
    key[2 * i] = 0;
    key[2 * i + 1] = static_cast<std::uint8_t>(i + 1);
  }
  const std::uint8_t plain[8] = {0, 0, 0, 1, 0, 2, 0, 3};
  const std::uint8_t expected[8] = {0x11, 0xFB, 0xED, 0x2B,
                                    0x01, 0x98, 0x6D, 0xE5};
  std::uint8_t cipher[8];
  idea_crypt_block(plain, cipher, idea_encrypt_subkeys(key));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(cipher[i], expected[i]) << i;
  std::uint8_t back[8];
  idea_crypt_block(cipher, back,
                   idea_decrypt_subkeys(idea_encrypt_subkeys(key)));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(back[i], plain[i]) << i;
}

TEST(Idea, KeyScheduleFirstBatchIsUserKey) {
  idea_key key{};
  for (int i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i + 1);
  const idea_subkeys enc = idea_encrypt_subkeys(key);
  EXPECT_EQ(enc[0], 0x0102);
  EXPECT_EQ(enc[7], 0x0F10);
}

// --------------------------------------------------------------- mode matrix

struct mode_case {
  const char* name;
  runtime_config config;
};

const mode_case k_modes[] = {
    {"elision", {.mode = exec_mode::serial_elision}},
    {"serial", {.mode = exec_mode::serial_dfs}},
    {"parallel", {.mode = exec_mode::parallel, .workers = 3}},
};

class WorkloadModes : public ::testing::TestWithParam<int> {
 protected:
  const mode_case& mode() const { return k_modes[GetParam()]; }
};

TEST_P(WorkloadModes, SeriesAsyncFinish) {
  series_workload w({.coefficients = 60, .integration_points = 50});
  runtime rt(mode().config);
  rt.run([&] { w(); });
  EXPECT_TRUE(w.verify()) << mode().name;
}

TEST_P(WorkloadModes, SeriesFutures) {
  series_workload w({.coefficients = 60,
                     .integration_points = 50,
                     .use_futures = true});
  runtime rt(mode().config);
  rt.run([&] { w(); });
  EXPECT_TRUE(w.verify()) << mode().name;
}

TEST_P(WorkloadModes, CryptAsyncFinish) {
  crypt_workload w({.bytes = 4096});
  runtime rt(mode().config);
  rt.run([&] { w(); });
  EXPECT_TRUE(w.verify()) << mode().name;
}

TEST_P(WorkloadModes, CryptFutures) {
  crypt_workload w({.bytes = 4096, .use_futures = true});
  runtime rt(mode().config);
  rt.run([&] { w(); });
  EXPECT_TRUE(w.verify()) << mode().name;
}

TEST_P(WorkloadModes, Jacobi) {
  jacobi_workload w({.n = 34, .tile = 8, .iterations = 4});
  runtime rt(mode().config);
  rt.run([&] { w(); });
  EXPECT_TRUE(w.verify()) << mode().name;
}

TEST_P(WorkloadModes, SmithWaterman) {
  sw_workload w({.rows = 64, .cols = 48, .tile = 16});
  runtime rt(mode().config);
  rt.run([&] { w(); });
  EXPECT_TRUE(w.verify()) << mode().name;
  EXPECT_GT(w.best_score(), 0);
}

TEST_P(WorkloadModes, Strassen) {
  strassen_workload w({.n = 32, .cutoff = 8});
  runtime rt(mode().config);
  rt.run([&] { w(); });
  EXPECT_TRUE(w.verify()) << mode().name;
}

INSTANTIATE_TEST_SUITE_P(AllModes, WorkloadModes, ::testing::Range(0, 3),
                         [](const auto& info) {
                           return k_modes[info.param].name;
                         });

// Cross-mode determinism: race-free workloads must compute bit-identical
// results in every execution mode (the determinacy property of Appendix A).
TEST(WorkloadDeterminism, SeriesChecksumIdenticalAcrossModes) {
  double checksums[3];
  int idx = 0;
  for (const auto& mode : k_modes) {
    series_workload w({.coefficients = 50, .integration_points = 40,
                       .use_futures = true});
    runtime rt(mode.config);
    rt.run([&] { w(); });
    checksums[idx++] = w.checksum();
  }
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(checksums[1], checksums[2]);
}

TEST(WorkloadDeterminism, JacobiChecksumIdenticalAcrossModes) {
  double checksums[3];
  int idx = 0;
  for (const auto& mode : k_modes) {
    jacobi_workload w({.n = 26, .tile = 8, .iterations = 3});
    runtime rt(mode.config);
    rt.run([&] { w(); });
    checksums[idx++] = w.checksum();
  }
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(checksums[1], checksums[2]);
}

// ------------------------------------------------------ detector integration

template <typename Workload>
detect::race_detector detect_on(Workload& w) {
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([&] { w(); });
  return det;
}

TEST(WorkloadRaceFreedom, SeriesAfHasNoRacesAndNoNtJoins) {
  series_workload w({.coefficients = 40, .integration_points = 30});
  auto det = detect_on(w);
  EXPECT_TRUE(w.verify());
  EXPECT_FALSE(det.race_detected());
  EXPECT_EQ(det.counters().non_tree_joins, 0u);
  EXPECT_EQ(det.counters().tasks, 40u);
}

TEST(WorkloadRaceFreedom, SeriesFutureTreeJoinsOnly) {
  series_workload w(
      {.coefficients = 40, .integration_points = 30, .use_futures = true});
  auto det = detect_on(w);
  EXPECT_FALSE(det.race_detected());
  // Handles joined by the parent: all gets are tree joins (paper §5).
  EXPECT_EQ(det.counters().non_tree_joins, 0u);
  EXPECT_EQ(det.counters().future_tasks, 40u);
}

TEST(WorkloadRaceFreedom, SeriesFutureHasExtraHandleAccesses) {
  series_workload af({.coefficients = 40, .integration_points = 30});
  series_workload fut(
      {.coefficients = 40, .integration_points = 30, .use_futures = true});
  auto det_af = detect_on(af);
  auto det_fut = detect_on(fut);
  // The future variant adds ≥ 2 shared accesses per task: the handle write
  // at creation and the handle read at the join (paper §5's lower bound).
  EXPECT_GE(det_fut.counters().shared_mem_accesses,
            det_af.counters().shared_mem_accesses + 2 * 40);
}

TEST(WorkloadRaceFreedom, CryptBothVariants) {
  crypt_workload af({.bytes = 2048});
  crypt_workload fut({.bytes = 2048, .use_futures = true});
  auto det_af = detect_on(af);
  auto det_fut = detect_on(fut);
  EXPECT_FALSE(det_af.race_detected());
  EXPECT_FALSE(det_fut.race_detected());
  EXPECT_EQ(det_af.counters().non_tree_joins, 0u);
  EXPECT_EQ(det_fut.counters().non_tree_joins, 0u);
  EXPECT_EQ(det_af.counters().tasks, 2u * 2048 / 8);
}

TEST(WorkloadRaceFreedom, JacobiUsesNonTreeJoins) {
  jacobi_workload w({.n = 34, .tile = 8, .iterations = 4});
  auto det = detect_on(w);
  EXPECT_TRUE(w.verify());
  EXPECT_FALSE(det.race_detected());
  // Iterations ≥ 2 join sibling futures: non-tree joins appear.
  EXPECT_GT(det.counters().non_tree_joins, 0u);
  EXPECT_EQ(det.counters().tasks, 16u * 4);
}

TEST(WorkloadRaceFreedom, SmithWatermanWavefront) {
  sw_workload w({.rows = 64, .cols = 64, .tile = 16});
  auto det = detect_on(w);
  EXPECT_TRUE(w.verify());
  EXPECT_FALSE(det.race_detected());
  // 4×4 tiles; every tile except row 0 / column 0 joins its neighbours.
  EXPECT_GT(det.counters().non_tree_joins, 0u);
  EXPECT_GT(det.counters().avg_readers, 0.0);
}

TEST(WorkloadRaceFreedom, StrassenFuturesAndCombiners) {
  strassen_workload w({.n = 32, .cutoff = 8});
  auto det = detect_on(w);
  EXPECT_TRUE(w.verify());
  EXPECT_FALSE(det.race_detected());
  EXPECT_GT(det.counters().non_tree_joins, 0u);
  EXPECT_GT(det.counters().future_tasks, 0u);
}

// ----------------------------------------------------- parameter sweeps
// Odd sizes and non-divisible tiles exercise the boundary arithmetic in
// every kernel; each configuration must still self-verify race-free.

class JacobiSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(JacobiSweep, VerifiesRaceFree) {
  const auto [n, tile, iters] = GetParam();
  jacobi_workload w({.n = static_cast<std::size_t>(n),
                     .tile = static_cast<std::size_t>(tile),
                     .iterations = iters});
  auto det = detect_on(w);
  EXPECT_TRUE(w.verify()) << "n=" << n << " tile=" << tile;
  EXPECT_FALSE(det.race_detected()) << "n=" << n << " tile=" << tile;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, JacobiSweep,
    ::testing::Values(std::tuple{6, 1, 2},     // tiny, 1-cell tiles
                      std::tuple{18, 16, 3},   // interior equals tile
                      std::tuple{19, 8, 3},    // non-divisible interior
                      std::tuple{35, 8, 5},    // ragged last tile
                      std::tuple{34, 32, 1},   // single iteration
                      std::tuple{50, 7, 4}));  // odd everything

class SwSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SwSweep, VerifiesRaceFree) {
  const auto [rows, cols, tile] = GetParam();
  sw_workload w({.rows = static_cast<std::size_t>(rows),
                 .cols = static_cast<std::size_t>(cols),
                 .tile = static_cast<std::size_t>(tile)});
  auto det = detect_on(w);
  EXPECT_TRUE(w.verify()) << rows << "x" << cols << "/" << tile;
  EXPECT_FALSE(det.race_detected()) << rows << "x" << cols << "/" << tile;
}

INSTANTIATE_TEST_SUITE_P(Grid, SwSweep,
                         ::testing::Values(std::tuple{1, 1, 1},
                                           std::tuple{37, 23, 10},
                                           std::tuple{10, 64, 16},
                                           std::tuple{64, 10, 16},
                                           std::tuple{33, 33, 33},
                                           std::tuple{40, 40, 64}));

class CryptSweep : public ::testing::TestWithParam<std::tuple<int, int, bool>> {
};

TEST_P(CryptSweep, VerifiesRaceFree) {
  const auto [bytes, blocks_per_task, use_futures] = GetParam();
  crypt_workload w({.bytes = static_cast<std::size_t>(bytes),
                    .blocks_per_task =
                        static_cast<std::size_t>(blocks_per_task),
                    .use_futures = use_futures});
  auto det = detect_on(w);
  EXPECT_TRUE(w.verify());
  EXPECT_FALSE(det.race_detected());
}

INSTANTIATE_TEST_SUITE_P(Grid, CryptSweep,
                         ::testing::Values(std::tuple{8, 1, false},
                                           std::tuple{100, 3, false},
                                           std::tuple{1024, 7, true},
                                           std::tuple{777, 2, true}));

class StrassenSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StrassenSweep, VerifiesRaceFree) {
  const auto [n, cutoff] = GetParam();
  strassen_workload w({.n = static_cast<std::size_t>(n),
                       .cutoff = static_cast<std::size_t>(cutoff)});
  auto det = detect_on(w);
  EXPECT_TRUE(w.verify()) << n << "/" << cutoff;
  EXPECT_FALSE(det.race_detected()) << n << "/" << cutoff;
}

INSTANTIATE_TEST_SUITE_P(Grid, StrassenSweep,
                         ::testing::Values(std::tuple{4, 2},
                                           std::tuple{16, 2},
                                           std::tuple{16, 16},
                                           std::tuple{64, 16}));

// A deliberately broken Jacobi (missing neighbour dependencies) must be
// caught: this guards against the workload accidentally serializing so much
// that the detector has nothing to check.
TEST(WorkloadRaceDetection, JacobiWithDroppedDependencyRaces) {
  jacobi_workload good({.n = 34, .tile = 8, .iterations = 4});
  auto det = detect_on(good);
  EXPECT_FALSE(det.race_detected());

  // Hand-rolled bad variant: tiles at iteration k only wait for their own
  // tile at k-1, not the neighbours whose halo rows they read.
  detect::race_detector bad_det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&bad_det);
  rt.run([&] {
    constexpr std::size_t n = 18;
    constexpr std::size_t tile = 8;
    constexpr std::size_t tiles = 2;
    shared_array<double> grid[2]{shared_array<double>(n * n, 1.0),
                                 shared_array<double>(n * n, 1.0)};
    std::vector<std::vector<future<void>>> done(
        2, std::vector<future<void>>(tiles * tiles));
    for (int k = 1; k <= 3; ++k) {
      auto& src = grid[(k - 1) % 2];
      auto& dst = grid[k % 2];
      for (std::size_t tr = 0; tr < tiles; ++tr) {
        for (std::size_t tc = 0; tc < tiles; ++tc) {
          future<void> self_dep =
              k >= 2 ? done[(k - 1) % 2][tr * tiles + tc] : future<void>{};
          const std::size_t r0 = 1 + tr * tile;
          const std::size_t r1 = std::min(r0 + tile, n - 1);
          const std::size_t c0 = 1 + tc * tile;
          const std::size_t c1 = std::min(c0 + tile, n - 1);
          done[k % 2][tr * tiles + tc] =
              async_future([&src, &dst, self_dep, r0, r1, c0, c1] {
                if (self_dep.valid()) self_dep.get();
                for (std::size_t r = r0; r < r1; ++r) {
                  for (std::size_t c = c0; c < c1; ++c) {
                    dst.write(r * n + c,
                              0.25 * (src.read((r - 1) * n + c) +
                                      src.read((r + 1) * n + c) +
                                      src.read(r * n + c - 1) +
                                      src.read(r * n + c + 1)));
                  }
                }
              });
        }
      }
    }
    for (auto& f : done[3 % 2]) f.get();
    for (auto& f : done[0]) {
      if (f.valid()) f.get();
    }
  });
  EXPECT_TRUE(bad_det.race_detected())
      << "dropping neighbour dependencies must produce detectable races";
}

}  // namespace
}  // namespace futrace::workloads
