// Unit tests for the shadow-memory layer: cell mechanics (inline reader +
// overflow), counters, and the site table.

#include <gtest/gtest.h>

#include <vector>

#include "futrace/detect/shadow_memory.hpp"

namespace futrace::detect {
namespace {

// ----------------------------------------------------------------- shadow_cell

TEST(ShadowCell, StartsEmpty) {
  shadow_cell cell;
  EXPECT_EQ(cell.writer, k_invalid_task);
  EXPECT_EQ(cell.reader_count(), 0u);
  EXPECT_EQ(cell.overflow, nullptr);
}

TEST(ShadowCell, SingleReaderStaysInline) {
  shadow_cell cell;
  cell.add_reader(reader_entry{7, 1});
  EXPECT_EQ(cell.reader_count(), 1u);
  EXPECT_EQ(cell.reader_at(0).task, 7u);
  EXPECT_EQ(cell.overflow, nullptr);
}

TEST(ShadowCell, OverflowHoldsAdditionalReaders) {
  shadow_cell cell;
  for (task_id t = 1; t <= 5; ++t) cell.add_reader(reader_entry{t, 0});
  EXPECT_EQ(cell.reader_count(), 5u);
  ASSERT_NE(cell.overflow, nullptr);
  std::vector<bool> seen(6, false);
  for (std::size_t i = 0; i < cell.reader_count(); ++i) {
    seen[cell.reader_at(i).task] = true;
  }
  for (task_id t = 1; t <= 5; ++t) EXPECT_TRUE(seen[t]) << t;
  delete cell.overflow;
}

TEST(ShadowCell, RemoveInlineReaderPullsFromOverflow) {
  shadow_cell cell;
  cell.add_reader(reader_entry{1, 0});
  cell.add_reader(reader_entry{2, 0});
  cell.add_reader(reader_entry{3, 0});
  cell.remove_reader_at(0);  // removes task 1; an overflow entry fills in
  EXPECT_EQ(cell.reader_count(), 2u);
  bool saw2 = false, saw3 = false;
  for (std::size_t i = 0; i < cell.reader_count(); ++i) {
    saw2 |= cell.reader_at(i).task == 2;
    saw3 |= cell.reader_at(i).task == 3;
  }
  EXPECT_TRUE(saw2);
  EXPECT_TRUE(saw3);
  delete cell.overflow;
}

TEST(ShadowCell, RemoveDownToEmpty) {
  shadow_cell cell;
  for (task_id t = 1; t <= 3; ++t) cell.add_reader(reader_entry{t, 0});
  while (cell.reader_count() > 0) cell.remove_reader_at(0);
  EXPECT_EQ(cell.reader_count(), 0u);
  cell.add_reader(reader_entry{9, 0});  // reusable afterwards
  EXPECT_EQ(cell.reader_at(0).task, 9u);
  delete cell.overflow;
}

TEST(ShadowCell, CompactLayout) {
  EXPECT_LE(sizeof(shadow_cell), 24u)
      << "cell growth directly scales the dominant cache-miss cost";
}

// --------------------------------------------------------------- shadow_memory

TEST(ShadowMemory, CountsAccessesAndLocations) {
  shadow_memory shadow;
  int a = 0, b = 0;
  shadow.access(&a);
  shadow.access(&a);
  shadow.access(&b);
  EXPECT_EQ(shadow.access_count(), 3u);
  EXPECT_EQ(shadow.location_count(), 2u);
}

TEST(ShadowMemory, AverageReadersSamplesAtAccessTime) {
  shadow_memory shadow;
  int loc = 0;
  shadow.access(&loc);                                  // 0 readers sampled
  shadow.access(&loc).add_reader(reader_entry{1, 0});   // 0 sampled, then add
  shadow.access(&loc);                                  // 1 sampled
  shadow.access(&loc);                                  // 1 sampled
  EXPECT_DOUBLE_EQ(shadow.average_readers(), 2.0 / 4.0);
}

TEST(ShadowMemory, MaxReadersTracked) {
  shadow_memory shadow;
  int loc = 0;
  auto& cell = shadow.access(&loc);
  for (task_id t = 1; t <= 4; ++t) {
    cell.add_reader(reader_entry{t, 0});
    shadow.note_reader_count(cell.reader_count());
  }
  EXPECT_EQ(shadow.max_readers(), 4u);
}

TEST(ShadowMemory, MemoryBytesIncludesOverflow) {
  shadow_memory shadow;
  int loc = 0;
  const std::size_t before = shadow.memory_bytes();
  auto& cell = shadow.access(&loc);
  for (task_id t = 1; t <= 10; ++t) cell.add_reader(reader_entry{t, 0});
  EXPECT_GT(shadow.memory_bytes(), before);
}

TEST(ShadowMemory, OverflowFreedOnDestruction) {
  // Covered implicitly by ASAN-less builds via no crash; structurally: the
  // destructor must null out what it deletes when iterated twice.
  auto* shadow = new shadow_memory();
  int loc = 0;
  auto& cell = shadow->access(&loc);
  for (task_id t = 1; t <= 5; ++t) cell.add_reader(reader_entry{t, 0});
  delete shadow;  // must free the overflow vector
}

// ------------------------------------------------------------------ site_table

TEST(SiteTable, InternsAndResolves) {
  site_table sites;
  const site_id a = sites.intern(access_site{"alpha.cpp", 10});
  const site_id b = sites.intern(access_site{"beta.cpp", 20});
  EXPECT_NE(a, b);
  EXPECT_STREQ(sites.resolve(a).file, "alpha.cpp");
  EXPECT_EQ(sites.resolve(a).line, 10u);
  EXPECT_STREQ(sites.resolve(b).file, "beta.cpp");
}

TEST(SiteTable, SameSiteSameId) {
  site_table sites;
  const site_id a1 = sites.intern(access_site{"alpha.cpp", 10});
  const site_id other = sites.intern(access_site{"alpha.cpp", 11});
  const site_id a2 = sites.intern(access_site{"alpha.cpp", 10});
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, other);
}

TEST(SiteTable, UnknownIdResolvesToSentinel) {
  site_table sites;
  EXPECT_STREQ(sites.resolve(12345).file, "<unknown>");
}

TEST(SiteTable, HotLoopCacheDoesNotConfuseSites) {
  site_table sites;
  const site_id a = sites.intern(access_site{"f.cpp", 1});
  const site_id b = sites.intern(access_site{"f.cpp", 2});
  // Alternate to defeat/validate the one-entry cache.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sites.intern(access_site{"f.cpp", 1}), a);
    EXPECT_EQ(sites.intern(access_site{"f.cpp", 2}), b);
  }
}

}  // namespace
}  // namespace futrace::detect
