// Unit tests for the shadow-memory layer: cell mechanics (inline reader +
// overflow), counters, and the site table.

#include <gtest/gtest.h>

#include <vector>

#include "futrace/detect/shadow_memory.hpp"
#include "futrace/detect/shard.hpp"

namespace futrace::detect {
namespace {

// ----------------------------------------------------------------- shadow_cell

TEST(ShadowCell, StartsEmpty) {
  shadow_cell cell;
  EXPECT_EQ(cell.writer, k_invalid_task);
  EXPECT_EQ(cell.reader_count(), 0u);
  EXPECT_EQ(cell.overflow, nullptr);
}

TEST(ShadowCell, SingleReaderStaysInline) {
  shadow_cell cell;
  cell.add_reader(reader_entry{7, 1});
  EXPECT_EQ(cell.reader_count(), 1u);
  EXPECT_EQ(cell.reader_at(0).task, 7u);
  EXPECT_EQ(cell.overflow, nullptr);
}

TEST(ShadowCell, OverflowHoldsAdditionalReaders) {
  shadow_cell cell;
  for (task_id t = 1; t <= 5; ++t) cell.add_reader(reader_entry{t, 0});
  EXPECT_EQ(cell.reader_count(), 5u);
  ASSERT_NE(cell.overflow, nullptr);
  std::vector<bool> seen(6, false);
  for (std::size_t i = 0; i < cell.reader_count(); ++i) {
    seen[cell.reader_at(i).task] = true;
  }
  for (task_id t = 1; t <= 5; ++t) EXPECT_TRUE(seen[t]) << t;
  delete cell.overflow;
}

TEST(ShadowCell, RemoveInlineReaderPullsFromOverflow) {
  shadow_cell cell;
  cell.add_reader(reader_entry{1, 0});
  cell.add_reader(reader_entry{2, 0});
  cell.add_reader(reader_entry{3, 0});
  cell.remove_reader_at(0);  // removes task 1; an overflow entry fills in
  EXPECT_EQ(cell.reader_count(), 2u);
  bool saw2 = false, saw3 = false;
  for (std::size_t i = 0; i < cell.reader_count(); ++i) {
    saw2 |= cell.reader_at(i).task == 2;
    saw3 |= cell.reader_at(i).task == 3;
  }
  EXPECT_TRUE(saw2);
  EXPECT_TRUE(saw3);
  delete cell.overflow;
}

TEST(ShadowCell, RemoveDownToEmpty) {
  shadow_cell cell;
  for (task_id t = 1; t <= 3; ++t) cell.add_reader(reader_entry{t, 0});
  while (cell.reader_count() > 0) cell.remove_reader_at(0);
  EXPECT_EQ(cell.reader_count(), 0u);
  cell.add_reader(reader_entry{9, 0});  // reusable afterwards
  EXPECT_EQ(cell.reader_at(0).task, 9u);
  delete cell.overflow;
}

TEST(ShadowCell, CompactLayout) {
  EXPECT_LE(sizeof(shadow_cell), 32u)
      << "cell growth directly scales the dominant cache-miss cost; 32 bytes "
         "= two cells per cache line (24 bytes of race state + the 8-byte "
         "access stamp that powers the detector's elision fast path)";
}

// --------------------------------------------------------------- shadow_memory

TEST(ShadowMemory, CountsAccessesAndLocations) {
  shadow_memory shadow;
  int a = 0, b = 0;
  shadow.access(&a);
  shadow.access(&a);
  shadow.access(&b);
  EXPECT_EQ(shadow.access_count(), 3u);
  EXPECT_EQ(shadow.location_count(), 2u);
}

TEST(ShadowMemory, AverageReadersSamplesAtAccessTime) {
  shadow_memory shadow;
  int loc = 0;
  shadow.access(&loc);                                  // 0 readers sampled
  shadow.access(&loc).add_reader(reader_entry{1, 0});   // 0 sampled, then add
  shadow.access(&loc);                                  // 1 sampled
  shadow.access(&loc);                                  // 1 sampled
  EXPECT_DOUBLE_EQ(shadow.average_readers(), 2.0 / 4.0);
}

TEST(ShadowMemory, MaxReadersTracked) {
  shadow_memory shadow;
  int loc = 0;
  auto& cell = shadow.access(&loc);
  for (task_id t = 1; t <= 4; ++t) {
    cell.add_reader(reader_entry{t, 0});
    shadow.note_reader_count(cell.reader_count());
  }
  EXPECT_EQ(shadow.max_readers(), 4u);
}

TEST(ShadowMemory, MemoryBytesIncludesOverflow) {
  shadow_memory shadow;
  int loc = 0;
  const std::size_t before = shadow.memory_bytes();
  auto& cell = shadow.access(&loc);
  for (task_id t = 1; t <= 10; ++t) cell.add_reader(reader_entry{t, 0});
  EXPECT_GT(shadow.memory_bytes(), before);
}

TEST(ShadowMemory, OverflowFreedOnDestruction) {
  // Covered implicitly by ASAN-less builds via no crash; structurally: the
  // destructor must null out what it deletes when iterated twice.
  auto* shadow = new shadow_memory();
  int loc = 0;
  auto& cell = shadow->access(&loc);
  for (task_id t = 1; t <= 5; ++t) cell.add_reader(reader_entry{t, 0});
  delete shadow;  // must free the overflow vector
}

// ------------------------------------------------------------------ site_table

TEST(SiteTable, InternsAndResolves) {
  site_table sites;
  const site_id a = sites.intern(access_site{"alpha.cpp", 10});
  const site_id b = sites.intern(access_site{"beta.cpp", 20});
  EXPECT_NE(a, b);
  EXPECT_STREQ(sites.resolve(a).file, "alpha.cpp");
  EXPECT_EQ(sites.resolve(a).line, 10u);
  EXPECT_STREQ(sites.resolve(b).file, "beta.cpp");
}

TEST(SiteTable, SameSiteSameId) {
  site_table sites;
  const site_id a1 = sites.intern(access_site{"alpha.cpp", 10});
  const site_id other = sites.intern(access_site{"alpha.cpp", 11});
  const site_id a2 = sites.intern(access_site{"alpha.cpp", 10});
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, other);
}

TEST(SiteTable, UnknownIdResolvesToSentinel) {
  site_table sites;
  EXPECT_STREQ(sites.resolve(12345).file, "<unknown>");
}

TEST(SiteTable, HotLoopCacheDoesNotConfuseSites) {
  site_table sites;
  const site_id a = sites.intern(access_site{"f.cpp", 1});
  const site_id b = sites.intern(access_site{"f.cpp", 2});
  // Alternate to defeat/validate the one-entry cache.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sites.intern(access_site{"f.cpp", 1}), a);
    EXPECT_EQ(sites.intern(access_site{"f.cpp", 2}), b);
  }
}

// Regression for the key construction bug: (file_ptr << 16) ^ line shifted
// away the pointer's high 16 bits, so two file pointers differing only
// there collided at the same line and one site silently aliased the other.
// The pointers below are fabricated (never dereferenced — the table only
// stores and compares them) to hit that exact collision.
TEST(SiteTable, HighPointerBitsDoNotCollide) {
  site_table sites;
  const char* f1 = reinterpret_cast<const char*>(0x0001000000001000ULL);
  const char* f2 = reinterpret_cast<const char*>(0x0002000000001000ULL);
  const site_id a = sites.intern(access_site{f1, 7});
  const site_id b = sites.intern(access_site{f2, 7});
  EXPECT_NE(a, b);
  EXPECT_EQ(sites.resolve(a).file, f1);
  EXPECT_EQ(sites.resolve(b).file, f2);
}

TEST(SiteTable, LineXorCancellationDoesNotCollide) {
  site_table sites;
  // Under the old key, (p << 16) ^ line let a line number cancel pointer
  // bits: p and p+1 with lines 10 and 10 ^ 0x10000 produced the same key.
  const char* f1 = reinterpret_cast<const char*>(0x5000);
  const char* f2 = reinterpret_cast<const char*>(0x5001);
  const site_id a = sites.intern(access_site{f1, 10});
  const site_id b = sites.intern(access_site{f2, 10u ^ 0x10000u});
  EXPECT_NE(a, b);
  EXPECT_EQ(sites.resolve(a).line, 10u);
  EXPECT_EQ(sites.resolve(b).line, 10u ^ 0x10000u);
}

// -------------------------------------------------------- direct-mapped slabs

namespace {

/// RAII registration of a buffer with the process-global region registry;
/// tests share one process, so cleanup must be unconditional.
struct region_guard {
  region_guard(const void* base, std::size_t bytes, std::size_t stride)
      : base_(base),
        ok_(futrace::detail::register_shared_region(base, bytes, stride)) {}
  ~region_guard() { futrace::detail::unregister_shared_region(base_); }
  const void* base_;
  bool ok_;
};

bool deny_all_allocs(std::size_t) noexcept { return true; }
bool deny_big_allocs(std::size_t bytes) noexcept { return bytes > 1024; }

struct gate_guard {
  explicit gate_guard(futrace::support::alloc_gate_fn fn) {
    futrace::support::alloc_gate().store(fn);
  }
  ~gate_guard() { futrace::support::alloc_gate().store(nullptr); }
};

}  // namespace

TEST(DirectShadow, RegisteredRangeServedFromSlab) {
  std::vector<int> buf(64);
  region_guard reg(buf.data(), buf.size() * sizeof(int), sizeof(int));
  ASSERT_TRUE(reg.ok_);

  shadow_memory shadow;
  for (std::size_t i = 0; i < buf.size(); ++i) {
    shadow_cell* cell = shadow.try_access(&buf[i]);
    ASSERT_NE(cell, nullptr);
    cell->writer = static_cast<task_id>(i);
  }
  EXPECT_EQ(shadow.stats().slabs_built, 1u);
  EXPECT_EQ(shadow.stats().direct_hits, buf.size());
  EXPECT_EQ(shadow.stats().hashed_hits, 0u);
  EXPECT_EQ(shadow.location_count(), buf.size());
  // Re-access resolves to the same cell (state persists).
  EXPECT_EQ(shadow.try_access(&buf[5])->writer, 5u);
}

TEST(DirectShadow, ScalarAccessesStayHashed) {
  std::vector<int> buf(16);
  region_guard reg(buf.data(), buf.size() * sizeof(int), sizeof(int));
  ASSERT_TRUE(reg.ok_);

  shadow_memory shadow;
  int scalar = 0;
  shadow.try_access(&buf[0])->writer = 1;
  shadow.try_access(&scalar)->writer = 2;
  EXPECT_EQ(shadow.stats().direct_hits, 1u);
  EXPECT_EQ(shadow.stats().hashed_hits, 1u);
  EXPECT_EQ(shadow.location_count(), 2u);
}

TEST(DirectShadow, LateRegistrationMigratesHashedCells) {
  std::vector<int> buf(32);
  shadow_memory shadow;
  // Touch two elements before the range is registered: they materialize in
  // the hashed tier.
  shadow.try_access(&buf[3])->writer = 33;
  shadow.try_access(&buf[9])->writer = 99;
  EXPECT_EQ(shadow.stats().hashed_hits, 2u);

  region_guard reg(buf.data(), buf.size() * sizeof(int), sizeof(int));
  ASSERT_TRUE(reg.ok_);
  // The next in-range access builds the slab and migrates existing cells;
  // their shadow state must survive the move.
  shadow_cell* cell = shadow.try_access(&buf[3]);
  EXPECT_EQ(shadow.stats().migrated_cells, 2u);
  EXPECT_EQ(cell->writer, 33u);
  EXPECT_EQ(shadow.try_access(&buf[9])->writer, 99u);
  EXPECT_EQ(shadow.location_count(), 2u);
}

TEST(DirectShadow, GeometryChangeAtSameAddressIsRejected) {
  std::vector<double> buf(16);
  shadow_memory shadow;
  {
    region_guard reg(buf.data(), buf.size() * sizeof(double), sizeof(double));
    ASSERT_TRUE(reg.ok_);
    shadow.try_access(&buf[0]);
    EXPECT_EQ(shadow.stats().slabs_built, 1u);
  }
  // Same base address, different stride: serving it from the old slab would
  // merge distinct locations, so the newcomer must stay on the hashed path.
  region_guard reg2(buf.data(), buf.size() * sizeof(double), 4);
  ASSERT_TRUE(reg2.ok_);
  shadow.try_access(&buf[1]);
  EXPECT_EQ(shadow.stats().rejected_overlaps, 1u);
  EXPECT_EQ(shadow.stats().slabs_built, 1u);
}

TEST(DirectShadow, NonPowerOfTwoStrideFallsBack) {
  struct odd {
    char bytes[12];
  };
  std::vector<odd> buf(8);
  region_guard reg(buf.data(), buf.size() * sizeof(odd), sizeof(odd));
  ASSERT_TRUE(reg.ok_);

  shadow_memory shadow;
  shadow.try_access(&buf[0]);
  EXPECT_EQ(shadow.stats().slab_fallbacks, 1u);
  EXPECT_EQ(shadow.stats().slabs_built, 0u);
  EXPECT_EQ(shadow.stats().hashed_hits, 1u);
  EXPECT_FALSE(shadow.degraded());
}

TEST(DirectShadow, ByteCapRefusesSlabWithoutDegrading) {
  std::vector<int> buf(4096);  // slab would need 4096 * sizeof(shadow_cell)
  region_guard reg(buf.data(), buf.size() * sizeof(int), sizeof(int));
  ASSERT_TRUE(reg.ok_);

  shadow_memory shadow;
  shadow.set_max_bytes(64 * 1024);
  shadow.try_access(&buf[0]);
  EXPECT_EQ(shadow.stats().slab_fallbacks, 1u);
  EXPECT_EQ(shadow.stats().slabs_built, 0u);
  // A refused slab is a fallback, not degradation: the hashed tier serves
  // the range with full fidelity until the cap itself is hit.
  EXPECT_FALSE(shadow.degraded());
  EXPECT_EQ(shadow.stats().hashed_hits, 1u);
}

TEST(DirectShadow, AllocGateRefusesSlabWithoutDegrading) {
  std::vector<int> buf(1024);  // slab allocation > 1 KiB, cells are not
  region_guard reg(buf.data(), buf.size() * sizeof(int), sizeof(int));
  ASSERT_TRUE(reg.ok_);

  gate_guard gate(deny_big_allocs);
  shadow_memory shadow;
  for (int i = 0; i < 8; ++i) shadow.try_access(&buf[i]);
  EXPECT_EQ(shadow.stats().slab_fallbacks, 1u);
  EXPECT_EQ(shadow.stats().direct_hits, 0u);
  EXPECT_EQ(shadow.stats().hashed_hits, 8u);
  EXPECT_FALSE(shadow.degraded());
}

// ------------------------------------------------- reader overflow alloc gate

TEST(ShadowCell, OverflowAllocationRefusalDropsReader) {
  shadow_cell cell;
  EXPECT_TRUE(cell.add_reader(reader_entry{1, 0}));  // inline, no allocation
  {
    gate_guard gate(deny_all_allocs);
    EXPECT_FALSE(cell.add_reader(reader_entry{2, 0}));
    EXPECT_EQ(cell.reader_count(), 1u);
  }
  // Gate lifted: the overflow vector can materialize again.
  EXPECT_TRUE(cell.add_reader(reader_entry{3, 0}));
  EXPECT_EQ(cell.reader_count(), 2u);
  delete cell.overflow;
}

// ------------------------------------------------------- hashed-tier MRU slot

TEST(HashedMru, RepeatAccessServedFromMruSlot) {
  shadow_memory shadow;
  int scalar = 0;
  shadow_cell* first = shadow.try_access(&scalar);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(shadow.stats().mru_hits, 0u);  // cold: full probe + insert
  shadow_cell* again = shadow.try_access(&scalar);
  EXPECT_EQ(again, first);
  EXPECT_EQ(shadow.stats().mru_hits, 1u);
  // A different address misses the MRU and repoints it.
  int other = 0;
  shadow.try_access(&other);
  EXPECT_EQ(shadow.stats().mru_hits, 1u);
  shadow.try_access(&other);
  EXPECT_EQ(shadow.stats().mru_hits, 2u);
}

TEST(HashedMru, AccessVariantAlsoUsesMru) {
  shadow_memory shadow;
  int scalar = 0;
  shadow.access(&scalar).writer = 42;
  EXPECT_EQ(shadow.access(&scalar).writer, 42u);
  EXPECT_GE(shadow.stats().mru_hits, 1u);
}

// Regression: migrate_into_slab erases migrated keys from the hashed map,
// and ptr_map's backshift deletion relocates *other* entries — including,
// possibly, the cell the MRU slot points at. The erase must invalidate the
// MRU, or the next access to the cached address reads a dangling pointer.
TEST(HashedMru, InvalidatedWhenMigrationErasesHashedCells) {
  std::vector<int> buf(32);
  shadow_memory shadow;
  int scalar = 0;
  // Populate the hashed tier: array cells (pre-registration) plus a scalar.
  shadow.try_access(&buf[3])->writer = 3;
  shadow.try_access(&buf[9])->writer = 9;
  shadow.try_access(&scalar)->writer = 77;  // MRU now caches the scalar cell

  region_guard reg(buf.data(), buf.size() * sizeof(int), sizeof(int));
  ASSERT_TRUE(reg.ok_);
  // First in-range access builds the slab and erases the two migrated keys
  // from the hashed map (backshift may relocate the scalar's cell).
  EXPECT_EQ(shadow.try_access(&buf[3])->writer, 3u);
  EXPECT_EQ(shadow.stats().migrated_cells, 2u);

  // The scalar's shadow state must be found through a fresh lookup, not a
  // cached pointer into the pre-erase table layout.
  shadow_cell* cell = shadow.try_access(&scalar);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->writer, 77u);
  EXPECT_EQ(shadow.try_access(&buf[9])->writer, 9u);
}

TEST(HashedMru, TableGrowthRefreshesBeforeNextHit) {
  // Interleave one hot scalar with enough cold inserts to force rehashes;
  // every insert repoints the MRU at a post-growth pointer, so the hot
  // address must always resolve to live, correct state.
  shadow_memory shadow;
  int hot = 0;
  shadow.try_access(&hot)->writer = 123;
  std::vector<int> cold(4096);
  for (std::size_t i = 0; i < cold.size(); ++i) {
    shadow.try_access(&cold[i])->writer = static_cast<task_id>(i);
    ASSERT_EQ(shadow.try_access(&hot)->writer, 123u) << "after insert " << i;
  }
}

// --------------------------------------------------------- shard-clipped slabs

TEST(DirectShadowShard, SlabClippedToOwnedChunks) {
  std::vector<int> buf(256);  // 1 KiB: spans several 64-byte chunks
  region_guard reg(buf.data(), buf.size() * sizeof(int), sizeof(int));
  ASSERT_TRUE(reg.ok_);

  constexpr unsigned kShift = 6;
  constexpr std::size_t kShards = 2;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    shadow_memory shadow;
    shadow.set_shard(kShift, shard, kShards);
    std::size_t owned = 0;
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (shard_of(&buf[i], kShift, kShards) != shard) continue;
      ++owned;
      shadow_cell* cell = shadow.try_access(&buf[i]);
      ASSERT_NE(cell, nullptr);
      cell->writer = static_cast<task_id>(i);
    }
    ASSERT_GT(owned, 0u);
    // Every owned cell is served by a clipped slab — never the hashed tier.
    EXPECT_EQ(shadow.stats().direct_hits, owned) << "shard " << shard;
    EXPECT_EQ(shadow.stats().hashed_hits, 0u) << "shard " << shard;
    EXPECT_EQ(shadow.stats().slabs_built, 1u) << "shard " << shard;
    EXPECT_EQ(shadow.location_count(), owned) << "shard " << shard;
    // State persists across re-access.
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (shard_of(&buf[i], kShift, kShards) != shard) continue;
      EXPECT_EQ(shadow.try_access(&buf[i])->writer, static_cast<task_id>(i));
      break;
    }
  }
}

TEST(DirectShadowShard, ShardsPartitionTheRegion) {
  std::vector<int> buf(128);
  region_guard reg(buf.data(), buf.size() * sizeof(int), sizeof(int));
  ASSERT_TRUE(reg.ok_);

  constexpr unsigned kShift = 6;
  constexpr std::size_t kShards = 4;
  std::size_t covered = 0;
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    shadow_memory shadow;
    shadow.set_shard(kShift, shard, kShards);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      if (shard_of(&buf[i], kShift, kShards) != shard) continue;
      ASSERT_NE(shadow.try_access(&buf[i]), nullptr);
      ++covered;
    }
  }
  EXPECT_EQ(covered, buf.size());  // every element owned exactly once
}

}  // namespace
}  // namespace futrace::detect
