// Property tests for Theorem 2 (soundness + precision): on randomly
// generated async/finish/future programs, the paper's detector must produce
// exactly the same per-location race verdicts as the brute-force oracle
// (full computation graph + step-level happens-before), and the
// vector-clock baseline must agree as well.
//
// The generator is seeded and the serial depth-first execution is
// deterministic, so every failure here is replayable from its seed.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "futrace/baselines/oracle_detector.hpp"
#include "futrace/baselines/vector_clock_detector.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/progen/random_program.hpp"
#include "futrace/runtime/runtime.hpp"

namespace futrace {
namespace {

using progen::progen_config;
using progen::random_program;

struct run_result {
  std::set<int> detector_racy_vars;
  std::set<int> oracle_racy_vars;
  std::set<int> vector_clock_racy_vars;
  bool detector_any = false;  // over all locations, incl. handle cells
  bool oracle_any = false;
  std::uint64_t non_tree_joins = 0;
  std::uint64_t tasks = 0;
};

std::set<int> to_var_indices(const std::vector<const void*>& locations,
                             const random_program& prog) {
  std::set<int> vars;
  for (const void* addr : locations) {
    for (int i = 0; i < prog.num_vars(); ++i) {
      if (prog.var_address(i) == addr) {
        vars.insert(i);
        break;
      }
    }
  }
  return vars;
}

run_result run_one(const progen_config& cfg) {
  random_program prog(cfg);
  detect::race_detector det;
  baselines::oracle_detector oracle;
  baselines::vector_clock_detector vc;

  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.add_observer(&oracle);
  rt.add_observer(&vc);
  rt.run([&] { prog(); });

  run_result r;
  r.detector_racy_vars = to_var_indices(det.racy_locations(), prog);
  r.oracle_racy_vars = to_var_indices(oracle.racy_locations(), prog);
  r.vector_clock_racy_vars = to_var_indices(vc.racy_locations(), prog);
  r.detector_any = det.race_detected();
  r.oracle_any = oracle.race_detected();
  r.non_tree_joins = det.counters().non_tree_joins;
  r.tasks = det.counters().tasks;
  return r;
}

struct shape {
  const char* name;
  progen_config base;
};

// Program-shape mixes stressing different parts of the algorithm.
const shape k_shapes[] = {
    {"balanced", {}},
    {"future-heavy",
     {.max_depth = 4,
      .min_stmts = 2,
      .max_stmts = 8,
      .num_vars = 6,
      .max_tasks = 300,
      .w_read = 3,
      .w_write = 2,
      .w_async = 0.3,
      .w_future = 2.5,
      .w_finish = 0.3,
      .w_get = 3.0}},
    {"async-finish-ish",
     {.max_depth = 5,
      .min_stmts = 2,
      .max_stmts = 6,
      .num_vars = 4,
      .max_tasks = 200,
      .w_read = 3,
      .w_write = 3,
      .w_async = 2.0,
      .w_future = 0.4,
      .w_finish = 2.0,
      .w_get = 0.6}},
    {"deep-nesting",
     {.max_depth = 8,
      .min_stmts = 1,
      .max_stmts = 4,
      .num_vars = 3,
      .max_tasks = 300,
      .w_read = 2,
      .w_write = 2,
      .w_async = 1.5,
      .w_future = 1.5,
      .w_finish = 1.0,
      .w_get = 2.0}},
    {"contended-vars",
     {.max_depth = 3,
      .min_stmts = 3,
      .max_stmts = 10,
      .num_vars = 2,
      .w_read = 5,
      .w_write = 4,
      .w_async = 1.0,
      .w_future = 1.5,
      .w_finish = 0.6,
      .w_get = 2.0}},
    {"get-chains",
     {.max_depth = 2,
      .min_stmts = 4,
      .max_stmts = 12,
      .num_vars = 5,
      .w_read = 2,
      .w_write = 2,
      .w_async = 0.2,
      .w_future = 2.0,
      .w_finish = 0.1,
      .w_get = 4.0}},
    {"promise-heavy",
     {.max_depth = 4,
      .min_stmts = 3,
      .max_stmts = 9,
      .num_vars = 5,
      .w_read = 3,
      .w_write = 2.5,
      .w_async = 1.2,
      .w_future = 0.8,
      .w_finish = 0.8,
      .w_get = 1.0,
      .w_promise = 2.0,
      .w_put = 2.6,
      .w_promise_get = 2.6}},
    // Bulk-dominated traffic: most accesses arrive as read_range/write_range
    // events, stressing the coalesced walk, summary establishment, and
    // materialization against the per-element oracle (every other shape also
    // mixes in ranges via the default weights).
    {"range-heavy",
     {.max_depth = 4,
      .min_stmts = 3,
      .max_stmts = 10,
      .num_vars = 8,
      .w_read = 1.0,
      .w_write = 0.8,
      .w_range_read = 4.5,
      .w_range_write = 3.5,
      .w_async = 1.0,
      .w_future = 1.6,
      .w_finish = 0.6,
      .w_get = 2.2,
      .max_range_len = 8}},
};

class TheoremTwo : public ::testing::TestWithParam<int> {};

// Safe handle flow (the algorithm's precondition, see random_program.hpp):
// per-location verdicts of the detector and the vector-clock baseline must
// equal the step-level oracle's exactly.
TEST_P(TheoremTwo, DetectorMatchesOracleAcrossSeeds) {
  const shape& s = k_shapes[GetParam() % std::size(k_shapes)];
  const int block = GetParam();
  std::uint64_t total_nt = 0;
  std::uint64_t racy_programs = 0;
  constexpr int kSeedsPerBlock = 60;
  for (int i = 0; i < kSeedsPerBlock; ++i) {
    progen_config cfg = s.base;
    cfg.safe_handles = true;
    cfg.seed = static_cast<std::uint64_t>(block) * 100003 + i + 1;
    const run_result r = run_one(cfg);

    EXPECT_EQ(r.detector_racy_vars, r.oracle_racy_vars)
        << "shape=" << s.name << " seed=" << cfg.seed
        << " (detector vs step-level oracle)";
    EXPECT_EQ(r.vector_clock_racy_vars, r.oracle_racy_vars)
        << "shape=" << s.name << " seed=" << cfg.seed
        << " (vector-clock baseline vs oracle)";

    total_nt += r.non_tree_joins;
    racy_programs += !r.oracle_racy_vars.empty();
  }
  // The sweep must actually exercise the machinery: some programs race, some
  // do not, and non-tree joins occur.
  EXPECT_GT(racy_programs, 0u) << s.name;
  EXPECT_LT(racy_programs, static_cast<std::uint64_t>(kSeedsPerBlock))
      << s.name << ": every program raced; race-free cases untested";
  if (s.base.w_get > 0.5) {
    EXPECT_GT(total_nt, 0u) << s.name << ": no non-tree joins exercised";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TheoremTwo, ::testing::Range(0, 18));

// Unsafe handle flow: a task may join a future whose handle it obtained
// through an unsynchronized channel, violating the precondition of Lemma 1 /
// Lemma 5. The per-location guarantee degrades by design (handle races are
// invisible to the detector, while the oracle sees the resulting step-level
// parallelism), but the program-level verdict and the precision of reported
// locations must survive.
class UnsafeHandles : public ::testing::TestWithParam<int> {};

TEST_P(UnsafeHandles, ProgramVerdictAndPrecisionSurvive) {
  const shape& s = k_shapes[GetParam() % std::size(k_shapes)];
  const int block = GetParam();
  constexpr int kSeedsPerBlock = 40;
  for (int i = 0; i < kSeedsPerBlock; ++i) {
    progen_config cfg = s.base;
    cfg.safe_handles = false;
    cfg.seed = static_cast<std::uint64_t>(block) * 90001 + i + 1;
    const run_result r = run_one(cfg);

    // Program-level soundness both ways, over *all* instrumented locations
    // (ordinary variables and handle registry cells).
    EXPECT_EQ(r.detector_any, r.oracle_any)
        << "shape=" << s.name << " seed=" << cfg.seed;
    // Precision: every location the detector flags is genuinely racy.
    for (const int v : r.detector_racy_vars) {
      EXPECT_TRUE(r.oracle_racy_vars.count(v))
          << "shape=" << s.name << " seed=" << cfg.seed
          << ": detector flagged var " << v
          << " which the oracle says is race-free";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, UnsafeHandles, ::testing::Range(0, 12));

// Determinism (the detector's replay guarantee from the conclusion: a race
// reported for an input is reported in *every* run with that input).
TEST(Determinism, SameSeedSameVerdicts) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    progen_config cfg;
    cfg.seed = seed;
    std::vector<std::set<int>> verdicts;
    std::vector<std::uint64_t> counts;
    for (int run = 0; run < 2; ++run) {
      random_program prog(cfg);
      detect::race_detector det;
      runtime rt({.mode = exec_mode::serial_dfs});
      rt.add_observer(&det);
      rt.run([&] { prog(); });
      verdicts.push_back(to_var_indices(det.racy_locations(), prog));
      counts.push_back(det.race_count());
    }
    EXPECT_EQ(verdicts[0], verdicts[1]) << "seed=" << seed;
    EXPECT_EQ(counts[0], counts[1]) << "seed=" << seed;
  }
}

// Structural invariant: for async-finish-only programs the reader sets never
// hold more than one task (paper §5: #AvgReaders ∈ [0,1] for async-finish).
TEST(StructuralInvariants, AsyncFinishReaderBound) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    progen_config cfg;
    cfg.seed = seed;
    cfg.w_future = 0.0;
    cfg.w_get = 0.0;
    cfg.w_promise = 0.0;
    cfg.w_put = 0.0;
    cfg.w_promise_get = 0.0;
    random_program prog(cfg);
    detect::race_detector det;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run([&] { prog(); });
    EXPECT_LE(det.counters().max_readers, 1u) << "seed=" << seed;
    EXPECT_LE(det.counters().avg_readers, 1.0) << "seed=" << seed;
    EXPECT_EQ(det.counters().non_tree_joins, 0u) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace futrace
