// Differential tests for the pipelined, address-sharded detection engine
// (detect::pipelined_detector): with detect_threads in {0, 1, 4} the same
// program must produce identical verdicts, identical report sequences, and
// identical paper-level counters — pipelining is a scheduling change, never
// a semantic one. Plus the pipeline's own mechanics: ring wraparound,
// oversize finish fan-in, backpressure under a tiny ring, inline fallback
// when the ring allocation is refused, and fault-injected worker
// stalls/kills degrading to inline checking instead of deadlocking or
// dropping events.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "futrace/detect/pipeline.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/inject/fault_injector.hpp"
#include "futrace/progen/random_program.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/runtime/shared.hpp"

namespace futrace {
namespace {

using detect::pipelined_detector;
using detect::race_detector;

// --------------------------------------------------------------- harness

race_detector::options opts_with_threads(unsigned threads) {
  race_detector::options opts;
  opts.detect_threads = threads;
  return opts;
}

template <typename Body>
pipelined_detector run_pipelined(race_detector::options opts, Body&& body,
                                 pipelined_detector::tuning tune = {}) {
  pipelined_detector det(opts, tune);
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run(body);
  return det;
}

/// Address-free fingerprint of one race report. Locations are heap
/// addresses and only comparable when the runs share the arrays; task ids,
/// race kinds, and sites are deterministic across re-executions.
struct report_sig {
  detect::race_kind kind;
  task_id first_task;
  task_id second_task;
  std::string first_file;
  std::uint32_t first_line;
  std::string second_file;
  std::uint32_t second_line;

  bool operator==(const report_sig&) const = default;
};

std::vector<report_sig> signatures(const std::vector<detect::race_report>& r) {
  std::vector<report_sig> sigs;
  sigs.reserve(r.size());
  for (const detect::race_report& rep : r) {
    sigs.push_back(report_sig{rep.kind, rep.first_task, rep.second_task,
                              rep.first_site.file, rep.first_site.line,
                              rep.second_site.file, rep.second_site.line});
  }
  return sigs;
}

/// The paper-level (Table 2) counters the pipeline guarantees exactly.
/// Engine-tier diagnostics (direct/hashed/stamp/memo hits) are
/// layout-dependent under sharding and deliberately excluded.
void expect_paper_counters_equal(const detect::detector_counters& a,
                                 const detect::detector_counters& b,
                                 const char* label) {
  EXPECT_EQ(a.tasks, b.tasks) << label;
  EXPECT_EQ(a.async_tasks, b.async_tasks) << label;
  EXPECT_EQ(a.future_tasks, b.future_tasks) << label;
  EXPECT_EQ(a.continuation_tasks, b.continuation_tasks) << label;
  EXPECT_EQ(a.promise_puts, b.promise_puts) << label;
  EXPECT_EQ(a.get_operations, b.get_operations) << label;
  EXPECT_EQ(a.non_tree_joins, b.non_tree_joins) << label;
  EXPECT_EQ(a.shared_mem_accesses, b.shared_mem_accesses) << label;
  EXPECT_EQ(a.reads, b.reads) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.locations, b.locations) << label;
  EXPECT_EQ(a.races_observed, b.races_observed) << label;
  EXPECT_EQ(a.racy_locations, b.racy_locations) << label;
  EXPECT_EQ(a.untracked_accesses, b.untracked_accesses) << label;
  EXPECT_EQ(a.max_readers, b.max_readers) << label;
  EXPECT_DOUBLE_EQ(a.avg_readers, b.avg_readers) << label;
  EXPECT_EQ(a.degraded, b.degraded) << label;
}

/// Runs `body` under detect_threads 0, 1, and 4 and asserts every
/// observable outcome agrees. The body's shared state must live *outside*
/// the lambda (captured by reference) so racy-location addresses are
/// comparable across the three runs. Returns the 4-thread detector for
/// further assertions.
template <typename Body>
pipelined_detector differential(Body&& body,
                                pipelined_detector::tuning tune = {}) {
  pipelined_detector inline_det = run_pipelined(opts_with_threads(0), body);
  EXPECT_FALSE(inline_det.pipelined());
  pipelined_detector one = run_pipelined(opts_with_threads(1), body, tune);
  pipelined_detector four = run_pipelined(opts_with_threads(4), body, tune);
  EXPECT_TRUE(one.pipelined());
  EXPECT_TRUE(four.pipelined());

  for (const auto* det : {&one, &four}) {
    const char* label = det == &one ? "W=1 vs inline" : "W=4 vs inline";
    EXPECT_EQ(det->race_count(), inline_det.race_count()) << label;
    EXPECT_EQ(det->race_detected(), inline_det.race_detected()) << label;
    EXPECT_EQ(det->degraded(), inline_det.degraded()) << label;
    EXPECT_EQ(det->racy_locations(), inline_det.racy_locations()) << label;
    EXPECT_EQ(signatures(det->reports()), signatures(inline_det.reports()))
        << label;
    // Same-address runs: report locations must match exactly too.
    EXPECT_EQ(det->reports().size(), inline_det.reports().size()) << label;
    if (det->reports().size() == inline_det.reports().size()) {
      for (std::size_t i = 0; i < det->reports().size(); ++i) {
        EXPECT_EQ(det->reports()[i].location,
                  inline_det.reports()[i].location)
            << label << " report " << i;
      }
    }
    expect_paper_counters_equal(det->counters(), inline_det.counters(),
                                label);
  }
  return four;
}

// ------------------------------------------------------- handwritten shapes

TEST(Pipeline, RaceFreeScalarProgramAgrees) {
  shared_array<int> data(256);
  differential([&] {
    finish([&] {
      for (int half = 0; half < 2; ++half) {
        async([&, half] {
          for (std::size_t i = half * 128; i < (half + 1) * 128u; ++i) {
            data.write(i, static_cast<int>(i));
          }
        });
      }
    });
    int total = 0;
    for (std::size_t i = 0; i < data.size(); ++i) total += data.read(i);
    (void)total;
  });
}

TEST(Pipeline, RacyProgramSameReportsAndLocations) {
  shared_array<int> data(64);
  shared<int> flag;
  const pipelined_detector det = differential([&] {
    finish([&] {
      async([&] {
        for (std::size_t i = 0; i < data.size(); i += 2) data.write(i, 1);
        flag.write(1);
      });
      // Races with the async on even indices and on flag.
      for (std::size_t i = 0; i < data.size(); ++i) data.write(i, 2);
      (void)flag.read();
    });
  });
  EXPECT_TRUE(det.race_detected());
  EXPECT_GT(det.racy_locations().size(), 1u);
}

TEST(Pipeline, FutureAndPromiseEdgesOrderAccesses) {
  shared_array<long> cells(32);
  differential([&] {
    auto f = async_future([&] {
      for (std::size_t i = 0; i < 16; ++i) cells.write(i, 7);
      return 7;
    });
    const int v = f.get();  // join: the writes below cannot race
    for (std::size_t i = 0; i < 16; ++i) cells.write(i, v + 1);
    finish([&] {
      async([&] { cells.write(20, 1); });
      async([&] { cells.write(20, 2); });  // racy pair on one location
    });
  });
}

// Range accesses that straddle many chunk boundaries: with chunk_shift 6
// (64-byte chunks) a 1 KiB array spans 16 chunks, so every whole-array
// range event splits into per-owner sub-events on all four workers.
TEST(Pipeline, RangeEventsSplitAcrossChunkOwnersAgree) {
  shared_array<int> data(256);
  pipelined_detector::tuning tune;
  tune.chunk_shift = 6;
  const pipelined_detector det = differential(
      [&] {
        finish([&] {
          async([&] { data.write_range(0, 256); });
        });
        (void)data.read_range(0, 256);
        finish([&] {
          async([&] { (void)data.read_range(64, 128); });
          data.write_range(100, 8);  // racy overlap inside the read
        });
      },
      tune);
  EXPECT_TRUE(det.race_detected());
  EXPECT_GT(det.pipe_stats().split_subevents, 0u);
}

TEST(Pipeline, NonTreeJoinViaGetAgrees) {
  shared<int> cell;
  differential([&] {
    finish([&] {
      auto f = async_future([&] {
        cell.write(1);
        return 1;
      });
      async([&] {
        (void)f.get();  // non-tree join: reader ordered after the writer
        (void)cell.read();
      });
    });
  });
}

// ------------------------------------------------------- progen differential

/// Generated programs re-run with the same seed produce the same event
/// stream but not the same heap addresses, so this comparison sticks to
/// address-free observables (counts, report signatures).
TEST(Pipeline, ProgenSeedSweepAgreesWithInline) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    progen::progen_config cfg;
    cfg.seed = seed;
    auto run_with = [&](unsigned threads) {
      progen::random_program prog(cfg);
      return run_pipelined(opts_with_threads(threads), [&] { prog(); });
    };
    const pipelined_detector inline_det = run_with(0);
    for (const unsigned threads : {1u, 4u}) {
      const pipelined_detector piped = run_with(threads);
      const std::string label =
          "seed " + std::to_string(seed) + " W=" + std::to_string(threads);
      EXPECT_EQ(piped.race_count(), inline_det.race_count()) << label;
      EXPECT_EQ(piped.racy_locations().size(),
                inline_det.racy_locations().size())
          << label;
      EXPECT_EQ(signatures(piped.reports()), signatures(inline_det.reports()))
          << label;
      expect_paper_counters_equal(piped.counters(), inline_det.counters(),
                                  label.c_str());
    }
  }
}

// ----------------------------------------------------------- ring mechanics

// A 4-slot ring forces constant wraparound and producer backpressure; the
// oversize finish (100 children = 1 header + 7 continuation slots > 4)
// exercises the incremental streaming path.
TEST(Pipeline, TinyRingWrapsAndStreamsOversizeFinish) {
  shared_array<int> data(128);
  pipelined_detector::tuning tune;
  tune.ring_capacity = 4;
  const pipelined_detector det = differential(
      [&] {
        finish([&] {
          for (int t = 0; t < 100; ++t) {
            async([&, t] {
              data.write(static_cast<std::size_t>(t) % data.size(), t);
            });
          }
        });
        for (std::size_t i = 0; i < data.size(); ++i) (void)data.read(i);
      },
      tune);
  EXPECT_EQ(det.pipe_stats().ring_capacity, 4u);
  EXPECT_GT(det.pipe_stats().backpressure_waits, 0u);
  EXPECT_EQ(det.pipe_stats().workers_died, 0u);
}

TEST(Pipeline, FailFastForcesInlineMode) {
  race_detector::options opts = opts_with_threads(4);
  opts.fail_fast = true;
  shared<int> cell;
  pipelined_detector det(opts);
  EXPECT_FALSE(det.pipelined());
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  EXPECT_THROW(rt.run([&] {
                 finish([&] {
                   async([&] { cell.write(1); });
                   cell.write(2);
                 });
               }),
               detect::race_found_error);
}

TEST(Pipeline, RefusedRingAllocationFallsBackInline) {
  inject::fault_plan plan;
  plan.fail_alloc_at = 1;
  plan.fail_alloc_every = 1;  // deny every allocation the gate sees
  inject::fault_injector inj(plan);
  shared<int> cell;
  std::uint64_t races = 0;
  {
    inject::scoped_injector guard(inj);
    pipelined_detector det(opts_with_threads(4));
    EXPECT_FALSE(det.pipelined());
    EXPECT_GE(det.pipe_stats().inline_fallbacks, 1u);
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run([&] {
      finish([&] {
        async([&] { cell.write(1); });
        cell.write(2);
      });
    });
    races = det.race_count();
  }
  // Under a deny-all gate the inline detector still runs (possibly
  // degraded); the same program without the gate must agree or exceed.
  pipelined_detector ref = run_pipelined(opts_with_threads(0), [&] {
    finish([&] {
      async([&] { cell.write(1); });
      cell.write(2);
    });
  });
  EXPECT_LE(races, ref.race_count());
}

// ------------------------------------------------------------- fault hooks

template <typename Body>
pipelined_detector run_with_plan(const inject::fault_plan& plan,
                                 unsigned threads, Body&& body,
                                 inject::fault_injector::counters* out) {
  inject::fault_injector inj(plan);
  inject::scoped_injector guard(inj);
  pipelined_detector det = run_pipelined(opts_with_threads(threads), body);
  if (out != nullptr) *out = inj.snapshot();
  return det;
}

template <typename Body>
void expect_degrades_not_deadlocks(const inject::fault_plan& plan,
                                   Body&& body, bool expect_death) {
  const pipelined_detector ref = run_pipelined(opts_with_threads(0), body);
  inject::fault_injector::counters fired;
  const pipelined_detector det = run_with_plan(plan, 4, body, &fired);
  EXPECT_TRUE(det.pipelined());
  EXPECT_EQ(det.race_count(), ref.race_count());
  EXPECT_EQ(det.racy_locations(), ref.racy_locations());
  EXPECT_EQ(signatures(det.reports()), signatures(ref.reports()));
  expect_paper_counters_equal(det.counters(), ref.counters(), "fault vs ref");
  if (expect_death) {
    EXPECT_EQ(fired.pipe_kills, 1u);
    EXPECT_EQ(det.pipe_stats().workers_died, 1u);
    EXPECT_GT(det.pipe_stats().inline_fallbacks, 0u);
  } else {
    EXPECT_EQ(det.pipe_stats().workers_died, 0u);
  }
}

TEST(PipelineFaults, KilledWorkerDegradesToInlineChecking) {
  shared_array<int> data(128);
  shared<int> cell;
  auto body = [&] {
    finish([&] {
      for (int t = 0; t < 8; ++t) {
        async([&, t] {
          for (std::size_t i = 0; i < data.size(); ++i) {
            data.write(i, t);  // every pair of asyncs races on every cell
          }
          cell.write(t);
        });
      }
    });
  };
  inject::fault_plan plan;
  plan.pipe_kill_at = 50;  // mid-run, well inside the event stream
  expect_degrades_not_deadlocks(plan, body, /*expect_death=*/true);
}

TEST(PipelineFaults, KilledWorkerCountersMergeExactly) {
  // The death drain applies every complete ring event into the dead
  // worker's own detector and discards only the partial tail (which the
  // producer re-sends inline to that same detector, in order). Each event
  // is therefore applied exactly once to exactly the detector its shard
  // owns — so a killed run must match a clean run at the same width on
  // EVERY counter, engine-tier diagnostics included, not just the paper
  // surface.
  shared_array<int> data(256);
  shared<int> cell;
  auto body = [&] {
    finish([&] {
      for (int t = 0; t < 6; ++t) {
        async([&, t] {
          for (std::size_t i = 0; i < data.size(); ++i) {
            (void)data.read(i);
            data.write(i, t);
          }
          cell.write(t);
        });
      }
    });
  };
  const pipelined_detector clean = run_pipelined(opts_with_threads(4), body);
  ASSERT_EQ(clean.pipe_stats().workers_died, 0u);

  for (const std::uint64_t kill_at : {1u, 75u, 400u}) {
    inject::fault_plan plan;
    plan.pipe_kill_at = kill_at;
    inject::fault_injector::counters fired;
    const pipelined_detector killed = run_with_plan(plan, 4, body, &fired);
    ASSERT_EQ(fired.pipe_kills, 1u) << "kill@" << kill_at;
    EXPECT_EQ(killed.pipe_stats().workers_died, 1u) << "kill@" << kill_at;

    const detect::detector_counters a = killed.counters();
    const detect::detector_counters b = clean.counters();
    const std::string label = "kill@" + std::to_string(kill_at);
    expect_paper_counters_equal(a, b, label.c_str());
    EXPECT_EQ(a.direct_hits, b.direct_hits) << label;
    EXPECT_EQ(a.hashed_hits, b.hashed_hits) << label;
    EXPECT_EQ(a.memo_hits, b.memo_hits) << label;
    EXPECT_EQ(a.stamp_hits, b.stamp_hits) << label;
    EXPECT_EQ(a.precede_queries, b.precede_queries) << label;
    EXPECT_EQ(a.range_events, b.range_events) << label;
    EXPECT_EQ(a.range_hits, b.range_hits) << label;
    EXPECT_EQ(a.summary_hits, b.summary_hits) << label;
  }
}

TEST(PipelineFaults, StalledWorkerOnlyDelaysVerdicts) {
  shared_array<int> data(64);
  auto body = [&] {
    finish([&] {
      async([&] {
        for (std::size_t i = 0; i < data.size(); ++i) data.write(i, 1);
      });
      for (std::size_t i = 0; i < data.size(); ++i) (void)data.read(i);
    });
  };
  inject::fault_plan plan;
  plan.pipe_stall_at = 10;  // one 20ms stall: backpressure, then catch-up
  expect_degrades_not_deadlocks(plan, body, /*expect_death=*/false);
}

TEST(PipelineFaults, ForcedRingFullInjectsBackpressure) {
  shared_array<int> data(64);
  auto body = [&] {
    for (std::size_t i = 0; i < data.size(); ++i) data.write(i, 3);
  };
  inject::fault_plan plan;
  plan.pipe_ring_full_at = 5;
  plan.pipe_ring_full_spins = 256;
  inject::fault_injector::counters fired;
  const pipelined_detector det = run_with_plan(plan, 4, body, &fired);
  EXPECT_EQ(fired.pipe_forced_fulls, 1u);
  EXPECT_GE(det.pipe_stats().backpressure_waits, 256u);
  const pipelined_detector ref = run_pipelined(opts_with_threads(0), body);
  EXPECT_EQ(det.race_count(), ref.race_count());
}

TEST(PipelineFaults, KillDuringOversizeFinishStreamIsSafe) {
  // Oversize finish (wider than the whole ring) with a kill armed nearby:
  // the consume path skips fault hooks mid-stream, so the kill lands on a
  // neighbouring event boundary and the drain still sees whole events.
  shared_array<int> data(64);
  auto body = [&] {
    finish([&] {
      for (int t = 0; t < 80; ++t) {
        async([&, t] { data.write(static_cast<std::size_t>(t) % 64, t); });
      }
    });
    for (std::size_t i = 0; i < data.size(); ++i) (void)data.read(i);
  };
  const pipelined_detector ref = run_pipelined(opts_with_threads(0), body);
  for (const std::uint64_t kill_at : {1u, 40u, 90u, 200u}) {
    inject::fault_plan plan;
    plan.pipe_kill_at = kill_at;
    inject::fault_injector::counters fired;
    pipelined_detector::tuning tune;
    tune.ring_capacity = 4;  // forces the oversize streaming path
    inject::fault_injector inj(plan);
    inject::scoped_injector guard(inj);
    pipelined_detector det(opts_with_threads(4), tune);
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run(body);
    fired = inj.snapshot();
    EXPECT_EQ(det.race_count(), ref.race_count()) << "kill@" << kill_at;
    EXPECT_EQ(det.racy_locations(), ref.racy_locations())
        << "kill@" << kill_at;
    if (fired.pipe_kills > 0) {
      EXPECT_EQ(det.pipe_stats().workers_died, 1u) << "kill@" << kill_at;
    }
  }
}

// --------------------------------------------------------------- telemetry

TEST(Pipeline, StatsAccountForStreamedEvents) {
  shared_array<int> data(32);
  const pipelined_detector det =
      run_pipelined(opts_with_threads(2), [&] {
        finish([&] {
          async([&] {
            for (std::size_t i = 0; i < data.size(); ++i) data.write(i, 1);
          });
        });
      });
  const detect::pipeline_stats& s = det.pipe_stats();
  EXPECT_EQ(s.workers, 2u);
  EXPECT_GT(s.events, 0u);
  EXPECT_GT(s.access_events, 0u);
  EXPECT_GE(s.events, s.access_events);
  EXPECT_EQ(s.workers_died, 0u);
  EXPECT_EQ(s.inline_fallbacks, 0u);
  EXPECT_GE(s.occupancy_pct(), 0.0);
  EXPECT_LE(s.occupancy_pct(), 100.0);
}

}  // namespace
}  // namespace futrace
