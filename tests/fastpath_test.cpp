// Differential tests for the detector's hot-path fast paths (direct-mapped
// array shadow, PRECEDE memoization, per-cell stamp elision): with
// options::enable_fastpath off the detector reproduces the unoptimized
// algorithms exactly, and the two configurations must agree on every
// per-location race verdict. This is the --no-fastpath debugging contract.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "futrace/baselines/oracle_detector.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/progen/random_program.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/runtime/shared.hpp"

namespace futrace {
namespace {

using progen::progen_config;
using progen::random_program;

std::set<const void*> racy_set(const detect::race_detector& det) {
  const auto locations = det.racy_locations();
  return {locations.begin(), locations.end()};
}

detect::race_detector::options with_fastpath(bool enabled) {
  detect::race_detector::options opts;
  opts.enable_fastpath = enabled;
  return opts;
}

detect::race_detector::options with_ranges(bool enabled) {
  detect::race_detector::options opts;
  opts.enable_range_checks = enabled;
  return opts;
}

/// Runs `body` under a fresh serial_dfs runtime + detector.
template <typename Body>
detect::race_detector run_detected(detect::race_detector::options opts,
                                   Body&& body) {
  detect::race_detector det(opts);
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run(body);
  return det;
}

// ---------------------------------------------------------------- equivalence

// Generated programs, safe and unsafe handle flow, racy and race-free: the
// fast-path detector and the plain detector must flag exactly the same
// locations. Counts may differ (the stamp elides duplicate reports of an
// already-flagged pair); verdicts may not.
TEST(FastpathDifferential, MatchesPlainDetectorAcrossSeeds) {
  const progen_config shapes[] = {
      {},  // balanced defaults
      {.max_depth = 4,
       .min_stmts = 2,
       .max_stmts = 8,
       .num_vars = 4,
       .max_tasks = 300,
       .w_read = 3,
       .w_write = 2,
       .w_async = 0.5,
       .w_future = 2.5,
       .w_finish = 0.4,
       .w_get = 3.0},
      {.max_depth = 3,
       .min_stmts = 3,
       .max_stmts = 9,
       .num_vars = 3,
       .w_read = 3,
       .w_write = 2.5,
       .w_async = 1.2,
       .w_future = 0.8,
       .w_finish = 0.8,
       .w_get = 1.0,
       .w_promise = 2.0,
       .w_put = 2.6,
       .w_promise_get = 2.6},
  };
  for (const bool safe : {true, false}) {
    for (std::size_t s = 0; s < std::size(shapes); ++s) {
      for (int seed = 1; seed <= 25; ++seed) {
        progen_config cfg = shapes[s];
        cfg.safe_handles = safe;
        cfg.seed = static_cast<std::uint64_t>(seed) * 7919 + s;
        random_program prog(cfg);

        auto fast = run_detected(with_fastpath(true), [&] { prog(); });
        auto plain = run_detected(with_fastpath(false), [&] { prog(); });

        EXPECT_EQ(racy_set(fast), racy_set(plain))
            << "shape=" << s << " safe=" << safe << " seed=" << cfg.seed;
        EXPECT_EQ(fast.race_detected(), plain.race_detected())
            << "shape=" << s << " safe=" << safe << " seed=" << cfg.seed;
        // The structural counters the fast paths must not perturb.
        const auto cf = fast.counters();
        const auto cp = plain.counters();
        EXPECT_EQ(cf.tasks, cp.tasks);
        EXPECT_EQ(cf.reads, cp.reads);
        EXPECT_EQ(cf.writes, cp.writes);
        EXPECT_EQ(cf.non_tree_joins, cp.non_tree_joins);
        EXPECT_EQ(cf.racy_locations, cp.racy_locations);
      }
    }
  }
}

// The fast-path detector must still match the step-level oracle (Theorem 2)
// — a spot check on top of property_test's exhaustive sweep, kept here so a
// fast-path regression fails in the file that owns the feature.
TEST(FastpathDifferential, MatchesOracleOnRacyPrograms) {
  for (int seed = 1; seed <= 20; ++seed) {
    progen_config cfg;
    cfg.seed = static_cast<std::uint64_t>(seed) * 104729;
    random_program prog(cfg);

    detect::race_detector det(with_fastpath(true));
    baselines::oracle_detector oracle;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.add_observer(&oracle);
    rt.run([&] { prog(); });

    const auto det_locations = det.racy_locations();
    const auto oracle_locations = oracle.racy_locations();
    EXPECT_EQ(std::set<const void*>(det_locations.begin(),
                                    det_locations.end()),
              std::set<const void*>(oracle_locations.begin(),
                                    oracle_locations.end()))
        << "seed=" << cfg.seed;
  }
}

// ------------------------------------------------------------------- counters

// A deliberately fast-path-friendly program: array accesses (direct tier),
// tight re-access loops with no task events in between (stamp tier), and a
// non-tree-joined future writer re-checked per element (memo tier). All
// three tiers must actually engage — hit counters are how the benches prove
// the optimization is on, so they must not silently read zero.
TEST(FastpathCounters, AllThreeTiersEngage) {
  auto det = run_detected(with_fastpath(true), [] {
    shared_array<int> data(256);
    // Future chain producing a non-tree join: f2 joins f1 (both children of
    // the root), so f1 reaches the root's set only through a non-tree edge
    // and every precedes(f1, root) check takes the memoizable search path.
    auto f1 = async_future([&] {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data.write(i, static_cast<int>(i));
      }
    });
    auto f2 = async_future([&f1] { f1.get(); });
    f2.get();
    int sum = 0;
    for (std::size_t i = 0; i < data.size(); ++i) sum += data.read(i);
    // Same task, same step: the second sweep re-reads cells this task just
    // stamped.
    for (std::size_t i = 0; i < data.size(); ++i) sum += data.read(i);
    (void)sum;
  });

  EXPECT_FALSE(det.race_detected());
  const auto c = det.counters();
  EXPECT_GT(c.direct_hits, 0u) << "array accesses must use the slab tier";
  EXPECT_GT(c.memo_hits, 0u) << "repeated PRECEDE checks must hit the memo";
  EXPECT_GT(c.stamp_hits, 0u) << "same-task same-step re-reads must be elided";
  EXPECT_EQ(c.direct_hits + c.hashed_hits, c.shared_mem_accesses);
}

TEST(FastpathCounters, NoFastpathDisablesAllTiers) {
  auto program = [] {
    shared_array<int> data(64);
    finish([&] {
      async([&] {
        for (std::size_t i = 0; i < data.size(); ++i) {
          data.write(i, static_cast<int>(i));
        }
      });
    });
    int sum = 0;
    for (std::size_t i = 0; i < data.size(); ++i) sum += data.read(i);
    for (std::size_t i = 0; i < data.size(); ++i) sum += data.read(i);
    (void)sum;
  };
  auto det = run_detected(with_fastpath(false), program);
  const auto c = det.counters();
  EXPECT_EQ(c.direct_hits, 0u);
  EXPECT_EQ(c.memo_hits, 0u);
  EXPECT_EQ(c.stamp_hits, 0u);
  EXPECT_EQ(c.hashed_hits, c.shared_mem_accesses);
  EXPECT_FALSE(det.race_detected());
}

// Racy programs: both configurations must report the same racy locations —
// including the raced-on array cells served from the direct tier.
TEST(FastpathDifferential, RacyArrayVerdictsMatch) {
  auto program = [] {
    shared_array<int> data(32);
    // Unjoined future writes race with the root's reads.
    auto f = async_future([&] {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data.write(i, static_cast<int>(i));
      }
    });
    int sum = 0;
    for (std::size_t i = 0; i < data.size(); ++i) sum += data.read(i);
    f.get();
    (void)sum;
  };
  auto fast = run_detected(with_fastpath(true), program);
  auto plain = run_detected(with_fastpath(false), program);
  EXPECT_TRUE(fast.race_detected());
  EXPECT_EQ(racy_set(fast), racy_set(plain));
  EXPECT_EQ(fast.counters().racy_locations, 32u);
}

// ------------------------------------------------------------------- ranges

// Generated programs now emit bulk read_range/write_range statements (the
// default progen weights include them). The coalesced range engine, the
// per-element decomposition (--no-ranges), and the fully unoptimized path
// must agree on every per-location verdict AND on the structural counters:
// a range of n elements counts as n reads/writes in every configuration.
TEST(RangeDifferential, MatchesNoRangesAcrossSeeds) {
  const progen_config shapes[] = {
      {},  // balanced defaults (range weights on)
      {.max_depth = 4,
       .num_vars = 6,
       .w_read = 1.0,
       .w_write = 1.0,
       .w_range_read = 4.0,  // range-heavy
       .w_range_write = 3.0,
       .w_future = 2.0,
       .w_get = 2.5,
       .max_range_len = 6},
  };
  std::uint64_t total_ranges = 0;
  for (const bool safe : {true, false}) {
    for (std::size_t s = 0; s < std::size(shapes); ++s) {
      for (int seed = 1; seed <= 20; ++seed) {
        progen_config cfg = shapes[s];
        cfg.safe_handles = safe;
        cfg.seed = static_cast<std::uint64_t>(seed) * 15485863 + s;
        random_program prog(cfg);

        auto ranged = run_detected(with_ranges(true), [&] { prog(); });
        total_ranges += prog.stats().range_reads + prog.stats().range_writes;
        auto scalar = run_detected(with_ranges(false), [&] { prog(); });
        auto plain = run_detected(with_fastpath(false), [&] { prog(); });

        EXPECT_EQ(racy_set(ranged), racy_set(scalar))
            << "shape=" << s << " safe=" << safe << " seed=" << cfg.seed;
        EXPECT_EQ(racy_set(ranged), racy_set(plain))
            << "shape=" << s << " safe=" << safe << " seed=" << cfg.seed;
        EXPECT_EQ(ranged.race_detected(), scalar.race_detected());
        const auto cr = ranged.counters();
        const auto cs = scalar.counters();
        EXPECT_EQ(cr.reads, cs.reads);
        EXPECT_EQ(cr.writes, cs.writes);
        EXPECT_EQ(cr.shared_mem_accesses, cs.shared_mem_accesses);
        EXPECT_EQ(cr.racy_locations, cs.racy_locations);
        // --no-ranges must actually take the scalar path.
        EXPECT_EQ(cs.range_hits, 0u);
      }
    }
  }
  // The sweep as a whole must exercise bulk statements (individual short
  // programs may legitimately draw none).
  EXPECT_GT(total_ranges, 0u);
}

// Range verdicts must also match the step-level oracle directly.
TEST(RangeDifferential, MatchesOracleOnRangePrograms) {
  for (int seed = 1; seed <= 15; ++seed) {
    progen_config cfg;
    cfg.w_range_read = 3.0;
    cfg.w_range_write = 2.5;
    cfg.seed = static_cast<std::uint64_t>(seed) * 6700417;
    random_program prog(cfg);

    detect::race_detector det(with_ranges(true));
    baselines::oracle_detector oracle;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.add_observer(&oracle);
    rt.run([&] { prog(); });

    const auto det_locations = det.racy_locations();
    const auto oracle_locations = oracle.racy_locations();
    EXPECT_EQ(std::set<const void*>(det_locations.begin(),
                                    det_locations.end()),
              std::set<const void*>(oracle_locations.begin(),
                                    oracle_locations.end()))
        << "seed=" << cfg.seed;
  }
}

// Full-array sweeps: the first write_all establishes a slab run summary, and
// every later full-array access must be answered by the O(1) summary tier.
TEST(RangeCounters, SummaryTierEngagesOnFullArraySweeps) {
  auto det = run_detected(with_ranges(true), [] {
    shared_array<int> data(256);
    finish([&] {
      async([&] {
        const auto out = data.write_all();
        for (std::size_t i = 0; i < out.size(); ++i) {
          out[i] = static_cast<int>(i);
        }
      });
    });
    long sum = 0;
    for (int pass = 0; pass < 3; ++pass) {
      const auto in = data.read_all();
      for (const int v : in) sum += v;
    }
    (void)sum;
  });

  EXPECT_FALSE(det.race_detected());
  const auto c = det.counters();
  EXPECT_GT(c.range_events, 0u);
  EXPECT_GT(c.range_hits, 0u) << "bulk events must resolve via the run walk";
  EXPECT_GT(c.summary_hits, 0u) << "re-sweeps must hit the O(1) summary";
  // Bookkeeping parity with the scalar path.
  EXPECT_EQ(c.reads, 3u * 256u);
  EXPECT_EQ(c.writes, 256u);
  EXPECT_EQ(c.direct_hits + c.hashed_hits, c.shared_mem_accesses);
}

// Racy ranges: an unjoined future's write_range against the root's
// read_range. Every overlapped cell must be flagged, in both configurations,
// whether the race is caught by the per-cell walk or forces summary
// materialization first.
TEST(RangeDifferential, RacyRangeVerdictsMatch) {
  auto program = [] {
    shared_array<int> data(64);
    auto f = async_future([&] {
      const auto out = data.write_range(0, 32);
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<int>(i);
      }
    });
    const auto in = data.read_range(16, 32);  // cells 16..31 race
    long sum = 0;
    for (const int v : in) sum += v;
    f.get();
    (void)sum;
  };
  auto ranged = run_detected(with_ranges(true), program);
  auto scalar = run_detected(with_ranges(false), program);
  auto plain = run_detected(with_fastpath(false), program);
  EXPECT_TRUE(ranged.race_detected());
  EXPECT_EQ(ranged.counters().racy_locations, 16u);
  EXPECT_EQ(racy_set(ranged), racy_set(scalar));
  EXPECT_EQ(racy_set(ranged), racy_set(plain));
}

// --shadow-hint plumbing: reserving must not change any result.
TEST(FastpathCounters, ShadowReserveIsTransparent) {
  auto program = [] {
    shared<int> x;
    x.write(1);
    (void)x.read();
  };
  detect::race_detector::options opts;
  opts.shadow_reserve = 1 << 14;
  auto hinted = run_detected(opts, program);
  auto plain = run_detected(detect::race_detector::options{}, program);
  EXPECT_EQ(hinted.counters().shared_mem_accesses,
            plain.counters().shared_mem_accesses);
  EXPECT_EQ(hinted.race_detected(), plain.race_detected());
}

}  // namespace
}  // namespace futrace
