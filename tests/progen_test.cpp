// Tests for the random program generator itself: determinism, configuration
// obedience, and that it actually produces the structures the property suite
// relies on.

#include <gtest/gtest.h>

#include "futrace/detect/race_detector.hpp"
#include "futrace/progen/random_program.hpp"
#include "futrace/runtime/runtime.hpp"

namespace futrace::progen {
namespace {

progen_stats run_and_stats(const progen_config& cfg) {
  random_program prog(cfg);
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([&] { prog(); });
  return prog.stats();
}

TEST(Progen, DeterministicStatsForSameSeed) {
  progen_config cfg;
  cfg.seed = 1234;
  const progen_stats a = run_and_stats(cfg);
  const progen_stats b = run_and_stats(cfg);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.writes, b.writes);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.asyncs, b.asyncs);
  EXPECT_EQ(a.futures, b.futures);
  EXPECT_EQ(a.finishes, b.finishes);
}

TEST(Progen, DifferentSeedsGiveDifferentPrograms) {
  progen_config a_cfg, b_cfg;
  a_cfg.seed = 1;
  b_cfg.seed = 2;
  const progen_stats a = run_and_stats(a_cfg);
  const progen_stats b = run_and_stats(b_cfg);
  EXPECT_TRUE(a.reads != b.reads || a.writes != b.writes ||
              a.gets != b.gets || a.futures != b.futures);
}

TEST(Progen, RespectsTaskCap) {
  progen_config cfg;
  cfg.seed = 5;
  cfg.max_tasks = 20;
  cfg.max_depth = 10;
  random_program prog(cfg);
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([&] { prog(); });
  EXPECT_LE(rt.tasks_spawned(), 21u);  // cap + root
}

TEST(Progen, ZeroFutureWeightMeansNoFuturesOrGets) {
  progen_config cfg;
  cfg.seed = 3;
  cfg.w_future = 0.0;
  cfg.w_get = 0.0;
  const progen_stats s = run_and_stats(cfg);
  EXPECT_EQ(s.futures, 0u);
  EXPECT_EQ(s.gets, 0u);
}

TEST(Progen, GeneratesNonTreeJoinsOverSeedSweep) {
  std::uint64_t total_nt = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    progen_config cfg;
    cfg.seed = seed;
    random_program prog(cfg);
    detect::race_detector det;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run([&] { prog(); });
    total_nt += det.counters().non_tree_joins;
  }
  EXPECT_GT(total_nt, 0u)
      << "the generator must exercise non-tree joins for the property suite "
         "to mean anything";
}

TEST(Progen, ExercisesPromisesOverSeedSweep) {
  std::uint64_t puts = 0, pgets = 0, promises = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    progen_config cfg;
    cfg.seed = seed;
    const progen_stats s = run_and_stats(cfg);
    promises += s.promises;
    puts += s.puts;
    pgets += s.promise_gets;
  }
  EXPECT_GT(promises, 0u);
  EXPECT_GT(puts, 0u);
  EXPECT_GT(pgets, 0u);
}

TEST(Progen, ZeroPromiseWeightsMeanNoPromises) {
  progen_config cfg;
  cfg.seed = 4;
  cfg.w_promise = 0.0;
  cfg.w_put = 0.0;
  cfg.w_promise_get = 0.0;
  const progen_stats s = run_and_stats(cfg);
  EXPECT_EQ(s.promises, 0u);
  EXPECT_EQ(s.puts, 0u);
  EXPECT_EQ(s.promise_gets, 0u);
}

TEST(Progen, RunsInAllModesWithoutError) {
  // Generated programs may be racy; every mode must still execute them
  // (serial modes deterministically, parallel mode without crashing —
  // accesses are instrumented wrappers, not torn raw accesses).
  for (const exec_mode mode :
       {exec_mode::serial_elision, exec_mode::serial_dfs}) {
    progen_config cfg;
    cfg.seed = 77;
    random_program prog(cfg);
    runtime rt({.mode = mode});
    rt.run([&] { prog(); });
    EXPECT_GT(prog.stats().reads + prog.stats().writes, 0u);
  }
}

}  // namespace
}  // namespace futrace::progen
