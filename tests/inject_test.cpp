// Unit tests for the fault-injection subsystem itself: ordinal triggers,
// the support-layer allocation gate, scoped installation, plan descriptions,
// and the flag round-trip. Engine-level fault behavior is covered by
// errors_test.cpp and the fault_soak tool.

#include <gtest/gtest.h>

#include <new>

#include "futrace/inject/fault_injector.hpp"
#include "futrace/support/alloc_gate.hpp"
#include "futrace/support/arena.hpp"
#include "futrace/support/flags.hpp"

namespace futrace::inject {
namespace {

TEST(FaultPlan, AnyAndDescribe) {
  fault_plan empty;
  EXPECT_FALSE(empty.any());
  EXPECT_EQ("no-faults", empty.describe());

  fault_plan p;
  p.throw_at_spawn = 3;
  p.yield_every = 7;
  EXPECT_TRUE(p.any());
  const std::string d = p.describe();
  EXPECT_NE(std::string::npos, d.find("spawn-throw@3")) << d;
  EXPECT_NE(std::string::npos, d.find("yield-every=7")) << d;
}

TEST(FaultPlan, FlagRoundTrip) {
  support::flag_parser flags;
  define_fault_flags(flags);
  const char* argv[] = {"test",
                        "--fault-seed=9",
                        "--fault-get=4",
                        "--fault-drop-put=2",
                        "--fault-perturb-steals=true",
                        "--fault-yield-every=5"};
  flags.parse(static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  const fault_plan p = fault_plan_from_flags(flags);
  EXPECT_EQ(9u, p.seed);
  EXPECT_EQ(4u, p.throw_at_get);
  EXPECT_EQ(2u, p.drop_put_at);
  EXPECT_TRUE(p.perturb_steals);
  EXPECT_EQ(5u, p.yield_every);
  EXPECT_EQ(0u, p.throw_at_spawn);
}

TEST(FaultInjector, OrdinalFiresExactlyOnce) {
  fault_plan p;
  p.throw_at_get = 3;
  fault_injector inj(p);
  scoped_injector guard(inj);
  EXPECT_NO_THROW(get_site());
  EXPECT_NO_THROW(get_site());
  EXPECT_THROW(get_site(), injected_fault);
  // The ordinal fired; later sites pass again.
  EXPECT_NO_THROW(get_site());
  const auto c = inj.snapshot();
  EXPECT_EQ(4u, c.get_sites);
  EXPECT_EQ(1u, c.thrown_get);
}

TEST(FaultInjector, HooksAreInertWithoutAnInstalledInjector) {
  EXPECT_EQ(nullptr, current_injector());
  EXPECT_NO_THROW(spawn_site());
  EXPECT_NO_THROW(get_site());
  EXPECT_NO_THROW(put_site());
  EXPECT_FALSE(drop_put_site());
  EXPECT_EQ(11u, steal_start_site(0, 4, 11));  // fallback passes through
  EXPECT_FALSE(yield_site());
  EXPECT_FALSE(support::alloc_should_fail(64));
}

TEST(FaultInjector, ScopedInstallAndUninstall) {
  fault_injector inj(fault_plan{});
  EXPECT_EQ(nullptr, current_injector());
  {
    scoped_injector guard(inj);
    EXPECT_EQ(&inj, current_injector());
  }
  EXPECT_EQ(nullptr, current_injector());
}

TEST(FaultInjector, ArenaAllocationGate) {
  fault_plan p;
  p.fail_alloc_at = 2;
  fault_injector inj(p);
  scoped_injector guard(inj);
  support::arena a(1024);
  // First block allocation passes; the arena then grows on demand and the
  // second gated allocation is denied.
  EXPECT_NE(nullptr, a.allocate(512, 8));
  EXPECT_THROW(a.allocate(4096, 8), std::bad_alloc);
  EXPECT_EQ(1u, inj.snapshot().failed_allocs);
  // The arena object itself stays usable within already-reserved blocks.
  EXPECT_NE(nullptr, a.allocate(16, 8));
}

TEST(FaultInjector, FailAllocEveryRepeats) {
  fault_plan p;
  p.fail_alloc_at = 1;
  p.fail_alloc_every = 2;
  fault_injector inj(p);
  scoped_injector guard(inj);
  EXPECT_TRUE(inj.fail_alloc(8));    // ordinal 1: armed point
  EXPECT_FALSE(inj.fail_alloc(8));   // ordinal 2
  EXPECT_TRUE(inj.fail_alloc(8));    // ordinal 3: every 2nd after
  EXPECT_FALSE(inj.fail_alloc(8));
  EXPECT_TRUE(inj.fail_alloc(8));
  EXPECT_EQ(3u, inj.snapshot().failed_allocs);
}

TEST(FaultInjector, StealPerturbationIsSeededAndBounded) {
  fault_plan p;
  p.perturb_steals = true;
  p.seed = 1234;
  fault_injector inj(p);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const std::uint32_t v = inj.steal_start(0, 8, 5);
    EXPECT_LT(v, 8u);
  }
  EXPECT_EQ(64u, inj.snapshot().perturbed_steals);
  // Same plan, fresh injector: same victim sequence (determinism).
  fault_injector inj2(p);
  fault_injector inj3(p);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_EQ(inj2.steal_start(1, 8, 0), inj3.steal_start(1, 8, 0));
  }
}

TEST(FaultInjector, ForcedYieldCadence) {
  fault_plan p;
  p.yield_every = 3;
  fault_injector inj(p);
  int yields = 0;
  for (int i = 0; i < 12; ++i) {
    if (inj.force_yield()) ++yields;
  }
  EXPECT_EQ(4, yields);
  EXPECT_EQ(4u, inj.snapshot().forced_yields);
}

}  // namespace
}  // namespace futrace::inject
