// Failure-model tests across all three engines: exception propagation out of
// nested finish scopes (first exception wins, every sibling joined),
// detector queryability after a throwing run, injected faults at API sites,
// dropped promise fulfillments (the Appendix A deadlock path), the parallel
// watchdog's wait-graph report, and resource-cap degradation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>

#include "futrace/detect/race_detector.hpp"
#include "futrace/inject/fault_injector.hpp"
#include "futrace/runtime/runtime.hpp"

namespace futrace {
namespace {

constexpr exec_mode k_all_modes[] = {
    exec_mode::serial_elision, exec_mode::serial_dfs, exec_mode::parallel};

runtime_config config_for(exec_mode mode) {
  return {.mode = mode, .workers = 4, .deadlock_timeout_ms = 2000};
}

// --------------------------------------------------- exception propagation

TEST(Errors, TaskThrowInNestedFinishPropagatesInEveryMode) {
  for (const exec_mode mode : k_all_modes) {
    SCOPED_TRACE(exec_mode_name(mode));
    std::atomic<int> siblings{0};
    runtime rt(config_for(mode));
    try {
      rt.run([&siblings] {
        finish([&siblings] {
          // Siblings spawned before the thrower must all join even though
          // the scope fails.
          for (int i = 0; i < 8; ++i) {
            async([&siblings] { siblings.fetch_add(1); });
          }
          finish([] {
            async([] { throw std::runtime_error("task body failed"); });
          });
        });
      });
      FAIL() << "expected the task's exception to escape run()";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ("task body failed", e.what());
    }
    // Guaranteed joining: in every mode the eight siblings were spawned
    // before the thrower, so the failing finish still ran all of them.
    EXPECT_EQ(8, siblings.load());
  }
}

TEST(Errors, FirstExceptionWinsOverLaterSiblingFailures) {
  // Serial modes run tasks inline in depth-first order, so "first" is
  // deterministic: task #0 throws before later siblings spawn.
  for (const exec_mode mode :
       {exec_mode::serial_elision, exec_mode::serial_dfs}) {
    SCOPED_TRACE(exec_mode_name(mode));
    runtime rt(config_for(mode));
    try {
      rt.run([] {
        finish([] {
          for (int i = 0; i < 4; ++i) {
            async([i] { throw std::runtime_error("fail #" +
                                                 std::to_string(i)); });
          }
        });
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ("fail #0", e.what());
    }
  }
  // The parallel engine cannot promise which sibling fails first, only that
  // exactly one of the captured errors surfaces and every task joins.
  runtime rt(config_for(exec_mode::parallel));
  try {
    rt.run([] {
      finish([] {
        for (int i = 0; i < 4; ++i) {
          async([i] { throw std::runtime_error("fail #" +
                                               std::to_string(i)); });
        }
      });
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(0, std::strncmp("fail #", e.what(), 6)) << e.what();
  }
}

TEST(Errors, FinishBodyExceptionBeatsChildFailures) {
  for (const exec_mode mode : k_all_modes) {
    SCOPED_TRACE(exec_mode_name(mode));
    std::atomic<int> joined{0};
    runtime rt(config_for(mode));
    try {
      rt.run([&joined] {
        finish([&joined] {
          async([&joined] { joined.fetch_add(1); });
          throw std::logic_error("finish body failed");
        });
      });
      FAIL() << "expected the finish body's exception";
    } catch (const std::logic_error& e) {
      EXPECT_STREQ("finish body failed", e.what());
    }
    EXPECT_EQ(1, joined.load());  // the child still joined before rethrow
  }
}

TEST(Errors, FutureGetRethrowsTaskException) {
  for (const exec_mode mode : k_all_modes) {
    SCOPED_TRACE(exec_mode_name(mode));
    runtime rt(config_for(mode));
    EXPECT_THROW(
        rt.run([] {
          auto f = async_future(
              []() -> int { throw std::runtime_error("future failed"); });
          (void)f.get();
        }),
        std::runtime_error);
  }
}

// ----------------------------------------------------- detector teardown

TEST(Errors, DetectorQueryableAfterFailFast) {
  detect::race_detector det({.max_reports = 8, .fail_fast = true});
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  EXPECT_THROW(rt.run([] {
                 shared<int> x;
                 async([&x] { x.write(1); });
                 async([&x] { x.write(2); });
               }),
               detect::race_found_error);
  // The detector survives its own throw fully queryable.
  EXPECT_TRUE(det.race_detected());
  EXPECT_EQ(1u, det.race_count());
  ASSERT_EQ(1u, det.reports().size());
  EXPECT_EQ(detect::race_kind::write_write, det.reports()[0].kind);
  EXPECT_EQ(1u, det.racy_locations().size());
  EXPECT_GE(det.counters().tasks, 1u);
  EXPECT_FALSE(det.degraded());
}

TEST(Errors, DetectorQueryableAfterUserException) {
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  EXPECT_THROW(rt.run([] {
                 shared<int> x;
                 finish([&x] {
                   async([&x] { x.write(1); });
                 });
                 x.read();
                 throw std::runtime_error("after the accesses");
               }),
               std::runtime_error);
  const auto c = det.counters();
  EXPECT_EQ(1u, c.writes);
  EXPECT_EQ(1u, c.reads);
  EXPECT_EQ(1u, c.tasks);
  EXPECT_FALSE(det.race_detected());
  // The ambient context is clear and a fresh detected run works.
  detect::race_detector det2;
  runtime rt2({.mode = exec_mode::serial_dfs});
  rt2.add_observer(&det2);
  rt2.run([] {
    shared<int> y;
    y.write(3);
  });
  EXPECT_EQ(1u, det2.counters().writes);
}

// ----------------------------------------------------- injected faults

TEST(Errors, InjectedSpawnFaultFiresAtTheArmedOrdinal) {
  for (const exec_mode mode : k_all_modes) {
    SCOPED_TRACE(exec_mode_name(mode));
    inject::fault_plan plan;
    plan.throw_at_spawn = 3;
    inject::fault_injector inj(plan);
    inject::scoped_injector guard(inj);
    std::atomic<int> ran{0};
    runtime rt(config_for(mode));
    EXPECT_THROW(rt.run([&ran] {
                   finish([&ran] {
                     for (int i = 0; i < 5; ++i) {
                       async([&ran] { ran.fetch_add(1); });
                     }
                   });
                 }),
                 inject::injected_fault);
    const auto c = inj.snapshot();
    EXPECT_EQ(1u, c.thrown_spawn);
    EXPECT_EQ(3u, c.spawn_sites);  // the throwing site is counted
  }
}

TEST(Errors, InjectedGetAndPutFaults) {
  inject::fault_plan plan;
  plan.throw_at_get = 1;
  {
    inject::fault_injector inj(plan);
    inject::scoped_injector guard(inj);
    runtime rt({.mode = exec_mode::serial_dfs});
    EXPECT_THROW(rt.run([] {
                   auto f = async_future([] { return 7; });
                   (void)f.get();
                 }),
                 inject::injected_fault);
    EXPECT_EQ(1u, inj.snapshot().thrown_get);
  }
  inject::fault_plan put_plan;
  put_plan.throw_at_put = 1;
  {
    inject::fault_injector inj(put_plan);
    inject::scoped_injector guard(inj);
    runtime rt({.mode = exec_mode::serial_dfs});
    EXPECT_THROW(rt.run([] {
                   promise<int> p;
                   p.put(1);
                 }),
                 inject::injected_fault);
    EXPECT_EQ(1u, inj.snapshot().thrown_put);
  }
}

// ------------------------------------------- dropped puts and the watchdog

TEST(Errors, DroppedPutDeadlocksSerially) {
  inject::fault_plan plan;
  plan.drop_put_at = 1;
  inject::fault_injector inj(plan);
  inject::scoped_injector guard(inj);
  runtime rt({.mode = exec_mode::serial_dfs});
  EXPECT_THROW(rt.run([] {
                 promise<int> p;
                 p.put(42);  // silently dropped
                 (void)p.get();
               }),
               deadlock_error);
  EXPECT_EQ(1u, inj.snapshot().dropped_puts);
}

TEST(Errors, DroppedPutTripsParallelWatchdogWithWaitGraph) {
  inject::fault_plan plan;
  plan.drop_put_at = 1;
  inject::fault_injector inj(plan);
  inject::scoped_injector guard(inj);
  runtime rt({.mode = exec_mode::parallel,
              .workers = 2,
              .deadlock_timeout_ms = 300});
  try {
    rt.run([] {
      promise<int> p;
      finish([&p] {
        async([&p] { p.put(9); });  // dropped
        async([&p] { (void)p.get(); });
      });
    });
    FAIL() << "expected deadlock_error";
  } catch (const deadlock_error& e) {
    // Satellite requirement: blocked task ids and what they wait on, not a
    // bare timeout string.
    EXPECT_NE(nullptr, std::strstr(e.what(), "blocked: task")) << e.what();
    EXPECT_NE(nullptr, std::strstr(e.what(), "promise")) << e.what();
  }
  EXPECT_EQ(1u, inj.snapshot().dropped_puts);
}

TEST(Errors, ParallelDeadlockReportNamesTheCycle) {
  runtime rt({.mode = exec_mode::parallel,
              .workers = 2,
              .deadlock_timeout_ms = 300});
  try {
    rt.run([] {
      promise<future<int>> pa, pb;
      future<int> a = async_future([&pb] { return pb.get().get(); });
      future<int> b = async_future([&pa] { return pa.get().get(); });
      pa.put(a);
      pb.put(b);
      (void)a.get();
    });
    FAIL() << "expected deadlock_error";
  } catch (const deadlock_error& e) {
    EXPECT_NE(nullptr, std::strstr(e.what(), "blocked: task")) << e.what();
    EXPECT_NE(nullptr, std::strstr(e.what(), "wait cycle: task")) << e.what();
    EXPECT_NE(nullptr, std::strstr(e.what(), "produced by task")) << e.what();
  }
}

TEST(Errors, ParallelEngineUsableAfterWatchdogThrow) {
  {
    runtime rt({.mode = exec_mode::parallel,
                .workers = 2,
                .deadlock_timeout_ms = 200});
    EXPECT_THROW(rt.run([] {
                   promise<int> never;
                   (void)never.get();
                 }),
                 deadlock_error);
  }  // engine destructor asserts no leaked tasks
  std::atomic<int> sum{0};
  runtime rt({.mode = exec_mode::parallel, .workers = 4});
  rt.run([&sum] {
    finish([&sum] {
      for (int i = 1; i <= 10; ++i) {
        async([&sum, i] { sum.fetch_add(i); });
      }
    });
  });
  EXPECT_EQ(55, sum.load());
}

// ------------------------------------------------- resource-cap degradation

TEST(Errors, TaskCapDegradesGracefully) {
  detect::race_detector det({.max_tasks = 4});
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([] {
    shared<int> x;
    finish([&x] {
      for (int i = 0; i < 10; ++i) {
        async([&x] { x.write(1); });  // racy, but unseen once degraded
      }
    });
  });
  EXPECT_TRUE(det.degraded());
  const auto c = det.counters();
  EXPECT_TRUE(c.degraded);
  EXPECT_EQ(10u, c.tasks);    // counters keep counting past the cap
  EXPECT_EQ(10u, c.writes);
  EXPECT_GT(c.untracked_accesses, 0u);
}

TEST(Errors, ShadowByteCapDegradesGracefully) {
  // Full-fidelity baseline first.
  const auto run_racy = [](detect::race_detector& det) {
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    shared_array<int> data(4096);
    rt.run([&data] {
      finish([&data] {
        async([&data] {
          for (std::size_t i = 0; i < data.size(); ++i) data.write(i, 1);
        });
        async([&data] {
          for (std::size_t i = 0; i < data.size(); ++i) data.write(i, 2);
        });
      });
    });
  };
  detect::race_detector full;
  run_racy(full);
  // Big enough for the table's initial allocation, small enough that the
  // first growth step is refused (the map tracks ~512 of 4096 locations).
  detect::race_detector capped({.max_reports = 1 << 20,
                                .max_shadow_bytes = 64 * 1024});
  run_racy(capped);

  EXPECT_FALSE(full.degraded());
  EXPECT_TRUE(capped.degraded());
  const auto cf = full.counters();
  const auto cc = capped.counters();
  EXPECT_EQ(cf.reads, cc.reads);      // counters keep counting
  EXPECT_EQ(cf.writes, cc.writes);
  EXPECT_LT(cc.locations, cf.locations);  // reports stopped materializing
  EXPECT_GT(cc.untracked_accesses, 0u);
  // Degradation loses races; it never invents them.
  EXPECT_LT(cc.racy_locations, cf.racy_locations);
  EXPECT_GT(cc.racy_locations, 0u);  // tracked prefix still detected
}

}  // namespace
}  // namespace futrace
