// Unit tests for the computation graph (paper §3) and the graph recorder
// that reconstructs it from runtime events.

#include <gtest/gtest.h>

#include "futrace/graph/computation_graph.hpp"
#include "futrace/graph/graph_recorder.hpp"
#include "futrace/runtime/runtime.hpp"

namespace futrace::graph {
namespace {

// ------------------------------------------------------------ computation graph

TEST(ComputationGraph, ReachabilityIsReflexive) {
  computation_graph g;
  const step_id s = g.add_step(0);
  EXPECT_TRUE(g.reachable(s, s));
  EXPECT_FALSE(g.parallel(s, s));
}

TEST(ComputationGraph, LinearChain) {
  computation_graph g;
  const step_id a = g.add_step(0);
  const step_id b = g.add_step(0);
  const step_id c = g.add_step(0);
  g.add_edge(a, b, edge_kind::continuation);
  g.add_edge(b, c, edge_kind::continuation);
  EXPECT_TRUE(g.reachable(a, c));
  EXPECT_FALSE(g.reachable(c, a));
  EXPECT_FALSE(g.parallel(a, c));
}

TEST(ComputationGraph, ForkWithoutJoinIsParallel) {
  computation_graph g;
  const step_id parent = g.add_step(0);
  const step_id child = g.add_step(1);
  const step_id cont = g.add_step(0);
  g.add_edge(parent, child, edge_kind::spawn);
  g.add_edge(parent, cont, edge_kind::continuation);
  EXPECT_TRUE(g.parallel(child, cont));
}

TEST(ComputationGraph, JoinOrdersSteps) {
  computation_graph g;
  const step_id parent = g.add_step(0);
  const step_id child = g.add_step(1);
  const step_id cont = g.add_step(0);
  const step_id after = g.add_step(0);
  g.add_edge(parent, child, edge_kind::spawn);
  g.add_edge(parent, cont, edge_kind::continuation);
  g.add_edge(cont, after, edge_kind::continuation);
  g.add_edge(child, after, edge_kind::join_tree);
  EXPECT_TRUE(g.reachable(child, after));
  EXPECT_TRUE(g.parallel(child, cont));
  EXPECT_FALSE(g.parallel(child, after));
}

TEST(ComputationGraph, CountEdgesByKind) {
  computation_graph g;
  const step_id a = g.add_step(0);
  const step_id b = g.add_step(1);
  const step_id c = g.add_step(0);
  g.add_edge(a, b, edge_kind::spawn);
  g.add_edge(a, c, edge_kind::continuation);
  g.add_edge(b, c, edge_kind::join_non_tree);
  EXPECT_EQ(g.count_edges(edge_kind::spawn), 1u);
  EXPECT_EQ(g.count_edges(edge_kind::continuation), 1u);
  EXPECT_EQ(g.count_edges(edge_kind::join_non_tree), 1u);
  EXPECT_EQ(g.count_edges(edge_kind::join_tree), 0u);
}

TEST(ComputationGraph, DotExportMentionsStepsAndTasks) {
  computation_graph g;
  const step_id a = g.add_step(0);
  const step_id b = g.add_step(1);
  g.add_edge(a, b, edge_kind::spawn);
  const std::string dot = g.to_dot({"TM", "TA"});
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("TM"), std::string::npos);
  EXPECT_NE(dot.find("TA"), std::string::npos);
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
}

// --------------------------------------------------------------- graph recorder

// Runs a program under the recorder and returns it for inspection.
template <typename Fn>
graph_recorder record(Fn&& program) {
  graph_recorder rec;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&rec);
  rt.run(std::forward<Fn>(program));
  return rec;
}

TEST(GraphRecorder, EmptyProgramHasRootSteps) {
  auto rec = record([] {});
  // Root: initial step, step on finish start, step after implicit finish.
  EXPECT_GE(rec.graph().step_count(), 2u);
  EXPECT_EQ(rec.task_count(), 1u);
}

TEST(GraphRecorder, AsyncCreatesSpawnAndFinishJoinEdges) {
  auto rec = record([] {
    finish([] { async([] {}); });
  });
  EXPECT_EQ(rec.task_count(), 2u);
  EXPECT_EQ(rec.graph().count_edges(edge_kind::spawn), 1u);
  // One tree join from the async into the explicit finish; one from... the
  // async's IEF is the explicit finish, so exactly one tree join for it.
  EXPECT_GE(rec.graph().count_edges(edge_kind::join_tree), 1u);
}

TEST(GraphRecorder, GetByParentIsTreeJoin) {
  auto rec = record([] {
    auto f = async_future([] { return 1; });
    (void)f.get();
  });
  EXPECT_EQ(rec.graph().count_edges(edge_kind::join_non_tree), 0u);
  EXPECT_GE(rec.graph().count_edges(edge_kind::join_tree), 1u);
}

TEST(GraphRecorder, GetBySiblingIsNonTreeJoin) {
  auto rec = record([] {
    auto a = async_future([] { return 1; });
    auto b = async_future([a] { return a.get() + 1; });
    (void)b.get();
  });
  EXPECT_EQ(rec.graph().count_edges(edge_kind::join_non_tree), 1u);
}

TEST(GraphRecorder, SpawnParentChainAndAncestors) {
  futrace::task_id inner = 0;
  auto rec = record([&] {
    async([&] {
      async([&] { inner = current_task(); });
    });
  });
  EXPECT_EQ(rec.task_count(), 3u);
  EXPECT_EQ(rec.spawn_parent(inner), 1u);
  EXPECT_TRUE(rec.is_ancestor(0, inner));
  EXPECT_FALSE(rec.is_ancestor(inner, 0));
}

// The Figure 1 program at step granularity: Stmt3/Stmt6 run parallel with
// task A, Stmt4/Stmt7 run after it.
TEST(GraphRecorder, Figure1StepLevelOrdering) {
  step_id a_last = k_invalid_step;
  step_id stmt3 = k_invalid_step, stmt4 = k_invalid_step;
  graph_recorder rec;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&rec);
  rt.run([&] {
    auto a = async_future([&] { return 0; });
    auto b = async_future([&] {
      stmt3 = rec.current_step(current_task());  // before A.get()
      (void)a.get();
      stmt4 = rec.current_step(current_task());  // after A.get()
      return 0;
    });
    a_last = rec.last_step(a.task());
    (void)a.get();
    (void)b.get();
  });
  EXPECT_TRUE(rec.graph().parallel(stmt3, a_last));
  EXPECT_TRUE(rec.graph().reachable(a_last, stmt4));
}

}  // namespace
}  // namespace futrace::graph
