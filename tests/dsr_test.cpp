// Unit tests for the dynamic task reachability graph: interval labels
// (Algorithms 1-3), get/finish joins (Algorithms 4-7), and PRECEDE queries
// (Algorithm 10). Event sequences below follow the serial depth-first
// discipline the detector runs under.

#include <gtest/gtest.h>

#include "futrace/dsr/labels.hpp"
#include "futrace/dsr/reachability_graph.hpp"
#include "futrace/support/rng.hpp"

namespace futrace::dsr {
namespace {

// --------------------------------------------------------------------- labels

TEST(Labels, SpawnAssignsIncreasingPreorder) {
  label_allocator alloc;
  const interval_label a = alloc.on_spawn();
  const interval_label b = alloc.on_spawn();
  EXPECT_LT(a.pre, b.pre);
}

TEST(Labels, TemporaryPostorderDecreasesWithDepth) {
  label_allocator alloc;
  const interval_label parent = alloc.on_spawn();
  const interval_label child = alloc.on_spawn();
  // Deeper live tasks have smaller temporary postorder: ancestor subsumes.
  EXPECT_TRUE(parent.subsumes(child));
  EXPECT_FALSE(child.subsumes(parent));
}

TEST(Labels, FinalPostorderKeepsSubsumption) {
  label_allocator alloc;
  interval_label parent = alloc.on_spawn();
  interval_label child = alloc.on_spawn();
  child.post = alloc.on_terminate();  // child ends first (DFS)
  EXPECT_TRUE(parent.subsumes(child));
  parent.post = alloc.on_terminate();
  EXPECT_TRUE(parent.subsumes(child));
  EXPECT_FALSE(child.subsumes(parent));
}

TEST(Labels, SiblingsDoNotSubsumeEachOther) {
  label_allocator alloc;
  interval_label root = alloc.on_spawn();
  interval_label a = alloc.on_spawn();
  a.post = alloc.on_terminate();
  interval_label b = alloc.on_spawn();
  b.post = alloc.on_terminate();
  EXPECT_FALSE(a.subsumes(b));
  EXPECT_FALSE(b.subsumes(a));
  EXPECT_TRUE(root.subsumes(a));
  EXPECT_TRUE(root.subsumes(b));
}

TEST(Labels, TemporaryIdsAreRecycled) {
  label_allocator alloc;
  (void)alloc.on_spawn();  // root stays live
  for (int i = 0; i < 100; ++i) {
    (void)alloc.on_spawn();
    (void)alloc.on_terminate();
  }
  EXPECT_EQ(alloc.live_depth(), 1u);
}

// ----------------------------------------------------------- reachability graph

class reachability_test : public ::testing::Test {
 protected:
  reachability_graph g;
};

TEST_F(reachability_test, RootPrecedesEveryLiveDescendant) {
  const task_id root = g.create_root();
  const task_id child = g.create_task(root);
  const task_id grandchild = g.create_task(child);
  EXPECT_TRUE(g.precedes(root, grandchild));
  EXPECT_TRUE(g.precedes(root, child));
  EXPECT_TRUE(g.precedes(child, grandchild));
}

TEST_F(reachability_test, UnjoinedChildIsParallelWithParentContinuation) {
  const task_id root = g.create_root();
  const task_id child = g.create_task(root);
  g.on_terminate(child);
  // Back in the root: no join has happened yet.
  EXPECT_FALSE(g.precedes(child, root));
}

TEST_F(reachability_test, FinishJoinMergesIntoOwnerSet) {
  const task_id root = g.create_root();
  const task_id child = g.create_task(root);
  g.on_terminate(child);
  g.on_finish_join(root, child);
  EXPECT_TRUE(g.same_set(root, child));
  EXPECT_TRUE(g.precedes(child, root));
  EXPECT_EQ(g.stats().tree_joins, 1u);
  EXPECT_EQ(g.stats().non_tree_joins, 0u);
}

TEST_F(reachability_test, GetByParentIsTreeJoin) {
  const task_id root = g.create_root();
  const task_id fut = g.create_task(root);
  g.on_terminate(fut);
  EXPECT_TRUE(g.on_get(root, fut));
  EXPECT_TRUE(g.same_set(root, fut));
  EXPECT_TRUE(g.precedes(fut, root));
  EXPECT_EQ(g.stats().non_tree_joins, 0u);
}

TEST_F(reachability_test, GetBySiblingIsNonTreeJoin) {
  const task_id root = g.create_root();
  const task_id a = g.create_task(root);
  g.on_terminate(a);
  const task_id b = g.create_task(root);
  // Inside b: b.get(a). b is not in the same set as a's parent (root).
  EXPECT_FALSE(g.on_get(b, a));
  EXPECT_FALSE(g.same_set(a, b));
  EXPECT_TRUE(g.precedes(a, b));
  EXPECT_EQ(g.stats().non_tree_joins, 1u);
  const auto preds = g.set_non_tree_predecessors(b);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0], a);
}

TEST_F(reachability_test, SiblingWithoutJoinStaysParallel) {
  const task_id root = g.create_root();
  const task_id a = g.create_task(root);
  g.on_terminate(a);
  const task_id b = g.create_task(root);
  EXPECT_FALSE(g.precedes(a, b));
}

// The Figure 1 program: main creates futures A, B, C; B gets A; C gets A and
// B; main gets A (tree) and C (tree). After the C join, B transitively
// precedes main's continuation (Stmt10) even though main never joined B
// directly.
TEST_F(reachability_test, Figure1TransitiveJoinThroughC) {
  const task_id main = g.create_root();
  const task_id a = g.create_task(main);
  g.on_terminate(a);
  const task_id b = g.create_task(main);
  EXPECT_FALSE(g.on_get(b, a));  // non-tree: sibling join
  g.on_terminate(b);
  const task_id c = g.create_task(main);
  EXPECT_FALSE(g.on_get(c, a));
  EXPECT_FALSE(g.on_get(c, b));
  g.on_terminate(c);

  // Before main joins anything, all three are parallel with main's
  // continuation.
  EXPECT_FALSE(g.precedes(a, main));
  EXPECT_FALSE(g.precedes(b, main));
  EXPECT_FALSE(g.precedes(c, main));

  EXPECT_TRUE(g.on_get(main, a));  // tree join
  EXPECT_TRUE(g.precedes(a, main));
  EXPECT_FALSE(g.precedes(b, main));  // still parallel (Stmt6..9 window)

  EXPECT_TRUE(g.on_get(main, c));  // tree join; brings C's predecessors
  EXPECT_TRUE(g.precedes(c, main));
  EXPECT_TRUE(g.precedes(b, main)) << "transitive dependence via C (paper "
                                      "§2, Fig. 1 discussion)";
  EXPECT_EQ(g.stats().non_tree_joins, 3u);
}

// Chained non-tree joins across siblings: f1 <- f2 <- f3 <- f4 reachability.
TEST_F(reachability_test, NonTreeJoinChain) {
  const task_id root = g.create_root();
  std::vector<task_id> futs;
  for (int i = 0; i < 5; ++i) {
    const task_id f = g.create_task(root);
    if (!futs.empty()) {
      EXPECT_FALSE(g.on_get(f, futs.back()));
    }
    g.on_terminate(f);
    futs.push_back(f);
  }
  // Every earlier future precedes every later one through the chain.
  for (std::size_t i = 0; i < futs.size(); ++i) {
    for (std::size_t j = 0; j < futs.size(); ++j) {
      if (i == j) continue;
      // Query shape: later task is "current"; only j > i queries arise in a
      // real execution, and those must be i < j ⟹ precedes.
      if (i < j) {
        EXPECT_TRUE(g.precedes(futs[i], futs[j]))
            << "f" << i << " should reach f" << j;
      }
    }
  }
}

// LSA inheritance: tasks spawned by a task that has performed non-tree joins
// record that task as their lowest significant ancestor (Algorithm 2).
TEST_F(reachability_test, LsaAssignment) {
  const task_id root = g.create_root();
  const task_id f1 = g.create_task(root);
  g.on_terminate(f1);

  const task_id t3 = g.create_task(root);
  // t3 performs a non-tree join: its set now has an incoming non-tree edge.
  EXPECT_FALSE(g.on_get(t3, f1));
  const task_id t4 = g.create_task(t3);
  EXPECT_EQ(g.set_lsa(t4), t3) << "parent with non-tree joins is the LSA";
  const task_id t5 = g.create_task(t4);
  EXPECT_EQ(g.set_lsa(t5), t3) << "LSA is inherited through clean parents";
}

// A descendant of a task that joined a future must see the future through the
// significant-ancestor chain.
TEST_F(reachability_test, DescendantSeesAncestorsNonTreeJoin) {
  const task_id root = g.create_root();
  const task_id producer = g.create_task(root);
  g.on_terminate(producer);

  const task_id consumer = g.create_task(root);
  EXPECT_FALSE(g.on_get(consumer, producer));  // non-tree
  // consumer spawns a child after the get; producer precedes the child.
  const task_id child = g.create_task(consumer);
  EXPECT_TRUE(g.precedes(producer, child));
  const task_id grandchild = g.create_task(child);
  EXPECT_TRUE(g.precedes(producer, grandchild));
}

TEST_F(reachability_test, InvalidTaskAlwaysPrecedes) {
  const task_id root = g.create_root();
  EXPECT_TRUE(g.precedes(k_invalid_task, root));
}

TEST_F(reachability_test, SpawnAncestorQueriesUseOwnLabels) {
  const task_id root = g.create_root();
  const task_id a = g.create_task(root);
  const task_id b = g.create_task(a);
  g.on_terminate(b);
  g.on_terminate(a);
  EXPECT_TRUE(g.is_spawn_ancestor(root, a));
  EXPECT_TRUE(g.is_spawn_ancestor(root, b));
  EXPECT_TRUE(g.is_spawn_ancestor(a, b));
  EXPECT_FALSE(g.is_spawn_ancestor(b, a));
}

// Merging keeps the ancestor-side label: after a finish join the merged set
// carries the owner's interval.
TEST_F(reachability_test, MergeKeepsAncestorLabel) {
  const task_id root = g.create_root();
  const interval_label root_label = g.set_label(root);
  const task_id child = g.create_task(root);
  g.on_terminate(child);
  g.on_finish_join(root, child);
  EXPECT_EQ(g.set_label(child).pre, root_label.pre);
}

// A future joined by get() and later re-joined by its IEF must not break
// anything (the merge is a no-op the second time).
TEST_F(reachability_test, GetThenFinishJoinIsIdempotent) {
  const task_id root = g.create_root();
  const task_id fut = g.create_task(root);
  g.on_terminate(fut);
  EXPECT_TRUE(g.on_get(root, fut));
  g.on_finish_join(root, fut);  // IEF of fut ends later
  EXPECT_TRUE(g.same_set(root, fut));
  EXPECT_EQ(g.stats().tree_joins, 1u);
}

// Deep spawn chains stress the temporary-postorder recycling.
TEST_F(reachability_test, DeepSpawnChain) {
  const task_id root = g.create_root();
  task_id cur = root;
  std::vector<task_id> chain{root};
  for (int i = 0; i < 500; ++i) {
    cur = g.create_task(cur);
    chain.push_back(cur);
  }
  // Everything on the live chain: ancestors precede the leaf.
  for (const task_id t : chain) {
    EXPECT_TRUE(g.precedes(t, cur));
  }
  // Unwind with terminations and IEF joins into the root's finish... the
  // chain collapses into nested sets.
  for (std::size_t i = chain.size() - 1; i > 0; --i) {
    g.on_terminate(chain[i]);
    g.on_finish_join(chain[i - 1], chain[i]);
  }
  EXPECT_TRUE(g.same_set(root, cur));
  EXPECT_TRUE(g.precedes(cur, root));
}

// Diamond: two independent futures, a consumer joins both.
TEST_F(reachability_test, DiamondJoin) {
  const task_id root = g.create_root();
  const task_id left = g.create_task(root);
  g.on_terminate(left);
  const task_id right = g.create_task(root);
  g.on_terminate(right);
  const task_id sink = g.create_task(root);
  EXPECT_FALSE(g.on_get(sink, left));
  EXPECT_FALSE(g.on_get(sink, right));
  EXPECT_TRUE(g.precedes(left, sink));
  EXPECT_TRUE(g.precedes(right, sink));
  EXPECT_FALSE(g.precedes(left, right));  // independent branches
  g.on_terminate(sink);
}

// Statistics counters reflect the structure.
TEST_F(reachability_test, StatsCounters) {
  const task_id root = g.create_root();
  const task_id a = g.create_task(root);
  g.on_terminate(a);
  const task_id b = g.create_task(root);
  g.on_get(b, a);
  g.on_terminate(b);
  g.on_get(root, b);
  g.on_finish_join(root, a);
  EXPECT_TRUE(g.precedes(a, root));

  const auto& s = g.stats();
  EXPECT_EQ(s.tasks_created, 3u);
  EXPECT_EQ(s.non_tree_joins, 1u);   // b.get(a)
  EXPECT_EQ(s.tree_joins, 2u);       // root.get(b), finish join of a
  EXPECT_GT(s.precede_queries, 0u);
}

TEST_F(reachability_test, DotExportShowsSetsAndEdges) {
  const task_id root = g.create_root();
  const task_id a = g.create_task(root);
  g.on_terminate(a);
  const task_id b = g.create_task(root);
  g.on_get(b, a);  // non-tree edge a -> b
  g.on_terminate(b);
  g.on_finish_join(root, a);
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph reachability_graph"), std::string::npos);
  EXPECT_NE(dot.find("nt"), std::string::npos);
  EXPECT_NE(dot.find("T0"), std::string::npos);
  // a merged into root's set: they print as one node.
  EXPECT_NE(dot.find("T0,T1"), std::string::npos);
}

// Property-style sweep: random join sequences must keep the interval-label
// invariants (ancestor subsumption on own labels; representative labels
// match the shallowest member).
TEST(ReachabilityInvariants, RandomJoinSequences) {
  futrace::support::xoshiro256 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    reachability_graph g;
    std::vector<task_id> stack{g.create_root()};
    std::vector<task_id> done;
    std::vector<std::pair<task_id, task_id>> parent_of;  // (child, parent)
    for (int step = 0; step < 200; ++step) {
      const double p = rng.uniform();
      if (p < 0.4 || stack.size() == 1) {
        // spawn
        if (stack.size() < 40) {
          const task_id parent = stack.back();
          const task_id child = g.create_task(parent);
          parent_of.emplace_back(child, parent);
          stack.push_back(child);
        }
      } else if (p < 0.75) {
        // terminate current
        const task_id t = stack.back();
        stack.pop_back();
        g.on_terminate(t);
        done.push_back(t);
      } else if (!done.empty()) {
        // join a completed task: get by current
        const task_id target = done[rng.below(done.size())];
        g.on_get(stack.back(), target);
      }
    }
    // Invariant: spawn ancestors subsume descendants (own labels).
    for (const auto& [child, parent] : parent_of) {
      EXPECT_TRUE(g.is_spawn_ancestor(parent, child));
      EXPECT_FALSE(g.is_spawn_ancestor(child, parent));
    }
    // Invariant: live ancestors precede the current task.
    for (const task_id t : stack) {
      EXPECT_TRUE(g.precedes(t, stack.back()));
    }
  }
}

}  // namespace
}  // namespace futrace::dsr
