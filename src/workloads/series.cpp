#include "futrace/workloads/series.hpp"

#include <cmath>

#include "futrace/support/assert.hpp"

namespace futrace::workloads {
namespace {

constexpr double k_period = 2.0;

double the_function(double x, double omega_n, int select) {
  // JGF Series kernel: f, f·cos(ω·x), f·sin(ω·x) for f(x) = (x+1)^x.
  const double base = std::pow(x + 1.0, x);
  switch (select) {
    case 0:
      return base;
    case 1:
      return base * std::cos(omega_n * x);
    default:
      return base * std::sin(omega_n * x);
  }
}

double trapezoid_integrate(double x0, double x1, int nsteps, double omega_n,
                           int select) {
  const double dx = (x1 - x0) / nsteps;
  double x = x0;
  double value = the_function(x0, omega_n, select) / 2.0;
  for (int i = 1; i < nsteps; ++i) {
    x += dx;
    value += the_function(x, omega_n, select);
  }
  value += the_function(x1, omega_n, select) / 2.0;
  return value * dx;
}

}  // namespace

series_workload::series_workload(const series_config& config) : cfg_(config) {
  FUTRACE_CHECK(cfg_.coefficients >= 1);
  FUTRACE_CHECK(cfg_.integration_points >= 2);
}

double series_workload::coefficient(std::size_t i, bool sine) const {
  const double omega = 2.0 * M_PI * static_cast<double>(i) / k_period;
  return 2.0 / k_period *
         trapezoid_integrate(0.0, k_period, cfg_.integration_points, omega,
                             sine ? 2 : 1);
}

void series_workload::operator()() {
  const std::size_t n = cfg_.coefficients;
  a_.assign(n + 1, 0.0);
  b_.assign(n + 1, 0.0);

  // a_0 is computed by the main task, as in JGF.
  a_.write(0, trapezoid_integrate(0.0, k_period, cfg_.integration_points,
                                  0.0, 0) /
                  k_period);
  b_.write(0, 0.0);

  if (!cfg_.use_futures) {
    finish([&] {
      for (std::size_t i = 1; i <= n; ++i) {
        async([this, i] {
          a_.write(i, coefficient(i, /*sine=*/false));
          b_.write(i, coefficient(i, /*sine=*/true));
        });
      }
    });
    return;
  }

  // Future variant: handles live in shared memory (one instrumented write at
  // creation, one instrumented read at the join), matching the paper's
  // "+2 accesses per future task" lower bound.
  handles_.assign(n + 1, future<void>{});
  for (std::size_t i = 1; i <= n; ++i) {
    handles_.write(i, async_future([this, i] {
      a_.write(i, coefficient(i, /*sine=*/false));
      b_.write(i, coefficient(i, /*sine=*/true));
    }));
  }
  // Bulk read of the handle array, then the joins.
  const auto hs = handles_.read_range(1, n);
  for (std::size_t i = 0; i < n; ++i) {
    future<void> f = hs[i];
    f.get();
  }
}

bool series_workload::verify() const {
  const std::size_t n = cfg_.coefficients;
  const std::size_t probes[] = {1, n / 2 + 1, n};
  for (const std::size_t i : probes) {
    if (i < 1 || i > n) continue;
    if (std::abs(a_.peek(i) - coefficient(i, false)) > 1e-12) return false;
    if (std::abs(b_.peek(i) - coefficient(i, true)) > 1e-12) return false;
  }
  // a_0 recomputed the same way must match bit-for-bit, and land near
  // JGF's reference value 2.8730 (loosely: the trapezoid grid may be coarse).
  const double a0 = trapezoid_integrate(0.0, k_period, cfg_.integration_points,
                                        0.0, 0) /
                    k_period;
  return a_.peek(0) == a0 && std::abs(a0 - 2.8730) < 0.2;
}

double series_workload::checksum() const {
  double sum = 0.0;
  for (std::size_t i = 0; i <= cfg_.coefficients; ++i) {
    sum += a_.peek(i) + b_.peek(i);
  }
  return sum;
}

}  // namespace futrace::workloads
