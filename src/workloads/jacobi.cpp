#include "futrace/workloads/jacobi.hpp"

#include <algorithm>
#include <cmath>

#include "futrace/support/assert.hpp"
#include "futrace/support/rng.hpp"
#include "futrace/support/small_vector.hpp"

namespace futrace::workloads {

jacobi_workload::jacobi_workload(const jacobi_config& config) : cfg_(config) {
  FUTRACE_CHECK(cfg_.n >= 4);
  FUTRACE_CHECK(cfg_.tile >= 1);
  FUTRACE_CHECK(cfg_.iterations >= 1);
  const std::size_t interior = cfg_.n - 2;
  tiles_ = (interior + cfg_.tile - 1) / cfg_.tile;
}

void jacobi_workload::fill_initial() {
  support::xoshiro256 rng(cfg_.seed);
  initial_.assign(cfg_.n * cfg_.n, 0.0);
  for (double& v : initial_) v = rng.uniform();
  for (int g = 0; g < 2; ++g) {
    grid_[g].assign(cfg_.n * cfg_.n, 0.0);
    for (std::size_t i = 0; i < initial_.size(); ++i) {
      grid_[g].poke(i, initial_[i]);  // untimed setup
    }
  }
  if (cfg_.residual_window > 0) {
    residual_.assign(
        (static_cast<std::size_t>(cfg_.iterations) + 1) * tiles_ * tiles_,
        0.0);
  }
}

void jacobi_workload::operator()() {
  fill_initial();
  const std::size_t n = cfg_.n;
  const std::size_t tile = cfg_.tile;
  const std::size_t tiles = tiles_;

  // done[k % 2][tile]: completion future of a tile at iteration k. Handles
  // are owned by the main task (uninstrumented storage); grid cells carry
  // the shared-memory traffic.
  std::vector<std::vector<future<void>>> done(
      2, std::vector<future<void>>(tiles * tiles));

  for (int k = 1; k <= cfg_.iterations; ++k) {
    const shared_array<double>& src = grid_[(k - 1) % 2];
    shared_array<double>& dst = grid_[k % 2];
    auto& cur = done[k % 2];
    const auto& prev = done[(k - 1) % 2];

    for (std::size_t tr = 0; tr < tiles; ++tr) {
      for (std::size_t tc = 0; tc < tiles; ++tc) {
        // Dependencies: own tile + 4 neighbours at iteration k-1 (and, for
        // the write-after-write on dst, the own tile at k-2, which the own
        // tile at k-1 already transitively joined).
        support::small_vector<std::size_t, 5> deps;
        if (k >= 2) {
          deps.push_back(tr * tiles + tc);
          if (tr > 0) deps.push_back((tr - 1) * tiles + tc);
          if (tr + 1 < tiles) deps.push_back((tr + 1) * tiles + tc);
          if (tc > 0) deps.push_back(tr * tiles + tc - 1);
          if (tc + 1 < tiles) deps.push_back(tr * tiles + tc + 1);
        }
        std::vector<future<void>> dep_futs;
        dep_futs.reserve(deps.size());
        for (const std::size_t d : deps) dep_futs.push_back(prev[d]);

        const std::size_t r0 = 1 + tr * tile;
        const std::size_t r1 = std::min(r0 + tile, n - 1);
        const std::size_t c0 = 1 + tc * tile;
        const std::size_t c1 = std::min(c0 + tile, n - 1);

        const std::size_t tidx = tr * tiles + tc;
        cur[tr * tiles + tc] =
            async_future([this, &src, &dst, dep_futs, r0, r1, c0, c1, k,
                          tidx, tiles] {
              for (const auto& f : dep_futs) f.get();
              double local_residual = 0.0;
              // Bulk accessors: per tile row, three contiguous source
              // strips (row above, row below, and the row itself widened by
              // one on each side to cover the left/right neighbours) plus
              // one destination strip. Same (task, cell, kind) access set
              // as the per-element loop, in four events per row.
              const std::size_t w = c1 - c0;
              for (std::size_t r = r0; r < r1; ++r) {
                const auto up = src.read_range(index(r - 1, c0), w);
                const auto down = src.read_range(index(r + 1, c0), w);
                const auto mid = src.read_range(index(r, c0 - 1), w + 2);
                const auto out = dst.write_range(index(r, c0), w);
                for (std::size_t c = c0; c < c1; ++c) {
                  out[c - c0] = 0.25 * (up[c - c0] + down[c - c0] +
                                        mid[c - c0] + mid[c - c0 + 2]);
                  local_residual += std::abs(out[c - c0] - mid[c - c0 + 1]);
                }
              }
              if (cfg_.residual_window > 0) {
                // Residual history: write this tile's residual, then read
                // the tile's own residuals for the last `residual_window`
                // iterations. Writer (this tile at iteration k-d) and
                // reader are ordered only through the own-tile dependency
                // chain — a d-hop transitive non-tree PRECEDE per read.
                const std::size_t t2 = tiles * tiles;
                const std::size_t kk = static_cast<std::size_t>(k);
                residual_.write(kk * t2 + tidx, local_residual);
                const std::size_t win =
                    std::min(cfg_.residual_window, kk - 1);
                double drift = 0.0;
                for (std::size_t d = 1; d <= win; ++d) {
                  drift += residual_.read((kk - d) * t2 + tidx);
                }
                (void)drift;
              }
            });
      }
    }
  }

  // Join the last iteration (tree joins by the main task).
  for (auto& f : done[cfg_.iterations % 2]) f.get();
}

std::vector<double> jacobi_workload::reference() const {
  const std::size_t n = cfg_.n;
  std::vector<double> cur = initial_;
  std::vector<double> next = initial_;
  for (int k = 1; k <= cfg_.iterations; ++k) {
    for (std::size_t r = 1; r + 1 < n; ++r) {
      for (std::size_t c = 1; c + 1 < n; ++c) {
        next[r * n + c] = 0.25 * (cur[(r - 1) * n + c] + cur[(r + 1) * n + c] +
                                  cur[r * n + c - 1] + cur[r * n + c + 1]);
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

bool jacobi_workload::verify() const {
  const std::vector<double> ref = reference();
  const shared_array<double>& result = grid_[cfg_.iterations % 2];
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (std::abs(result.peek(i) - ref[i]) > 1e-12) return false;
  }
  return true;
}

double jacobi_workload::checksum() const {
  const shared_array<double>& result = grid_[cfg_.iterations % 2];
  double sum = 0.0;
  for (std::size_t i = 0; i < cfg_.n * cfg_.n; ++i) sum += result.peek(i);
  return sum;
}

}  // namespace futrace::workloads
