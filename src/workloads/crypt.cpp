#include "futrace/workloads/crypt.hpp"

#include <algorithm>

#include "futrace/support/assert.hpp"
#include "futrace/support/rng.hpp"

namespace futrace::workloads {

crypt_workload::crypt_workload(const crypt_config& config) : cfg_(config) {
  FUTRACE_CHECK(cfg_.blocks_per_task >= 1);
  cfg_.bytes = (cfg_.bytes + 7) / 8 * 8;
  FUTRACE_CHECK(cfg_.bytes >= 8);

  idea_key key{};
  support::xoshiro256 rng(cfg_.seed);
  for (auto& byte : key) byte = static_cast<std::uint8_t>(rng() & 0xFF);
  enc_keys_ = idea_encrypt_subkeys(key);
  dec_keys_ = idea_decrypt_subkeys(enc_keys_);
}

void crypt_workload::run_pass(const shared_array<std::uint8_t>& input,
                              shared_array<std::uint8_t>& output,
                              const idea_subkeys& keys) {
  const std::size_t blocks = cfg_.bytes / 8;
  const std::size_t stride = cfg_.blocks_per_task;
  const std::size_t tasks = (blocks + stride - 1) / stride;

  auto crypt_range = [&input, &output, &keys, blocks](std::size_t first_block,
                                                      std::size_t count) {
    std::uint8_t in[8];
    std::uint8_t out[8];
    const std::size_t end = std::min(first_block + count, blocks);
    if (end <= first_block) return;
    // One bulk read and one bulk write cover the task's whole contiguous
    // block span; the IDEA kernel then runs on uninstrumented spans.
    const auto src = input.read_range(first_block * 8, (end - first_block) * 8);
    const auto dst = output.write_range(first_block * 8,
                                        (end - first_block) * 8);
    for (std::size_t b = first_block; b < end; ++b) {
      const std::size_t off = (b - first_block) * 8;
      for (std::size_t i = 0; i < 8; ++i) in[i] = src[off + i];
      idea_crypt_block(in, out, keys);
      for (std::size_t i = 0; i < 8; ++i) dst[off + i] = out[i];
    }
  };

  if (!cfg_.use_futures) {
    finish([&] {
      for (std::size_t t = 0; t < tasks; ++t) {
        async([crypt_range, t, stride] { crypt_range(t * stride, stride); });
      }
    });
    return;
  }

  handles_.assign(tasks, future<void>{});
  for (std::size_t t = 0; t < tasks; ++t) {
    handles_.write(t, async_future([crypt_range, t, stride] {
      crypt_range(t * stride, stride);
    }));
  }
  // Bulk read of the handle array, then the joins (futures copy cheaply out
  // of the const view).
  const auto hs = handles_.read_range(0, tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    future<void> f = hs[t];
    f.get();
  }
}

void crypt_workload::operator()() {
  plain_.assign(cfg_.bytes, 0);
  encrypted_.assign(cfg_.bytes, 0);
  decrypted_.assign(cfg_.bytes, 0);
  // Initialize the plaintext without instrumentation (JGF does this in the
  // untimed setup phase).
  support::xoshiro256 rng(cfg_.seed ^ 0x9E3779B97F4A7C15ULL);
  for (std::size_t i = 0; i < cfg_.bytes; ++i) {
    plain_.poke(i, static_cast<std::uint8_t>(rng() & 0xFF));
  }

  run_pass(plain_, encrypted_, enc_keys_);
  run_pass(encrypted_, decrypted_, dec_keys_);
}

bool crypt_workload::verify() const {
  bool any_difference = false;
  for (std::size_t i = 0; i < cfg_.bytes; ++i) {
    if (plain_.peek(i) != decrypted_.peek(i)) return false;
    any_difference |= plain_.peek(i) != encrypted_.peek(i);
  }
  return any_difference;
}

}  // namespace futrace::workloads
