#include "futrace/workloads/strassen.hpp"

#include <cmath>

#include "futrace/support/assert.hpp"
#include "futrace/support/rng.hpp"

namespace futrace::workloads {
namespace {

bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

strassen_workload::strassen_workload(const strassen_config& config)
    : cfg_(config) {
  FUTRACE_CHECK_MSG(is_power_of_two(cfg_.n), "matrix edge must be 2^k");
  FUTRACE_CHECK_MSG(is_power_of_two(cfg_.cutoff), "cutoff must be 2^k");
  FUTRACE_CHECK(cfg_.cutoff >= 2 && cfg_.cutoff <= cfg_.n);
}

strassen_workload::mat strassen_workload::alloc(std::size_t n) {
  auto owned = std::make_unique<shared_array<double>>(n * n, 0.0);
  shared_array<double>* raw = owned.get();
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_.push_back(std::move(owned));
  }
  return mat{raw, n};
}

void strassen_workload::multiply_naive(mat a, mat b, mat c) {
  // One bulk read per operand and one bulk write for the result: the block
  // kernel touches every element of all three matrices, so whole-array
  // events carry the same location set as the per-element loop while the
  // arithmetic runs on uninstrumented spans.
  const std::size_t n = a.n;
  const auto av = a.cells->read_all();
  const auto bv = b.cells->read_all();
  const auto cv = c.cells->write_all();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += av[i * n + k] * bv[k * n + j];
      }
      cv[i * n + j] = sum;
    }
  }
}

void strassen_workload::multiply(mat a, mat b, mat c) {
  if (a.n <= cfg_.cutoff) {
    multiply_naive(a, b, c);
    return;
  }
  const std::size_t h = a.n / 2;

  // Materialize the eight input quadrants (instrumented copies, as in the
  // array-shuffling the Kastors version performs).
  auto quadrant = [this, h](mat m, std::size_t qr, std::size_t qc) {
    mat q = alloc(h);
    // Full-array write on the fresh quadrant (establishing its slab
    // summary) fed by one contiguous source strip per row.
    const auto qv = q.cells->write_all();
    for (std::size_t i = 0; i < h; ++i) {
      const auto row = m.cells->read_range((qr * h + i) * m.n + qc * h, h);
      for (std::size_t j = 0; j < h; ++j) qv[i * h + j] = row[j];
    }
    return q;
  };
  const mat a11 = quadrant(a, 0, 0), a12 = quadrant(a, 0, 1);
  const mat a21 = quadrant(a, 1, 0), a22 = quadrant(a, 1, 1);
  const mat b11 = quadrant(b, 0, 0), b12 = quadrant(b, 0, 1);
  const mat b21 = quadrant(b, 1, 0), b22 = quadrant(b, 1, 1);

  // Each product task computes its operand sums locally, recurses, and
  // returns its result matrix.
  auto sum = [h](mat x, mat y, mat out, double sign) {
    const auto xv = x.cells->read_all();
    const auto yv = y.cells->read_all();
    const auto ov = out.cells->write_all();
    for (std::size_t i = 0; i < h * h; ++i) {
      ov[i] = xv[i] + sign * yv[i];
    }
  };
  auto product = [this, h, sum](mat x1, mat x2, double xsign, bool xpair,
                                mat y1, mat y2, double ysign, bool ypair) {
    return async_future([this, h, sum, x1, x2, xsign, xpair, y1, y2, ysign,
                         ypair] {
      mat left = x1;
      if (xpair) {
        left = alloc(h);
        sum(x1, x2, left, xsign);
      }
      mat right = y1;
      if (ypair) {
        right = alloc(h);
        sum(y1, y2, right, ysign);
      }
      mat m = alloc(h);
      multiply(left, right, m);
      return m;
    });
  };

  auto m1 = product(a11, a22, 1.0, true, b11, b22, 1.0, true);
  auto m2 = product(a21, a22, 1.0, true, b11, b11, 1.0, false);
  auto m3 = product(a11, a11, 1.0, false, b12, b22, -1.0, true);
  auto m4 = product(a22, a22, 1.0, false, b21, b11, -1.0, true);
  auto m5 = product(a11, a12, 1.0, true, b22, b22, 1.0, false);
  auto m6 = product(a21, a11, -1.0, true, b11, b12, 1.0, true);
  auto m7 = product(a12, a22, -1.0, true, b21, b22, 1.0, true);

  // Combine tasks: sibling get()s on the products they consume (non-tree
  // joins), then quadrant assembly.
  auto combine = [this, h](std::initializer_list<future<mat>> terms,
                           std::initializer_list<double> signs) {
    std::vector<future<mat>> fs(terms);
    std::vector<double> ss(signs);
    return async_future([this, h, fs, ss] {
      mat out = alloc(h);
      for (std::size_t t = 0; t < fs.size(); ++t) {
        const mat m = fs[t].get();
        const auto mv = m.cells->read_all();
        if (t == 0) {
          const auto ov = out.cells->write_all();
          for (std::size_t i = 0; i < h * h; ++i) ov[i] = ss[t] * mv[i];
          continue;
        }
        const auto prev = out.cells->read_all();
        const auto ov = out.cells->write_all();
        for (std::size_t i = 0; i < h * h; ++i) {
          ov[i] = prev[i] + ss[t] * mv[i];
        }
      }
      return out;
    });
  };

  auto c11 = combine({m1, m4, m5, m7}, {1.0, 1.0, -1.0, 1.0});
  auto c12 = combine({m3, m5}, {1.0, 1.0});
  auto c21 = combine({m2, m4}, {1.0, 1.0});
  auto c22 = combine({m1, m2, m3, m6}, {1.0, -1.0, 1.0, 1.0});

  // Tree joins by the parent, then assembly into c.
  auto place = [this, h, c](future<mat> q, std::size_t qr, std::size_t qc) {
    const mat m = q.get();
    const auto mv = m.cells->read_all();
    for (std::size_t i = 0; i < h; ++i) {
      const auto row = c.cells->write_range((qr * h + i) * c.n + qc * h, h);
      for (std::size_t j = 0; j < h; ++j) row[j] = mv[i * h + j];
    }
  };
  place(c11, 0, 0);
  place(c12, 0, 1);
  place(c21, 1, 0);
  place(c22, 1, 1);
}

void strassen_workload::operator()() {
  pool_.clear();
  support::xoshiro256 rng(cfg_.seed);
  const std::size_t n = cfg_.n;
  input_a_.resize(n * n);
  input_b_.resize(n * n);
  for (auto& v : input_a_) v = rng.uniform() - 0.5;
  for (auto& v : input_b_) v = rng.uniform() - 0.5;

  a_ = alloc(n);
  b_ = alloc(n);
  c_ = alloc(n);
  for (std::size_t i = 0; i < n * n; ++i) {
    a_.cells->poke(i, input_a_[i]);  // untimed setup
    b_.cells->poke(i, input_b_[i]);
  }
  multiply(a_, b_, c_);
}

bool strassen_workload::verify() const {
  const std::size_t n = cfg_.n;
  // Naive reference on the untimed copies; Strassen loses a few bits to the
  // extra additions, so compare with a scaled tolerance.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += input_a_[i * n + k] * input_b_[k * n + j];
      }
      if (std::abs(c_.cells->peek(i * n + j) - sum) >
          1e-9 * static_cast<double>(n)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace futrace::workloads
