#include "futrace/workloads/smith_waterman.hpp"

#include <algorithm>
#include <atomic>

#include "futrace/support/assert.hpp"
#include "futrace/support/rng.hpp"

namespace futrace::workloads {

sw_workload::sw_workload(const sw_config& config) : cfg_(config) {
  FUTRACE_CHECK(cfg_.rows >= 1 && cfg_.cols >= 1 && cfg_.tile >= 1);
  support::xoshiro256 rng(cfg_.seed);
  seq_a_.resize(cfg_.rows);
  seq_b_.resize(cfg_.cols);
  for (auto& c : seq_a_) c = static_cast<std::uint8_t>(rng.below(4));
  for (auto& c : seq_b_) c = static_cast<std::uint8_t>(rng.below(4));
}

void sw_workload::operator()() {
  const std::size_t rows = cfg_.rows;
  const std::size_t cols = cfg_.cols;
  h_.assign((rows + 1) * (cols + 1), 0);

  const std::size_t tiles_r = (rows + cfg_.tile - 1) / cfg_.tile;
  const std::size_t tiles_c = (cols + cfg_.tile - 1) / cfg_.tile;
  std::vector<future<int>> done(tiles_r * tiles_c);

  for (std::size_t ti = 0; ti < tiles_r; ++ti) {
    for (std::size_t tj = 0; tj < tiles_c; ++tj) {
      std::vector<future<int>> deps;
      if (ti > 0) deps.push_back(done[(ti - 1) * tiles_c + tj]);
      if (tj > 0) deps.push_back(done[ti * tiles_c + tj - 1]);
      if (ti > 0 && tj > 0) deps.push_back(done[(ti - 1) * tiles_c + tj - 1]);

      const std::size_t r0 = 1 + ti * cfg_.tile;
      const std::size_t r1 = std::min(r0 + cfg_.tile, rows + 1);
      const std::size_t c0 = 1 + tj * cfg_.tile;
      const std::size_t c1 = std::min(c0 + cfg_.tile, cols + 1);

      done[ti * tiles_c + tj] = async_future([this, deps, r0, r1, c0, c1] {
        for (const auto& f : deps) (void)f.get();
        // Bulk accessors per tile row: one strip of the previous row
        // covering the diagonal and up neighbours, one strip of this row
        // starting at the left neighbour, and the output strip. `left`
        // aliases the cells `out` fills, so left[c - c0] for c > c0 reads
        // the value stored earlier in this loop — the same dataflow as the
        // per-element version.
        const std::size_t w = c1 - c0;
        int tile_best = 0;
        for (std::size_t r = r0; r < r1; ++r) {
          const auto prev = h_.read_range(index(r - 1, c0 - 1), w + 1);
          const auto left = h_.read_range(index(r, c0 - 1), w);
          const auto out = h_.write_range(index(r, c0), w);
          for (std::size_t c = c0; c < c1; ++c) {
            const int diag =
                prev[c - c0] + score(seq_a_[r - 1], seq_b_[c - 1]);
            const int up = prev[c - c0 + 1] + cfg_.gap;
            const int lf = left[c - c0] + cfg_.gap;
            const int v = std::max({0, diag, up, lf});
            out[c - c0] = v;
            tile_best = std::max(tile_best, v);
          }
        }
        return tile_best;
      });
    }
  }

  int best = 0;
  for (auto& f : done) best = std::max(best, f.get());
  best_ = best;
}

std::vector<int> sw_workload::reference() const {
  const std::size_t rows = cfg_.rows;
  const std::size_t cols = cfg_.cols;
  std::vector<int> ref((rows + 1) * (cols + 1), 0);
  for (std::size_t r = 1; r <= rows; ++r) {
    for (std::size_t c = 1; c <= cols; ++c) {
      const int diag = ref[(r - 1) * (cols + 1) + c - 1] +
                       score(seq_a_[r - 1], seq_b_[c - 1]);
      const int up = ref[(r - 1) * (cols + 1) + c] + cfg_.gap;
      const int left = ref[r * (cols + 1) + c - 1] + cfg_.gap;
      ref[r * (cols + 1) + c] = std::max({0, diag, up, left});
    }
  }
  return ref;
}

bool sw_workload::verify() const {
  const std::vector<int> ref = reference();
  int ref_best = 0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    if (h_.peek(i) != ref[i]) return false;
    ref_best = std::max(ref_best, ref[i]);
  }
  return best_ == ref_best;
}

}  // namespace futrace::workloads
