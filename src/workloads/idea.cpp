#include "futrace/workloads/idea.hpp"

namespace futrace::workloads {
namespace {

constexpr std::uint32_t k_modulus = 0x10001;  // 2^16 + 1

std::uint16_t load_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

void store_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xFF);
}

std::uint16_t add_inv(std::uint16_t x) {
  return static_cast<std::uint16_t>(0x10000 - x);
}

}  // namespace

std::uint16_t idea_mul(std::uint16_t a, std::uint16_t b) {
  // 0 encodes 2^16 ≡ -1 (mod 2^16+1), so 0 ⊙ b = -b and a ⊙ 0 = -a.
  if (a == 0) return static_cast<std::uint16_t>((k_modulus - b) & 0xFFFF);
  if (b == 0) return static_cast<std::uint16_t>((k_modulus - a) & 0xFFFF);
  const std::uint32_t p = static_cast<std::uint32_t>(a) * b;
  const std::uint32_t hi = p >> 16;
  const std::uint32_t lo = p & 0xFFFF;
  // lo - hi mod 2^16+1, with the borrow adding 1 (since 2^16 ≡ -1).
  return static_cast<std::uint16_t>(lo - hi + (lo < hi ? 1 : 0));
}

std::uint16_t idea_mul_inv(std::uint16_t x) {
  // Fermat: x^(m-2) mod m in the group where 0 encodes 2^16.
  if (x <= 1) return x;  // 0 and 1 are self-inverse
  std::uint64_t base = x;
  std::uint64_t result = 1;
  std::uint32_t exp = k_modulus - 2;
  while (exp != 0) {
    if (exp & 1) result = (result * base) % k_modulus;
    base = (base * base) % k_modulus;
    exp >>= 1;
  }
  return static_cast<std::uint16_t>(result & 0xFFFF);
}

idea_subkeys idea_encrypt_subkeys(const idea_key& key) {
  idea_subkeys keys{};
  // First 8 subkeys are the user key itself.
  for (int i = 0; i < 8; ++i) keys[i] = load_be16(&key[2 * i]);
  // Remaining subkeys: each batch of 8 reads the 128-bit key rotated left by
  // 25 bits relative to the previous batch (standard PGP formulation).
  for (int i = 8; i < 52; ++i) {
    std::uint16_t hi, lo;
    if ((i & 7) < 6) {
      hi = keys[i - 7];
      lo = keys[i - 6];
    } else if ((i & 7) == 6) {
      hi = keys[i - 7];
      lo = keys[i - 14];
    } else {
      hi = keys[i - 15];
      lo = keys[i - 14];
    }
    keys[i] = static_cast<std::uint16_t>(((hi & 0x7F) << 9) | (lo >> 7));
  }
  return keys;
}

idea_subkeys idea_decrypt_subkeys(const idea_subkeys& enc) {
  idea_subkeys dec{};
  // Output transform of decryption uses the inverse of the input transform.
  dec[0] = idea_mul_inv(enc[48]);
  dec[1] = add_inv(enc[49]);
  dec[2] = add_inv(enc[50]);
  dec[3] = idea_mul_inv(enc[51]);
  dec[4] = enc[46];
  dec[5] = enc[47];
  for (int round = 1; round < 8; ++round) {
    const int e = 48 - 6 * round;  // start of the matching encryption round
    const int d = 6 * round;
    dec[d + 0] = idea_mul_inv(enc[e]);
    // Middle rounds swap the two addition subkeys (the round function swaps
    // the inner words).
    dec[d + 1] = add_inv(enc[e + 2]);
    dec[d + 2] = add_inv(enc[e + 1]);
    dec[d + 3] = idea_mul_inv(enc[e + 3]);
    dec[d + 4] = enc[e - 2];
    dec[d + 5] = enc[e - 1];
  }
  dec[48] = idea_mul_inv(enc[0]);
  dec[49] = add_inv(enc[1]);
  dec[50] = add_inv(enc[2]);
  dec[51] = idea_mul_inv(enc[3]);
  return dec;
}

void idea_crypt_block(const std::uint8_t in[8], std::uint8_t out[8],
                      const idea_subkeys& keys) {
  std::uint16_t x1 = load_be16(in);
  std::uint16_t x2 = load_be16(in + 2);
  std::uint16_t x3 = load_be16(in + 4);
  std::uint16_t x4 = load_be16(in + 6);

  int p = 0;
  for (int round = 0; round < 8; ++round) {
    x1 = idea_mul(x1, keys[p++]);
    x2 = static_cast<std::uint16_t>(x2 + keys[p++]);
    x3 = static_cast<std::uint16_t>(x3 + keys[p++]);
    x4 = idea_mul(x4, keys[p++]);

    const std::uint16_t t2 = x2;
    const std::uint16_t t3 = x3;
    x3 = idea_mul(static_cast<std::uint16_t>(x1 ^ x3), keys[p++]);
    x2 = idea_mul(static_cast<std::uint16_t>((x2 ^ x4) + x3), keys[p++]);
    x3 = static_cast<std::uint16_t>(x3 + x2);

    x1 ^= x2;
    x4 ^= x3;
    x2 ^= t3;
    x3 ^= t2;
  }

  store_be16(out, idea_mul(x1, keys[48]));
  store_be16(out + 2, static_cast<std::uint16_t>(x3 + keys[49]));
  store_be16(out + 4, static_cast<std::uint16_t>(x2 + keys[50]));
  store_be16(out + 6, idea_mul(x4, keys[51]));
}

}  // namespace futrace::workloads
