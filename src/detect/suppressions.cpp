#include "futrace/detect/suppressions.hpp"

#include <fstream>
#include <sstream>

namespace futrace::detect {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool fail(std::string* error, std::size_t line, const std::string& what) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line) + ": " + what;
  }
  return false;
}

}  // namespace

bool suppression_set::glob_match(std::string_view pattern,
                                 std::string_view text) {
  // Iterative backtracking matcher: remembers the latest `*` and re-expands
  // it one character at a time on mismatch. Linear in practice for the
  // short patterns suppression files hold.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool suppression_set::parse(std::string_view text, std::string* error) {
  std::vector<suppression_rule> parsed;
  suppression_rule current;
  bool in_block = false;
  bool named = false;
  std::size_t lineno = 0;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;

    if (line == "{") {
      if (in_block) return fail(error, lineno, "nested '{'");
      in_block = true;
      named = false;
      current = suppression_rule{};
      continue;
    }
    if (line == "}") {
      if (!in_block) return fail(error, lineno, "'}' outside a block");
      if (!named) return fail(error, lineno, "rule block has no name line");
      parsed.push_back(std::move(current));
      in_block = false;
      continue;
    }
    if (!in_block) {
      return fail(error, lineno, "expected '{' to open a rule block");
    }
    const std::size_t colon = line.find(':');
    if (!named) {
      // Site patterns legitimately contain ':' (file:line), so only the
      // first non-comment line of a block may be the bare name.
      if (colon != std::string_view::npos &&
          line.substr(0, colon).find(' ') == std::string_view::npos &&
          (line.substr(0, colon) == "kind" || line.substr(0, colon) == "first" ||
           line.substr(0, colon) == "second" ||
           line.substr(0, colon) == "addr" || line.substr(0, colon) == "tier" ||
           line.substr(0, colon) == "labels")) {
        return fail(error, lineno, "rule block has no name line");
      }
      current.name = std::string(line);
      named = true;
      continue;
    }
    if (colon == std::string_view::npos) {
      return fail(error, lineno, "expected 'field: pattern'");
    }
    const std::string_view field = trim(line.substr(0, colon));
    const std::string value{trim(line.substr(colon + 1))};
    if (value.empty()) return fail(error, lineno, "empty pattern");
    if (field == "kind") {
      current.kind = value;
    } else if (field == "first") {
      current.first = value;
    } else if (field == "second") {
      current.second = value;
    } else if (field == "addr") {
      current.addr = value;
    } else if (field == "tier") {
      current.tier = value;
    } else if (field == "labels") {
      current.labels = value;
    } else {
      return fail(error, lineno, "unknown field '" + std::string(field) + "'");
    }
  }
  if (in_block) return fail(error, lineno, "unterminated rule block");
  rules_.insert(rules_.end(), std::make_move_iterator(parsed.begin()),
                std::make_move_iterator(parsed.end()));
  return true;
}

bool suppression_set::load_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), error);
}

int suppression_set::match(const suppression_query& q) const {
  std::string labels;        // rendered lazily, at most once
  bool have_labels = false;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const suppression_rule& r = rules_[i];
    if (!glob_match(r.kind, q.kind)) continue;
    if (!glob_match(r.first, q.first)) continue;
    if (!glob_match(r.second, q.second)) continue;
    if (!glob_match(r.addr, q.addr)) continue;
    if (!glob_match(r.tier, q.tier)) continue;
    if (r.wants_labels()) {
      if (!have_labels) {
        labels = q.labels ? q.labels() : std::string{};
        have_labels = true;
      }
      if (!glob_match(r.labels, labels)) continue;
    }
    return static_cast<int>(i);
  }
  return -1;
}

}  // namespace futrace::detect
