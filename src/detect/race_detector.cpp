#include "futrace/detect/race_detector.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "futrace/detect/suppressions.hpp"
#include "futrace/inject/hooks.hpp"
#include "futrace/support/assert.hpp"

namespace futrace::detect {

/// Run-local PRECEDE verdict cache for one observer event. No graph
/// mutation can happen between the accesses of one event (union, nt-insert
/// and task switches all ride on *other* observer events), and the querying
/// task is fixed for the event, so both verdict polarities are cacheable
/// keyed on the predecessor task alone. A range walk over a slab typically
/// meets only a handful of distinct writer/reader tasks, which this
/// collapses to one real PRECEDE query each.
struct precede_cache {
  static constexpr std::size_t k_slots = 8;
  task_id tasks[k_slots];
  bool verdicts[k_slots];
  std::size_t size = 0;

  const bool* lookup(task_id before) const {
    for (std::size_t i = 0; i < size; ++i) {
      if (tasks[i] == before) return &verdicts[i];
    }
    return nullptr;
  }

  void store(task_id before, bool verdict) {
    if (size < k_slots) {
      tasks[size] = before;
      verdicts[size] = verdict;
      ++size;
    }
  }
};

const char* race_kind_name(race_kind kind) {
  switch (kind) {
    case race_kind::write_write:
      return "write-write";
    case race_kind::read_write:
      return "read-write";
    case race_kind::write_read:
      return "write-read";
  }
  return "?";
}

namespace {

/// Renders a spawn-tree interval; a temporary postorder id (counting down
/// from MAXINT while the task — or its set's shallowest member — is still
/// live) is meaningless to a reader, so it prints as "*", matching to_dot().
/// Final postorder values come from the dfid counter and can never reach
/// the temporary range, so the midpoint cleanly separates the two.
void append_label(std::ostringstream& out, const dsr::interval_label& label) {
  constexpr std::uint64_t k_temporary_floor = std::uint64_t{1} << 63;
  out << "[" << label.pre << ",";
  if (label.post >= k_temporary_floor) {
    out << "*";
  } else {
    out << label.post;
  }
  out << "]";
}

}  // namespace

std::string race_report::to_string() const {
  std::ostringstream out;
  out << race_kind_name(kind) << " determinacy race at " << location;
  if (user_location != nullptr && user_location != location) {
    out << " (touched " << user_location << ")";
  }
  out << ": task " << first_task << " (" << first_site.file << ":"
      << first_site.line << ")";
  if (witness.valid) {
    out << " ";
    append_label(out, witness.first_label);
  }
  out << " || task " << second_task << " (" << second_site.file << ":"
      << second_site.line << ")";
  if (witness.valid) {
    out << " ";
    append_label(out, witness.second_label);
    out << "; sets ";
    append_label(out, witness.first_set_label);
    out << " || ";
    append_label(out, witness.second_set_label);
    out << "; searched frontier {";
    for (std::size_t i = 0; i < witness.frontier.size(); ++i) {
      if (i != 0) out << ", ";
      out << witness.frontier[i];
    }
    out << "}, " << witness.lsa_hops << " lsa hops; " << witness.tier
        << " tier";
  }
  if (occurrences > 1) {
    out << "; seen " << occurrences << "x";
  }
  return out.str();
}

race_detector::race_detector() : race_detector(options{}) {}

race_detector::race_detector(options opts) : opts_(opts) {
  kinds_.reserve(1024);
  graph_.set_max_tasks(opts_.max_tasks);
  shadow_.set_max_bytes(opts_.max_shadow_bytes);
  graph_.set_memo_enabled(opts_.enable_fastpath);
  backend_ = dsr::make_precede_backend(opts_.precede_backend, graph_);
  backend_->set_memo_enabled(opts_.enable_fastpath);
  shadow_.set_direct_mapped(opts_.enable_fastpath);
  stamp_enabled_ = opts_.enable_fastpath;
  range_enabled_ = opts_.enable_range_checks;
  if (opts_.shadow_reserve != 0) shadow_.reserve(opts_.shadow_reserve);
  if (!opts_.trace_path.empty()) {
    trace_ = std::make_unique<obs::trace_session>(opts_.trace_path);
  }
  if (opts_.suppressions != nullptr) {
    suppression_hits_.assign(opts_.suppressions->size(), 0);
  }
}

void race_detector::on_program_start(task_id root) {
  bump_step();
  if (!trace_muted_) {
    obs::trace_emit(obs::trace_kind::task_begin, obs::trace_track::task, root,
                    static_cast<std::uint64_t>(task_kind::root),
                    k_invalid_task);
  }
  const dsr::task_id id = graph_.create_root();
  FUTRACE_CHECK_MSG(id == root, "detector and runtime task ids diverged");
  backend_->on_root_created(root);
  kinds_.push_back(task_kind::root);
  put_flags_.push_back(0);
  root_chain_.assign(1, root);
  root_chain_tip_ = root;
}

void race_detector::on_task_spawn(task_id parent, task_id child,
                                  task_kind kind) {
  bump_step();
  if (!trace_muted_) {
    obs::trace_emit(obs::trace_kind::task_begin, obs::trace_track::task, child,
                    static_cast<std::uint64_t>(kind), parent);
  }
  // Epoch compaction re-indexes every id-keyed mirror, so it must run
  // before this spawn's entries are appended.
  maybe_epoch_reset(parent, kind);
  // Per-task bookkeeping survives degradation: counters keep counting.
  ++tasks_spawned_;
  if (kind == task_kind::async) ++async_tasks_;
  if (kind == task_kind::future) ++future_tasks_;
  if (kind == task_kind::continuation) {
    ++continuation_tasks_;
    // The root only ever splits via its own puts; each split extends the set
    // of identities that are live at root level (the quiescence frontier).
    if (parent == root_chain_tip_) {
      root_chain_.push_back(child);
      root_chain_tip_ = child;
    }
  }
  kinds_.push_back(kind);
  put_flags_.push_back(0);
  if (!graph_degraded_ &&
      (graph_.at_capacity() ||
       support::alloc_should_fail(sizeof(dsr::task_id) * 16))) {
    // Graceful degradation: this task gets no reachability vertex, so every
    // later precedes() query would be meaningless — stop race checking
    // entirely rather than reporting nonsense. Everything collected so far
    // stays queryable.
    graph_degraded_ = true;
  }
  if (graph_degraded_) return;
  // Algorithm 2: label assignment, set creation, LSA inheritance.
  const dsr::task_id id = graph_.create_task(parent);
  FUTRACE_CHECK_MSG(id == child, "detector and runtime task ids diverged");
  backend_->on_task_created(parent, child, kind == task_kind::continuation);
}

void race_detector::on_promise_put(task_id fulfiller) {
  bump_step();
  if (!trace_muted_) {
    obs::trace_emit(obs::trace_kind::put, obs::trace_track::task, fulfiller);
  }
  ++promise_puts_;
  put_flags_[graph_.id_map().to_index(fulfiller)] = 1;
}

void race_detector::on_task_end(task_id t) {
  bump_step();
  if (!trace_muted_) {
    obs::trace_emit(obs::trace_kind::task_end, obs::trace_track::task, t);
  }
  if (graph_degraded_) return;
  // Algorithm 3: finalize the postorder value.
  graph_.on_terminate(t);
  backend_->on_terminated(t);
}

void race_detector::on_finish_end(task_id owner,
                                  std::span<const task_id> joined) {
  bump_step();
  if (!trace_muted_ && obs::trace_enabled()) {
    obs::trace_emit(obs::trace_kind::finish, obs::trace_track::task, owner,
                    joined.size());
    // Piggyback a PRECEDE counter sample on the (rare) finish event so the
    // timeline shows query pressure without instrumenting the access path.
    const dsr::reachability_stats gs = reachability_stats();
    obs::trace_emit(obs::trace_kind::precede_sample, obs::trace_track::task,
                    owner, gs.precede_queries, gs.memo_hits);
  }
  if (graph_degraded_) return;
  // Algorithm 6: every task whose IEF just ended merges into the owner's
  // set (tree joins).
  for (const task_id t : joined) {
    graph_.on_finish_join(owner, t);
    backend_->on_finish_joined(owner, t);
  }
}

void race_detector::on_get(task_id waiter, task_id target) {
  bump_step();
  if (!trace_muted_) {
    obs::trace_emit(obs::trace_kind::get, obs::trace_track::task, waiter,
                    target);
  }
  // Algorithm 4: tree join (merge) or non-tree join (predecessor edge).
  ++get_operations_;
  if (graph_degraded_) return;
  const bool tree_join = graph_.on_get(waiter, target);
  backend_->on_get_joined(waiter, target, tree_join);
}

void race_detector::on_program_end() {
  // The runtime delivers on_task_end(root) before this hook (both in the
  // normal end_root path and on exceptional unwind), so the root's "B"
  // slice is already paired; nothing to close here. The trace file itself
  // is written when the owning trace_session is destroyed.
}

void race_detector::maybe_epoch_reset(task_id parent, task_kind kind) {
  if (opts_.epoch_reset_interval == 0 || graph_degraded_) return;
  if (++spawns_since_reset_ < opts_.epoch_reset_interval) return;
  // Continuation splits can fire from spawn_end() inside ~spawn_scope — a
  // noexcept context where neither the fault-injection site nor an
  // allocating compaction may throw. Skip them; the next ordinary root-level
  // spawn (always inside spawn_begin, throw-safe) compacts instead.
  if (kind == task_kind::continuation) return;
  // A spawn whose parent is the root-chain tip happens at root level, where
  // the only live tasks are the root's own identities — the quiescence
  // candidate. Anything spawned deeper keeps the interval armed until the
  // execution next returns to root level.
  if (parent != root_chain_tip_) return;
  inject::epoch_reset_site();
  if (!graph_.try_compact(root_chain_)) return;  // e.g. unmerged root async
  spawns_since_reset_ = 0;
  ++epoch_resets_;
  compact_local_state();
}

void race_detector::compact_local_state() {
  backend_->on_compacted();
  const dsr::epoch_id_map& nm = graph_.id_map();
  // Re-index the per-task mirrors: old storage positions (via the pre-reset
  // id_map_) collapse onto the kept prefix of the new layout.
  std::vector<task_kind> kept_kinds;
  std::vector<std::uint8_t> kept_puts;
  kept_kinds.reserve(nm.kept_count() + 1);
  kept_puts.reserve(nm.kept_count() + 1);
  for (const dsr::task_id id : nm.kept()) {
    const dsr::task_id oi = id_map_.to_index(id);
    kept_kinds.push_back(kinds_[oi]);
    kept_puts.push_back(put_flags_[oi]);
  }
  // The tombstone slot stands in for every retired task; is_joinable never
  // receives it (retired ids translate to k_invalid_task), so the entry
  // only keeps the mirrors index-aligned with the graph.
  kept_kinds.push_back(task_kind::continuation);
  kept_puts.push_back(0);
  kinds_ = std::move(kept_kinds);
  put_flags_ = std::move(kept_puts);
  id_map_ = nm;
  // The racy-location list is consumed deduped (racy_locations()), so
  // deduping it in place now changes no observable result and stops a racy
  // hot loop from growing it without bound across epochs.
  std::sort(racy_location_list_.begin(), racy_location_list_.end());
  racy_location_list_.erase(
      std::unique(racy_location_list_.begin(), racy_location_list_.end()),
      racy_location_list_.end());
  // Free cold shadow state: slabs of regions no longer registered, and the
  // hashed tier's excess capacity.
  shadow_.retire_dead_slabs();
}

bool race_detector::ordered(task_id before, task_id after,
                            precede_cache& cache) {
  if (before == k_invalid_task) return true;
  if (const bool* hit = cache.lookup(before)) return *hit;
  const bool verdict = backend_->precedes(before, after);
  cache.store(before, verdict);
  return verdict;
}

void race_detector::check_read_cell(shadow_cell& cell, task_id t, site_id sid,
                                    const void* addr, const void* user_addr,
                                    precede_cache& cache) {
  // Stamp elision: the same task already accessed this cell in this step
  // (no observer event in between), so every PRECEDE verdict the check
  // below would compute is unchanged and re-running it cannot alter any
  // per-location race verdict — a prior access of either kind covers a
  // re-read. Only duplicate reports of an already-reported pair are elided.
  if (stamp_enabled_ && cell.stamp_task == t &&
      (cell.stamp_step & ~k_stamp_write) == step_low_) {
    ++stamp_hits_;
    return;
  }

  bool covered = false;
  for (std::size_t i = 0; i < cell.reader_count();) {
    const reader_entry prev = cell.reader_at(i);
    if (ordered(prev.task, t, cache)) {
      cell.remove_reader_at(i);
      continue;
    }
    if (!is_joinable(prev.task) && !is_joinable(t)) covered = true;
    ++i;
  }

  if (cell.writer != k_invalid_task && !ordered(cell.writer, t, cache)) {
    report(addr, user_addr, race_kind::write_read, cell.writer,
           cell.writer_site, t, sid);
  }

  if (!covered) {
    if (cell.add_reader(reader_entry{t, sid})) {
      shadow_.note_reader_count(cell.reader_count());
    } else {
      // Overflow allocation refused: the reader entry was dropped, so
      // detection results are incomplete from here on.
      shadow_.mark_degraded();
    }
  }
  if (stamp_enabled_) {
    cell.stamp_task = t;
    cell.stamp_step = step_low_;
  }
}

bool race_detector::check_write_cell(shadow_cell& cell, task_id t, site_id sid,
                                     const void* addr, const void* user_addr,
                                     precede_cache& cache) {
  // Stamp elision for writes requires the stamped access to have been a
  // *write*: re-running a write after a write by the same task in the same
  // step is a no-op (readers were already retired or reported, the writer
  // field would be rewritten with the same task). After a mere read the
  // write must still run — it retires readers and takes over the writer
  // field.
  if (stamp_enabled_ && cell.stamp_task == t &&
      cell.stamp_step == (step_low_ | k_stamp_write)) {
    ++stamp_hits_;
    return false;
  }

  bool kept_reader = false;
  for (std::size_t i = 0; i < cell.reader_count();) {
    const reader_entry prev = cell.reader_at(i);
    if (ordered(prev.task, t, cache)) {
      cell.remove_reader_at(i);
      continue;
    }
    report(addr, user_addr, race_kind::read_write, prev.task, prev.site, t,
           sid);
    kept_reader = true;
    ++i;
  }

  if (cell.writer != k_invalid_task && !ordered(cell.writer, t, cache)) {
    report(addr, user_addr, race_kind::write_write, cell.writer,
           cell.writer_site, t, sid);
  }

  cell.writer = t;
  cell.writer_site = sid;
  if (stamp_enabled_) {
    cell.stamp_task = t;
    cell.stamp_step = step_low_ | k_stamp_write;
  }
  return !kept_reader;
}

void race_detector::on_read(task_id t, const void* addr, std::size_t size,
                            access_site site) {
  // The program-touched address, preserved through canonicalization so a
  // race report can print both when they differ (a sub-element access).
  const void* user_addr = addr;
  // Mixed-size decomposition: an access wider than its element geometry
  // covers every underlying shadow cell, not only the one at `addr` (a
  // single-cell check silently under-checks straddling accesses). Applies
  // with or without the fast path — span_of follows the registered element
  // geometry, not the slab tier. Pipelined workers skip it: the producer
  // already decomposed and canonicalized before routing.
  if (!assume_canonical_) {
    const shadow_memory::access_span span = shadow_.span_of(addr, size);
    if (span.count > 1) [[unlikely]] {
      on_read_range(t, span.first, span.count, span.stride, site);
      return;
    }
    // span.first is the canonical element base (== addr unless the access
    // lands mid-element), so all shadow tiers key the same location.
    addr = span.first;
  }
  on_canonical_read(t, addr, user_addr, site);
}

void race_detector::on_canonical_read(task_id t, const void* addr,
                                      const void* user_addr,
                                      access_site site) {
  // Algorithm 9, with the add-rule read as intended (see DESIGN.md §5): the
  // reader is recorded unless a surviving parallel *async* reader already
  // covers an async reader (Lemma 4); future readers are always recorded.
  ++reads_;
  if (graph_degraded_) {
    shadow_.count_only();
    return;
  }
  shadow_cell* cell_ptr = shadow_.try_access(addr);
  if (cell_ptr == nullptr) return;  // shadow degraded: new location untracked
  precede_cache cache;
  check_read_cell(*cell_ptr, t, sites_.intern(site), addr,
                  user_addr != nullptr ? user_addr : addr, cache);
}

void race_detector::on_write(task_id t, const void* addr, std::size_t size,
                             access_site site) {
  const void* user_addr = addr;
  if (!assume_canonical_) {
    const shadow_memory::access_span span = shadow_.span_of(addr, size);
    if (span.count > 1) [[unlikely]] {
      on_write_range(t, span.first, span.count, span.stride, site);
      return;
    }
    addr = span.first;
  }
  on_canonical_write(t, addr, user_addr, site);
}

void race_detector::on_canonical_write(task_id t, const void* addr,
                                       const void* user_addr,
                                       access_site site) {
  // Algorithm 8: check every stored reader and the previous writer; readers
  // that precede the write retire, racing readers stay recorded.
  ++writes_;
  if (graph_degraded_) {
    shadow_.count_only();
    return;
  }
  shadow_cell* cell_ptr = shadow_.try_access(addr);
  if (cell_ptr == nullptr) return;  // shadow degraded: new location untracked
  precede_cache cache;
  check_write_cell(*cell_ptr, t, sites_.intern(site), addr,
                   user_addr != nullptr ? user_addr : addr, cache);
}

bool race_detector::try_summary_read(shadow_memory::direct_range& slab,
                                     task_id t, site_id sid,
                                     std::size_t count) {
  shadow_memory::run_summary& s = slab.summary;
  // Whole-slab stamp: the same task already swept the slab in this step.
  if (stamp_enabled_ && s.stamp_task == t &&
      (s.stamp_step & ~k_stamp_write) == step_low_) {
    stamp_hits_ += count;
    shadow_.note_range_direct(count);
    shadow_.add_reader_samples(
        count * (s.reader.task == k_invalid_task ? 0u : 1u));
    return true;
  }
  const std::uint64_t pre_readers = s.reader.task == k_invalid_task ? 0 : 1;
  bool covered = false;
  if (s.reader.task != k_invalid_task) {
    if (backend_->precedes(s.reader.task, t)) {
      s.reader = reader_entry{};
    } else if (!is_joinable(s.reader.task) && !is_joinable(t)) {
      covered = true;
    } else {
      // Would need a second stored reader per cell — beyond what one
      // uniform interval can represent.
      return false;
    }
  }
  if (s.writer != k_invalid_task && !backend_->precedes(s.writer, t)) {
    // Write-read race on every cell: materialize for exact per-cell
    // reports. (The reader retirement above is exactly what the per-cell
    // walk would also do, so the mutation is safe to keep.)
    return false;
  }
  shadow_.note_range_direct(count);
  shadow_.add_reader_samples(count * pre_readers);
  if (!covered) {
    s.reader = reader_entry{t, sid};
    shadow_.note_reader_count(1);
  }
  if (stamp_enabled_) {
    s.stamp_task = t;
    s.stamp_step = step_low_;
  }
  return true;
}

bool race_detector::try_summary_write(shadow_memory::direct_range& slab,
                                      task_id t, site_id sid,
                                      std::size_t count) {
  shadow_memory::run_summary& s = slab.summary;
  if (stamp_enabled_ && s.stamp_task == t &&
      s.stamp_step == (step_low_ | k_stamp_write)) {
    stamp_hits_ += count;
    shadow_.note_range_direct(count);
    shadow_.add_reader_samples(
        count * (s.reader.task == k_invalid_task ? 0u : 1u));
    return true;
  }
  const std::uint64_t pre_readers = s.reader.task == k_invalid_task ? 0 : 1;
  if (s.reader.task != k_invalid_task) {
    if (!backend_->precedes(s.reader.task, t)) return false;  // read-write race
    s.reader = reader_entry{};
  }
  if (s.writer != k_invalid_task && !backend_->precedes(s.writer, t)) {
    return false;  // write-write race on every cell
  }
  shadow_.note_range_direct(count);
  shadow_.add_reader_samples(count * pre_readers);
  s.writer = t;
  s.writer_site = sid;
  if (stamp_enabled_) {
    s.stamp_task = t;
    s.stamp_step = step_low_ | k_stamp_write;
  }
  return true;
}

void race_detector::on_read_range(task_id t, const void* addr,
                                  std::size_t count, std::size_t stride,
                                  access_site site) {
  if (count == 0) return;
  if (count == 1) {
    on_read(t, addr, stride, site);
    return;
  }
  ++range_events_;
  if (graph_degraded_) {
    reads_ += count;
    shadow_.count_only_n(count);
    return;
  }
  if (!range_enabled_) {
    // --no-ranges: the per-element checking path, element by element.
    execution_observer::on_read_range(t, addr, count, stride, site);
    return;
  }
  const shadow_memory::slab_run run = shadow_.find_run(addr, count, stride);
  if (run.first == nullptr) {
    // Hashed tier, stride mismatch, misalignment, or a run spilling past
    // its slab: fall back to per-element checking for this event.
    execution_observer::on_read_range(t, addr, count, stride, site);
    return;
  }
  reads_ += count;
  const site_id sid = sites_.intern(site);
  if (run.slab->summary.valid) {
    if (run.full && try_summary_read(*run.slab, t, sid, count)) {
      range_hits_ += count;
      summary_hits_ += count;
      return;
    }
    shadow_.materialize(*run.slab);
  }
  shadow_.note_range_direct(count);
  precede_cache cache;
  std::uint64_t sampled = 0;
  shadow_cell* cell = run.first;
  const char* base = static_cast<const char*>(addr);
  for (std::size_t i = 0; i < count; ++i, ++cell) {
    sampled += cell->reader_count();
    const void* elem = base + i * stride;
    check_read_cell(*cell, t, sid, elem, elem, cache);
  }
  shadow_.add_reader_samples(sampled);
  range_hits_ += count;
}

void race_detector::on_write_range(task_id t, const void* addr,
                                   std::size_t count, std::size_t stride,
                                   access_site site) {
  if (count == 0) return;
  if (count == 1) {
    on_write(t, addr, stride, site);
    return;
  }
  ++range_events_;
  if (graph_degraded_) {
    writes_ += count;
    shadow_.count_only_n(count);
    return;
  }
  if (!range_enabled_) {
    execution_observer::on_write_range(t, addr, count, stride, site);
    return;
  }
  const shadow_memory::slab_run run = shadow_.find_run(addr, count, stride);
  if (run.first == nullptr) {
    execution_observer::on_write_range(t, addr, count, stride, site);
    return;
  }
  writes_ += count;
  const site_id sid = sites_.intern(site);
  if (run.slab->summary.valid) {
    if (run.full && try_summary_write(*run.slab, t, sid, count)) {
      range_hits_ += count;
      summary_hits_ += count;
      return;
    }
    shadow_.materialize(*run.slab);
  }
  shadow_.note_range_direct(count);
  precede_cache cache;
  std::uint64_t sampled = 0;
  bool uniform = true;
  shadow_cell* cell = run.first;
  const char* base = static_cast<const char*>(addr);
  for (std::size_t i = 0; i < count; ++i, ++cell) {
    sampled += cell->reader_count();
    const void* elem = base + i * stride;
    uniform &= check_write_cell(*cell, t, sid, elem, elem, cache);
  }
  shadow_.add_reader_samples(sampled);
  range_hits_ += count;
  // A race-free full-slab write leaves every cell in the identical state
  // {writer = t, no readers, stamp (t, step, write)} — collapse it to a run
  // summary so the next full-slab sweep under the same ordering is one
  // PRECEDE query and one summary update instead of O(cells).
  if (run.full && uniform && !shadow_.degraded()) {
    shadow_memory::run_summary s;
    s.writer = t;
    s.writer_site = sid;
    s.stamp_task = stamp_enabled_ ? t : k_invalid_task;
    s.stamp_step = step_low_ | k_stamp_write;
    shadow_.establish_summary(*run.slab, s);
  }
}

void race_detector::report(const void* addr, const void* user_addr,
                           race_kind kind, task_id first, site_id first_site,
                           task_id second, site_id second_site) {
  // Every observed race counts, duplicate or not — the Table 2 counters and
  // racy-location set are independent of how reports are folded.
  ++races_observed_;
  racy_location_list_.push_back(addr);
  obs::trace_emit(obs::trace_kind::race, obs::trace_track::task, second,
                  reinterpret_cast<std::uintptr_t>(addr),
                  static_cast<std::uint64_t>(kind));

  // Service-mode filtering sits between the paper counters (final above)
  // and report materialization: a suppressed or throttled race counts like
  // any other but produces no report and cannot trip fail_fast.
  if (opts_.suppressions != nullptr && !opts_.suppressions->empty()) {
    const access_site fs = sites_.resolve(first_site);
    const access_site ss = sites_.resolve(second_site);
    std::string first_str =
        std::string(fs.file) + ":" + std::to_string(fs.line);
    std::string second_str =
        std::string(ss.file) + ":" + std::to_string(ss.line);
    char addr_buf[32];
    std::snprintf(addr_buf, sizeof addr_buf, "%p", addr);
    suppression_query q;
    q.kind = race_kind_name(kind);
    q.first = first_str;
    q.second = second_str;
    q.addr = addr_buf;
    q.tier = shadow_.tier_name(addr);
    q.labels = [this, first, second]() {
      if (graph_degraded_) return std::string{};
      // explain() is counter- and memo-neutral, so a label-constrained rule
      // cannot perturb any Table 2 counter (see the witness capture below).
      const dsr::precede_explanation ex = graph_.explain(first, second);
      std::ostringstream out;
      append_label(out, ex.a_set_label);
      out << " || ";
      append_label(out, ex.b_set_label);
      return out.str();
    };
    const int rule = opts_.suppressions->match(q);
    if (rule >= 0) {
      ++suppression_hits_[static_cast<std::size_t>(rule)];
      ++suppressed_;
      return;
    }
  }

  if (opts_.error_limit_per_pair != 0 || opts_.error_limit_global != 0) {
    std::uint64_t& pair_count =
        pair_error_counts_[{static_cast<std::uint32_t>(first_site),
                            static_cast<std::uint32_t>(second_site)}];
    const bool pair_over = opts_.error_limit_per_pair != 0 &&
                           pair_count >= opts_.error_limit_per_pair;
    const bool global_over = opts_.error_limit_global != 0 &&
                             global_error_count_ >= opts_.error_limit_global;
    if (pair_over || global_over) {
      ++errors_throttled_;
      error_limited_ = true;
      return;
    }
    ++pair_count;
    ++global_error_count_;
  }

  const report_key key{first_site, second_site, addr,
                       static_cast<std::uint8_t>(kind)};
  const auto [slot, inserted] = report_index_.try_emplace(key, k_report_dropped);
  if (!inserted) {
    // Same site pair, same canonical address, same kind: fold into the
    // first occurrence instead of burning a max_reports slot (a racy loop
    // would otherwise exhaust the cap with identical reports). fail_fast
    // cannot reach here — the first occurrence already threw.
    if (slot->second != k_report_dropped) {
      ++reports_[slot->second].occurrences;
    }
    return;
  }

  race_report materialized;
  materialized.location = addr;
  materialized.user_location = user_addr;
  materialized.kind = kind;
  materialized.first_task = first;
  materialized.second_task = second;
  materialized.first_site = sites_.resolve(first_site);
  materialized.second_site = sites_.resolve(second_site);
  if (!graph_degraded_) {
    // The witness: re-run PRECEDE purely for provenance. explain() touches
    // neither the stats counters nor the memo table, so capturing it here
    // cannot perturb any Table 2 counter or cached verdict.
    dsr::precede_explanation ex = graph_.explain(first, second);
    race_witness& w = materialized.witness;
    w.valid = true;
    w.first_label = ex.a_label;
    w.second_label = ex.b_label;
    w.first_terminated = ex.a_terminated;
    w.second_terminated = ex.b_terminated;
    w.first_set_label = ex.a_set_label;
    w.second_set_label = ex.b_set_label;
    w.frontier = std::move(ex.frontier);
    w.lsa_hops = ex.lsa_hops;
    w.tier = shadow_.tier_name(addr);
  }

  if (reports_.size() < opts_.max_reports) {
    slot->second = reports_.size();
    reports_.push_back(materialized);
  } else {
    // A distinct race site pair lost to the cap: renderers surface these as
    // "N further distinct race sites not shown".
    ++reports_capped_;
  }
  if (opts_.fail_fast) {
    throw race_found_error(std::move(materialized));
  }
}

std::vector<const void*> race_detector::racy_locations() const {
  std::vector<const void*> locations = racy_location_list_;
  std::sort(locations.begin(), locations.end());
  locations.erase(std::unique(locations.begin(), locations.end()),
                  locations.end());
  return locations;
}

detector_counters race_detector::counters() const {
  detector_counters c;
  const dsr::reachability_stats gs = reachability_stats();
  // Scalar tallies survive both degradation (the graph stops growing) and
  // epoch compaction (kinds_ shrinks to the kept tasks).
  c.tasks = tasks_spawned_;
  c.async_tasks = async_tasks_;
  c.future_tasks = future_tasks_;
  c.continuation_tasks = continuation_tasks_;
  c.promise_puts = promise_puts_;
  c.get_operations = get_operations_;
  c.non_tree_joins = gs.non_tree_joins;
  c.shared_mem_accesses = shadow_.access_count();
  c.reads = reads_;
  c.writes = writes_;
  c.avg_readers = shadow_.average_readers();
  c.max_readers = shadow_.max_readers();
  c.locations = shadow_.location_count();
  c.races_observed = races_observed_;
  c.racy_locations = racy_locations().size();
  c.untracked_accesses = shadow_.skipped_accesses();
  c.degraded = degraded();
  c.degradation_reasons = degradation_reasons();
  c.reports_capped = reports_capped_;
  c.epoch_resets = epoch_resets_;
  c.suppressed_races = suppressed_;
  c.errors_throttled = errors_throttled_;
  const shadow_stats& ss = shadow_.stats();
  c.direct_hits = ss.direct_hits;
  c.hashed_hits = ss.hashed_hits;
  c.memo_hits = gs.memo_hits;
  c.stamp_hits = stamp_hits_;
  c.precede_queries = gs.precede_queries;
  c.range_events = range_events_;
  c.range_hits = range_hits_;
  c.summary_hits = summary_hits_;
  return c;
}

std::size_t race_detector::memory_bytes() const {
  return graph_.memory_bytes() + backend_->memory_bytes() +
         shadow_.memory_bytes() + kinds_.capacity() * sizeof(task_kind) +
         put_flags_.capacity();
}

}  // namespace futrace::detect
