#include "futrace/detect/race_detector.hpp"

#include <algorithm>
#include <sstream>

#include "futrace/support/assert.hpp"

namespace futrace::detect {

const char* race_kind_name(race_kind kind) {
  switch (kind) {
    case race_kind::write_write:
      return "write-write";
    case race_kind::read_write:
      return "read-write";
    case race_kind::write_read:
      return "write-read";
  }
  return "?";
}

std::string race_report::to_string() const {
  std::ostringstream out;
  out << race_kind_name(kind) << " determinacy race at " << location
      << ": task " << first_task << " (" << first_site.file << ":"
      << first_site.line << ") || task " << second_task << " ("
      << second_site.file << ":" << second_site.line << ")";
  return out.str();
}

race_detector::race_detector() : race_detector(options{}) {}

race_detector::race_detector(options opts) : opts_(opts) {
  kinds_.reserve(1024);
  graph_.set_max_tasks(opts_.max_tasks);
  shadow_.set_max_bytes(opts_.max_shadow_bytes);
  graph_.set_memo_enabled(opts_.enable_fastpath);
  shadow_.set_direct_mapped(opts_.enable_fastpath);
  stamp_enabled_ = opts_.enable_fastpath;
  if (opts_.shadow_reserve != 0) shadow_.reserve(opts_.shadow_reserve);
}

void race_detector::on_program_start(task_id root) {
  bump_step();
  const dsr::task_id id = graph_.create_root();
  FUTRACE_CHECK_MSG(id == root, "detector and runtime task ids diverged");
  kinds_.push_back(task_kind::root);
  put_flags_.push_back(0);
}

void race_detector::on_task_spawn(task_id parent, task_id child,
                                  task_kind kind) {
  bump_step();
  // Per-task bookkeeping survives degradation: counters keep counting.
  kinds_.push_back(kind);
  put_flags_.push_back(0);
  if (!graph_degraded_ &&
      (graph_.at_capacity() ||
       support::alloc_should_fail(sizeof(dsr::task_id) * 16))) {
    // Graceful degradation: this task gets no reachability vertex, so every
    // later precedes() query would be meaningless — stop race checking
    // entirely rather than reporting nonsense. Everything collected so far
    // stays queryable.
    graph_degraded_ = true;
  }
  if (graph_degraded_) return;
  // Algorithm 2: label assignment, set creation, LSA inheritance.
  const dsr::task_id id = graph_.create_task(parent);
  FUTRACE_CHECK_MSG(id == child, "detector and runtime task ids diverged");
}

void race_detector::on_promise_put(task_id fulfiller) {
  bump_step();
  ++promise_puts_;
  put_flags_[fulfiller] = 1;
}

void race_detector::on_task_end(task_id t) {
  bump_step();
  if (graph_degraded_) return;
  // Algorithm 3: finalize the postorder value.
  graph_.on_terminate(t);
}

void race_detector::on_finish_end(task_id owner,
                                  std::span<const task_id> joined) {
  bump_step();
  if (graph_degraded_) return;
  // Algorithm 6: every task whose IEF just ended merges into the owner's
  // set (tree joins).
  for (const task_id t : joined) graph_.on_finish_join(owner, t);
}

void race_detector::on_get(task_id waiter, task_id target) {
  bump_step();
  // Algorithm 4: tree join (merge) or non-tree join (predecessor edge).
  ++get_operations_;
  if (graph_degraded_) return;
  graph_.on_get(waiter, target);
}

void race_detector::on_read(task_id t, const void* addr, std::size_t,
                            access_site site) {
  // Algorithm 9, with the add-rule read as intended (see DESIGN.md §5): the
  // reader is recorded unless a surviving parallel *async* reader already
  // covers an async reader (Lemma 4); future readers are always recorded.
  ++reads_;
  if (graph_degraded_) {
    shadow_.count_only();
    return;
  }
  shadow_cell* cell_ptr = shadow_.try_access(addr);
  if (cell_ptr == nullptr) return;  // shadow degraded: new location untracked
  shadow_cell& cell = *cell_ptr;

  // Stamp elision: the same task already accessed this cell in this step
  // (no observer event in between), so every PRECEDE verdict the check
  // below would compute is unchanged and re-running it cannot alter any
  // per-location race verdict — a prior access of either kind covers a
  // re-read. Only duplicate reports of an already-reported pair are elided.
  if (stamp_enabled_ && cell.stamp_task == t &&
      (cell.stamp_step & ~k_stamp_write) == step_low_) {
    ++stamp_hits_;
    return;
  }

  bool covered = false;
  for (std::size_t i = 0; i < cell.reader_count();) {
    const reader_entry prev = cell.reader_at(i);
    if (graph_.precedes(prev.task, t)) {
      cell.remove_reader_at(i);
      continue;
    }
    if (!is_joinable(prev.task) && !is_joinable(t)) covered = true;
    ++i;
  }

  if (cell.writer != k_invalid_task && !graph_.precedes(cell.writer, t)) {
    report(addr, race_kind::write_read, cell.writer, cell.writer_site, t,
           sites_.intern(site));
  }

  if (!covered) {
    if (cell.add_reader(reader_entry{t, sites_.intern(site)})) {
      shadow_.note_reader_count(cell.reader_count());
    } else {
      // Overflow allocation refused: the reader entry was dropped, so
      // detection results are incomplete from here on.
      shadow_.mark_degraded();
    }
  }
  if (stamp_enabled_) {
    cell.stamp_task = t;
    cell.stamp_step = step_low_;
  }
}

void race_detector::on_write(task_id t, const void* addr, std::size_t,
                             access_site site) {
  // Algorithm 8: check every stored reader and the previous writer; readers
  // that precede the write retire, racing readers stay recorded.
  ++writes_;
  if (graph_degraded_) {
    shadow_.count_only();
    return;
  }
  shadow_cell* cell_ptr = shadow_.try_access(addr);
  if (cell_ptr == nullptr) return;  // shadow degraded: new location untracked
  shadow_cell& cell = *cell_ptr;

  // Stamp elision for writes requires the stamped access to have been a
  // *write*: re-running a write after a write by the same task in the same
  // step is a no-op (readers were already retired or reported, the writer
  // field would be rewritten with the same task). After a mere read the
  // write must still run — it retires readers and takes over the writer
  // field.
  if (stamp_enabled_ && cell.stamp_task == t &&
      cell.stamp_step == (step_low_ | k_stamp_write)) {
    ++stamp_hits_;
    return;
  }

  for (std::size_t i = 0; i < cell.reader_count();) {
    const reader_entry prev = cell.reader_at(i);
    if (graph_.precedes(prev.task, t)) {
      cell.remove_reader_at(i);
      continue;
    }
    report(addr, race_kind::read_write, prev.task, prev.site, t,
           sites_.intern(site));
    ++i;
  }

  if (cell.writer != k_invalid_task && !graph_.precedes(cell.writer, t)) {
    report(addr, race_kind::write_write, cell.writer, cell.writer_site, t,
           sites_.intern(site));
  }

  cell.writer = t;
  cell.writer_site = sites_.intern(site);
  if (stamp_enabled_) {
    cell.stamp_task = t;
    cell.stamp_step = step_low_ | k_stamp_write;
  }
}

void race_detector::report(const void* addr, race_kind kind, task_id first,
                           site_id first_site, task_id second,
                           site_id second_site) {
  ++races_observed_;
  racy_location_list_.push_back(addr);
  const race_report materialized{addr, kind, first, second,
                                 sites_.resolve(first_site),
                                 sites_.resolve(second_site)};
  if (reports_.size() < opts_.max_reports) {
    reports_.push_back(materialized);
  }
  if (opts_.fail_fast) {
    throw race_found_error(materialized);
  }
}

std::vector<const void*> race_detector::racy_locations() const {
  std::vector<const void*> locations = racy_location_list_;
  std::sort(locations.begin(), locations.end());
  locations.erase(std::unique(locations.begin(), locations.end()),
                  locations.end());
  return locations;
}

detector_counters race_detector::counters() const {
  detector_counters c;
  const auto& gs = graph_.stats();
  // kinds_ tracks every spawned task even after the graph stops growing
  // (degraded mode), so counters keep counting.
  c.tasks = kinds_.empty() ? 0 : kinds_.size() - 1;  // minus root
  for (const task_kind k : kinds_) {
    if (k == task_kind::async) ++c.async_tasks;
    if (k == task_kind::future) ++c.future_tasks;
    if (k == task_kind::continuation) ++c.continuation_tasks;
  }
  c.promise_puts = promise_puts_;
  c.get_operations = get_operations_;
  c.non_tree_joins = gs.non_tree_joins;
  c.shared_mem_accesses = shadow_.access_count();
  c.reads = reads_;
  c.writes = writes_;
  c.avg_readers = shadow_.average_readers();
  c.max_readers = shadow_.max_readers();
  c.locations = shadow_.location_count();
  c.races_observed = races_observed_;
  c.racy_locations = racy_locations().size();
  c.untracked_accesses = shadow_.skipped_accesses();
  c.degraded = degraded();
  const shadow_stats& ss = shadow_.stats();
  c.direct_hits = ss.direct_hits;
  c.hashed_hits = ss.hashed_hits;
  c.memo_hits = gs.memo_hits;
  c.stamp_hits = stamp_hits_;
  c.precede_queries = gs.precede_queries;
  return c;
}

std::size_t race_detector::memory_bytes() const {
  return graph_.memory_bytes() + shadow_.memory_bytes() +
         kinds_.capacity() * sizeof(task_kind) + put_flags_.capacity();
}

}  // namespace futrace::detect
