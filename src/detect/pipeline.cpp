#include "futrace/detect/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <thread>

#include "futrace/detect/event_ring.hpp"
#include "futrace/inject/fault_injector.hpp"
#include "futrace/inject/hooks.hpp"
#include "futrace/obs/trace.hpp"
#include "futrace/support/alloc_gate.hpp"
#include "futrace/support/assert.hpp"

namespace futrace::detect {

namespace {

inline void spin_pause() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Bounded busy-wait: pause for a short burst, then hand the core to the
/// scheduler. When fewer cores are free than there are pipeline threads
/// (worst case: one core total), the thread being waited on cannot run
/// until the waiter yields — pausing forever would burn whole scheduler
/// quanta on either side of the ring.
struct spin_backoff {
  unsigned spins = 0;
  void wait() noexcept {
    if (++spins < 64) {
      spin_pause();
    } else {
      std::this_thread::yield();
    }
  }
  void reset() noexcept { spins = 0; }
};

/// Provenance of one worker-local race report: the serial event (and
/// sub-event, for split ranges) that produced it. Reports tagged this way
/// merge across shards back into the exact inline report order.
struct report_tag {
  std::uint64_t seq = 0;
  std::uint32_t sub = 0;
};

}  // namespace

struct pipelined_detector::impl {
  struct worker {
    std::unique_ptr<race_detector> det;
    std::unique_ptr<event_ring> ring;
    std::thread thread;
    /// Set (release) by the worker when a kill fault makes it exit without
    /// draining; the producer polls it (acquire) and takes the shard over.
    std::atomic<bool> dead{false};
    /// Producer-side: events for this shard are applied inline from now on
    /// (worker died or its thread never started). Sticky.
    bool inline_mode = false;
    std::uint32_t index = 0;       // shard index (checker-track id in traces)
    std::vector<report_tag> tags;  // tags[i] belongs to det->reports()[i]
    std::vector<task_id> scratch;  // finish_end joined-list reassembly
  };

  race_detector::options opts;
  tuning tune;
  bool use_pipeline = false;
  bool finalized = false;

  std::unique_ptr<race_detector> inline_det;  // inline mode only

  std::vector<std::unique_ptr<worker>> workers;
  std::atomic<bool> done{false};

  /// Producer-side canonicalization: span_of against the live element
  /// geometry, with the slab tier off (this instance stores no cells).
  shadow_memory span_shadow;
  std::uint64_t seq = 0;
  std::uint64_t pushes = 0;
  bool shard_pow2 = false;
  std::size_t shard_mask = 0;
  pipeline_stats stats;

  // Valid after finalize().
  detector_counters merged_counters;
  std::vector<race_report> merged_reports;
  std::vector<const void*> merged_racy;
  bool merged_degraded = false;

  /// Pipelined-mode trace sink (inline mode hands trace_path to the inner
  /// detector instead). Workers are trace-muted — the producer emits the
  /// single authoritative runtime-event stream — but their race and slab
  /// instants stay live, which is safe because address sharding makes each
  /// of those unique to one worker.
  std::unique_ptr<obs::trace_session> trace;

  // -- shared event application (worker thread / producer takeover) ----------

  static void tag_new_reports(worker& w, std::uint64_t seq_no,
                              std::uint32_t sub) {
    while (w.tags.size() < w.det->reports().size()) {
      w.tags.push_back(report_tag{seq_no, sub});
    }
  }

  static void dispatch(worker& w, const pipe_event& ev,
                       std::span<const task_id> joined) {
    race_detector& det = *w.det;
    switch (ev.op) {
      case pipe_op::program_start:
        det.on_program_start(ev.task);
        break;
      case pipe_op::spawn:
        det.on_task_spawn(ev.task, static_cast<task_id>(ev.a),
                          static_cast<task_kind>(ev.b));
        break;
      case pipe_op::task_end:
        det.on_task_end(ev.task);
        break;
      case pipe_op::finish_end:
        det.on_finish_end(ev.task, joined);
        break;
      case pipe_op::get:
        det.on_get(ev.task, static_cast<task_id>(ev.a));
        break;
      case pipe_op::put:
        det.on_promise_put(ev.task);
        break;
      case pipe_op::read:
        // `stride` is unused by scalar accesses, so it carries the address
        // the program actually touched (== a unless span_of canonicalized
        // a sub-element access) for report provenance.
        det.on_canonical_read(ev.task, reinterpret_cast<const void*>(ev.a),
                              reinterpret_cast<const void*>(ev.stride),
                              access_site{ev.file, ev.line});
        break;
      case pipe_op::write:
        det.on_canonical_write(ev.task, reinterpret_cast<const void*>(ev.a),
                               reinterpret_cast<const void*>(ev.stride),
                               access_site{ev.file, ev.line});
        break;
      case pipe_op::read_range:
        det.on_read_range(ev.task, reinterpret_cast<const void*>(ev.a),
                          static_cast<std::size_t>(ev.b), ev.stride,
                          access_site{ev.file, ev.line});
        break;
      case pipe_op::write_range:
        det.on_write_range(ev.task, reinterpret_cast<const void*>(ev.a),
                           static_cast<std::size_t>(ev.b), ev.stride,
                           access_site{ev.file, ev.line});
        break;
    }
    tag_new_reports(w, ev.seq, ev.sub);
  }

  /// Applies the event whose header is the `base`-th readable slot
  /// (continuations follow contiguously in ring order). Returns the slots
  /// the event occupied. Caller guarantees they are all readable.
  static std::size_t apply_at(worker& w, std::size_t base) {
    const pipe_event header = w.ring->consume_slot(base);
    const std::size_t need = event_slots(header);
    if (header.op == pipe_op::finish_end) {
      w.scratch.clear();
      for (std::size_t k = 1; k < need; ++k) {
        const pipe_cont_view v =
            std::bit_cast<pipe_cont_view>(w.ring->consume_slot(base + k));
        for (std::uint32_t i = 0; i < v.used; ++i) {
          w.scratch.push_back(v.ids[i]);
        }
      }
      dispatch(w, header, std::span<const task_id>(w.scratch));
    } else {
      dispatch(w, header, {});
    }
    return need;
  }

  // -- checker worker thread --------------------------------------------------

  /// A finish event wider than the whole ring: pop the header, then collect
  /// continuation slots one at a time as the producer streams them. No
  /// fault hook fires here — a kill mid-collection would strand the
  /// producer's takeover drain on headerless continuation slots.
  static void consume_oversize(worker& w) {
    event_ring& ring = *w.ring;
    const pipe_event header = ring.consume_slot(0);
    ring.pop(1);
    const std::size_t conts = event_slots(header) - 1;
    w.scratch.clear();
    for (std::size_t k = 0; k < conts; ++k) {
      spin_backoff backoff;
      while (ring.readable_refresh() == 0) backoff.wait();
      const pipe_cont_view v =
          std::bit_cast<pipe_cont_view>(ring.consume_slot(0));
      ring.pop(1);
      for (std::uint32_t i = 0; i < v.used; ++i) {
        w.scratch.push_back(v.ids[i]);
      }
    }
    dispatch(w, header, std::span<const task_id>(w.scratch));
  }

  void worker_loop(worker& w) {
    event_ring& ring = *w.ring;
    spin_backoff backoff;
    for (;;) {
      const std::size_t n = ring.readable_refresh();
      if (n == 0) {
        if (done.load(std::memory_order_acquire)) {
          if (ring.readable_refresh() == 0) return;
          continue;
        }
        backoff.wait();
        continue;
      }
      backoff.reset();
      std::size_t consumed = 0;
      while (consumed < n) {
        const pipe_event& header = ring.consume_slot(consumed);
        const std::size_t need = event_slots(header);
        if (consumed + need > n) break;  // tail event not fully published yet
        const int action = inject::pipe_worker_site();
        if (action == inject::pipe_kill) [[unlikely]] {
          // Exit without draining: already-applied events retire, the
          // current one stays in the ring for the producer's takeover.
          if (consumed != 0) ring.pop(consumed);
          w.dead.store(true, std::memory_order_release);
          return;
        }
        if (action == inject::pipe_stall) [[unlikely]] {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        consumed += apply_at(w, consumed);
      }
      if (consumed != 0) {
        ring.pop(consumed);
      } else {
        // First readable event is incomplete. If it can never fit the ring
        // at once, stream it; otherwise wait for the rest of its slots.
        if (event_slots(ring.consume_slot(0)) > ring.capacity()) {
          consume_oversize(w);
        } else {
          backoff.wait();
        }
      }
    }
  }

  // -- producer side ----------------------------------------------------------

  std::size_t owner_of(std::uintptr_t addr) const noexcept {
    const std::uintptr_t chunk = addr >> tune.chunk_shift;
    return shard_pow2 ? static_cast<std::size_t>(chunk) & shard_mask
                      : static_cast<std::size_t>(chunk % workers.size());
  }

  /// Spins until `need` slots are free. False means the worker died and the
  /// caller must take the event inline.
  bool wait_slots(worker& w, std::size_t need) {
    ++pushes;
    if ((pushes & 63) == 0) {
      stats.occupancy_sum += w.ring->size_approx();
      ++stats.occupancy_samples;
    }
    if (const std::uint32_t forced = inject::pipe_ring_full_site())
        [[unlikely]] {
      for (std::uint32_t i = 0; i < forced; ++i) {
        ++stats.backpressure_waits;
        spin_pause();
      }
    }
    if (w.dead.load(std::memory_order_acquire)) return false;
    if (w.ring->free_slots() >= need) [[likely]] return true;
    // One instant per backpressure episode (not per spin) on the stalled
    // worker's checker track.
    obs::trace_emit(obs::trace_kind::ring_stall, obs::trace_track::checker,
                    w.index, need);
    // Spin with the always-refresh variant: the lazy free_slots() cache only
    // refreshes on a completely-full view, so waiting on it for a
    // multi-slot event whose need exceeds a stale nonzero view would never
    // observe the consumer's progress.
    spin_backoff backoff;
    while (w.ring->free_slots_refresh() < need) {
      ++stats.backpressure_waits;
      backoff.wait();
      if (w.dead.load(std::memory_order_acquire)) return false;
    }
    return true;
  }

  /// Streams one event into `w`'s ring, backpressuring on a full ring.
  /// Published atomically (header + continuations in one release store)
  /// whenever the event fits the ring; an oversize finish list streams
  /// incrementally. False means the worker died mid-stream: any partial
  /// tail it left is discarded by the takeover drain and the caller
  /// re-applies the event inline.
  bool stream_event(worker& w, const pipe_event& ev,
                    std::span<const task_id> joined) {
    const std::size_t need = event_slots(ev);
    event_ring& ring = *w.ring;
    if (need <= ring.capacity()) [[likely]] {
      if (!wait_slots(w, need)) return false;
      ring.produce_slot(0) = ev;
      for (std::size_t k = 1; k < need; ++k) {
        pipe_cont_view v;
        const std::size_t off = (k - 1) * pipe_cont_view::k_ids;
        v.used = static_cast<std::uint32_t>(
            std::min(pipe_cont_view::k_ids, joined.size() - off));
        for (std::uint32_t i = 0; i < v.used; ++i) v.ids[i] = joined[off + i];
        ring.produce_slot(k) = std::bit_cast<pipe_event>(v);
      }
      ring.publish(need);
      return true;
    }
    if (!wait_slots(w, 1)) return false;
    ring.produce_slot(0) = ev;
    ring.publish(1);
    for (std::size_t k = 1; k < need; ++k) {
      pipe_cont_view v;
      const std::size_t off = (k - 1) * pipe_cont_view::k_ids;
      v.used = static_cast<std::uint32_t>(
          std::min(pipe_cont_view::k_ids, joined.size() - off));
      for (std::uint32_t i = 0; i < v.used; ++i) v.ids[i] = joined[off + i];
      if (!wait_slots(w, 1)) return false;
      ring.produce_slot(0) = std::bit_cast<pipe_event>(v);
      ring.publish(1);
    }
    return true;
  }

  /// Joins a dead worker's thread and drains every *complete* event it left
  /// in its ring into its detector, inline on the execution thread. A
  /// partial tail (the producer died mid-stream of the in-flight event) is
  /// discarded — the caller re-applies that event itself. The shard runs
  /// inline from here on.
  void handle_death(worker& w) {
    obs::trace_emit(obs::trace_kind::worker_death, obs::trace_track::checker,
                    w.index);
    if (w.thread.joinable()) w.thread.join();
    event_ring& ring = *w.ring;
    const std::size_t n = ring.readable_refresh();
    std::size_t consumed = 0;
    std::uint64_t drained = 0;
    while (consumed < n) {
      const pipe_event& header = ring.consume_slot(consumed);
      const std::size_t need = event_slots(header);
      if (consumed + need > n) {
        consumed = n;  // partial tail: discard
        break;
      }
      apply_at(w, consumed);
      ++stats.inline_fallbacks;
      ++drained;
      consumed += need;
    }
    if (consumed != 0) ring.pop(consumed);
    w.inline_mode = true;
    ++stats.workers_died;
    obs::trace_emit(obs::trace_kind::takeover, obs::trace_track::checker,
                    w.index, drained);
  }

  void apply_inline(worker& w, const pipe_event& ev,
                    std::span<const task_id> joined) {
    dispatch(w, ev, joined);
    ++stats.inline_fallbacks;
  }

  void broadcast(const pipe_event& ev, std::span<const task_id> joined) {
    for (auto& wp : workers) {
      worker& w = *wp;
      if (w.inline_mode) {
        apply_inline(w, ev, joined);
      } else if (!stream_event(w, ev, joined)) {
        handle_death(w);
        apply_inline(w, ev, joined);
      }
    }
  }

  void route(std::size_t shard, const pipe_event& ev) {
    worker& w = *workers[shard];
    if (w.inline_mode) {
      apply_inline(w, ev, {});
    } else if (!stream_event(w, ev, {})) {
      handle_death(w);
      apply_inline(w, ev, {});
    }
  }

  void produce_graph(pipe_op op, task_id task, std::uint64_t a,
                     std::uint64_t b, std::span<const task_id> joined) {
    ++stats.events;
    // The producer is the single authoritative runtime-event stream when
    // pipelined (worker replicas are trace-muted, or W replays would each
    // duplicate it).
    if (obs::trace_enabled()) [[unlikely]] {
      switch (op) {
        case pipe_op::program_start:
          obs::trace_emit(obs::trace_kind::task_begin, obs::trace_track::task,
                          task, static_cast<std::uint64_t>(task_kind::root),
                          k_invalid_task);
          break;
        case pipe_op::spawn:
          obs::trace_emit(obs::trace_kind::task_begin, obs::trace_track::task,
                          static_cast<task_id>(a), b, task);
          break;
        case pipe_op::task_end:
          obs::trace_emit(obs::trace_kind::task_end, obs::trace_track::task,
                          task);
          break;
        case pipe_op::finish_end:
          obs::trace_emit(obs::trace_kind::finish, obs::trace_track::task,
                          task, a);
          break;
        case pipe_op::get:
          obs::trace_emit(obs::trace_kind::get, obs::trace_track::task, task,
                          a);
          break;
        case pipe_op::put:
          obs::trace_emit(obs::trace_kind::put, obs::trace_track::task, task);
          break;
        default:
          break;
      }
    }
    pipe_event ev;
    ev.op = op;
    ev.task = task;
    ev.a = a;
    ev.b = b;
    ev.seq = seq++;
    broadcast(ev, joined);
  }

  void produce_range(bool is_write, task_id t, const void* addr,
                     std::size_t count, std::size_t stride, access_site site,
                     std::uint64_t seq_no) {
    std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
    std::size_t remaining = count;
    std::uint32_t sub = 0;
    while (remaining > 0) {
      std::size_t k = remaining;
      if (workers.size() > 1 && stride != 0) {
        const std::uintptr_t boundary =
            next_chunk_boundary(a, tune.chunk_shift);
        // Elements owned by this chunk: those whose *base* precedes the
        // boundary (an element may straddle into the next chunk).
        k = std::min<std::size_t>(
            remaining, (boundary - a + stride - 1) / stride);
      }
      pipe_event ev;
      ev.op = is_write ? pipe_op::write_range : pipe_op::read_range;
      ev.task = t;
      ev.a = a;
      ev.b = k;
      ev.stride = stride;
      ev.file = site.file;
      ev.line = site.line;
      ev.seq = seq_no;
      ev.sub = sub;
      route(owner_of(a), ev);
      ++sub;
      a += k * stride;
      remaining -= k;
    }
    if (sub > 1) stats.split_subevents += sub - 1;
  }

  void produce_access(bool is_write, task_id t, const void* addr,
                      std::size_t size, access_site site) {
    ++stats.events;
    ++stats.access_events;
    const std::uint64_t seq_no = seq++;
    // Canonicalize on the producer (the serial thread sees the element
    // geometry at the exact serial point); workers run assume-canonical.
    const shadow_memory::access_span span = span_shadow.span_of(addr, size);
    if (span.count == 1) [[likely]] {
      pipe_event ev;
      ev.op = is_write ? pipe_op::write : pipe_op::read;
      ev.task = t;
      ev.a = reinterpret_cast<std::uintptr_t>(span.first);
      ev.b = size;
      // `stride` is dead weight for a scalar access; reuse it to carry the
      // program-touched address across the ring for report provenance.
      ev.stride = reinterpret_cast<std::uintptr_t>(addr);
      ev.file = site.file;
      ev.line = site.line;
      ev.seq = seq_no;
      route(owner_of(ev.a), ev);
      return;
    }
    produce_range(is_write, t, span.first, span.count, span.stride, site,
                  seq_no);
  }

  // -- finalize & merge -------------------------------------------------------

  void finalize() {
    if (finalized) return;
    finalized = true;
    if (!use_pipeline) return;
    // The root's timeline slice was already closed by the runtime's
    // on_task_end(root), which the producer mirrors like any other task end.
    done.store(true, std::memory_order_release);
    for (auto& wp : workers) {
      worker& w = *wp;
      if (w.inline_mode) continue;
      if (w.thread.joinable()) w.thread.join();
      if (w.dead.load(std::memory_order_relaxed)) {
        // Died after the producer's last interaction with this shard:
        // drain what it left behind. (handle_death also marks it inline,
        // which is moot now but keeps the counters honest.)
        handle_death(w);
      }
    }
    merge();
  }

  void merge() {
    detector_counters c;
    // Graph events are broadcast, so the structural counters are identical
    // in every replica; take worker 0's.
    const detector_counters c0 = workers[0]->det->counters();
    c.tasks = c0.tasks;
    c.async_tasks = c0.async_tasks;
    c.future_tasks = c0.future_tasks;
    c.continuation_tasks = c0.continuation_tasks;
    c.promise_puts = c0.promise_puts;
    c.get_operations = c0.get_operations;
    c.non_tree_joins = c0.non_tree_joins;
    // Epoch resets are driven by the broadcast graph stream, so every
    // replica compacts at the same spawns; worker 0 speaks for all.
    c.epoch_resets = c0.epoch_resets;
    // Address-routed state is disjoint across shards: sums and maxima are
    // exact. avg_readers merges through the raw sample sum, not the
    // per-shard averages.
    std::uint64_t reader_samples = 0;
    for (auto& wp : workers) {
      const detector_counters ci = wp->det->counters();
      c.shared_mem_accesses += ci.shared_mem_accesses;
      c.reads += ci.reads;
      c.writes += ci.writes;
      c.locations += ci.locations;
      c.races_observed += ci.races_observed;
      c.untracked_accesses += ci.untracked_accesses;
      c.max_readers = std::max(c.max_readers, ci.max_readers);
      c.degraded = c.degraded || ci.degraded;
      c.degradation_reasons |= ci.degradation_reasons;
      // Races are address-routed, so the service-mode tallies are disjoint
      // per shard and sum exactly. (Error limits apply per replica: a
      // shard-local per-pair count, which throttles no later than inline.)
      c.suppressed_races += ci.suppressed_races;
      c.errors_throttled += ci.errors_throttled;
      c.reports_capped += ci.reports_capped;
      reader_samples += wp->det->reader_samples();
      c.direct_hits += ci.direct_hits;
      c.hashed_hits += ci.hashed_hits;
      c.memo_hits += ci.memo_hits;
      c.stamp_hits += ci.stamp_hits;
      c.precede_queries += ci.precede_queries;
      c.range_events += ci.range_events;
      c.range_hits += ci.range_hits;
      c.summary_hits += ci.summary_hits;
    }
    c.avg_readers = c.shared_mem_accesses == 0
                        ? 0.0
                        : static_cast<double>(reader_samples) /
                              static_cast<double>(c.shared_mem_accesses);

    merged_racy.clear();
    for (auto& wp : workers) {
      const std::vector<const void*> r = wp->det->racy_locations();
      merged_racy.insert(merged_racy.end(), r.begin(), r.end());
    }
    std::sort(merged_racy.begin(), merged_racy.end());
    merged_racy.erase(std::unique(merged_racy.begin(), merged_racy.end()),
                      merged_racy.end());
    c.racy_locations = merged_racy.size();
    merged_degraded = c.degraded;
    merged_counters = c;

    // Deterministic report merge: order by (serial event, sub-event, local
    // index). One event's reports come from a single worker, so the key is
    // globally unique and the merged sequence is exactly the inline one.
    // Each worker caps at max_reports, which suffices: a report among the
    // global first N has fewer than N predecessors in its own worker too.
    struct entry {
      report_tag tag;
      std::uint32_t idx;
      const race_report* report;
    };
    std::vector<entry> all;
    for (auto& wp : workers) {
      const std::vector<race_report>& reps = wp->det->reports();
      FUTRACE_DCHECK(wp->tags.size() == reps.size());
      for (std::size_t i = 0; i < reps.size(); ++i) {
        all.push_back(entry{wp->tags[i], static_cast<std::uint32_t>(i),
                            &reps[i]});
      }
    }
    std::sort(all.begin(), all.end(), [](const entry& x, const entry& y) {
      if (x.tag.seq != y.tag.seq) return x.tag.seq < y.tag.seq;
      if (x.tag.sub != y.tag.sub) return x.tag.sub < y.tag.sub;
      return x.idx < y.idx;
    });
    const std::size_t keep = std::min(all.size(), opts.max_reports);
    merged_reports.clear();
    merged_reports.reserve(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      merged_reports.push_back(*all[i].report);
    }
    // Distinct pairs not shown globally: what the workers never
    // materialized, plus materialized reports the global cap cut here.
    merged_counters.reports_capped += all.size() - keep;
    if (stats.workers_died != 0) {
      merged_counters.degradation_reasons |= k_degraded_worker_death;
    }
  }
};

pipelined_detector::pipelined_detector(race_detector::options opts)
    : pipelined_detector(opts, tuning{}) {}

pipelined_detector::pipelined_detector(race_detector::options opts,
                                       tuning tune)
    : impl_(std::make_unique<impl>()) {
  impl_->opts = opts;
  impl_->tune = tune;
  const unsigned requested = opts.detect_threads;
  // fail_fast must throw at the faulting access on the execution thread, so
  // it forces inline mode regardless of detect_threads.
  bool pipelined = requested > 0 && !opts.fail_fast;
  if (pipelined) {
    std::size_t cap = 2;
    while (cap < tune.ring_capacity) cap <<= 1;
    if (support::alloc_should_fail(cap * sizeof(pipe_event) * requested)) {
      // Ring allocation refused: degrade to inline checking, sticky and
      // counted, exactly like a dead worker.
      pipelined = false;
      ++impl_->stats.inline_fallbacks;
    }
  }
  if (!pipelined) {
    race_detector::options inner = opts;
    inner.detect_threads = 0;
    impl_->inline_det = std::make_unique<race_detector>(inner);
    return;
  }
  impl_->use_pipeline = true;
  impl_->span_shadow.set_direct_mapped(false);
  impl_->shard_pow2 = (requested & (requested - 1)) == 0;
  impl_->shard_mask = requested - 1;
  impl_->stats.workers = requested;
  // Pipelined mode owns the trace session itself: workers must not each
  // install (or write) one, and the producer needs the sink live for the
  // runtime-event stream.
  if (!opts.trace_path.empty()) {
    impl_->trace = std::make_unique<obs::trace_session>(opts.trace_path);
  }
  for (unsigned i = 0; i < requested; ++i) {
    auto w = std::make_unique<impl::worker>();
    race_detector::options inner = opts;
    inner.detect_threads = 0;
    inner.fail_fast = false;
    inner.trace_path.clear();  // the pipeline owns the one session
    if (requested > 1 && inner.shadow_reserve != 0) {
      inner.shadow_reserve = inner.shadow_reserve / requested + 1;
    }
    w->det = std::make_unique<race_detector>(inner);
    w->det->set_assume_canonical(true);
    w->det->set_trace_muted(true);
    w->index = i;
    if (requested > 1) {
      w->det->configure_shard(tune.chunk_shift, i, requested);
    }
    w->ring = std::make_unique<event_ring>(tune.ring_capacity);
    impl_->workers.push_back(std::move(w));
  }
  impl_->stats.ring_capacity = impl_->workers[0]->ring->capacity();
  impl* self = impl_.get();
  for (auto& wp : impl_->workers) {
    impl::worker* w = wp.get();
    try {
      w->thread = std::thread([self, w] { self->worker_loop(*w); });
    } catch (...) {
      // Thread creation failed: this shard checks inline from the start.
      w->inline_mode = true;
      ++impl_->stats.workers_died;
    }
  }
}

pipelined_detector::~pipelined_detector() {
  if (impl_) impl_->finalize();
}

pipelined_detector::pipelined_detector(pipelined_detector&&) noexcept =
    default;
pipelined_detector& pipelined_detector::operator=(
    pipelined_detector&& other) noexcept {
  if (this != &other) {
    if (impl_) impl_->finalize();  // join workers before dropping them
    impl_ = std::move(other.impl_);
  }
  return *this;
}

void pipelined_detector::on_program_start(task_id root) {
  if (!impl_->use_pipeline) {
    impl_->inline_det->on_program_start(root);
    return;
  }
  impl_->produce_graph(pipe_op::program_start, root, 0, 0, {});
}

void pipelined_detector::on_task_spawn(task_id parent, task_id child,
                                       task_kind kind) {
  if (!impl_->use_pipeline) {
    impl_->inline_det->on_task_spawn(parent, child, kind);
    return;
  }
  impl_->produce_graph(pipe_op::spawn, parent, child,
                       static_cast<std::uint64_t>(kind), {});
}

void pipelined_detector::on_task_end(task_id t) {
  if (!impl_->use_pipeline) {
    impl_->inline_det->on_task_end(t);
    return;
  }
  impl_->produce_graph(pipe_op::task_end, t, 0, 0, {});
}

void pipelined_detector::on_finish_end(task_id owner,
                                       std::span<const task_id> joined) {
  if (!impl_->use_pipeline) {
    impl_->inline_det->on_finish_end(owner, joined);
    return;
  }
  impl_->produce_graph(pipe_op::finish_end, owner, joined.size(), 0, joined);
}

void pipelined_detector::on_get(task_id waiter, task_id target) {
  if (!impl_->use_pipeline) {
    impl_->inline_det->on_get(waiter, target);
    return;
  }
  impl_->produce_graph(pipe_op::get, waiter, target, 0, {});
}

void pipelined_detector::on_promise_put(task_id fulfiller) {
  if (!impl_->use_pipeline) {
    impl_->inline_det->on_promise_put(fulfiller);
    return;
  }
  impl_->produce_graph(pipe_op::put, fulfiller, 0, 0, {});
}

void pipelined_detector::on_read(task_id t, const void* addr,
                                 std::size_t size, access_site site) {
  if (!impl_->use_pipeline) {
    impl_->inline_det->on_read(t, addr, size, site);
    return;
  }
  impl_->produce_access(false, t, addr, size, site);
}

void pipelined_detector::on_write(task_id t, const void* addr,
                                  std::size_t size, access_site site) {
  if (!impl_->use_pipeline) {
    impl_->inline_det->on_write(t, addr, size, site);
    return;
  }
  impl_->produce_access(true, t, addr, size, site);
}

void pipelined_detector::on_read_range(task_id t, const void* addr,
                                       std::size_t count, std::size_t stride,
                                       access_site site) {
  if (!impl_->use_pipeline) {
    impl_->inline_det->on_read_range(t, addr, count, stride, site);
    return;
  }
  if (count == 0) return;
  ++impl_->stats.events;
  ++impl_->stats.access_events;
  impl_->produce_range(false, t, addr, count, stride, site, impl_->seq++);
}

void pipelined_detector::on_write_range(task_id t, const void* addr,
                                        std::size_t count, std::size_t stride,
                                        access_site site) {
  if (!impl_->use_pipeline) {
    impl_->inline_det->on_write_range(t, addr, count, stride, site);
    return;
  }
  if (count == 0) return;
  ++impl_->stats.events;
  ++impl_->stats.access_events;
  impl_->produce_range(true, t, addr, count, stride, site, impl_->seq++);
}

void pipelined_detector::on_program_end() {
  if (!impl_->use_pipeline) impl_->inline_det->on_program_end();
  impl_->finalize();
}

bool pipelined_detector::race_detected() const { return race_count() > 0; }

std::uint64_t pipelined_detector::race_count() const {
  if (!impl_->use_pipeline) return impl_->inline_det->race_count();
  impl_->finalize();
  return impl_->merged_counters.races_observed;
}

bool pipelined_detector::degraded() const {
  if (!impl_->use_pipeline) return impl_->inline_det->degraded();
  impl_->finalize();
  return impl_->merged_degraded;
}

const std::vector<race_report>& pipelined_detector::reports() const {
  if (!impl_->use_pipeline) return impl_->inline_det->reports();
  impl_->finalize();
  return impl_->merged_reports;
}

std::vector<const void*> pipelined_detector::racy_locations() const {
  if (!impl_->use_pipeline) return impl_->inline_det->racy_locations();
  impl_->finalize();
  return impl_->merged_racy;
}

detector_counters pipelined_detector::counters() const {
  if (!impl_->use_pipeline) return impl_->inline_det->counters();
  impl_->finalize();
  return impl_->merged_counters;
}

std::size_t pipelined_detector::memory_bytes() const {
  if (!impl_->use_pipeline) return impl_->inline_det->memory_bytes();
  std::size_t bytes = impl_->span_shadow.memory_bytes();
  for (const auto& wp : impl_->workers) {
    bytes += wp->det->memory_bytes() +
             wp->ring->capacity() * sizeof(pipe_event);
  }
  return bytes;
}

const pipeline_stats& pipelined_detector::pipe_stats() const {
  return impl_->stats;
}

std::vector<std::uint64_t> pipelined_detector::suppression_hits() const {
  if (!impl_->use_pipeline) return impl_->inline_det->suppression_hits();
  impl_->finalize();
  std::vector<std::uint64_t> sum;
  for (const auto& wp : impl_->workers) {
    const std::vector<std::uint64_t>& h = wp->det->suppression_hits();
    if (sum.size() < h.size()) sum.resize(h.size(), 0);
    for (std::size_t i = 0; i < h.size(); ++i) sum[i] += h[i];
  }
  return sum;
}

bool pipelined_detector::pipelined() const { return impl_->use_pipeline; }

}  // namespace futrace::detect
