/// Parallel engine: help-first work-stealing execution of async / finish /
/// future programs. No observers fire here — the paper's detector is defined
/// over the serial depth-first execution — but the same program text runs
/// unchanged, which is how a user deploys a program after checking it.
///
/// Blocking operations (finish_end, future get) "help while waiting": the
/// blocked worker drains its own deque and steals from others until its
/// condition holds.
///
/// Failure model (see DESIGN.md "Failure model"):
///  - Task exceptions are captured per finish scope, first-exception-wins;
///    finish_end always drains every outstanding child before rethrowing, so
///    a throw never leaks tasks or workers.
///  - Every blocked wait registers in a wait table. A wait that finds no
///    runnable work for deadlock_timeout_ms throws deadlock_error carrying a
///    dump of the wait graph — which tasks are blocked, what each waits on,
///    and the future/promise cycle when one exists (paper Appendix A) —
///    instead of a bare timeout string.
///  - finish scopes wait 3x the timeout before abandoning, so blocked
///    children fail first and the finish collects their errors; abandonment
///    (a child that never failed *and* never finished) leaks only that
///    finish frame, deliberately, because outstanding children still
///    reference it.
///  - The destructor asserts that no task was leaked: everything spawned was
///    either executed or accounted for as discarded at shutdown.

#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "engines.hpp"
#include "futrace/inject/hooks.hpp"
#include "futrace/runtime/ws_deque.hpp"
#include "futrace/support/assert.hpp"

namespace futrace::detail {

namespace {

class parallel_engine final : public engine {
 public:
  explicit parallel_engine(unsigned workers, std::uint32_t deadlock_timeout_ms)
      : engine(exec_mode::parallel),
        worker_count_(workers == 0
                          ? std::max(1u, std::thread::hardware_concurrency())
                          : workers),
        deadlock_timeout_(std::chrono::milliseconds(
            deadlock_timeout_ms == 0 ? 1 : deadlock_timeout_ms)) {
    workers_.reserve(worker_count_);
    for (unsigned i = 0; i < worker_count_; ++i) {
      workers_.push_back(std::make_unique<worker>());
    }
    waits_.resize(worker_count_);
  }

  ~parallel_engine() override {
    stop_threads();
    FUTRACE_CHECK_MSG(live_tasks_.load(std::memory_order_acquire) == 0,
                      "parallel engine leaked tasks at destruction");
  }

  void run_program(const std::function<void()>& main_fn) override {
    FUTRACE_CHECK_MSG(!running_, "run_program is not reentrant");
    running_ = true;
    done_.store(false, std::memory_order_relaxed);
    for (unsigned i = 1; i < worker_count_; ++i) {
      workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
    }
    // The calling thread is worker 0 and executes main() (task 0) directly.
    tls_ = tl_state{this, 0, nullptr, 0};
    std::exception_ptr program_error;
    finish_begin();  // implicit finish around main()
    try {
      main_fn();
    } catch (...) {
      program_error = std::current_exception();
    }
    try {
      finish_end();
    } catch (...) {
      if (!program_error) program_error = std::current_exception();
    }
    tls_ = tl_state{};
    stop_threads();
    running_ = false;
    if (program_error) std::rethrow_exception(program_error);
  }

  task_id spawn_begin(task_kind) override {
    throw usage_error("inline spawning is not used by the parallel engine");
  }
  void spawn_end() override {}

  void parallel_spawn(std::function<void()> body,
                      future_state_base* produces) override {
    tl_state& t = tls_;
    FUTRACE_CHECK_MSG(t.eng == this,
                      "async called from a thread outside the pool");
    const task_id id = static_cast<task_id>(
        tasks_spawned_.fetch_add(1, std::memory_order_relaxed) + 1);
    if (produces != nullptr) {
      produces->task.store(id, std::memory_order_relaxed);
    }
    auto* pt = new ptask{std::move(body), t.current_finish, id};
    pt->ief->pending.fetch_add(1, std::memory_order_relaxed);
    live_tasks_.fetch_add(1, std::memory_order_relaxed);
    workers_[t.index]->deque.push(pt);
  }

  void finish_begin() override {
    tl_state& t = tls_;
    FUTRACE_CHECK_MSG(t.eng == this, "finish outside the pool");
    auto* frame = new pfinish{};
    frame->parent = t.current_finish;
    t.current_finish = frame;
  }

  void finish_end() override {
    tl_state& t = tls_;
    pfinish* frame = t.current_finish;
    FUTRACE_CHECK_MSG(frame != nullptr, "unbalanced finish_end");
    // Restore the parent frame immediately: if the wait below throws, the
    // unwinding task must not keep spawning into an abandoned frame.
    t.current_finish = frame->parent;
    if (frame->pending.load(std::memory_order_acquire) != 0) {
      // 3x the wait timeout: children blocked on dead futures fail at 1x,
      // drain into this frame, and the finish rethrows their error. Only a
      // child that neither finishes nor fails forces abandonment.
      wait_guard guard(*this, t.index,
                       wait_record{t.task, k_invalid_task, "finish scope",
                                   &frame->pending});
      stall_clock clock(deadlock_timeout_ * 3);
      while (frame->pending.load(std::memory_order_acquire) != 0) {
        if (!try_help() && clock.expired()) {
          abandoned_frames_.fetch_add(1, std::memory_order_relaxed);
          throw deadlock_error(describe_stall(
              t.index, t.task,
              "finish did not quiesce: a child task neither completed nor "
              "failed within the grace period"));
        }
      }
    }
    std::exception_ptr err = frame->take_error();
    delete frame;
    if (err) std::rethrow_exception(err);
  }

  void wait_future(future_state_base& state) override {
    blocking_wait(state, "future");
  }

  void promise_fulfilled(future_state_base& state) override {
    state.publish(future_state_base::k_ready);
  }

  void wait_promise(future_state_base& state) override {
    blocking_wait(state, "promise");
  }

  void note_read(const void*, std::size_t, access_site) override {}
  void note_write(const void*, std::size_t, access_site) override {}

  task_id current_task() const override { return k_invalid_task; }

  std::uint64_t tasks_spawned() const override {
    return tasks_spawned_.load(std::memory_order_relaxed);
  }

 private:
  struct pfinish {
    std::atomic<std::int64_t> pending{0};
    pfinish* parent = nullptr;
    std::mutex error_mutex;
    std::exception_ptr first_error;

    void record_error(std::exception_ptr e) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::move(e);
    }
    std::exception_ptr take_error() {
      std::lock_guard<std::mutex> lock(error_mutex);
      return std::move(first_error);
    }
  };

  struct ptask {
    std::function<void()> body;
    pfinish* ief;
    task_id id;
  };

  struct worker {
    ws_deque<ptask*> deque;
    std::thread thread;
  };

  struct tl_state {
    parallel_engine* eng = nullptr;
    unsigned index = 0;
    pfinish* current_finish = nullptr;
    task_id task = k_invalid_task;  // task currently executing on this thread
  };

  /// One blocked wait, published so the watchdog can dump the wait graph.
  struct wait_record {
    task_id task = k_invalid_task;        // the blocked task
    task_id producer = k_invalid_task;    // known producer of the awaited state
    const char* what = nullptr;           // "future" / "promise" / "finish scope"
    const std::atomic<std::int64_t>* finish_pending = nullptr;
    bool active = false;
    unsigned worker = 0;  // filled in when the dump snapshots the table
  };

  /// Registers one blocked wait for the watchdog's wait-graph dump. Waits
  /// nest (a help loop can run a task that blocks again on the same worker),
  /// so each worker keeps a stack of active records, not a single slot.
  class wait_guard {
   public:
    wait_guard(parallel_engine& eng, unsigned slot, wait_record record)
        : eng_(eng), slot_(slot) {
      record.active = true;
      std::lock_guard<std::mutex> lock(eng_.wait_mutex_);
      eng_.waits_[slot_].push_back(record);
    }
    ~wait_guard() {
      std::lock_guard<std::mutex> lock(eng_.wait_mutex_);
      eng_.waits_[slot_].pop_back();
    }

   private:
    parallel_engine& eng_;
    unsigned slot_;
  };

  /// Tracks how long a wait has gone without finding runnable work. The
  /// deadline starts at the first failed help attempt, so a wait that keeps
  /// finding work is never declared dead (it is making global progress).
  class stall_clock {
   public:
    explicit stall_clock(std::chrono::steady_clock::duration budget)
        : budget_(budget) {}

    /// Called after a failed help attempt; true once the budget is spent.
    bool expired() {
      if ((++spins_ & 0x3FF) != 0) return false;
      const auto now = std::chrono::steady_clock::now();
      if (start_ == std::chrono::steady_clock::time_point{}) {
        start_ = now;
      } else if (now - start_ > budget_) {
        return true;
      }
      std::this_thread::yield();
      return false;
    }

   private:
    std::chrono::steady_clock::duration budget_;
    std::uint64_t spins_ = 0;
    std::chrono::steady_clock::time_point start_{};
  };

  void blocking_wait(future_state_base& state, const char* what) {
    tl_state& t = tls_;
    FUTRACE_CHECK_MSG(t.eng == this, "get() from a thread outside the pool");
    if (state.settled()) return;
    wait_guard guard(*this, t.index,
                     wait_record{t.task,
                                 state.task.load(std::memory_order_relaxed),
                                 what, nullptr});
    stall_clock clock(deadlock_timeout_);
    while (!state.settled()) {
      if (!try_help() && clock.expired()) {
        std::ostringstream headline;
        headline << what << " never completed: the program has a cyclic "
                 << "future/promise dependence (deadlock, paper Appendix A) "
                 << "or a lost fulfillment";
        throw deadlock_error(describe_stall(t.index, t.task, headline.str()));
      }
    }
  }

  /// Renders the wait table and any wait cycle into the deadlock report.
  /// `self_task` is the task whose watchdog fired; the cycle walk starts
  /// from it.
  std::string describe_stall(unsigned self, task_id self_task,
                             const std::string& headline) {
    std::ostringstream out;
    out << "deadlock detected: " << headline << "\n";
    std::vector<wait_record> snapshot;
    {
      std::lock_guard<std::mutex> lock(wait_mutex_);
      for (unsigned w = 0; w < waits_.size(); ++w) {
        for (const wait_record& r : waits_[w]) {
          wait_record copy = r;
          copy.worker = w;
          snapshot.push_back(copy);
        }
      }
    }
    for (const wait_record& r : snapshot) {
      out << "  blocked: task " << r.task << " (worker " << r.worker
          << (r.worker == self && r.task == self_task ? ", this wait" : "")
          << ") waiting on " << r.what;
      if (r.producer != k_invalid_task) {
        out << " produced by task " << r.producer;
      }
      if (r.finish_pending != nullptr) {
        out << " (" << r.finish_pending->load(std::memory_order_relaxed)
            << " tasks outstanding)";
      }
      out << "\n";
    }
    // Follow waiter -> producer edges from this wait; a repeated task id is
    // the future/promise cycle that proves the deadlock.
    std::vector<task_id> chain;
    task_id cursor = self_task;
    while (cursor != k_invalid_task) {
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (chain[i] == cursor) {
          out << "  wait cycle: ";
          for (std::size_t j = i; j < chain.size(); ++j) {
            out << "task " << chain[j] << " -> ";
          }
          out << "task " << cursor;
          return out.str();
        }
      }
      chain.push_back(cursor);
      task_id next = k_invalid_task;
      for (const wait_record& r : snapshot) {
        if (r.task == cursor) {
          next = r.producer;
          break;
        }
      }
      cursor = next;
    }
    out << "  (no closed wait cycle among currently blocked tasks: a "
           "fulfillment was lost or a producer is still running)";
    return out.str();
  }

  void worker_loop(unsigned index) {
    tls_ = tl_state{this, index, nullptr, k_invalid_task};
    // Task bodies running on this thread use the public API, which routes
    // through the ambient context.
    ctx() = context{this, false};
    while (!done_.load(std::memory_order_acquire)) {
      if (!try_help()) {
        // Brief backoff; stealing is retried immediately after.
        std::this_thread::yield();
      }
    }
    ctx() = context{};
    tls_ = tl_state{};
  }

  bool try_help() {
    tl_state& t = tls_;
    if (inject::yield_site()) std::this_thread::yield();
    if (auto pt = workers_[t.index]->deque.pop()) {
      run_task(*pt);
      return true;
    }
    // Steal sweep starting from a pseudo-random victim (perturbable by the
    // fault injector to explore different steal orders).
    unsigned start = steal_cursor_.fetch_add(1, std::memory_order_relaxed);
    start = inject::steal_start_site(t.index, worker_count_, start);
    for (unsigned k = 0; k < worker_count_; ++k) {
      const unsigned victim = (start + k) % worker_count_;
      if (victim == t.index) continue;
      if (auto pt = workers_[victim]->deque.steal()) {
        run_task(*pt);
        return true;
      }
    }
    return false;
  }

  void run_task(ptask* pt) {
    tl_state& t = tls_;
    pfinish* saved_finish = t.current_finish;
    const task_id saved_task = t.task;
    t.current_finish = pt->ief;
    t.task = pt->id;
    try {
      pt->body();
    } catch (...) {
      pt->ief->record_error(std::current_exception());
    }
    t.current_finish = saved_finish;
    t.task = saved_task;
    pt->ief->pending.fetch_sub(1, std::memory_order_release);
    delete pt;
    live_tasks_.fetch_sub(1, std::memory_order_release);
  }

  void stop_threads() {
    done_.store(true, std::memory_order_release);
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
    // After an abandoned finish the deques may still hold never-run tasks.
    // Discard them with full accounting so the leak assertion in the
    // destructor stays meaningful.
    for (auto& w : workers_) {
      while (auto pt = w->deque.pop()) {
        (*pt)->ief->pending.fetch_sub(1, std::memory_order_release);
        delete *pt;
        live_tasks_.fetch_sub(1, std::memory_order_release);
        discarded_tasks_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  const unsigned worker_count_;
  const std::chrono::steady_clock::duration deadlock_timeout_;
  std::vector<std::unique_ptr<worker>> workers_;
  std::atomic<bool> done_{false};
  std::atomic<unsigned> steal_cursor_{0};
  std::atomic<std::uint64_t> tasks_spawned_{0};
  std::atomic<std::int64_t> live_tasks_{0};
  std::atomic<std::uint64_t> abandoned_frames_{0};
  std::atomic<std::uint64_t> discarded_tasks_{0};
  bool running_ = false;

  std::mutex wait_mutex_;
  std::vector<std::vector<wait_record>> waits_;  // per-worker nested waits

  static thread_local tl_state tls_;
};

thread_local parallel_engine::tl_state parallel_engine::tls_{};

}  // namespace

std::unique_ptr<engine> make_parallel_engine(
    unsigned workers, std::uint32_t deadlock_timeout_ms) {
  return std::make_unique<parallel_engine>(workers, deadlock_timeout_ms);
}

}  // namespace futrace::detail
