/// Parallel engine: help-first work-stealing execution of async / finish /
/// future programs. No observers fire here — the paper's detector is defined
/// over the serial depth-first execution — but the same program text runs
/// unchanged, which is how a user deploys a program after checking it.
///
/// Blocking operations (finish_end, future get) "help while waiting": the
/// blocked worker drains its own deque and steals from others until its
/// condition holds. A watchdog turns a permanently stalled wait (cyclic
/// future dependences, paper Appendix A) into a deadlock_error instead of a
/// silent hang.

#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "engines.hpp"
#include "futrace/runtime/ws_deque.hpp"
#include "futrace/support/assert.hpp"

namespace futrace::detail {

namespace {

class parallel_engine final : public engine {
 public:
  explicit parallel_engine(unsigned workers)
      : engine(exec_mode::parallel),
        worker_count_(workers == 0
                          ? std::max(1u, std::thread::hardware_concurrency())
                          : workers) {
    workers_.reserve(worker_count_);
    for (unsigned i = 0; i < worker_count_; ++i) {
      workers_.push_back(std::make_unique<worker>());
    }
  }

  ~parallel_engine() override { stop_threads(); }

  void run_program(const std::function<void()>& main_fn) override {
    FUTRACE_CHECK_MSG(!running_, "run_program is not reentrant");
    running_ = true;
    done_.store(false, std::memory_order_relaxed);
    for (unsigned i = 1; i < worker_count_; ++i) {
      workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
    }
    // The calling thread is worker 0 and executes main() directly.
    tls_ = tl_state{this, 0, nullptr};
    std::exception_ptr program_error;
    finish_begin();  // implicit finish around main()
    try {
      main_fn();
    } catch (...) {
      program_error = std::current_exception();
    }
    try {
      finish_end();
    } catch (...) {
      if (!program_error) program_error = std::current_exception();
    }
    tls_ = tl_state{};
    stop_threads();
    running_ = false;
    if (program_error) std::rethrow_exception(program_error);
  }

  task_id spawn_begin(task_kind) override {
    throw usage_error("inline spawning is not used by the parallel engine");
  }
  void spawn_end() override {}

  void parallel_spawn(std::function<void()> body) override {
    tl_state& t = tls_;
    FUTRACE_CHECK_MSG(t.eng == this,
                      "async called from a thread outside the pool");
    auto* pt = new ptask{std::move(body), t.current_finish};
    pt->ief->pending.fetch_add(1, std::memory_order_relaxed);
    tasks_spawned_.fetch_add(1, std::memory_order_relaxed);
    workers_[t.index]->deque.push(pt);
  }

  void finish_begin() override {
    tl_state& t = tls_;
    FUTRACE_CHECK_MSG(t.eng == this, "finish outside the pool");
    auto* frame = new pfinish{};
    frame->parent = t.current_finish;
    t.current_finish = frame;
  }

  void finish_end() override {
    tl_state& t = tls_;
    pfinish* frame = t.current_finish;
    FUTRACE_CHECK_MSG(frame != nullptr, "unbalanced finish_end");
    stall_watchdog watchdog("finish did not quiesce");
    while (frame->pending.load(std::memory_order_acquire) != 0) {
      if (!try_help()) watchdog.stalled();
    }
    t.current_finish = frame->parent;
    std::exception_ptr err = frame->take_error();
    delete frame;
    if (err) std::rethrow_exception(err);
  }

  void wait_future(future_state_base& state) override {
    tl_state& t = tls_;
    FUTRACE_CHECK_MSG(t.eng == this, "get() from a thread outside the pool");
    stall_watchdog watchdog(
        "future never completed: the program has a cyclic future dependence "
        "(deadlock, paper Appendix A) or a lost task");
    while (!state.settled()) {
      if (!try_help()) watchdog.stalled();
    }
  }

  void promise_fulfilled(future_state_base& state) override {
    state.publish(future_state_base::k_ready);
  }

  void wait_promise(future_state_base& state) override {
    tl_state& t = tls_;
    FUTRACE_CHECK_MSG(t.eng == this, "get() from a thread outside the pool");
    stall_watchdog watchdog(
        "promise never fulfilled: the program deadlocks (paper Appendix A) "
        "or the put() was lost");
    while (!state.settled()) {
      if (!try_help()) watchdog.stalled();
    }
  }

  void note_read(const void*, std::size_t, access_site) override {}
  void note_write(const void*, std::size_t, access_site) override {}

  task_id current_task() const override { return k_invalid_task; }

  std::uint64_t tasks_spawned() const override {
    return tasks_spawned_.load(std::memory_order_relaxed);
  }

 private:
  struct pfinish {
    std::atomic<std::int64_t> pending{0};
    pfinish* parent = nullptr;
    std::mutex error_mutex;
    std::exception_ptr first_error;

    void record_error(std::exception_ptr e) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::move(e);
    }
    std::exception_ptr take_error() {
      std::lock_guard<std::mutex> lock(error_mutex);
      return std::move(first_error);
    }
  };

  struct ptask {
    std::function<void()> body;
    pfinish* ief;
  };

  struct worker {
    ws_deque<ptask*> deque;
    std::thread thread;
  };

  struct tl_state {
    parallel_engine* eng = nullptr;
    unsigned index = 0;
    pfinish* current_finish = nullptr;
  };

  /// Converts a permanently stalled help-loop into a deadlock_error after
  /// ~10 seconds without any runnable work.
  class stall_watchdog {
   public:
    explicit stall_watchdog(const char* what) : what_(what) {}

    void stalled() {
      if ((++spins_ & 0x3FF) == 0) {
        const auto now = std::chrono::steady_clock::now();
        if (start_ == std::chrono::steady_clock::time_point{}) {
          start_ = now;
        } else if (now - start_ > std::chrono::seconds(10)) {
          throw deadlock_error(what_);
        }
        std::this_thread::yield();
      }
    }

   private:
    const char* what_;
    std::uint64_t spins_ = 0;
    std::chrono::steady_clock::time_point start_{};
  };

  void worker_loop(unsigned index) {
    tls_ = tl_state{this, index, nullptr};
    // Task bodies running on this thread use the public API, which routes
    // through the ambient context.
    ctx() = context{this, false};
    while (!done_.load(std::memory_order_acquire)) {
      if (!try_help()) {
        // Brief backoff; stealing is retried immediately after.
        std::this_thread::yield();
      }
    }
    ctx() = context{};
    tls_ = tl_state{};
  }

  bool try_help() {
    tl_state& t = tls_;
    if (auto pt = workers_[t.index]->deque.pop()) {
      run_task(*pt);
      return true;
    }
    // Steal sweep starting from a pseudo-random victim.
    const unsigned start = steal_cursor_.fetch_add(1, std::memory_order_relaxed);
    for (unsigned k = 0; k < worker_count_; ++k) {
      const unsigned victim = (start + k) % worker_count_;
      if (victim == t.index) continue;
      if (auto pt = workers_[victim]->deque.steal()) {
        run_task(*pt);
        return true;
      }
    }
    return false;
  }

  void run_task(ptask* pt) {
    tl_state& t = tls_;
    pfinish* saved = t.current_finish;
    t.current_finish = pt->ief;
    try {
      pt->body();
    } catch (...) {
      pt->ief->record_error(std::current_exception());
    }
    t.current_finish = saved;
    pt->ief->pending.fetch_sub(1, std::memory_order_release);
    delete pt;
  }

  void stop_threads() {
    done_.store(true, std::memory_order_release);
    for (auto& w : workers_) {
      if (w->thread.joinable()) w->thread.join();
    }
  }

  const unsigned worker_count_;
  std::vector<std::unique_ptr<worker>> workers_;
  std::atomic<bool> done_{false};
  std::atomic<unsigned> steal_cursor_{0};
  std::atomic<std::uint64_t> tasks_spawned_{0};
  bool running_ = false;

  static thread_local tl_state tls_;
};

thread_local parallel_engine::tl_state parallel_engine::tls_{};

}  // namespace

std::unique_ptr<engine> make_parallel_engine(unsigned workers) {
  return std::make_unique<parallel_engine>(workers);
}

}  // namespace futrace::detail
