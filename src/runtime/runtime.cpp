#include "futrace/runtime/api.hpp"

#include "engines.hpp"
#include "futrace/support/assert.hpp"

namespace futrace {

const char* task_kind_name(task_kind kind) {
  switch (kind) {
    case task_kind::root:
      return "root";
    case task_kind::async:
      return "async";
    case task_kind::future:
      return "future";
    case task_kind::continuation:
      return "continuation";
  }
  return "?";
}

const char* exec_mode_name(exec_mode mode) {
  switch (mode) {
    case exec_mode::serial_elision:
      return "serial-elision";
    case exec_mode::serial_dfs:
      return "serial-dfs";
    case exec_mode::parallel:
      return "parallel";
  }
  return "?";
}

namespace detail {

void engine::parallel_spawn(std::function<void()>, future_state_base*) {
  throw usage_error("parallel_spawn is only available in parallel mode");
}

context& ctx() noexcept {
  static thread_local context c;
  return c;
}

engine& require_engine() {
  context& c = ctx();
  if (c.eng == nullptr) {
    throw usage_error(
        "async/finish/future constructs must execute inside runtime::run()");
  }
  return *c.eng;
}

}  // namespace detail

runtime::runtime(runtime_config config) : config_(config) {}

runtime::~runtime() = default;

void runtime::add_observer(execution_observer* observer) {
  FUTRACE_CHECK_MSG(observer != nullptr, "null observer");
  FUTRACE_CHECK_MSG(config_.mode == exec_mode::serial_dfs,
                    "observers require serial depth-first execution (the "
                    "paper's detector runs on a 1-processor execution)");
  FUTRACE_CHECK_MSG(!ran_, "observers must be attached before run()");
  observers_.push_back(observer);
}

void runtime::run(const std::function<void()>& main_fn) {
  FUTRACE_CHECK_MSG(!ran_, "a runtime instance hosts exactly one execution");
  ran_ = true;

  switch (config_.mode) {
    case exec_mode::serial_elision:
      engine_ = detail::make_elision_engine();
      break;
    case exec_mode::serial_dfs:
      engine_ = detail::make_serial_engine(observers_);
      break;
    case exec_mode::parallel:
      engine_ = detail::make_parallel_engine(config_.workers,
                                             config_.deadlock_timeout_ms);
      break;
  }

  detail::context& c = detail::ctx();
  FUTRACE_CHECK_MSG(c.eng == nullptr, "runtime::run() does not nest");
  c.eng = engine_.get();
  c.instrument =
      config_.mode == exec_mode::serial_dfs && !observers_.empty();
  try {
    engine_->run_program(main_fn);
  } catch (...) {
    c = detail::context{};
    throw;
  }
  c = detail::context{};
}

std::uint64_t runtime::tasks_spawned() const {
  return engine_ ? engine_->tasks_spawned() : 0;
}

}  // namespace futrace
