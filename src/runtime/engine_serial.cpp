/// Serial engines: the elision engine (paper §A.1, the "Seq" baseline) and
/// the serial depth-first engine that drives observers (the execution the
/// detection algorithm is defined over).

#include <vector>

#include "engines.hpp"
#include "futrace/support/assert.hpp"

namespace futrace::detail {

namespace {

/// Serial elision: every construct erased; nothing tracked.
class elision_engine final : public engine {
 public:
  elision_engine() : engine(exec_mode::serial_elision) {}

  void run_program(const std::function<void()>& main_fn) override {
    main_fn();
  }

  task_id spawn_begin(task_kind) override {
    throw usage_error("spawn_begin is not reachable in elision mode");
  }
  void spawn_end() override {}
  void finish_begin() override {}
  void finish_end() override {}

  void wait_future(future_state_base& state) override {
    FUTRACE_CHECK_MSG(state.settled(),
                      "elision-mode future must be complete at get()");
  }

  void promise_fulfilled(future_state_base& state) override {
    state.publish(future_state_base::k_ready);
  }

  void wait_promise(future_state_base& state) override {
    if (!state.settled()) {
      throw deadlock_error(
          "promise.get() before its put() in the serial elision order: the "
          "program deadlocks in some schedule (paper Appendix A)");
    }
  }

  void note_read(const void*, std::size_t, access_site) override {}
  void note_write(const void*, std::size_t, access_site) override {}
  void note_read_range(const void*, std::size_t, std::size_t,
                       access_site) override {}
  void note_write_range(const void*, std::size_t, std::size_t,
                        access_site) override {}

  task_id current_task() const override { return k_invalid_task; }
  std::uint64_t tasks_spawned() const override { return 0; }
};

/// Serial depth-first execution with full observer events. Task bodies run
/// inline at their spawn point, which is exactly the order of the serial
/// elision — the property the detection algorithm requires (paper §4.1).
///
/// promise.put() splits the current task: the remainder of its body becomes
/// an inline *continuation* task (see promise.hpp), so the task stack holds
/// chains of the form [..., T, T', T''] where T'/T'' continue T. The
/// continuation joins the same finish frame T registered with.
class serial_engine final : public engine {
 public:
  explicit serial_engine(std::vector<execution_observer*> observers)
      : engine(exec_mode::serial_dfs), observers_(std::move(observers)) {}

  void run_program(const std::function<void()>& main_fn) override {
    FUTRACE_CHECK_MSG(task_stack_.empty(), "run_program is not reentrant");
    const task_id root = next_task_++;
    task_stack_.push_back(
        frame_entry{root, root, k_no_frame, false, put_counter_});
    for (auto* obs : observers_) obs->on_program_start(root);
    // The implicit finish surrounding main() (paper §2).
    finish_begin();
    std::exception_ptr err;
    try {
      main_fn();
    } catch (...) {
      err = std::current_exception();
    }
    if (!err) {
      finish_end();
      end_root();
      return;
    }
    unwind_after_error();
    std::rethrow_exception(err);
  }

  task_id spawn_begin(task_kind kind) override {
    FUTRACE_CHECK_MSG(!task_stack_.empty(),
                      "async/future outside runtime::run()");
    const task_id parent = task_stack_.back().id;
    const task_id child = next_task_++;
    FUTRACE_CHECK_MSG(!finish_stack_.empty(), "no enclosing finish scope");
    // Register with the Immediately Enclosing Finish: *every* task, futures
    // included, joins its IEF when that finish ends (paper §3, join edges).
    const std::uint32_t ief =
        static_cast<std::uint32_t>(finish_stack_.size() - 1);
    finish_stack_.back().joined.push_back(child);
    for (auto* obs : observers_) obs->on_task_spawn(parent, child, kind);
    task_stack_.push_back(frame_entry{child, child, ief, false, put_counter_});
    return child;
  }

  void spawn_end() override {
    // Close continuations opened by put() inside this task's body, then the
    // task itself; depth-first nesting guarantees they are all on top.
    end_continuations();
    FUTRACE_DCHECK(task_stack_.size() > 1);
    const task_id child = task_stack_.back().id;
    task_stack_.pop_back();
    for (auto* obs : observers_) obs->on_task_end(child);
    // If any promise was fulfilled inside the child's subtree, the resuming
    // task's identity must split as well: its upcoming steps run *after*
    // the put, so they must not be ordered before promise getters through
    // ancestor subsumption (the fulfiller's ancestors were live at the put
    // and would otherwise keep their pre-put identities).
    if (task_stack_.back().puts_seen != put_counter_) split_current();
  }

  void finish_begin() override {
    FUTRACE_CHECK_MSG(!task_stack_.empty(), "finish outside runtime::run()");
    const task_id owner = task_stack_.back().id;
    finish_stack_.push_back(finish_frame{owner, {}});
    for (auto* obs : observers_) obs->on_finish_start(owner);
  }

  void finish_end() override {
    FUTRACE_DCHECK(!finish_stack_.empty());
    finish_frame& frame = finish_stack_.back();
    FUTRACE_CHECK_MSG(on_continuation_chain(frame.owner),
                      "finish scope must end in the task that opened it (or "
                      "a continuation of it)");
    // The join edges target the step *after* the finish, which executes in
    // the current identity — a continuation of the opener if a promise was
    // fulfilled inside the finish body. Reporting the opener instead would
    // leak post-put orderings to promise getters (a soundness hole).
    const task_id current = task_stack_.back().id;
    for (auto* obs : observers_) {
      obs->on_finish_end(current, std::span<const task_id>(frame.joined));
    }
    finish_stack_.pop_back();
  }

  void wait_future(future_state_base& state) override {
    FUTRACE_CHECK_MSG(state.settled(),
                      "serial depth-first execution order violated: get() on "
                      "an incomplete future");
    if (state.task == k_invalid_task) return;  // produced outside this run
    const task_id waiter = task_stack_.back().id;
    for (auto* obs : observers_) obs->on_get(waiter, state.task);
  }

  void promise_fulfilled(future_state_base& state) override {
    FUTRACE_CHECK_MSG(!task_stack_.empty(), "put() outside runtime::run()");
    state.task = task_stack_.back().id;
    state.publish(future_state_base::k_ready);
    for (auto* obs : observers_) obs->on_promise_put(state.task);
    ++put_counter_;
    // Split: the rest of this task's body runs as a continuation task (see
    // promise.hpp); suspended ancestors split lazily when they resume
    // (spawn_end checks put_counter_).
    split_current();
  }

  void wait_promise(future_state_base& state) override {
    if (!state.settled()) {
      throw deadlock_error(
          "promise.get() before its put() in depth-first order: the program "
          "deadlocks in some schedule (paper Appendix A)");
    }
    if (state.task == k_invalid_task) return;
    const task_id waiter = task_stack_.back().id;
    for (auto* obs : observers_) obs->on_get(waiter, state.task);
  }

  void note_read(const void* addr, std::size_t size,
                 access_site site) override {
    const task_id t = task_stack_.back().id;
    for (auto* obs : observers_) obs->on_read(t, addr, size, site);
  }

  void note_write(const void* addr, std::size_t size,
                  access_site site) override {
    const task_id t = task_stack_.back().id;
    for (auto* obs : observers_) obs->on_write(t, addr, size, site);
  }

  void note_read_range(const void* addr, std::size_t count, std::size_t stride,
                       access_site site) override {
    const task_id t = task_stack_.back().id;
    for (auto* obs : observers_) obs->on_read_range(t, addr, count, stride, site);
  }

  void note_write_range(const void* addr, std::size_t count, std::size_t stride,
                        access_site site) override {
    const task_id t = task_stack_.back().id;
    for (auto* obs : observers_) {
      obs->on_write_range(t, addr, count, stride, site);
    }
  }

  task_id current_task() const override {
    FUTRACE_CHECK_MSG(!task_stack_.empty(), "no task is executing");
    return task_stack_.back().id;
  }

  std::uint64_t tasks_spawned() const override { return next_task_; }

 private:
  static constexpr std::uint32_t k_no_frame = 0xFFFFFFFFu;

  struct frame_entry {
    task_id id;
    task_id base;             // original task of a continuation chain
    std::uint32_t ief_frame;  // finish frame the task registered with
    bool continuation;
    std::uint64_t puts_seen = 0;  // put_counter_ when this identity began
  };

  /// Replaces the current identity with a fresh continuation task that
  /// registers with the same finish frame (none for the root's chain).
  void split_current() {
    const frame_entry current = task_stack_.back();
    const task_id cont = next_task_++;
    if (current.ief_frame != k_no_frame) {
      finish_stack_[current.ief_frame].joined.push_back(cont);
    }
    for (auto* obs : observers_) {
      obs->on_task_spawn(current.id, cont, task_kind::continuation);
    }
    task_stack_.push_back(frame_entry{cont, current.base, current.ief_frame,
                                      true, put_counter_});
  }

  struct finish_frame {
    task_id owner;
    std::vector<task_id> joined;  // tasks whose IEF this finish is
  };

  /// True iff `owner` is the current task or an earlier identity on the
  /// current continuation chain.
  bool on_continuation_chain(task_id owner) const {
    for (auto it = task_stack_.rbegin(); it != task_stack_.rend(); ++it) {
      if (it->id == owner) return true;
      if (!it->continuation) return false;
    }
    return false;
  }

  void end_continuations() {
    while (task_stack_.back().continuation) {
      const task_id id = task_stack_.back().id;
      task_stack_.pop_back();
      for (auto* obs : observers_) obs->on_task_end(id);
    }
  }

  /// Completes teardown after an exception escaped the program. The stacks
  /// may hold frames the unwinding skipped (an observer that throws from a
  /// finish event leaves its frame open), so finish_end()'s invariant checks
  /// cannot be reused here. Closes everything innermost-first, firing
  /// best-effort completion events so attached observers see a balanced
  /// stream and stay queryable after run() throws; secondary observer
  /// exceptions are swallowed — the original exception wins.
  void unwind_after_error() noexcept {
    while (!task_stack_.empty()) {
      const frame_entry top = task_stack_.back();
      // Finish frames opened after `top` spawned live inside its subtree and
      // must close before the task does; its own IEF belongs to the parent.
      const std::size_t floor =
          top.ief_frame == k_no_frame ? 0 : top.ief_frame + 1;
      while (finish_stack_.size() > floor) {
        finish_frame& frame = finish_stack_.back();
        for (auto* obs : observers_) {
          try {
            obs->on_finish_end(top.id,
                               std::span<const task_id>(frame.joined));
          } catch (...) {
          }
        }
        finish_stack_.pop_back();
      }
      task_stack_.pop_back();
      for (auto* obs : observers_) {
        try {
          obs->on_task_end(top.id);
        } catch (...) {
        }
      }
    }
    for (auto* obs : observers_) {
      try {
        obs->on_program_end();
      } catch (...) {
      }
    }
  }

  void end_root() {
    end_continuations();
    const task_id root = task_stack_.back().id;
    for (auto* obs : observers_) obs->on_task_end(root);
    for (auto* obs : observers_) obs->on_program_end();
    task_stack_.pop_back();
    FUTRACE_DCHECK(task_stack_.empty());
    FUTRACE_DCHECK(finish_stack_.empty());
  }

  std::vector<execution_observer*> observers_;
  std::vector<frame_entry> task_stack_;
  std::vector<finish_frame> finish_stack_;
  task_id next_task_ = 0;
  std::uint64_t put_counter_ = 0;
};

}  // namespace

std::unique_ptr<engine> make_elision_engine() {
  return std::make_unique<elision_engine>();
}

std::unique_ptr<engine> make_serial_engine(
    std::vector<execution_observer*> observers) {
  return std::make_unique<serial_engine>(std::move(observers));
}

}  // namespace futrace::detail
