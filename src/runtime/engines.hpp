#pragma once

/// \file engines.hpp
/// Private factory functions for the three execution engines. The concrete
/// engine classes live entirely in their .cpp files.

#include <memory>
#include <vector>

#include "futrace/runtime/engine.hpp"

namespace futrace::detail {

std::unique_ptr<engine> make_elision_engine();
std::unique_ptr<engine> make_serial_engine(
    std::vector<execution_observer*> observers);
std::unique_ptr<engine> make_parallel_engine(unsigned workers,
                                             std::uint32_t deadlock_timeout_ms);

}  // namespace futrace::detail
