#include "futrace/progen/random_program.hpp"

#include <algorithm>

#include "futrace/support/assert.hpp"

namespace futrace::progen {

random_program::random_program(progen_config config)
    : config_(config), rng_(config.seed) {
  FUTRACE_CHECK(config_.num_vars > 0);
  FUTRACE_CHECK(config_.min_stmts >= 1 &&
                config_.min_stmts <= config_.max_stmts);
}

void random_program::operator()() {
  vars_.assign(static_cast<std::size_t>(config_.num_vars), 0);
  pool_.clear();
  promises_.clear();
  if (!config_.safe_handles) {
    registry_.assign(static_cast<std::size_t>(config_.max_tasks) + 1,
                     future<int>{});
  }
  rng_ = support::xoshiro256(config_.seed);
  tasks_spawned_ = 0;
  stats_ = progen_stats{};
  visible_state root_visible;
  body(0, root_visible);
}

bool random_program::pick_get_target(const visible_state& visible,
                                     std::uint32_t& out) {
  if (config_.safe_handles) {
    if (visible.futures.empty()) return false;
    out = visible.futures[rng_.below(visible.futures.size())];
    return true;
  }
  // Unsafe mode: any valid (settled or pending-slot-filled) pool entry. A
  // slot is invalid only while its own body is still on the stack, i.e. for
  // our own ancestors — skip those with a bounded number of retries.
  if (pool_.empty()) return false;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const std::uint32_t i =
        static_cast<std::uint32_t>(rng_.below(pool_.size()));
    if (pool_[i].f.valid()) {
      out = i;
      return true;
    }
  }
  return false;
}

void random_program::body(int depth, visible_state& visible) {
  const int stmts = static_cast<int>(
      rng_.range(config_.min_stmts, config_.max_stmts));
  for (int s = 0; s < stmts; ++s) {
    const bool can_spawn =
        depth < config_.max_depth && tasks_spawned_ < config_.max_tasks;
    const bool can_get =
        config_.safe_handles ? !visible.futures.empty() : !pool_.empty();

    // Puttable / joinable visible promises (checked against live state:
    // deterministic, since the serial execution order is fixed).
    std::uint32_t puttable = k_invalid_task;
    std::uint32_t gettable = k_invalid_task;
    for (const std::uint32_t i : visible.promises) {
      if (promises_[i].is_fulfilled()) {
        gettable = i;
      } else {
        puttable = i;
      }
    }

    double w_read = config_.w_read;
    double w_write = config_.w_write;
    double w_rread = config_.w_range_read;
    double w_rwrite = config_.w_range_write;
    double w_async = can_spawn ? config_.w_async : 0.0;
    double w_future = can_spawn ? config_.w_future : 0.0;
    double w_finish = depth < config_.max_depth ? config_.w_finish : 0.0;
    double w_get = can_get ? config_.w_get : 0.0;
    double w_promise = config_.w_promise;
    double w_put = puttable != k_invalid_task ? config_.w_put : 0.0;
    double w_pget = gettable != k_invalid_task ? config_.w_promise_get : 0.0;
    const double total = w_read + w_write + w_rread + w_rwrite + w_async +
                         w_future + w_finish + w_get + w_promise + w_put +
                         w_pget;
    double pick = rng_.uniform() * total;

    const auto var = [this] {
      return static_cast<std::size_t>(rng_.below(config_.num_vars));
    };
    // Contiguous interval [first, first+len) inside the var array; a fixed
    // two draws per range action keeps RNG consumption deterministic.
    const auto interval = [this](std::size_t& first, std::size_t& len) {
      const std::size_t cap = std::min<std::size_t>(
          config_.max_range_len > 0 ? config_.max_range_len : 1,
          static_cast<std::size_t>(config_.num_vars));
      len = 1 + rng_.below(cap);
      first = rng_.below(static_cast<std::size_t>(config_.num_vars) - len + 1);
    };

    if ((pick -= w_read) < 0) {
      ++stats_.reads;
      (void)vars_.read(var());
    } else if ((pick -= w_write) < 0) {
      ++stats_.writes;
      vars_.write(var(), static_cast<int>(rng_() & 0xFFFF));
    } else if ((pick -= w_rread) < 0) {
      ++stats_.range_reads;
      std::size_t first = 0, len = 0;
      interval(first, len);
      (void)vars_.read_range(first, len);
    } else if ((pick -= w_rwrite) < 0) {
      ++stats_.range_writes;
      std::size_t first = 0, len = 0;
      interval(first, len);
      const auto out = vars_.write_range(first, len);
      const int fill = static_cast<int>(rng_() & 0xFFFF);
      for (std::size_t i = 0; i < len; ++i) out[i] = fill + static_cast<int>(i);
    } else if ((pick -= w_async) < 0) {
      ++stats_.asyncs;
      ++tasks_spawned_;
      // Async children receive the handles visible at their spawn by value
      // (race-free flow); they cannot export anything back.
      visible_state snapshot = visible;
      async([this, depth, snapshot]() mutable { body(depth + 1, snapshot); });
    } else if ((pick -= w_future) < 0) {
      ++stats_.futures;
      ++tasks_spawned_;
      const auto idx = static_cast<std::uint32_t>(pool_.size());
      pool_.push_back(pool_entry{});
      visible_state snapshot = visible;
      future<int> f =
          async_future([this, depth, idx, snapshot]() mutable {
            body(depth + 1, snapshot);
            // Everything visible at completion is returnable by value.
            pool_[idx].exported = std::move(snapshot);
            return static_cast<int>(rng_() & 0xFF);
          });
      pool_[idx].f = f;
      if (!config_.safe_handles) {
        // Publish the handle through an instrumented heap cell, as the
        // paper's instrumented HJ programs do.
        registry_.write(idx, f);
      }
      visible.futures.push_back(idx);
    } else if ((pick -= w_finish) < 0) {
      ++stats_.finishes;
      finish([this, depth, &visible] { body(depth + 1, visible); });
    } else if ((pick -= w_get) < 0) {
      std::uint32_t target = 0;
      if (pick_get_target(visible, target)) {
        ++stats_.gets;
        if (config_.safe_handles) {
          (void)pool_[target].f.get();
          // Joining a future legally imports the handles it could return.
          const visible_state& exported = pool_[target].exported;
          if (visible.futures.size() < 4096) {
            visible.futures.insert(visible.futures.end(),
                                   exported.futures.begin(),
                                   exported.futures.end());
          }
          if (visible.promises.size() < 4096) {
            visible.promises.insert(visible.promises.end(),
                                    exported.promises.begin(),
                                    exported.promises.end());
          }
        } else {
          // Instrumented handle load; racy flows show up as races here.
          future<int> f = registry_.read(target);
          if (f.valid()) (void)f.get();
        }
      }
    } else if ((pick -= w_promise) < 0) {
      ++stats_.promises;
      visible.promises.push_back(
          static_cast<std::uint32_t>(promises_.size()));
      promises_.emplace_back();
    } else if ((pick -= w_put) < 0) {
      ++stats_.puts;
      promises_[puttable].put(static_cast<int>(rng_() & 0xFF));
    } else {
      ++stats_.promise_gets;
      (void)promises_[gettable].get();
    }
  }
}

}  // namespace futrace::progen
