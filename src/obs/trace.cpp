#include "futrace/obs/trace.hpp"

#include <cstdio>
#include <map>
#include <utility>

#include "futrace/runtime/observer.hpp"
#include "futrace/support/json.hpp"

namespace futrace::obs {

namespace detail {
std::atomic<trace_buffer*> g_trace_sink{nullptr};
}  // namespace detail

// ----------------------------------------------------------- trace_buffer

trace_buffer::trace_buffer(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity),
      start_(std::chrono::steady_clock::now()) {}

void trace_buffer::record(trace_kind kind, trace_track type,
                          std::uint32_t track, std::uint64_t arg0,
                          std::uint64_t arg1) noexcept {
  const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  trace_event& ev = slots_[idx];
  ev.ts_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  ev.track = track;
  ev.kind = kind;
  ev.track_type = type;
}

std::uint64_t trace_buffer::recorded() const noexcept {
  const std::uint64_t claimed = next_.load(std::memory_order_relaxed);
  return claimed < slots_.size() ? claimed : slots_.size();
}

std::vector<trace_event> trace_buffer::events() const {
  return {slots_.begin(),
          slots_.begin() + static_cast<std::ptrdiff_t>(recorded())};
}

// ------------------------------------------------------- Chrome JSON export

namespace {

constexpr int k_pid_tasks = 1;
constexpr int k_pid_checkers = 2;

int pid_of(const trace_event& ev) {
  return ev.track_type == trace_track::task ? k_pid_tasks : k_pid_checkers;
}

support::json event_shell(const char* name, const char* ph,
                          const trace_event& ev) {
  support::json j = support::json::object();
  j["name"] = name;
  j["ph"] = ph;
  j["ts"] = static_cast<double>(ev.ts_ns) / 1000.0;  // microseconds
  j["pid"] = pid_of(ev);
  j["tid"] = static_cast<std::uint64_t>(ev.track);
  return j;
}

support::json instant(const char* name, const char* scope,
                      const trace_event& ev) {
  support::json j = event_shell(name, "i", ev);
  j["s"] = scope;
  return j;
}

std::string hex_address(std::uint64_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(addr));
  return buf;
}

support::json metadata(const char* what, int pid, std::uint64_t tid,
                       bool with_tid, const std::string& name) {
  support::json j = support::json::object();
  j["name"] = what;
  j["ph"] = "M";
  j["pid"] = pid;
  if (with_tid) j["tid"] = tid;
  support::json args = support::json::object();
  args["name"] = name;
  j["args"] = std::move(args);
  return j;
}

}  // namespace

std::string to_chrome_json(const trace_buffer& buf) {
  const std::vector<trace_event> events = buf.events();

  support::json out = support::json::object();
  support::json list = support::json::array();

  // Process/thread naming metadata: one thread per task id and per checker
  // worker index, discovered from the events themselves.
  std::map<std::pair<int, std::uint64_t>, bool> tracks;
  bool any_tasks = false;
  bool any_checkers = false;
  for (const trace_event& ev : events) {
    tracks.emplace(std::pair{pid_of(ev), std::uint64_t{ev.track}}, true);
    (pid_of(ev) == k_pid_tasks ? any_tasks : any_checkers) = true;
  }
  if (any_tasks) {
    list.push_back(metadata("process_name", k_pid_tasks, 0, false,
                            "futrace program tasks"));
  }
  if (any_checkers) {
    list.push_back(metadata("process_name", k_pid_checkers, 0, false,
                            "futrace race checkers"));
  }
  for (const auto& [key, unused] : tracks) {
    (void)unused;
    const char* prefix = key.first == k_pid_tasks ? "task " : "checker ";
    list.push_back(metadata("thread_name", key.first, key.second, true,
                            prefix + std::to_string(key.second)));
  }

  // "E" events reuse the matching "B" name; unmatched ends (a task still
  // live when the buffer filled) close as a generic "task" slice.
  std::map<std::uint64_t, std::vector<const char*>> open_slices;

  for (const trace_event& ev : events) {
    switch (ev.kind) {
      case trace_kind::task_begin: {
        const char* name =
            task_kind_name(static_cast<task_kind>(ev.arg0));
        support::json j = event_shell(name, "B", ev);
        support::json args = support::json::object();
        args["task"] = static_cast<std::uint64_t>(ev.track);
        args["parent"] = ev.arg1;
        j["args"] = std::move(args);
        list.push_back(std::move(j));
        open_slices[ev.track].push_back(name);
        break;
      }
      case trace_kind::task_end: {
        std::vector<const char*>& stack = open_slices[ev.track];
        const char* name = stack.empty() ? "task" : stack.back();
        if (!stack.empty()) stack.pop_back();
        list.push_back(event_shell(name, "E", ev));
        break;
      }
      case trace_kind::finish: {
        support::json j = instant("finish", "t", ev);
        support::json args = support::json::object();
        args["joined"] = ev.arg0;
        j["args"] = std::move(args);
        list.push_back(std::move(j));
        break;
      }
      case trace_kind::get: {
        support::json j = instant("get", "t", ev);
        support::json args = support::json::object();
        args["target"] = ev.arg0;
        j["args"] = std::move(args);
        list.push_back(std::move(j));
        break;
      }
      case trace_kind::put:
        list.push_back(instant("put", "t", ev));
        break;
      case trace_kind::race: {
        support::json j = instant("race", "p", ev);
        support::json args = support::json::object();
        args["location"] = hex_address(ev.arg0);
        args["kind"] = ev.arg1;
        j["args"] = std::move(args);
        list.push_back(std::move(j));
        break;
      }
      case trace_kind::slab_materialize: {
        support::json j = instant("slab_materialize", "p", ev);
        support::json args = support::json::object();
        args["cells"] = ev.arg0;
        j["args"] = std::move(args);
        list.push_back(std::move(j));
        break;
      }
      case trace_kind::precede_sample: {
        support::json j = event_shell("precede", "C", ev);
        support::json args = support::json::object();
        args["queries"] = ev.arg0;
        args["memo_hits"] = ev.arg1;
        j["args"] = std::move(args);
        list.push_back(std::move(j));
        break;
      }
      case trace_kind::ring_stall:
        list.push_back(instant("ring_stall", "t", ev));
        break;
      case trace_kind::takeover:
        list.push_back(instant("takeover", "t", ev));
        break;
      case trace_kind::worker_death:
        list.push_back(instant("worker_death", "t", ev));
        break;
    }
  }

  out["traceEvents"] = std::move(list);
  out["displayTimeUnit"] = "ms";
  support::json other = support::json::object();
  other["recorded_events"] = buf.recorded();
  other["dropped_events"] = buf.dropped();
  out["otherData"] = std::move(other);
  return out.dump(1);
}

// ----------------------------------------------------------- trace_session

trace_session::trace_session(std::string path, std::size_t capacity)
    : path_(std::move(path)),
      buf_(std::make_unique<trace_buffer>(capacity)) {
  previous_ = detail::g_trace_sink.exchange(buf_.get());
}

trace_session::~trace_session() {
  detail::g_trace_sink.store(previous_);
  if (!path_.empty()) (void)write(path_);
}

bool trace_session::write(const std::string& path) const {
  const std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "trace: short write to %s\n", path.c_str());
  return ok;
}

}  // namespace futrace::obs
