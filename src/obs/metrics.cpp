#include "futrace/obs/metrics.hpp"

#include <utility>

#include "futrace/obs/trace.hpp"

namespace futrace::obs {

// ------------------------------------------------------- metrics_snapshot

bool metrics_snapshot::has(std::string_view ns,
                           std::string_view key) const noexcept {
  for (const entry& e : entries_) {
    if (e.ns == ns && e.key == key) return true;
  }
  return false;
}

double metrics_snapshot::value(std::string_view ns,
                               std::string_view key) const noexcept {
  for (const entry& e : entries_) {
    if (e.ns == ns && e.key == key) return e.m.value;
  }
  return 0.0;
}

support::json metrics_snapshot::to_json() const {
  support::json doc = support::json::object();
  for (const entry& e : entries_) {
    doc[e.ns][e.key] = e.m.value;
  }
  return doc;
}

// -------------------------------------------------------- sharded_counter

unsigned sharded_counter::shard_hint() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

// -------------------------------------------------------- metrics_registry

void metrics_registry::add_source(std::string name, source_fn fn) {
  for (source& s : sources_) {
    if (s.name == name) {
      s.fn = std::move(fn);
      return;
    }
  }
  sources_.push_back({std::move(name), std::move(fn)});
}

bool metrics_registry::remove_source(std::string_view name) {
  for (auto it = sources_.begin(); it != sources_.end(); ++it) {
    if (it->name == name) {
      sources_.erase(it);
      return true;
    }
  }
  return false;
}

sharded_counter& metrics_registry::owned_counter(std::string ns,
                                                 std::string key) {
  for (owned& o : owned_) {
    if (o.ns == ns && o.key == key) return *o.c;
  }
  owned_.push_back(
      {std::move(ns), std::move(key), std::make_unique<sharded_counter>()});
  return *owned_.back().c;
}

metrics_snapshot metrics_registry::snapshot() const {
  metrics_snapshot snap;
  for (const source& s : sources_) s.fn(snap);
  for (const owned& o : owned_) {
    snap.counter(o.ns, o.key, static_cast<double>(o.c->sum()));
  }
  return snap;
}

// ----------------------------------------------------------------- schema

bool is_paper_counter(std::string_view key) noexcept {
  for (const char* k : k_paper_counter_keys) {
    if (key == k) return true;
  }
  return false;
}

double direct_hit_rate(const detect::detector_counters& c) noexcept {
  const auto tracked = c.direct_hits + c.hashed_hits;
  return tracked ? static_cast<double>(c.direct_hits) / tracked : 0;
}

double memo_hit_rate(const detect::detector_counters& c) noexcept {
  return c.precede_queries
             ? static_cast<double>(c.memo_hits) / c.precede_queries
             : 0;
}

double stamp_hit_rate(const detect::detector_counters& c) noexcept {
  return c.shared_mem_accesses
             ? static_cast<double>(c.stamp_hits) / c.shared_mem_accesses
             : 0;
}

double range_hit_rate(const detect::detector_counters& c) noexcept {
  return c.shared_mem_accesses
             ? static_cast<double>(c.range_hits) / c.shared_mem_accesses
             : 0;
}

support::json counters_json(const detect::detector_counters& c) {
  support::json counters = support::json::object();
  counters["tasks"] = c.tasks;
  counters["non_tree_joins"] = c.non_tree_joins;
  counters["shared_mem_accesses"] = c.shared_mem_accesses;
  counters["reads"] = c.reads;
  counters["writes"] = c.writes;
  counters["locations"] = c.locations;
  counters["avg_readers"] = c.avg_readers;
  counters["races_observed"] = c.races_observed;
  counters["precede_queries"] = c.precede_queries;
  counters["direct_hits"] = c.direct_hits;
  counters["hashed_hits"] = c.hashed_hits;
  counters["memo_hits"] = c.memo_hits;
  counters["stamp_hits"] = c.stamp_hits;
  counters["range_events"] = c.range_events;
  counters["range_hits"] = c.range_hits;
  counters["summary_hits"] = c.summary_hits;
  counters["degradation_reasons"] =
      static_cast<std::uint64_t>(c.degradation_reasons);
  counters["reports_capped"] = c.reports_capped;
  counters["epoch_resets"] = c.epoch_resets;
  counters["suppressed_races"] = c.suppressed_races;
  counters["errors_throttled"] = c.errors_throttled;
  return counters;
}

support::json rates_json(const detect::detector_counters& c) {
  support::json rates = support::json::object();
  rates["direct_hit_rate"] = direct_hit_rate(c);
  rates["memo_hit_rate"] = memo_hit_rate(c);
  rates["stamp_hit_rate"] = stamp_hit_rate(c);
  rates["range_hit_rate"] = range_hit_rate(c);
  return rates;
}

support::json pipe_json(const detect::pipeline_stats& p) {
  support::json pipe = support::json::object();
  pipe["workers"] = p.workers;
  pipe["ring_capacity"] = p.ring_capacity;
  pipe["pipe_events"] = p.events;
  pipe["inline_fallbacks"] = p.inline_fallbacks;
  pipe["workers_died"] = p.workers_died;
  pipe["occupancy_pct"] = p.occupancy_pct();
  pipe["backpressure_waits"] = p.backpressure_waits;
  return pipe;
}

// -------------------------------------------------------- engine adapters

namespace {

void fill_from_json(metrics_snapshot& snap, const std::string& ns,
                    const support::json& obj) {
  for (const support::json::member& m : obj.members()) {
    snap.gauge(ns, m.first, m.second.as_double());
  }
}

}  // namespace

void add_detector_source(metrics_registry& reg,
                         std::function<detect::detector_counters()> get) {
  reg.add_source("detector", [get = std::move(get)](metrics_snapshot& snap) {
    const detect::detector_counters c = get();
    fill_from_json(snap, "counters", counters_json(c));
    fill_from_json(snap, "rates", rates_json(c));
  });
}

void add_pipeline_source(metrics_registry& reg,
                         std::function<detect::pipeline_stats()> get) {
  reg.add_source("pipeline", [get = std::move(get)](metrics_snapshot& snap) {
    fill_from_json(snap, "pipe", pipe_json(get()));
  });
}

void add_shadow_source(metrics_registry& reg,
                       std::function<detect::shadow_stats()> get) {
  reg.add_source("shadow", [get = std::move(get)](metrics_snapshot& snap) {
    const detect::shadow_stats s = get();
    snap.counter("shadow", "direct_hits", static_cast<double>(s.direct_hits));
    snap.counter("shadow", "hashed_hits", static_cast<double>(s.hashed_hits));
    snap.counter("shadow", "mru_hits", static_cast<double>(s.mru_hits));
    snap.counter("shadow", "slabs_built", static_cast<double>(s.slabs_built));
    snap.counter("shadow", "slab_fallbacks",
                 static_cast<double>(s.slab_fallbacks));
    snap.counter("shadow", "rejected_overlaps",
                 static_cast<double>(s.rejected_overlaps));
    snap.counter("shadow", "migrated_cells",
                 static_cast<double>(s.migrated_cells));
    snap.counter("shadow", "summaries_established",
                 static_cast<double>(s.summaries_established));
    snap.counter("shadow", "summary_materializations",
                 static_cast<double>(s.summary_materializations));
  });
}

void add_reachability_source(metrics_registry& reg,
                             std::function<dsr::reachability_stats()> get) {
  reg.add_source("dsr", [get = std::move(get)](metrics_snapshot& snap) {
    const dsr::reachability_stats s = get();
    snap.counter("dsr", "tasks_created",
                 static_cast<double>(s.tasks_created));
    snap.counter("dsr", "tree_joins", static_cast<double>(s.tree_joins));
    snap.counter("dsr", "non_tree_joins",
                 static_cast<double>(s.non_tree_joins));
    snap.counter("dsr", "precede_queries",
                 static_cast<double>(s.precede_queries));
    snap.counter("dsr", "visit_steps", static_cast<double>(s.visit_steps));
    snap.counter("dsr", "nt_edges_walked",
                 static_cast<double>(s.nt_edges_walked));
    snap.counter("dsr", "lsa_hops", static_cast<double>(s.lsa_hops));
    snap.counter("dsr", "memo_hits", static_cast<double>(s.memo_hits));
    snap.counter("dsr", "memo_invalidations",
                 static_cast<double>(s.memo_invalidations));
    // PRECEDE-backend comparison counters (precede_backend.hpp).
    snap.counter("dsr", "label_bytes", static_cast<double>(s.label_bytes));
    snap.counter("dsr", "label_comparisons",
                 static_cast<double>(s.label_comparisons));
    snap.counter("dsr", "max_label_len",
                 static_cast<double>(s.max_label_len));
    snap.counter("dsr", "frontier_searches",
                 static_cast<double>(s.frontier_searches));
  });
}

void add_fault_source(metrics_registry& reg,
                      std::function<inject::fault_injector::counters()> get) {
  reg.add_source("fault", [get = std::move(get)](metrics_snapshot& snap) {
    const inject::fault_injector::counters c = get();
    snap.counter("fault", "spawn_sites", static_cast<double>(c.spawn_sites));
    snap.counter("fault", "get_sites", static_cast<double>(c.get_sites));
    snap.counter("fault", "put_sites", static_cast<double>(c.put_sites));
    snap.counter("fault", "alloc_gates", static_cast<double>(c.alloc_gates));
    snap.counter("fault", "thrown_spawn",
                 static_cast<double>(c.thrown_spawn));
    snap.counter("fault", "thrown_get", static_cast<double>(c.thrown_get));
    snap.counter("fault", "thrown_put", static_cast<double>(c.thrown_put));
    snap.counter("fault", "epoch_reset_sites",
                 static_cast<double>(c.epoch_reset_sites));
    snap.counter("fault", "thrown_epoch_reset",
                 static_cast<double>(c.thrown_epoch_reset));
    snap.counter("fault", "dropped_puts",
                 static_cast<double>(c.dropped_puts));
    snap.counter("fault", "failed_allocs",
                 static_cast<double>(c.failed_allocs));
    snap.counter("fault", "forced_yields",
                 static_cast<double>(c.forced_yields));
    snap.counter("fault", "perturbed_steals",
                 static_cast<double>(c.perturbed_steals));
    snap.counter("fault", "pipe_stalls", static_cast<double>(c.pipe_stalls));
    snap.counter("fault", "pipe_kills", static_cast<double>(c.pipe_kills));
    snap.counter("fault", "pipe_forced_fulls",
                 static_cast<double>(c.pipe_forced_fulls));
    snap.counter("fault", "faults_fired",
                 static_cast<double>(c.faults_fired()));
  });
}

void add_trace_source(metrics_registry& reg, const trace_session& session) {
  const trace_session* s = &session;
  reg.add_source("trace", [s](metrics_snapshot& snap) {
    snap.counter("trace", "recorded_events",
                 static_cast<double>(s->recorded()));
    snap.counter("trace", "dropped_events",
                 static_cast<double>(s->dropped()));
    snap.gauge("trace", "capacity",
               static_cast<double>(s->buffer().capacity()));
  });
}

}  // namespace futrace::obs
