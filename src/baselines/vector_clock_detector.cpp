#include "futrace/baselines/vector_clock_detector.hpp"

#include <algorithm>

#include "futrace/support/assert.hpp"

namespace futrace::baselines {

void vector_clock_detector::on_program_start(task_id root) {
  FUTRACE_CHECK(root == 0 && clocks_.empty());
  clocks_.emplace_back();
}

void vector_clock_detector::on_task_spawn(task_id parent, task_id child,
                                          task_kind) {
  FUTRACE_CHECK(child == clocks_.size());
  // The child inherits everything the parent has joined, plus the parent's
  // own steps so far — this copy is the O(#tasks) per-spawn cost.
  bits b = clocks_[parent];
  set_bit(b, parent);
  clocks_.push_back(std::move(b));
}

void vector_clock_detector::on_finish_end(task_id owner,
                                          std::span<const task_id> joined) {
  bits& o = clocks_[owner];
  for (const task_id t : joined) {
    merge_into(o, clocks_[t]);
    set_bit(o, t);
  }
}

void vector_clock_detector::on_get(task_id waiter, task_id target) {
  bits& w = clocks_[waiter];
  merge_into(w, clocks_[target]);
  set_bit(w, target);
}

void vector_clock_detector::on_read(task_id t, const void* addr, std::size_t,
                                    access_site) {
  cell& c = shadow_[addr];
  if (c.writer != k_invalid_task && !precedes(c.writer, t)) {
    ++races_;
    racy_.push_back(addr);
  }
  for (std::size_t i = 0; i < c.readers.size();) {
    if (precedes(c.readers[i], t)) {
      c.readers.erase_unordered(i);
    } else {
      ++i;
    }
  }
  if (!c.readers.contains(t)) c.readers.push_back(t);
}

void vector_clock_detector::on_write(task_id t, const void* addr, std::size_t,
                                     access_site) {
  cell& c = shadow_[addr];
  for (std::size_t i = 0; i < c.readers.size();) {
    if (precedes(c.readers[i], t)) {
      c.readers.erase_unordered(i);
    } else {
      ++races_;
      racy_.push_back(addr);
      ++i;
    }
  }
  if (c.writer != k_invalid_task && !precedes(c.writer, t)) {
    ++races_;
    racy_.push_back(addr);
  }
  c.writer = t;
}

void vector_clock_detector::set_bit(bits& b, task_id t) {
  const std::size_t word = t / 64;
  if (word >= b.size()) b.resize(word + 1, 0);
  b[word] |= std::uint64_t{1} << (t % 64);
}

bool vector_clock_detector::test_bit(const bits& b, task_id t) {
  const std::size_t word = t / 64;
  return word < b.size() && (b[word] >> (t % 64)) & 1;
}

void vector_clock_detector::merge_into(bits& into, const bits& from) {
  if (from.size() > into.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] |= from[i];
}

bool vector_clock_detector::precedes(task_id x, task_id current) const {
  return x == current || test_bit(clocks_[current], x);
}

std::vector<const void*> vector_clock_detector::racy_locations() const {
  std::vector<const void*> out = racy_;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t vector_clock_detector::clock_bytes() const {
  std::size_t bytes = 0;
  for (const bits& b : clocks_) bytes += b.capacity() * sizeof(std::uint64_t);
  return bytes;
}

std::size_t vector_clock_detector::memory_bytes() const {
  std::size_t bytes = clock_bytes() + clocks_.capacity() * sizeof(bits) +
                      shadow_.table_bytes();
  shadow_.for_each([&bytes](const void*, const cell& c) {
    if (!c.readers.uses_inline_storage()) {
      bytes += c.readers.capacity() * sizeof(task_id);
    }
  });
  return bytes;
}

}  // namespace futrace::baselines
