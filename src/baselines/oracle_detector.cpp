#include "futrace/baselines/oracle_detector.hpp"

#include <algorithm>

namespace futrace::baselines {

void oracle_detector::on_program_start(task_id root) {
  recorder_.on_program_start(root);
}

void oracle_detector::on_task_spawn(task_id parent, task_id child,
                                    task_kind kind) {
  recorder_.on_task_spawn(parent, child, kind);
}

void oracle_detector::on_task_end(task_id t) { recorder_.on_task_end(t); }

void oracle_detector::on_finish_start(task_id owner) {
  recorder_.on_finish_start(owner);
}

void oracle_detector::on_finish_end(task_id owner,
                                    std::span<const task_id> joined) {
  recorder_.on_finish_end(owner, joined);
}

void oracle_detector::on_get(task_id waiter, task_id target) {
  recorder_.on_get(waiter, target);
}

void oracle_detector::on_read(task_id t, const void* addr, std::size_t,
                              access_site) {
  check(t, addr, /*is_write=*/false);
}

void oracle_detector::on_write(task_id t, const void* addr, std::size_t,
                               access_site) {
  check(t, addr, /*is_write=*/true);
}

void oracle_detector::check(task_id t, const void* addr, bool is_write) {
  const graph::step_id cur = recorder_.current_step(t);
  std::vector<access>& hist = history_[addr];
  // Skip duplicate consecutive entries (tight loops re-accessing the same
  // location within one step dominate otherwise).
  if (!hist.empty() && hist.back().step == cur &&
      hist.back().is_write == is_write) {
    return;
  }
  bool raced = false;
  for (const access& prev : hist) {
    if (!prev.is_write && !is_write) continue;  // read-read never races
    if (recorder_.graph().parallel(prev.step, cur)) {
      raced = true;
      ++races_;
      racy_pairs_.push_back(
          racy_pair{addr, prev.step, cur, prev.is_write, is_write});
    }
  }
  if (raced) racy_.push_back(addr);
  hist.push_back(access{cur, is_write});
}

std::vector<const void*> oracle_detector::racy_locations() const {
  std::vector<const void*> out = racy_;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace futrace::baselines
