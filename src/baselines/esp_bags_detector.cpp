#include "futrace/baselines/esp_bags_detector.hpp"

#include <algorithm>

#include "futrace/runtime/errors.hpp"
#include "futrace/support/assert.hpp"

namespace futrace::baselines {

void esp_bags_detector::on_program_start(task_id root) {
  FUTRACE_CHECK(root == 0 && nodes_.empty());
  nodes_.push_back(node{0, 1, bag_tag::s_bag});
}

void esp_bags_detector::on_task_spawn(task_id parent, task_id child,
                                      task_kind kind) {
  (void)parent;
  if (kind == task_kind::future || kind == task_kind::continuation) {
    throw usage_error(
        "ESP-bags supports only async-finish programs; futures and promises "
        "require the futrace::detect::race_detector");
  }
  FUTRACE_CHECK(child == nodes_.size());
  // The child starts in its own S-bag.
  nodes_.push_back(node{child, 1, bag_tag::s_bag});
}

void esp_bags_detector::on_task_end(task_id t) {
  if (finish_stack_.empty()) return;  // the root task ending
  // The completed task's S-bag moves into the P-bag of its Immediately
  // Enclosing Finish: it may now run in parallel with everything the
  // current task does until that finish ends.
  finish_frame& frame = finish_stack_.back();
  if (frame.pbag == k_invalid_task) {
    const task_id r = find(t);
    nodes_[r].tag = bag_tag::p_bag;
    frame.pbag = r;
  } else {
    set_union(frame.pbag, t, bag_tag::p_bag);
    frame.pbag = find(frame.pbag);
  }
}

void esp_bags_detector::on_finish_start(task_id owner) {
  finish_stack_.push_back(finish_frame{owner, k_invalid_task});
}

void esp_bags_detector::on_finish_end(task_id owner,
                                      std::span<const task_id>) {
  FUTRACE_DCHECK(!finish_stack_.empty());
  const finish_frame frame = finish_stack_.back();
  finish_stack_.pop_back();
  // Everything joined by this finish now precedes the owner's continuation:
  // the P-bag folds into the owner's S-bag.
  if (frame.pbag != k_invalid_task) {
    set_union(owner, frame.pbag, bag_tag::s_bag);
  }
}

void esp_bags_detector::on_get(task_id, task_id) {
  throw usage_error(
      "ESP-bags cannot model future get() operations (non-strict joins)");
}

void esp_bags_detector::on_promise_put(task_id) {
  throw usage_error("ESP-bags cannot model promises");
}

void esp_bags_detector::on_read(task_id t, const void* addr, std::size_t,
                                access_site) {
  cell& c = shadow_[addr];
  if (c.writer != k_invalid_task && !precedes(c.writer, t)) {
    ++races_;
    racy_.push_back(addr);
  }
  // Keep a reader only if it does not precede the current one; a surviving
  // parallel reader covers this read for all later writers (Lemma 4).
  if (c.reader == k_invalid_task || precedes(c.reader, t)) {
    c.reader = t;
  }
}

void esp_bags_detector::on_write(task_id t, const void* addr, std::size_t,
                                 access_site) {
  cell& c = shadow_[addr];
  if (c.reader != k_invalid_task && !precedes(c.reader, t)) {
    ++races_;
    racy_.push_back(addr);
  }
  if (c.writer != k_invalid_task && !precedes(c.writer, t)) {
    ++races_;
    racy_.push_back(addr);
  }
  c.writer = t;
}

task_id esp_bags_detector::find(task_id t) {
  while (nodes_[t].uf_parent != t) {
    nodes_[t].uf_parent = nodes_[nodes_[t].uf_parent].uf_parent;
    t = nodes_[t].uf_parent;
  }
  return t;
}

void esp_bags_detector::set_union(task_id into, task_id from, bag_tag tag) {
  task_id a = find(into);
  task_id b = find(from);
  if (a == b) {
    nodes_[a].tag = tag;
    return;
  }
  if (nodes_[a].uf_size < nodes_[b].uf_size) std::swap(a, b);
  nodes_[b].uf_parent = a;
  nodes_[a].uf_size += nodes_[b].uf_size;
  nodes_[a].tag = tag;
}

bool esp_bags_detector::precedes(task_id x, task_id current) {
  if (x == current) return true;
  return nodes_[find(x)].tag == bag_tag::s_bag;
}

std::vector<const void*> esp_bags_detector::racy_locations() const {
  std::vector<const void*> out = racy_;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::size_t esp_bags_detector::memory_bytes() const {
  return nodes_.capacity() * sizeof(node) + shadow_.table_bytes() +
         finish_stack_.capacity() * sizeof(finish_frame);
}

}  // namespace futrace::baselines
