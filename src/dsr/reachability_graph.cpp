#include "futrace/dsr/reachability_graph.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace futrace::dsr {

reachability_graph::reachability_graph() {
  nodes_.reserve(1024);
  uf_parent_.reserve(1024);
  memo_.resize(k_memo_slots);
}

task_id reachability_graph::create_root() {
  FUTRACE_CHECK_MSG(nodes_.empty(), "create_root must be the first event");
  return create_task(k_invalid_task);
}

task_id reachability_graph::create_task(task_id parent) {
  FUTRACE_CHECK_MSG(parent != k_invalid_task || nodes_.empty(),
                    "only the root task may lack a parent");
  // Runtime id and storage index coincide until the first compaction, after
  // which new ids keep counting up while indices restart past the tombstone.
  const task_id id = next_id_++;
  FUTRACE_DCHECK(map_.to_index(id) == static_cast<task_id>(nodes_.size()));
  node n;
  n.own_label = labels_.on_spawn();
  n.label = n.own_label;
  uf_parent_.push_back(static_cast<task_id>(nodes_.size()));
  if (parent != k_invalid_task) {
    const task_id pi = idx(parent);
    n.spawn_parent = pi;
    // Algorithm 2 lines 7-11: the child's LSA is the parent itself when the
    // parent's set already has incoming non-tree edges, otherwise it inherits
    // the parent's LSA. Metadata lives at the parent's representative.
    const task_id rp = find(pi);
    n.lsa = nodes_[rp].nt.empty() ? nodes_[rp].lsa : pi;
  }
  nodes_.push_back(std::move(n));
  ++stats_.tasks_created;
  return id;
}

void reachability_graph::on_terminate(task_id t) {
  const task_id ti = idx(t);
  FUTRACE_CHECK_MSG(!nodes_[ti].terminated, "task terminated twice");
  nodes_[ti].terminated = true;
  const std::uint64_t post = labels_.on_terminate();
  nodes_[ti].own_label.post = post;
  // Algorithm 3 updates the label of the terminating task's *set*. In a
  // depth-first execution every other member of the set is a descendant that
  // already terminated, so `t` is the member closest to the root and the set
  // label is t's label.
  const task_id r = find(ti);
  FUTRACE_DCHECK(nodes_[r].label.pre == nodes_[ti].own_label.pre);
  nodes_[r].label.post = post;
}

bool reachability_graph::on_get(task_id waiter, task_id target) {
  const task_id wi = idx(waiter);
  const task_id ti = map_.to_index(target);
  if (ti == k_invalid_task) {
    // Retired target: it finalized before the last compaction and its set
    // holds a live chain task. The branch structure below mirrors the
    // uncompacted graph exactly — through the retirement maps instead of the
    // freed vertex — so tree/non-tree classification (and with it the
    // paper's #NTJoins counter) is bit-identical with compaction off.
    if (find(wi) == find(retired_rep(target))) return true;
    if (find(wi) == find(retired_parent_rep(target))) {
      const task_id rt = find(retired_rep(target));
      if (find(wi) != rt) {
        merge(wi, rt);
        ++stats_.tree_joins;
      }
      return true;
    }
    // The non-tree edge would point at the retired task; record the
    // tombstone instead. Any future PRECEDE whose source postdates the
    // compaction can never need this edge (the retired side terminated
    // first), and sources predating it answer by set-label subsumption
    // before walking — the tombstone only preserves list non-emptiness for
    // the child-LSA rule in create_task.
    const task_id rw = find(wi);
    const task_id tomb = map_.tombstone_index();
    if (!nodes_[rw].nt.contains(tomb)) {
      nodes_[rw].nt.push_back(tomb);
    }
    ++stats_.non_tree_joins;
    return false;
  }
  if (!nodes_[ti].terminated) {
    // Only a live *ancestor* can be joined mid-flight (a promise fulfilled
    // earlier on the current continuation chain): the ordering is already
    // implied by the spawn chain, so the edge carries no new information.
    FUTRACE_CHECK_MSG(
        nodes_[ti].own_label.subsumes(nodes_[wi].own_label),
        "get() on a live non-ancestor task; the serial "
        "depth-first execution order was violated");
    return true;
  }
  // Already connected by tree joins (e.g. the target joined this waiter's
  // finish before the get): nothing to record.
  if (find(wi) == find(ti)) return true;
  const task_id parent = nodes_[ti].spawn_parent;
  // Algorithm 4: a get is a tree join iff the waiter is in the same set as
  // the target's spawn parent (the waiter is then an ancestor reached from
  // the target purely by tree joins).
  if (parent != k_invalid_task && find(wi) == find(parent)) {
    if (find(wi) != find(ti)) {
      merge(wi, ti);
      ++stats_.tree_joins;
    }
    return true;
  }
  const task_id rw = find(wi);
  if (!nodes_[rw].nt.contains(ti)) {
    nodes_[rw].nt.push_back(ti);
    memo_invalidate();
  }
  ++stats_.non_tree_joins;
  return false;
}

void reachability_graph::on_finish_join(task_id owner, task_id joined) {
  const task_id oi = idx(owner);
  const task_id ji = map_.to_index(joined);
  if (ji != k_invalid_task && ji >= nodes_.size()) {
    // The engine registered `joined` with its enclosing finish before the
    // spawn observers ran, and one of them threw (fault injection at the
    // epoch-reset site) — the task has no vertex and never ran, so there is
    // nothing to merge on the unwind's finish_end.
    return;
  }
  if (ji == k_invalid_task) {
    // `joined` was tree-joined into a live chain set by a get() before the
    // compaction that retired it (otherwise its set would have blocked
    // quiescence). Merge the owner with that set, exactly as the
    // uncompacted graph would merge owner and joined.
    const task_id rj = find(retired_rep(joined));
    if (find(oi) == rj) return;
    merge(oi, rj);
    ++stats_.tree_joins;
    return;
  }
  FUTRACE_CHECK_MSG(nodes_[ji].terminated,
                    "finish join on a task that has not terminated");
  if (find(oi) == find(ji)) return;  // already merged via a get()
  merge(oi, ji);
  ++stats_.tree_joins;
}

task_id reachability_graph::find(task_id t) {
  // Iterative path halving over the dense parent array. Written so each hop
  // loads each parent slot exactly once: the straightforward
  //   uf_parent_[t] = uf_parent_[uf_parent_[t]]; t = uf_parent_[t];
  // form re-loads uf_parent_[t] after the store (three loads per hop, and
  // the compiler cannot fold them because the store may alias); keeping
  // parent and grandparent in registers does the halving write and the
  // advance from values already in hand (two loads per hop). Every PRECEDE
  // query funnels through two find()s, so the loop body is the hottest few
  // instructions in the detector — BM_PrecedeDeepChain pins its behaviour
  // on long chains.
  task_id* const parent = uf_parent_.data();
  task_id p = parent[t];
  while (p != t) {
    const task_id gp = parent[p];
    if (gp == p) return p;
    parent[t] = gp;  // halve: t now points at its grandparent
    t = gp;
    p = parent[gp];
  }
  return t;
}

void reachability_graph::merge(task_id ancestor_side, task_id descendant_side) {
  task_id ra = find(ancestor_side);
  task_id rd = find(descendant_side);
  FUTRACE_DCHECK(ra != rd);
  // Algorithm 7: the merged set keeps the ancestor side's label and LSA and
  // the union of the non-tree predecessor lists. Without promises the
  // ancestor side's interval always subsumes the descendant side's; a
  // promise put() splits tasks, after which a finish may merge tasks spawned
  // by *earlier* identities on the continuation chain into the current
  // identity's set, whose interval starts later — so no subsumption check.
  interval_label label = nodes_[ra].label;
  const task_id lsa = nodes_[ra].lsa;

  // Union by size; metadata then moves to whichever index won.
  task_id winner = ra;
  task_id loser = rd;
  if (nodes_[winner].uf_size < nodes_[loser].uf_size) std::swap(winner, loser);
  uf_parent_[loser] = winner;
  nodes_[winner].uf_size += nodes_[loser].uf_size;

  if (winner != ra) {
    nodes_[winner].nt.append(nodes_[ra].nt);
    nodes_[ra].nt = {};
  } else {
    nodes_[winner].nt.append(nodes_[rd].nt);
    nodes_[rd].nt = {};
  }
  nodes_[winner].label = label;
  nodes_[winner].lsa = lsa;
  // A memoized verdict is keyed on a representative index; after a union
  // that index may stand for a strictly larger set, so every cached entry
  // is suspect.
  memo_invalidate();
}

bool reachability_graph::precedes(task_id a, task_id b) {
  ++stats_.precede_queries;
  if (a == k_invalid_task) return true;
  const task_id ai = map_.to_index(a);
  if (ai == k_invalid_task) {
    // Retired source: its set contains a live chain task, so its set label
    // is an open interval [pre, *] whose pre is below every post-compaction
    // label — the uncompacted graph answers true by rep equality or label
    // subsumption without walking. Same verdict, same query count.
    return true;
  }
  const task_id bi = idx(b);
  if (ai == bi) return true;  // a task's earlier steps precede its current one
  const task_id ra = find(ai);
  const task_id rb = find(bi);
  if (ra == rb) return true;
  if (memo_enabled_) {
    // Every detector query has b = the currently executing task, so a b
    // change is exactly a task switch — the lazy form of the switch
    // invalidation. Positive verdicts are monotone while b keeps running
    // (reachability only grows and b's current step only advances), which
    // is what makes caching them sound between invalidations.
    if (b != memo_task_) {
      memo_task_ = b;
      memo_invalidate();
    }
    const memo_entry& e = memo_[ra & (k_memo_slots - 1)];
    if (e.rep == ra && e.epoch == memo_epoch_) {
      ++stats_.memo_hits;
      return true;
    }
  }
  // Fast path for the commonest positive answer: a's set top is a spawn
  // ancestor of b's set top (e.g. a merged into an ancestor's set through a
  // finish, b is a later task) — no search needed.
  ++stats_.label_comparisons;
  if (nodes_[ra].label.subsumes(nodes_[rb].label)) {
    if (memo_enabled_) memo_store(ra);
    return true;
  }
  ++stats_.frontier_searches;
  ++query_epoch_;
  if (visit(ai, ra, bi)) {
    if (memo_enabled_) memo_store(ra);
    return true;
  }
  return false;
}

bool reachability_graph::visit(task_id a, task_id ra, task_id start) {
  // Iterative depth-first search over path nodes. A "path node" is a task x
  // for which we must decide whether a ⇒ (last executed step of x); the
  // search explores x's set's non-tree predecessors and the non-tree
  // predecessors of x's significant-ancestor chain (Algorithm 10).
  const interval_label label_a = nodes_[ra].label;
  const std::uint64_t a_spawn_pre = nodes_[a].own_label.pre;

  support::small_vector<task_id, 32> stack;
  stack.push_back(start);

  while (!stack.empty()) {
    const task_id x = stack.back();
    stack.pop_back();

    // Preorder cutoff (Algorithm 10 lines 12-14), in its provably safe form:
    // a path node that terminated before `a` was spawned cannot be reached
    // from any step of `a`. (The paper states the cutoff as a bare preorder
    // comparison; after tree-join merges the target's *set* carries the
    // ancestor's small preorder, which would wrongly prune transitive-join
    // paths such as the main-gets-C-gets-B chain of Fig. 1, so we compare
    // the task's own interval instead — dominated intervals are exactly the
    // "source must have lower preorder than sink" argument.)
    if (nodes_[x].own_label.post < a_spawn_pre) continue;

    const task_id rx = find(x);
    // Lines 6-11: same set, or the interval of a's set subsumes the interval
    // of x's set (the top of a's set is a spawn ancestor of x).
    if (rx == ra) return true;
    ++stats_.label_comparisons;
    if (label_a.subsumes(nodes_[rx].label)) return true;
    if (nodes_[rx].path_epoch == query_epoch_) continue;
    nodes_[rx].path_epoch = query_epoch_;
    ++stats_.visit_steps;

    // Lines 15-20: immediate non-tree predecessors of x's set.
    for (const task_id p : nodes_[rx].nt) {
      ++stats_.nt_edges_walked;
      stack.push_back(p);
    }

    // Lines 21-29: non-tree predecessors of the significant-ancestor chain.
    // Only the ancestors' *edges* join the search; the ancestors themselves
    // are not path nodes (an ancestor's set containing `a` does not by itself
    // witness a path from a's last step to x).
    task_id v = nodes_[rx].lsa;
    while (v != k_invalid_task) {
      const task_id rv = find(v);
      if (nodes_[rv].lsa_scan_epoch == query_epoch_) break;
      nodes_[rv].lsa_scan_epoch = query_epoch_;
      ++stats_.lsa_hops;
      for (const task_id p : nodes_[rv].nt) {
        ++stats_.nt_edges_walked;
        stack.push_back(p);
      }
      v = nodes_[rv].lsa;
    }
  }
  return false;
}

precede_explanation reachability_graph::explain(task_id a, task_id b) {
  precede_explanation ex;
  const task_id ai = a == k_invalid_task ? k_invalid_task : map_.to_index(a);
  if (ai == k_invalid_task) {
    // No previous writer, or a writer retired by compaction (the latter is
    // always ordered before the current step, so no report asks about it).
    ex.reachable = true;
    return ex;
  }
  const task_id bi = idx(b);
  ex.a_label = nodes_[ai].own_label;
  ex.b_label = nodes_[bi].own_label;
  ex.a_terminated = nodes_[ai].terminated;
  ex.b_terminated = nodes_[bi].terminated;
  const task_id ra = find(ai);
  const task_id rb = find(bi);
  ex.a_set_label = nodes_[ra].label;
  ex.b_set_label = nodes_[rb].label;
  if (ai == bi || ra == rb) {
    ex.reachable = true;
    return ex;
  }
  if (nodes_[ra].label.subsumes(nodes_[rb].label)) {
    ex.reachable = true;
    ex.by_subsumption = true;
    return ex;
  }

  // The visit() traversal with provenance: every pushed predecessor gets a
  // record carrying the index of the record that pushed it, so a positive
  // answer can rebuild the edge chain and a negative one can report the
  // whole searched frontier. Mirrors visit() exactly — cutoff, set checks,
  // epoch marks, nt lists, LSA chain — minus the stats/memo side effects.
  const interval_label label_a = nodes_[ra].label;
  const std::uint64_t a_spawn_pre = nodes_[ai].own_label.pre;
  ++query_epoch_;

  struct visit_rec {
    task_id task;
    std::int32_t parent;  // index into `visited`, -1 = pushed from b
  };
  std::vector<visit_rec> visited;
  std::vector<std::int32_t> stack;  // indices into `visited`; -1 = b itself
  stack.push_back(-1);

  while (!stack.empty()) {
    const std::int32_t idx = stack.back();
    stack.pop_back();
    const task_id x =
        idx < 0 ? bi : visited[static_cast<std::size_t>(idx)].task;

    if (nodes_[x].own_label.post < a_spawn_pre) continue;
    const task_id rx = find(x);
    if (rx == ra || label_a.subsumes(nodes_[rx].label)) {
      for (std::int32_t i = idx; i >= 0;
           i = visited[static_cast<std::size_t>(i)].parent) {
        ex.frontier.push_back(
            map_.to_id(visited[static_cast<std::size_t>(i)].task));
      }
      std::reverse(ex.frontier.begin(), ex.frontier.end());
      ex.reachable = true;
      return ex;
    }
    if (nodes_[rx].path_epoch == query_epoch_) continue;
    nodes_[rx].path_epoch = query_epoch_;

    for (const task_id p : nodes_[rx].nt) {
      visited.push_back({p, idx});
      stack.push_back(static_cast<std::int32_t>(visited.size()) - 1);
    }
    task_id v = nodes_[rx].lsa;
    while (v != k_invalid_task) {
      const task_id rv = find(v);
      if (nodes_[rv].lsa_scan_epoch == query_epoch_) break;
      nodes_[rv].lsa_scan_epoch = query_epoch_;
      ++ex.lsa_hops;
      for (const task_id p : nodes_[rv].nt) {
        visited.push_back({p, idx});
        stack.push_back(static_cast<std::int32_t>(visited.size()) - 1);
      }
      v = nodes_[rv].lsa;
    }
  }

  for (const visit_rec& r : visited) {
    const task_id id = map_.to_id(r.task);  // invalid = the tombstone
    if (id != k_invalid_task &&
        std::find(ex.frontier.begin(), ex.frontier.end(), id) ==
            ex.frontier.end()) {
      ex.frontier.push_back(id);
    }
  }
  return ex;
}

std::vector<task_id> reachability_graph::set_non_tree_predecessors(task_id t) {
  const task_id r = find(idx(t));
  std::vector<task_id> out;
  out.reserve(nodes_[r].nt.size());
  for (const task_id p : nodes_[r].nt) out.push_back(map_.to_id(p));
  return out;
}

std::string reachability_graph::to_dot() {
  // Group tasks by representative.
  std::map<task_id, std::vector<task_id>> sets;
  for (task_id t = 0; t < nodes_.size(); ++t) sets[find(t)].push_back(t);

  std::ostringstream out;
  out << "digraph reachability_graph {\n"
      << "  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  for (const auto& [rep, members] : sets) {
    out << "  d" << rep << " [label=\"{";
    for (std::size_t i = 0; i < members.size(); ++i) {
      const task_id id = map_.to_id(members[i]);
      out << (i ? "," : "");
      if (id == k_invalid_task) {
        out << "retired";
      } else {
        out << "T" << id;
      }
    }
    out << "} [" << nodes_[rep].label.pre << ",";
    if (nodes_[rep].terminated) {
      out << nodes_[rep].label.post;
    } else {
      out << "*";
    }
    out << "]\"];\n";
  }
  for (const auto& [rep, members] : sets) {
    (void)members;
    for (const task_id p : nodes_[rep].nt) {
      out << "  d" << find(p) << " -> d" << rep
          << " [color=red, label=\"nt\"];\n";
    }
    if (nodes_[rep].lsa != k_invalid_task) {
      out << "  d" << rep << " -> d" << find(nodes_[rep].lsa)
          << " [style=dashed, color=gray, label=\"lsa\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::size_t reachability_graph::memory_bytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(node) +
                      uf_parent_.capacity() * sizeof(task_id) +
                      (retired_set_of_.capacity() +
                       retired_parent_set_of_.capacity()) *
                          sizeof(std::pair<task_id, task_id>) +
                      map_.kept().capacity() * sizeof(task_id);
  for (const node& n : nodes_) {
    if (!n.nt.uses_inline_storage()) bytes += n.nt.capacity() * sizeof(task_id);
  }
  return bytes;
}

task_id reachability_graph::run_lookup(
    const std::vector<std::pair<task_id, task_id>>& m, task_id id) {
  const auto it = std::upper_bound(
      m.begin(), m.end(), id,
      [](task_id v, const std::pair<task_id, task_id>& e) {
        return v < e.first;
      });
  FUTRACE_CHECK_MSG(it != m.begin(), "retired id below the compaction maps");
  return std::prev(it)->second;
}

task_id reachability_graph::retired_rep(task_id id) {
  return find(idx(run_lookup(retired_set_of_, id)));
}

task_id reachability_graph::retired_parent_rep(task_id id) {
  return find(idx(run_lookup(retired_parent_set_of_, id)));
}

bool reachability_graph::try_compact(std::span<const task_id> live) {
  if (nodes_.empty() || live.empty()) return false;

  // Quiescence: every vertex (tombstone aside) must sit in a set owned by a
  // live task. Each retired set then contains a task with an open interval,
  // so its label subsumes every future label and the vertices can go.
  std::vector<task_id> live_idx;
  live_idx.reserve(live.size());
  std::vector<task_id> reps;
  reps.reserve(live.size());
  for (const task_id id : live) {
    const task_id i = map_.to_index(id);
    if (i == k_invalid_task || nodes_[i].terminated) return false;
    live_idx.push_back(i);
    reps.push_back(find(i));
  }
  std::sort(reps.begin(), reps.end());
  reps.erase(std::unique(reps.begin(), reps.end()), reps.end());
  std::uint64_t covered = 0;
  for (const task_id r : reps) covered += nodes_[r].uf_size;
  const std::uint64_t total =
      nodes_.size() - (map_.compacted() ? 1 : 0);
  if (covered != total) return false;

  // Survivor runtime ids, ascending; each gets a dense slot. The first
  // (lowest-id) survivor of each set becomes the new representative and
  // inherits the set metadata.
  std::vector<task_id> kept(live.begin(), live.end());
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  const auto k = static_cast<task_id>(kept.size());

  // Old-rep index -> (new canonical slot, kept-member count), keyed in
  // `reps` order (sorted, binary-searchable).
  std::vector<task_id> canon_of(reps.size(), k_invalid_task);
  std::vector<std::uint32_t> members_of(reps.size(), 0);
  const auto rep_slot = [&reps](task_id r) {
    const auto it = std::lower_bound(reps.begin(), reps.end(), r);
    FUTRACE_DCHECK(it != reps.end() && *it == r);
    return static_cast<std::size_t>(it - reps.begin());
  };
  for (task_id i = 0; i < k; ++i) {
    const std::size_t s = rep_slot(find(idx(kept[i])));
    if (canon_of[s] == k_invalid_task) canon_of[s] = i;
    ++members_of[s];
  }
  // Canonical kept runtime id for the set of an arbitrary old vertex.
  const auto canon_id_for = [&](task_id old_index) {
    return kept[canon_of[rep_slot(find(old_index))]];
  };

  // Re-collapse the existing retirement maps (values are live chain ids and
  // stay resolvable; adjacent runs whose sets have since merged fuse).
  const auto collapse = [this](std::vector<std::pair<task_id, task_id>>& m) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < m.size(); ++i) {
      if (w > 0 &&
          find(idx(m[i].second)) == find(idx(m[w - 1].second))) {
        continue;
      }
      m[w++] = m[i];
    }
    m.resize(w);
  };
  collapse(retired_set_of_);
  collapse(retired_parent_set_of_);

  // Append runs for the ids retired by *this* pass. Runs may span kept ids
  // (lookups check the kept table first), so only value changes break them.
  const auto append_run = [](std::vector<std::pair<task_id, task_id>>& m,
                             task_id first, task_id value) {
    if (m.empty() || m.back().second != value) m.emplace_back(first, value);
  };
  for (task_id id = map_.id_base(); id < next_id_; ++id) {
    const task_id i = map_.to_index(id);
    FUTRACE_DCHECK(i != k_invalid_task);
    if (!nodes_[i].terminated) continue;  // survives; runs may span it
    append_run(retired_set_of_, id, canon_id_for(i));
    const task_id p = nodes_[i].spawn_parent;
    FUTRACE_DCHECK(p != k_invalid_task);  // only the (live) root lacks one
    append_run(retired_parent_set_of_, id, canon_id_for(p));
  }

  // Rebuild storage: kept slots 0..k-1, tombstone at k.
  std::vector<node> nn(static_cast<std::size_t>(k) + 1);
  std::vector<task_id> np(static_cast<std::size_t>(k) + 1);
  for (task_id i = 0; i < k; ++i) {
    const task_id oi = idx(kept[i]);
    const node& s = nodes_[oi];
    node& d = nn[i];
    d.own_label = s.own_label;
    d.terminated = false;
    if (s.spawn_parent != k_invalid_task) {
      const task_id pid = map_.to_id(s.spawn_parent);
      const auto it = std::lower_bound(kept.begin(), kept.end(), pid);
      FUTRACE_DCHECK(it != kept.end() && *it == pid);  // chain parents live
      d.spawn_parent = static_cast<task_id>(it - kept.begin());
    }
    const std::size_t s_slot = rep_slot(find(oi));
    if (canon_of[s_slot] == i) {
      // New representative: set label preserved verbatim; the non-tree list
      // collapses to a tombstone entry preserving only non-emptiness (the
      // child-LSA rule in create_task branches on it); the LSA pointer is
      // dropped — every edge it could reach predates the compaction and is
      // never needed by a query whose source survives it.
      const node& r = nodes_[find(oi)];
      d.label = r.label;
      d.uf_size = members_of[s_slot];
      if (!r.nt.empty()) d.nt.push_back(k);
      np[i] = i;
    } else {
      d.label = s.own_label;
      d.uf_size = 1;
      np[i] = canon_of[s_slot];
    }
  }
  nn[k].terminated = true;  // the tombstone: interval [0,0], its own set
  np[k] = k;

  stats_.tasks_retired += total - k;
  ++stats_.epoch_compactions;
  nodes_ = std::move(nn);
  uf_parent_ = std::move(np);
  nodes_.shrink_to_fit();
  uf_parent_.shrink_to_fit();
  retired_set_of_.shrink_to_fit();
  retired_parent_set_of_.shrink_to_fit();
  map_.compact(std::move(kept), next_id_);
  // Memo entries are keyed on representative indices, which this pass just
  // recycled; the query-epoch stamps in fresh nodes start at zero, below
  // every live query epoch.
  memo_invalidate();
  memo_task_ = k_invalid_task;
  return true;
}

}  // namespace futrace::dsr
