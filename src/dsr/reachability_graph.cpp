#include "futrace/dsr/reachability_graph.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace futrace::dsr {

reachability_graph::reachability_graph() {
  nodes_.reserve(1024);
  uf_parent_.reserve(1024);
  memo_.resize(k_memo_slots);
}

task_id reachability_graph::create_root() {
  FUTRACE_CHECK_MSG(nodes_.empty(), "create_root must be the first event");
  return create_task(k_invalid_task);
}

task_id reachability_graph::create_task(task_id parent) {
  FUTRACE_CHECK_MSG(parent != k_invalid_task || nodes_.empty(),
                    "only the root task may lack a parent");
  const task_id id = static_cast<task_id>(nodes_.size());
  node n;
  n.spawn_parent = parent;
  n.own_label = labels_.on_spawn();
  n.label = n.own_label;
  uf_parent_.push_back(id);
  if (parent != k_invalid_task) {
    // Algorithm 2 lines 7-11: the child's LSA is the parent itself when the
    // parent's set already has incoming non-tree edges, otherwise it inherits
    // the parent's LSA. Metadata lives at the parent's representative.
    const task_id rp = find(parent);
    n.lsa = nodes_[rp].nt.empty() ? nodes_[rp].lsa : parent;
  }
  nodes_.push_back(std::move(n));
  ++stats_.tasks_created;
  return id;
}

void reachability_graph::on_terminate(task_id t) {
  FUTRACE_DCHECK(t < nodes_.size());
  FUTRACE_CHECK_MSG(!nodes_[t].terminated, "task terminated twice");
  nodes_[t].terminated = true;
  const std::uint64_t post = labels_.on_terminate();
  nodes_[t].own_label.post = post;
  // Algorithm 3 updates the label of the terminating task's *set*. In a
  // depth-first execution every other member of the set is a descendant that
  // already terminated, so `t` is the member closest to the root and the set
  // label is t's label.
  const task_id r = find(t);
  FUTRACE_DCHECK(nodes_[r].label.pre == nodes_[t].own_label.pre);
  nodes_[r].label.post = post;
}

bool reachability_graph::on_get(task_id waiter, task_id target) {
  FUTRACE_DCHECK(waiter < nodes_.size() && target < nodes_.size());
  if (!nodes_[target].terminated) {
    // Only a live *ancestor* can be joined mid-flight (a promise fulfilled
    // earlier on the current continuation chain): the ordering is already
    // implied by the spawn chain, so the edge carries no new information.
    FUTRACE_CHECK_MSG(is_spawn_ancestor(target, waiter),
                      "get() on a live non-ancestor task; the serial "
                      "depth-first execution order was violated");
    return true;
  }
  // Already connected by tree joins (e.g. the target joined this waiter's
  // finish before the get): nothing to record.
  if (find(waiter) == find(target)) return true;
  const task_id parent = nodes_[target].spawn_parent;
  // Algorithm 4: a get is a tree join iff the waiter is in the same set as
  // the target's spawn parent (the waiter is then an ancestor reached from
  // the target purely by tree joins).
  if (parent != k_invalid_task && find(waiter) == find(parent)) {
    if (find(waiter) != find(target)) {
      merge(waiter, target);
      ++stats_.tree_joins;
    }
    return true;
  }
  const task_id rw = find(waiter);
  if (!nodes_[rw].nt.contains(target)) {
    nodes_[rw].nt.push_back(target);
    memo_invalidate();
  }
  ++stats_.non_tree_joins;
  return false;
}

void reachability_graph::on_finish_join(task_id owner, task_id joined) {
  FUTRACE_DCHECK(owner < nodes_.size() && joined < nodes_.size());
  FUTRACE_CHECK_MSG(nodes_[joined].terminated,
                    "finish join on a task that has not terminated");
  if (find(owner) == find(joined)) return;  // already merged via a get()
  merge(owner, joined);
  ++stats_.tree_joins;
}

task_id reachability_graph::find(task_id t) {
  // Iterative path halving over the dense parent array. Written so each hop
  // loads each parent slot exactly once: the straightforward
  //   uf_parent_[t] = uf_parent_[uf_parent_[t]]; t = uf_parent_[t];
  // form re-loads uf_parent_[t] after the store (three loads per hop, and
  // the compiler cannot fold them because the store may alias); keeping
  // parent and grandparent in registers does the halving write and the
  // advance from values already in hand (two loads per hop). Every PRECEDE
  // query funnels through two find()s, so the loop body is the hottest few
  // instructions in the detector — BM_PrecedeDeepChain pins its behaviour
  // on long chains.
  task_id* const parent = uf_parent_.data();
  task_id p = parent[t];
  while (p != t) {
    const task_id gp = parent[p];
    if (gp == p) return p;
    parent[t] = gp;  // halve: t now points at its grandparent
    t = gp;
    p = parent[gp];
  }
  return t;
}

void reachability_graph::merge(task_id ancestor_side, task_id descendant_side) {
  task_id ra = find(ancestor_side);
  task_id rd = find(descendant_side);
  FUTRACE_DCHECK(ra != rd);
  // Algorithm 7: the merged set keeps the ancestor side's label and LSA and
  // the union of the non-tree predecessor lists. Without promises the
  // ancestor side's interval always subsumes the descendant side's; a
  // promise put() splits tasks, after which a finish may merge tasks spawned
  // by *earlier* identities on the continuation chain into the current
  // identity's set, whose interval starts later — so no subsumption check.
  interval_label label = nodes_[ra].label;
  const task_id lsa = nodes_[ra].lsa;

  // Union by size; metadata then moves to whichever index won.
  task_id winner = ra;
  task_id loser = rd;
  if (nodes_[winner].uf_size < nodes_[loser].uf_size) std::swap(winner, loser);
  uf_parent_[loser] = winner;
  nodes_[winner].uf_size += nodes_[loser].uf_size;

  if (winner != ra) {
    nodes_[winner].nt.append(nodes_[ra].nt);
    nodes_[ra].nt = {};
  } else {
    nodes_[winner].nt.append(nodes_[rd].nt);
    nodes_[rd].nt = {};
  }
  nodes_[winner].label = label;
  nodes_[winner].lsa = lsa;
  // A memoized verdict is keyed on a representative index; after a union
  // that index may stand for a strictly larger set, so every cached entry
  // is suspect.
  memo_invalidate();
}

bool reachability_graph::precedes(task_id a, task_id b) {
  ++stats_.precede_queries;
  if (a == k_invalid_task) return true;
  FUTRACE_DCHECK(a < nodes_.size() && b < nodes_.size());
  if (a == b) return true;  // a task's earlier steps precede its current one
  const task_id ra = find(a);
  const task_id rb = find(b);
  if (ra == rb) return true;
  if (memo_enabled_) {
    // Every detector query has b = the currently executing task, so a b
    // change is exactly a task switch — the lazy form of the switch
    // invalidation. Positive verdicts are monotone while b keeps running
    // (reachability only grows and b's current step only advances), which
    // is what makes caching them sound between invalidations.
    if (b != memo_task_) {
      memo_task_ = b;
      memo_invalidate();
    }
    const memo_entry& e = memo_[ra & (k_memo_slots - 1)];
    if (e.rep == ra && e.epoch == memo_epoch_) {
      ++stats_.memo_hits;
      return true;
    }
  }
  // Fast path for the commonest positive answer: a's set top is a spawn
  // ancestor of b's set top (e.g. a merged into an ancestor's set through a
  // finish, b is a later task) — no search needed.
  if (nodes_[ra].label.subsumes(nodes_[rb].label)) {
    if (memo_enabled_) memo_store(ra);
    return true;
  }
  ++query_epoch_;
  if (visit(a, ra, b)) {
    if (memo_enabled_) memo_store(ra);
    return true;
  }
  return false;
}

bool reachability_graph::visit(task_id a, task_id ra, task_id start) {
  // Iterative depth-first search over path nodes. A "path node" is a task x
  // for which we must decide whether a ⇒ (last executed step of x); the
  // search explores x's set's non-tree predecessors and the non-tree
  // predecessors of x's significant-ancestor chain (Algorithm 10).
  const interval_label label_a = nodes_[ra].label;
  const std::uint64_t a_spawn_pre = nodes_[a].own_label.pre;

  support::small_vector<task_id, 32> stack;
  stack.push_back(start);

  while (!stack.empty()) {
    const task_id x = stack.back();
    stack.pop_back();

    // Preorder cutoff (Algorithm 10 lines 12-14), in its provably safe form:
    // a path node that terminated before `a` was spawned cannot be reached
    // from any step of `a`. (The paper states the cutoff as a bare preorder
    // comparison; after tree-join merges the target's *set* carries the
    // ancestor's small preorder, which would wrongly prune transitive-join
    // paths such as the main-gets-C-gets-B chain of Fig. 1, so we compare
    // the task's own interval instead — dominated intervals are exactly the
    // "source must have lower preorder than sink" argument.)
    if (nodes_[x].own_label.post < a_spawn_pre) continue;

    const task_id rx = find(x);
    // Lines 6-11: same set, or the interval of a's set subsumes the interval
    // of x's set (the top of a's set is a spawn ancestor of x).
    if (rx == ra) return true;
    if (label_a.subsumes(nodes_[rx].label)) return true;
    if (nodes_[rx].path_epoch == query_epoch_) continue;
    nodes_[rx].path_epoch = query_epoch_;
    ++stats_.visit_steps;

    // Lines 15-20: immediate non-tree predecessors of x's set.
    for (const task_id p : nodes_[rx].nt) {
      ++stats_.nt_edges_walked;
      stack.push_back(p);
    }

    // Lines 21-29: non-tree predecessors of the significant-ancestor chain.
    // Only the ancestors' *edges* join the search; the ancestors themselves
    // are not path nodes (an ancestor's set containing `a` does not by itself
    // witness a path from a's last step to x).
    task_id v = nodes_[rx].lsa;
    while (v != k_invalid_task) {
      const task_id rv = find(v);
      if (nodes_[rv].lsa_scan_epoch == query_epoch_) break;
      nodes_[rv].lsa_scan_epoch = query_epoch_;
      ++stats_.lsa_hops;
      for (const task_id p : nodes_[rv].nt) {
        ++stats_.nt_edges_walked;
        stack.push_back(p);
      }
      v = nodes_[rv].lsa;
    }
  }
  return false;
}

precede_explanation reachability_graph::explain(task_id a, task_id b) {
  precede_explanation ex;
  if (a == k_invalid_task) {
    ex.reachable = true;
    return ex;
  }
  FUTRACE_DCHECK(a < nodes_.size() && b < nodes_.size());
  ex.a_label = nodes_[a].own_label;
  ex.b_label = nodes_[b].own_label;
  ex.a_terminated = nodes_[a].terminated;
  ex.b_terminated = nodes_[b].terminated;
  const task_id ra = find(a);
  const task_id rb = find(b);
  ex.a_set_label = nodes_[ra].label;
  ex.b_set_label = nodes_[rb].label;
  if (a == b || ra == rb) {
    ex.reachable = true;
    return ex;
  }
  if (nodes_[ra].label.subsumes(nodes_[rb].label)) {
    ex.reachable = true;
    ex.by_subsumption = true;
    return ex;
  }

  // The visit() traversal with provenance: every pushed predecessor gets a
  // record carrying the index of the record that pushed it, so a positive
  // answer can rebuild the edge chain and a negative one can report the
  // whole searched frontier. Mirrors visit() exactly — cutoff, set checks,
  // epoch marks, nt lists, LSA chain — minus the stats/memo side effects.
  const interval_label label_a = nodes_[ra].label;
  const std::uint64_t a_spawn_pre = nodes_[a].own_label.pre;
  ++query_epoch_;

  struct visit_rec {
    task_id task;
    std::int32_t parent;  // index into `visited`, -1 = pushed from b
  };
  std::vector<visit_rec> visited;
  std::vector<std::int32_t> stack;  // indices into `visited`; -1 = b itself
  stack.push_back(-1);

  while (!stack.empty()) {
    const std::int32_t idx = stack.back();
    stack.pop_back();
    const task_id x = idx < 0 ? b : visited[static_cast<std::size_t>(idx)].task;

    if (nodes_[x].own_label.post < a_spawn_pre) continue;
    const task_id rx = find(x);
    if (rx == ra || label_a.subsumes(nodes_[rx].label)) {
      for (std::int32_t i = idx; i >= 0;
           i = visited[static_cast<std::size_t>(i)].parent) {
        ex.frontier.push_back(visited[static_cast<std::size_t>(i)].task);
      }
      std::reverse(ex.frontier.begin(), ex.frontier.end());
      ex.reachable = true;
      return ex;
    }
    if (nodes_[rx].path_epoch == query_epoch_) continue;
    nodes_[rx].path_epoch = query_epoch_;

    for (const task_id p : nodes_[rx].nt) {
      visited.push_back({p, idx});
      stack.push_back(static_cast<std::int32_t>(visited.size()) - 1);
    }
    task_id v = nodes_[rx].lsa;
    while (v != k_invalid_task) {
      const task_id rv = find(v);
      if (nodes_[rv].lsa_scan_epoch == query_epoch_) break;
      nodes_[rv].lsa_scan_epoch = query_epoch_;
      ++ex.lsa_hops;
      for (const task_id p : nodes_[rv].nt) {
        visited.push_back({p, idx});
        stack.push_back(static_cast<std::int32_t>(visited.size()) - 1);
      }
      v = nodes_[rv].lsa;
    }
  }

  for (const visit_rec& r : visited) {
    if (std::find(ex.frontier.begin(), ex.frontier.end(), r.task) ==
        ex.frontier.end()) {
      ex.frontier.push_back(r.task);
    }
  }
  return ex;
}

std::vector<task_id> reachability_graph::set_non_tree_predecessors(task_id t) {
  const task_id r = find(t);
  return {nodes_[r].nt.begin(), nodes_[r].nt.end()};
}

std::string reachability_graph::to_dot() {
  // Group tasks by representative.
  std::map<task_id, std::vector<task_id>> sets;
  for (task_id t = 0; t < nodes_.size(); ++t) sets[find(t)].push_back(t);

  std::ostringstream out;
  out << "digraph reachability_graph {\n"
      << "  rankdir=BT;\n  node [shape=box, fontsize=10];\n";
  for (const auto& [rep, members] : sets) {
    out << "  d" << rep << " [label=\"{";
    for (std::size_t i = 0; i < members.size(); ++i) {
      out << (i ? "," : "") << "T" << members[i];
    }
    out << "} [" << nodes_[rep].label.pre << ",";
    if (nodes_[rep].terminated) {
      out << nodes_[rep].label.post;
    } else {
      out << "*";
    }
    out << "]\"];\n";
  }
  for (const auto& [rep, members] : sets) {
    (void)members;
    for (const task_id p : nodes_[rep].nt) {
      out << "  d" << find(p) << " -> d" << rep
          << " [color=red, label=\"nt\"];\n";
    }
    if (nodes_[rep].lsa != k_invalid_task) {
      out << "  d" << rep << " -> d" << find(nodes_[rep].lsa)
          << " [style=dashed, color=gray, label=\"lsa\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::size_t reachability_graph::memory_bytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(node) +
                      uf_parent_.capacity() * sizeof(task_id);
  for (const node& n : nodes_) {
    if (!n.nt.uses_inline_storage()) bytes += n.nt.capacity() * sizeof(task_id);
  }
  return bytes;
}

}  // namespace futrace::dsr
