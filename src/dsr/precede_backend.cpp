#include "futrace/dsr/precede_backend.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "futrace/dsr/depa_labels.hpp"
#include "futrace/dsr/labels.hpp"
#include "futrace/support/assert.hpp"

namespace futrace::dsr {

bool parse_backend_kind(std::string_view name, backend_kind* out) noexcept {
  if (name == "graph") {
    *out = backend_kind::graph;
    return true;
  }
  if (name == "depa") {
    *out = backend_kind::depa;
    return true;
  }
  if (name == "vc" || name == "vector_clock") {
    *out = backend_kind::vector_clock;
    return true;
  }
  return false;
}

namespace {

/// The default backend: every query is the paper's Algorithm 10 verbatim.
/// No base memo (the graph keeps its own rep-keyed memo, whose
/// invalidation-on-union behaviour the fastpath tests pin), no extra state.
class graph_backend final : public precede_backend {
 public:
  using precede_backend::precede_backend;

  backend_kind kind() const noexcept override { return backend_kind::graph; }

  void merge_stats(reachability_stats& s) const override {
    precede_backend::merge_stats(s);
    // Ordering state per vertex: the task's own interval plus its set's.
    s.label_bytes += graph_.task_count() * 2 * sizeof(interval_label);
    s.max_label_len = std::max<std::uint64_t>(s.max_label_len,
                                              sizeof(interval_label));
  }

 protected:
  bool query(task_id a, task_id b) override { return graph_.precedes(a, b); }
};

/// DePa-style backend: fork-path labels answer live spawn-ancestor queries
/// by byte-prefix, and a join-frontier overlay — an anchored union-find over
/// the get/finish join edges — answers transitively joined chains in O(α).
/// Everything else delegates to the graph search, which stays authoritative,
/// so verdicts are bit-identical by construction.
///
/// Overlay invariant: every member of a component fully precedes every
/// future step of the component's *anchor* (the one live task the component
/// was built under). At get/finish(W, T) with T terminated, comp(T) may
/// merge into comp(W) only when T is still its own component's anchor — a T
/// already absorbed into some other terminated task X's component must not
/// merge, since comp(T)'s members are only known to precede X, and X may be
/// parallel to W. The currently executing task is always its own
/// component's anchor (live tasks are never the absorbed side), which is
/// what makes the O(α) "same component" test answer PRECEDE(a, b)
/// positively: a's component's members all precede b's current step.
///
/// Prefix shortcut soundness: `a` live and path(a) a prefix of path(b)
/// means a is a paused spawn ancestor of the executing b, so every executed
/// step of a precedes b's current step; the graph agrees by set-label
/// subsumption (a live keeps its set label [pre(a), temporary-post], and
/// temporary posts decrease with spawn depth). The shortcut must NOT be
/// extended to terminated `a`: across a promise-put split the graph does
/// not order the dead pre-split identity before its continuation until an
/// explicit get edge exists, so a terminated-ancestor prefix test would
/// claim orderings the graph denies.
class depa_backend final : public precede_backend {
 public:
  explicit depa_backend(reachability_graph& graph) : precede_backend(graph) {
    use_memo_ = true;
  }

  backend_kind kind() const noexcept override { return backend_kind::depa; }

  void on_root_created(task_id root) override {
    FUTRACE_DCHECK(graph_.id_map().to_index(root) == 0);
    labels_.add_root();
    dsu_push();
  }

  void on_task_created(task_id parent, task_id child, bool) override {
    const epoch_id_map& m = graph_.id_map();
    FUTRACE_DCHECK(m.to_index(child) == labels_.size());
    labels_.add_child(m.to_index(parent));
    dsu_push();
  }

  void on_get_joined(task_id waiter, task_id target, bool) override {
    join_target(waiter, target);
  }

  void on_finish_joined(task_id owner, task_id joined) override {
    join_target(owner, joined);
  }

  void on_compacted() override {
    // Rebuild the label arena over the new dense index space, freeing every
    // retired task's path bytes. prior_map_ is the translation this backend
    // last mirrored; composing new-index -> runtime id -> old-index finds
    // each survivor's old label.
    const epoch_id_map& nm = graph_.id_map();
    const std::size_t n = graph_.task_count();
    std::vector<task_id> old_index_for_new(n, k_invalid_task);
    for (std::size_t i = 0; i < n; ++i) {
      const task_id id = nm.to_id(static_cast<task_id>(i));
      if (id == k_invalid_task) continue;  // the tombstone slot
      old_index_for_new[i] = prior_map_.to_index(id);
      FUTRACE_DCHECK(old_index_for_new[i] != k_invalid_task);
    }
    labels_.rebuild(old_index_for_new);
    // The overlay resets to singletons: a sound under-approximation (the
    // shortcut just answers fewer queries until new joins accumulate), and
    // the retired components it forgets are answered by the retirement
    // prelude anyway.
    dsu_parent_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      dsu_parent_[i] = static_cast<task_id>(i);
    }
    anchor_ = dsu_parent_;
    prior_map_ = nm;
    ++compactions_;
  }

  void merge_stats(reachability_stats& s) const override {
    precede_backend::merge_stats(s);
    // Fallback queries already put the graph's own search counters
    // (frontier_searches, visit_steps, subsumption comparisons) into `s`;
    // here we add the label-layer costs this backend paid natively.
    s.label_bytes += labels_.arena_bytes();
    s.label_comparisons += labels_.comparisons();
    s.max_label_len =
        std::max<std::uint64_t>(s.max_label_len, labels_.max_label_bytes());
  }

  std::size_t memory_bytes() const override {
    return labels_.memory_bytes() +
           (dsu_parent_.capacity() + anchor_.capacity()) * sizeof(task_id);
  }

 protected:
  std::uint64_t memo_key(task_id a) override { return a; }
  std::uint64_t mutation_stamp() const override { return compactions_; }

  bool query(task_id a, task_id b) override {
    const epoch_id_map& m = graph_.id_map();
    const task_id ai = m.to_index(a);
    if (ai == k_invalid_task) return true;  // retired: fully ordered
    const task_id bi = m.to_index(b);
    if (ai == bi) return true;
    if (dsu_find(ai) == dsu_find(bi)) return true;  // joined into b's chain
    if (!graph_.terminated(a) && labels_.is_prefix(ai, bi)) return true;
    return graph_.precedes(a, b);  // authoritative for everything else
  }

 private:
  void dsu_push() {
    dsu_parent_.push_back(static_cast<task_id>(dsu_parent_.size()));
    anchor_.push_back(dsu_parent_.back());
  }

  task_id dsu_find(task_id t) {
    task_id* const parent = dsu_parent_.data();
    task_id p = parent[t];
    while (p != t) {
      const task_id gp = parent[p];
      if (gp == p) return p;
      parent[t] = gp;
      t = gp;
      p = parent[gp];
    }
    return t;
  }

  void join_target(task_id waiter, task_id target) {
    // Only a fully terminated target's component may be absorbed: the merge
    // asserts "everything joined under `target` has finished and now
    // precedes `waiter`'s future steps".
    if (!graph_.terminated(target)) return;  // live ancestor: spawn-chain path
    const epoch_id_map& m = graph_.id_map();
    const task_id ti = m.to_index(target);
    if (ti == k_invalid_task) return;  // retired: the prelude answers for it
    if (ti >= dsu_parent_.size()) return;  // vertexless (spawn unwound)
    const task_id rt = dsu_find(ti);
    if (anchor_[rt] != ti) return;  // absorbed target: unsound to re-merge
    const task_id wi = m.to_index(waiter);
    const task_id rw = dsu_find(wi);
    if (rt == rw) return;
    const task_id keep = anchor_[rw];
    // Union by size via the label depths as a proxy is not available here;
    // plain size tracking would need another array, and components are built
    // by repeatedly absorbing small terminated chains into the live waiter's
    // component — attach the target side under the waiter side, which keeps
    // the live component's root stable and the find() chains short.
    dsu_parent_[rt] = rw;
    anchor_[rw] = keep;
  }

  depa_label_store labels_;
  std::vector<task_id> dsu_parent_;  // overlay union-find, by storage index
  std::vector<task_id> anchor_;      // component anchor, valid at roots
  epoch_id_map prior_map_;           // graph id map as of the last compaction
  std::uint64_t compactions_ = 0;
};

/// The vector-clock baseline (vs_baselines) promoted to a backend: one
/// happens-before bitset per task, bit positions = storage indices, merged
/// at spawn/get/finish exactly like baselines::vector_clock_detector.
///
/// One caveat discovered when differential-testing against the graph:
/// across a promise-put split the graph does not order the terminated
/// pre-split identity (or its tree-joined set members) before the
/// continuation until an explicit get edge appears, while naive clock
/// inheritance would. Clocks that ever inherited across a continuation
/// edge (directly or transitively through a merge) are therefore marked
/// tainted and their positive bit tests are not trusted — those queries
/// fall back to the graph. Promise-free executions never taint, so they
/// keep the pure O(1) bit test.
class vc_backend final : public precede_backend {
 public:
  explicit vc_backend(reachability_graph& graph) : precede_backend(graph) {
    use_memo_ = true;
  }

  backend_kind kind() const noexcept override {
    return backend_kind::vector_clock;
  }

  void on_root_created(task_id root) override {
    FUTRACE_DCHECK(graph_.id_map().to_index(root) == 0);
    clocks_.emplace_back();
    taint_.push_back(0);
  }

  void on_task_created(task_id parent, task_id child,
                       bool continuation) override {
    const epoch_id_map& m = graph_.id_map();
    FUTRACE_DCHECK(m.to_index(child) == clocks_.size());
    const task_id pi = m.to_index(parent);
    bits b = clocks_[pi];
    std::uint8_t t = taint_[pi];
    if (continuation) {
      t = 1;  // ordering across the split needs a get edge; do not trust bits
    } else {
      set_bit(b, pi);
    }
    note_words(b.size());
    clocks_.push_back(std::move(b));
    taint_.push_back(t);
  }

  void on_get_joined(task_id waiter, task_id target, bool) override {
    merge_from(waiter, target);
  }

  void on_finish_joined(task_id owner, task_id joined) override {
    merge_from(owner, joined);
  }

  void on_compacted() override {
    // Rebuild every survivor's clock over the new dense index space: remap
    // each live bit, drop bits of retired tasks (the retirement prelude
    // answers for them), and free the retired tasks' clocks — the quadratic
    // term this keeps bounded under service-mode streaming.
    const epoch_id_map& nm = graph_.id_map();
    const std::size_t n = graph_.task_count();
    std::vector<bits> clocks(n);
    std::vector<std::uint8_t> taint(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const task_id id = nm.to_id(static_cast<task_id>(i));
      if (id == k_invalid_task) continue;  // the tombstone slot
      const task_id oi = prior_map_.to_index(id);
      FUTRACE_DCHECK(oi != k_invalid_task);
      const bits& src = clocks_[oi];
      bits& dst = clocks[i];
      for (std::size_t w = 0; w < src.size(); ++w) {
        std::uint64_t word = src[w];
        while (word != 0) {
          const int bit = std::countr_zero(word);
          word &= word - 1;
          const auto oj = static_cast<task_id>(w * 64 + bit);
          const task_id id2 = prior_map_.to_id(oj);
          if (id2 == k_invalid_task) continue;
          const task_id nj = nm.to_index(id2);
          if (nj != k_invalid_task) set_bit(dst, nj);
        }
      }
      taint[i] = taint_[oi];
    }
    clocks_ = std::move(clocks);
    taint_ = std::move(taint);
    prior_map_ = nm;
    ++compactions_;
  }

  void merge_stats(reachability_stats& s) const override {
    precede_backend::merge_stats(s);
    s.label_bytes += clock_bytes();
    s.label_comparisons += bit_tests_;
    s.max_label_len =
        std::max<std::uint64_t>(s.max_label_len, max_words_ * 8);
  }

  std::size_t memory_bytes() const override {
    return clock_bytes() + clocks_.capacity() * sizeof(bits) +
           taint_.capacity();
  }

 protected:
  std::uint64_t memo_key(task_id a) override { return a; }
  std::uint64_t mutation_stamp() const override { return compactions_; }

  bool query(task_id a, task_id b) override {
    const epoch_id_map& m = graph_.id_map();
    const task_id ai = m.to_index(a);
    if (ai == k_invalid_task) return true;  // retired: fully ordered
    const task_id bi = m.to_index(b);
    if (ai == bi) return true;
    ++bit_tests_;
    if (taint_[bi] == 0 && test_bit(clocks_[bi], ai)) return true;
    return graph_.precedes(a, b);
  }

 private:
  using bits = std::vector<std::uint64_t>;

  static void set_bit(bits& b, task_id t) {
    const std::size_t word = t / 64;
    if (word >= b.size()) b.resize(word + 1, 0);
    b[word] |= std::uint64_t{1} << (t % 64);
  }

  static bool test_bit(const bits& b, task_id t) {
    const std::size_t word = t / 64;
    return word < b.size() && (b[word] >> (t % 64)) & 1;
  }

  void note_words(std::size_t words) {
    if (words > max_words_) max_words_ = words;
  }

  void merge_from(task_id waiter, task_id target) {
    const epoch_id_map& m = graph_.id_map();
    const task_id ti = m.to_index(target);
    if (ti == k_invalid_task) return;  // retired: the prelude answers for it
    if (ti >= clocks_.size()) return;  // vertexless (spawn unwound)
    const task_id wi = m.to_index(waiter);
    bits& w = clocks_[wi];
    const bits& t = clocks_[ti];
    if (t.size() > w.size()) w.resize(t.size(), 0);
    for (std::size_t i = 0; i < t.size(); ++i) w[i] |= t[i];
    set_bit(w, ti);
    note_words(w.size());
    taint_[wi] |= taint_[ti];
  }

  std::size_t clock_bytes() const {
    std::size_t bytes = 0;
    for (const bits& b : clocks_) {
      bytes += b.capacity() * sizeof(std::uint64_t);
    }
    return bytes;
  }

  std::vector<bits> clocks_;         // by storage index
  std::vector<std::uint8_t> taint_;  // clock crossed a continuation split
  epoch_id_map prior_map_;
  std::uint64_t bit_tests_ = 0;
  std::uint64_t max_words_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace

std::unique_ptr<precede_backend> make_precede_backend(
    backend_kind kind, reachability_graph& graph) {
  switch (kind) {
    case backend_kind::graph:
      return std::make_unique<graph_backend>(graph);
    case backend_kind::depa:
      return std::make_unique<depa_backend>(graph);
    case backend_kind::vector_clock:
      return std::make_unique<vc_backend>(graph);
  }
  FUTRACE_CHECK_MSG(false, "unknown precede backend kind");
  return nullptr;
}

}  // namespace futrace::dsr
