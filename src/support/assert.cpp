#include "futrace/support/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace futrace::support {

[[noreturn]] void check_failed(const char* condition, const char* file,
                               int line, const std::string& message) {
  std::fprintf(stderr, "futrace: check failed: %s at %s:%d%s%s\n", condition,
               file, line, message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace futrace::support
