#include "futrace/support/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "futrace/support/assert.hpp"

namespace futrace::support {

flag_parser& flag_parser::define(const std::string& name,
                                 const std::string& default_val,
                                 const std::string& help) {
  flags_[name] = flag_info{default_val, default_val, help};
  return *this;
}

void flag_parser::parse(int argc, char** argv) {
  const parse_result result = try_parse(argc, argv);
  for (const std::string& w : result.warnings) {
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  }
  if (result.help_requested) {
    std::fputs(usage().c_str(), stdout);
    std::exit(0);
  }
  if (!result.ok) {
    std::fprintf(stderr, "%s\n%s", result.error.c_str(), usage().c_str());
    std::exit(2);
  }
}

flag_parser::parse_result flag_parser::try_parse(int argc, char** argv) {
  parse_result result;
  program_name_ = argc > 0 ? argv[0] : "futrace";
  warnings_.clear();
  for (auto& [name, info] : flags_) info.set = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    if (arg == "help") {
      result.help_requested = true;
      return result;
    }
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      // A registered flag without '=' consumes the next argv entry, except
      // boolean flags, which may be given bare ("--verify").
      if (it != flags_.end() &&
          (it->second.default_value == "true" ||
           it->second.default_value == "false") &&
          (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0)) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      result.ok = false;
      result.error = "unknown flag --" + name;
      result.warnings = warnings_;
      return result;
    }
    if (it->second.set && it->second.value != value) {
      // Last one wins — but a silent override has hidden typoed benchmark
      // invocations (e.g. --scale given twice), so say it out loud.
      warnings_.push_back("duplicate flag --" + name + ": '" +
                          it->second.value + "' overridden by '" + value +
                          "'");
    }
    it->second.value = value;
    it->second.set = true;
  }
  result.warnings = warnings_;
  return result;
}

std::string flag_parser::get_string(const std::string& name) const {
  auto it = flags_.find(name);
  FUTRACE_CHECK_MSG(it != flags_.end(), "unregistered flag: " + name);
  return it->second.value;
}

std::int64_t flag_parser::get_int(const std::string& name) const {
  const std::string raw = get_string(name);
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  FUTRACE_CHECK_MSG(end && *end == '\0' && !raw.empty(),
                    "flag --" + name + " expects an integer, got '" + raw +
                        "'");
  return v;
}

double flag_parser::get_double(const std::string& name) const {
  const std::string raw = get_string(name);
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  FUTRACE_CHECK_MSG(end && *end == '\0' && !raw.empty(),
                    "flag --" + name + " expects a number, got '" + raw + "'");
  return v;
}

bool flag_parser::get_bool(const std::string& name) const {
  const std::string raw = get_string(name);
  if (raw == "true" || raw == "1" || raw == "yes") return true;
  if (raw == "false" || raw == "0" || raw == "no") return false;
  FUTRACE_CHECK_MSG(false, "flag --" + name + " expects a boolean, got '" +
                               raw + "'");
  return false;
}

std::string flag_parser::usage() const {
  std::ostringstream out;
  out << "usage: " << program_name_ << " [flags]\n";
  for (const auto& [name, info] : flags_) {
    out << "  --" << name << " (default: " << info.default_value << ")\n"
        << "      " << info.help << '\n';
  }
  return out.str();
}

}  // namespace futrace::support
