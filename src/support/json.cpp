#include "futrace/support/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace futrace::support {

namespace {

class parser {
 public:
  explicit parser(const std::string& text) : text_(text) {}

  json parse_document() {
    json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw json_parse_error(what, pos_);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return json();
      default:
        return parse_number();
    }
  }

  json parse_object() {
    expect('{');
    json obj = json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      const char c = take();
      if (c == '}') return obj;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  json parse_array() {
    expect('[');
    json arr = json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') return arr;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the basic-plane code point (surrogate pairs are out
          // of scope for bench files; encode the raw value).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      fail("malformed number");
    }
    return json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(std::string& out, double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
  } else if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
  } else {
    out += "null";  // JSON has no inf/nan
  }
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out.push_back('\n');
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

json json::parse(const std::string& text) {
  return parser(text).parse_document();
}

void json::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case kind::null:
      out += "null";
      break;
    case kind::boolean:
      out += num_ != 0 ? "true" : "false";
      break;
    case kind::number:
      dump_number(out, num_);
      break;
    case kind::string:
      dump_string(out, str_);
      break;
    case kind::array: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case kind::object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(out, indent, depth + 1);
        dump_string(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

std::string json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  out.push_back('\n');
  return out;
}

}  // namespace futrace::support
