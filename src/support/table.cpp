#include "futrace/support/table.hpp"

#include <cctype>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "futrace/support/assert.hpp"

namespace futrace::support {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != ',' && c != '-' && c != '+' && c != 'e' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

text_table::text_table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void text_table::add_row(std::vector<std::string> cells) {
  FUTRACE_CHECK_MSG(cells.size() == headers_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string text_table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = c > 0 && looks_numeric(row[c]);
      const std::size_t pad = widths[c] - row[c].size();
      out << (c == 0 ? "" : "  ");
      if (right) out << std::string(pad, ' ');
      out << row[c];
      if (!right && c + 1 < row.size()) out << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void text_table::print(std::ostream& os) const { os << render(); }

std::string text_table::with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string text_table::fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

}  // namespace futrace::support
