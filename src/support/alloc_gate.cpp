#include "futrace/support/alloc_gate.hpp"

namespace futrace::support {

std::atomic<alloc_gate_fn>& alloc_gate() noexcept {
  static std::atomic<alloc_gate_fn> gate{nullptr};
  return gate;
}

}  // namespace futrace::support
