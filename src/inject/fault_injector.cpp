#include "futrace/inject/fault_injector.hpp"

#include <string>

#include "futrace/support/alloc_gate.hpp"
#include "futrace/support/assert.hpp"
#include "futrace/support/rng.hpp"

namespace futrace::inject {

namespace detail {

std::atomic<fault_injector*> g_injector{nullptr};

void spawn_site_slow(fault_injector& inj) { inj.op_spawn(); }
void get_site_slow(fault_injector& inj) { inj.op_get(); }
void put_site_slow(fault_injector& inj) { inj.op_put(); }
bool drop_put_slow(fault_injector& inj) noexcept { return inj.drop_put(); }
void epoch_reset_slow(fault_injector& inj) { inj.op_epoch_reset(); }

std::uint32_t steal_start_slow(fault_injector& inj, std::uint32_t self,
                               std::uint32_t workers,
                               std::uint32_t fallback) noexcept {
  return inj.steal_start(self, workers, fallback);
}

bool yield_slow(fault_injector& inj) noexcept { return inj.force_yield(); }

int pipe_worker_slow(fault_injector& inj) noexcept {
  return inj.pipe_worker_event();
}

std::uint32_t pipe_ring_full_slow(fault_injector& inj) noexcept {
  return inj.pipe_ring_full();
}

}  // namespace detail

namespace {

/// Increments `ops` and reports whether this call is the armed 1-based
/// ordinal. fetch_add makes the trigger fire exactly once even when several
/// workers hit the site concurrently.
bool ordinal_fires(std::atomic<std::uint64_t>& ops,
                   std::uint64_t trigger) noexcept {
  const std::uint64_t n = ops.fetch_add(1, std::memory_order_relaxed) + 1;
  return trigger != 0 && n == trigger;
}

[[noreturn]] void throw_injected(const char* site, std::uint64_t ordinal) {
  throw injected_fault("injected fault: synthetic exception at " +
                       std::string(site) + " site #" +
                       std::to_string(ordinal));
}

}  // namespace

fault_injector::counters fault_injector::snapshot() const noexcept {
  counters c;
  c.spawn_sites = spawn_sites_.load(std::memory_order_relaxed);
  c.get_sites = get_sites_.load(std::memory_order_relaxed);
  c.put_sites = put_sites_.load(std::memory_order_relaxed);
  c.epoch_reset_sites = epoch_reset_sites_.load(std::memory_order_relaxed);
  c.alloc_gates = allocs_seen_.load(std::memory_order_relaxed);
  c.thrown_spawn = thrown_spawn_.load(std::memory_order_relaxed);
  c.thrown_get = thrown_get_.load(std::memory_order_relaxed);
  c.thrown_put = thrown_put_.load(std::memory_order_relaxed);
  c.thrown_epoch_reset = thrown_epoch_reset_.load(std::memory_order_relaxed);
  c.dropped_puts = dropped_puts_.load(std::memory_order_relaxed);
  c.failed_allocs = failed_allocs_.load(std::memory_order_relaxed);
  c.forced_yields = forced_yields_.load(std::memory_order_relaxed);
  c.perturbed_steals = perturbed_steals_.load(std::memory_order_relaxed);
  c.pipe_stalls = pipe_stalls_.load(std::memory_order_relaxed);
  c.pipe_kills = pipe_kills_.load(std::memory_order_relaxed);
  c.pipe_forced_fulls = pipe_forced_fulls_.load(std::memory_order_relaxed);
  return c;
}

void fault_injector::op_spawn() {
  if (ordinal_fires(spawn_sites_, plan_.throw_at_spawn)) {
    thrown_spawn_.fetch_add(1, std::memory_order_relaxed);
    throw_injected("spawn", plan_.throw_at_spawn);
  }
}

void fault_injector::op_get() {
  if (ordinal_fires(get_sites_, plan_.throw_at_get)) {
    thrown_get_.fetch_add(1, std::memory_order_relaxed);
    throw_injected("get", plan_.throw_at_get);
  }
}

void fault_injector::op_put() {
  if (ordinal_fires(put_sites_, plan_.throw_at_put)) {
    thrown_put_.fetch_add(1, std::memory_order_relaxed);
    throw_injected("put", plan_.throw_at_put);
  }
}

void fault_injector::op_epoch_reset() {
  if (ordinal_fires(epoch_reset_sites_, plan_.throw_at_epoch_reset)) {
    thrown_epoch_reset_.fetch_add(1, std::memory_order_relaxed);
    throw_injected("epoch-reset", plan_.throw_at_epoch_reset);
  }
}

bool fault_injector::drop_put() noexcept {
  if (ordinal_fires(puts_seen_, plan_.drop_put_at)) {
    dropped_puts_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool fault_injector::fail_alloc(std::size_t) noexcept {
  if (plan_.fail_alloc_at == 0) return false;
  const std::uint64_t n =
      allocs_seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fail = n == plan_.fail_alloc_at;
  if (!fail && plan_.fail_alloc_every != 0 && n > plan_.fail_alloc_at) {
    fail = (n - plan_.fail_alloc_at) % plan_.fail_alloc_every == 0;
  }
  if (fail) failed_allocs_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

std::uint32_t fault_injector::steal_start(std::uint32_t self,
                                          std::uint32_t workers,
                                          std::uint32_t fallback) noexcept {
  if (!plan_.perturb_steals || workers == 0) return fallback;
  // Stateless seeded hash of (seed, self, call ordinal): deterministic
  // given the interleaving, no shared RNG state to contend on.
  const std::uint64_t n = steal_calls_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t z = plan_.seed ^ (n * 0x9E3779B97F4A7C15ULL) ^
                    (std::uint64_t{self} << 32);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  perturbed_steals_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<std::uint32_t>((z ^ (z >> 31)) % workers);
}

int fault_injector::pipe_worker_event() noexcept {
  if (plan_.pipe_stall_at == 0 && plan_.pipe_kill_at == 0) return pipe_proceed;
  const std::uint64_t n =
      pipe_events_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (plan_.pipe_kill_at != 0 && n == plan_.pipe_kill_at) {
    pipe_kills_.fetch_add(1, std::memory_order_relaxed);
    return pipe_kill;
  }
  if (plan_.pipe_stall_at != 0 && n == plan_.pipe_stall_at) {
    pipe_stalls_.fetch_add(1, std::memory_order_relaxed);
    return pipe_stall;
  }
  return pipe_proceed;
}

std::uint32_t fault_injector::pipe_ring_full() noexcept {
  if (plan_.pipe_ring_full_at == 0) return 0;
  const std::uint64_t n =
      pipe_pushes_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n != plan_.pipe_ring_full_at) return 0;
  pipe_forced_fulls_.fetch_add(1, std::memory_order_relaxed);
  return plan_.pipe_ring_full_spins == 0 ? 64 : plan_.pipe_ring_full_spins;
}

bool fault_injector::force_yield() noexcept {
  if (plan_.yield_every == 0) return false;
  const std::uint64_t n =
      steal_calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % plan_.yield_every != 0) return false;
  forced_yields_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

namespace {

bool alloc_gate_trampoline(std::size_t bytes) noexcept {
  fault_injector* inj = current_injector();
  return inj != nullptr && inj->fail_alloc(bytes);
}

}  // namespace

scoped_injector::scoped_injector(fault_injector& inj) {
  fault_injector* expected = nullptr;
  const bool installed = detail::g_injector.compare_exchange_strong(
      expected, &inj, std::memory_order_acq_rel);
  FUTRACE_CHECK_MSG(installed, "a fault injector is already installed");
  support::alloc_gate().store(&alloc_gate_trampoline,
                              std::memory_order_release);
}

scoped_injector::~scoped_injector() {
  support::alloc_gate().store(nullptr, std::memory_order_release);
  detail::g_injector.store(nullptr, std::memory_order_release);
}

}  // namespace futrace::inject
