#include "futrace/inject/fault_plan.hpp"

#include <sstream>

namespace futrace::inject {

std::string fault_plan::describe() const {
  std::ostringstream out;
  if (throw_at_spawn != 0) out << "spawn-throw@" << throw_at_spawn << " ";
  if (throw_at_get != 0) out << "get-throw@" << throw_at_get << " ";
  if (throw_at_put != 0) out << "put-throw@" << throw_at_put << " ";
  if (throw_at_epoch_reset != 0) {
    out << "epoch-reset-throw@" << throw_at_epoch_reset << " ";
  }
  if (drop_put_at != 0) out << "drop-put@" << drop_put_at << " ";
  if (fail_alloc_at != 0) {
    out << "fail-alloc@" << fail_alloc_at;
    if (fail_alloc_every != 0) out << "+every" << fail_alloc_every;
    out << " ";
  }
  if (perturb_steals) out << "perturb-steals(seed=" << seed << ") ";
  if (yield_every != 0) out << "yield-every=" << yield_every << " ";
  if (pipe_stall_at != 0) out << "pipe-stall@" << pipe_stall_at << " ";
  if (pipe_kill_at != 0) out << "pipe-kill@" << pipe_kill_at << " ";
  if (pipe_ring_full_at != 0) {
    out << "pipe-ring-full@" << pipe_ring_full_at << "x"
        << pipe_ring_full_spins << " ";
  }
  std::string s = out.str();
  if (s.empty()) return "no-faults";
  s.pop_back();  // trailing space
  return s;
}

void define_fault_flags(support::flag_parser& flags) {
  flags.define("fault-seed", "0", "seed for schedule-perturbation faults");
  flags.define("fault-spawn", "0",
               "throw injected_fault at the Nth spawn site (0 = off)");
  flags.define("fault-get", "0",
               "throw injected_fault at the Nth get() site (0 = off)");
  flags.define("fault-put", "0",
               "throw injected_fault at the Nth put() site (0 = off)");
  flags.define("fault-drop-put", "0",
               "silently drop the Nth promise fulfillment (0 = off)");
  flags.define("fault-epoch-reset-throw", "0",
               "throw injected_fault at the Nth epoch-reset attempt (0 = off)");
  flags.define("fault-alloc", "0",
               "deny the Nth gated allocation (0 = off)");
  flags.define("fault-alloc-every", "0",
               "after --fault-alloc fires, deny every Nth allocation");
  flags.define("fault-perturb-steals", "false",
               "perturb the parallel engine's steal-victim order");
  flags.define("fault-yield-every", "0",
               "force a yield before every Nth steal attempt (0 = off)");
  flags.define("fault-pipe-stall", "0",
               "stall the checker worker at the Nth pipeline event (0 = off)");
  flags.define("fault-pipe-kill", "0",
               "kill the checker worker at the Nth pipeline event (0 = off)");
  flags.define("fault-pipe-ring-full", "0",
               "force ring-full backpressure at the Nth push (0 = off)");
  flags.define("fault-pipe-ring-spins", "64",
               "backpressure spins forced by --fault-pipe-ring-full");
}

fault_plan fault_plan_from_flags(const support::flag_parser& flags) {
  fault_plan plan;
  plan.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed"));
  plan.throw_at_spawn =
      static_cast<std::uint64_t>(flags.get_int("fault-spawn"));
  plan.throw_at_get = static_cast<std::uint64_t>(flags.get_int("fault-get"));
  plan.throw_at_put = static_cast<std::uint64_t>(flags.get_int("fault-put"));
  plan.drop_put_at =
      static_cast<std::uint64_t>(flags.get_int("fault-drop-put"));
  plan.throw_at_epoch_reset =
      static_cast<std::uint64_t>(flags.get_int("fault-epoch-reset-throw"));
  plan.fail_alloc_at =
      static_cast<std::uint64_t>(flags.get_int("fault-alloc"));
  plan.fail_alloc_every =
      static_cast<std::uint64_t>(flags.get_int("fault-alloc-every"));
  plan.perturb_steals = flags.get_bool("fault-perturb-steals");
  plan.yield_every =
      static_cast<std::uint32_t>(flags.get_int("fault-yield-every"));
  plan.pipe_stall_at =
      static_cast<std::uint64_t>(flags.get_int("fault-pipe-stall"));
  plan.pipe_kill_at =
      static_cast<std::uint64_t>(flags.get_int("fault-pipe-kill"));
  plan.pipe_ring_full_at =
      static_cast<std::uint64_t>(flags.get_int("fault-pipe-ring-full"));
  plan.pipe_ring_full_spins =
      static_cast<std::uint32_t>(flags.get_int("fault-pipe-ring-spins"));
  return plan;
}

}  // namespace futrace::inject
