#include "futrace/graph/graph_recorder.hpp"

#include "futrace/support/assert.hpp"

namespace futrace::graph {

void graph_recorder::on_program_start(futrace::task_id root) {
  FUTRACE_CHECK(root == 0 && parent_.empty());
  parent_.push_back(futrace::k_invalid_task);
  kinds_.push_back(task_kind::root);
  current_step_.push_back(graph_.add_step(root));
  task_stack_.push_back(root);
}

void graph_recorder::on_task_spawn(futrace::task_id parent,
                                   futrace::task_id child, task_kind kind) {
  FUTRACE_CHECK(child == parent_.size());
  FUTRACE_CHECK(task_stack_.back() == parent);
  parent_.push_back(parent);
  kinds_.push_back(kind);
  // Spawn edge: from the parent step that ends with the async statement to
  // the child's first step.
  const step_id child_first = graph_.add_step(child);
  graph_.add_edge(current_step_[parent], child_first, edge_kind::spawn);
  current_step_.push_back(child_first);
  task_stack_.push_back(child);
}

void graph_recorder::on_task_end(futrace::task_id t) {
  FUTRACE_CHECK(task_stack_.back() == t);
  task_stack_.pop_back();
  // The parent resumes in a fresh step (the continuation after the async);
  // the root has no parent to resume.
  if (!task_stack_.empty()) advance_step(task_stack_.back());
}

void graph_recorder::on_finish_start(futrace::task_id owner) {
  // The statements inside the finish form a new step.
  advance_step(owner);
}

void graph_recorder::on_finish_end(futrace::task_id owner,
                                   std::span<const futrace::task_id> joined) {
  // The step immediately following the finish receives a join edge from the
  // last step of every task whose IEF this was; the owner is an ancestor of
  // all of them, so these are tree joins.
  const step_id after = advance_step(owner);
  for (const futrace::task_id t : joined) {
    graph_.add_edge(last_step(t), after, edge_kind::join_tree);
  }
}

void graph_recorder::on_get(futrace::task_id waiter,
                            futrace::task_id target) {
  // Join edge from the target's last step to the step immediately following
  // the get (paper §3); tree join iff the waiter is an ancestor of the
  // target.
  const step_id after = advance_step(waiter);
  const edge_kind kind = is_ancestor(waiter, target)
                             ? edge_kind::join_tree
                             : edge_kind::join_non_tree;
  graph_.add_edge(last_step(target), after, kind);
}

bool graph_recorder::is_ancestor(futrace::task_id a,
                                 futrace::task_id d) const {
  futrace::task_id walk = parent_[d];
  while (walk != futrace::k_invalid_task) {
    if (walk == a) return true;
    walk = parent_[walk];
  }
  return false;
}

step_id graph_recorder::advance_step(futrace::task_id t) {
  const step_id prev = current_step_[t];
  const step_id next = graph_.add_step(t);
  graph_.add_edge(prev, next, edge_kind::continuation);
  current_step_[t] = next;
  return next;
}

}  // namespace futrace::graph
