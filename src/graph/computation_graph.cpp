#include "futrace/graph/computation_graph.hpp"

#include <algorithm>
#include <sstream>

#include "futrace/support/small_vector.hpp"

namespace futrace::graph {

const char* edge_kind_name(edge_kind kind) {
  switch (kind) {
    case edge_kind::continuation:
      return "continue";
    case edge_kind::spawn:
      return "spawn";
    case edge_kind::join_tree:
      return "tree-join";
    case edge_kind::join_non_tree:
      return "non-tree-join";
  }
  return "?";
}

step_id computation_graph::add_step(task_id task) {
  const step_id id = static_cast<step_id>(step_tasks_.size());
  step_tasks_.push_back(task);
  successors_.emplace_back();
  visit_epoch_.push_back(0);
  return id;
}

void computation_graph::add_edge(step_id from, step_id to, edge_kind kind) {
  FUTRACE_CHECK_MSG(from < step_tasks_.size() && to < step_tasks_.size(),
                    "edge endpoints must be existing steps");
  FUTRACE_CHECK_MSG(from < to,
                    "computation-graph edges must point forward in "
                    "depth-first execution order");
  edges_.push_back(edge{from, to, kind});
  successors_[from].push_back(to);
}

bool computation_graph::reachable(step_id from, step_id to) const {
  if (from == to) return true;
  if (from > to) return false;  // edges only increase step ids
  ++epoch_;
  support::small_vector<step_id, 64> stack;
  stack.push_back(from);
  visit_epoch_[from] = epoch_;
  while (!stack.empty()) {
    const step_id s = stack.back();
    stack.pop_back();
    for (const step_id next : successors_[s]) {
      if (next == to) return true;
      if (next > to) continue;  // cannot lead back down to `to`
      if (visit_epoch_[next] == epoch_) continue;
      visit_epoch_[next] = epoch_;
      stack.push_back(next);
    }
  }
  return false;
}

std::size_t computation_graph::count_edges(edge_kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(edges_.begin(), edges_.end(),
                    [kind](const edge& e) { return e.kind == kind; }));
}

std::string computation_graph::to_dot(
    const std::vector<std::string>& task_names) const {
  std::ostringstream out;
  out << "digraph computation_graph {\n"
      << "  rankdir=TB;\n  node [shape=circle, fontsize=10];\n";

  task_id max_task = 0;
  for (const task_id t : step_tasks_) max_task = std::max(max_task, t);
  for (task_id t = 0; t <= max_task && !step_tasks_.empty(); ++t) {
    std::string name = t < task_names.size() ? task_names[t]
                                             : "T" + std::to_string(t);
    out << "  subgraph cluster_task" << t << " {\n"
        << "    label=\"" << name << "\";\n";
    for (step_id s = 0; s < step_tasks_.size(); ++s) {
      if (step_tasks_[s] == t) out << "    s" << s << " [label=\"S" << s
                                   << "\"];\n";
    }
    out << "  }\n";
  }
  for (const edge& e : edges_) {
    const char* style = "solid";
    const char* color = "black";
    switch (e.kind) {
      case edge_kind::continuation:
        break;
      case edge_kind::spawn:
        color = "blue";
        break;
      case edge_kind::join_tree:
        color = "darkgreen";
        style = "dashed";
        break;
      case edge_kind::join_non_tree:
        color = "red";
        style = "dashed";
        break;
    }
    out << "  s" << e.from << " -> s" << e.to << " [color=" << color
        << ", style=" << style << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace futrace::graph
