#pragma once

/// \file engine.hpp
/// Internal execution-engine interface behind the public async/finish/future
/// API. Three engines implement it:
///
///  - elision_engine:  the serial elision (paper §A.1) — every construct is
///                     erased, bodies run inline, zero bookkeeping. This is
///                     the "Seq" baseline of Table 2.
///  - serial_engine:   serial depth-first execution with task bookkeeping and
///                     observer events. With a race detector attached this is
///                     the "Racedet" configuration of Table 2.
///  - parallel_engine: work-stealing parallel execution (no observers; the
///                     detection algorithm requires depth-first order).
///
/// User code never touches this header's types directly; the templates in
/// api.hpp and future.hpp dispatch through it.

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>

#include "futrace/runtime/errors.hpp"
#include "futrace/runtime/observer.hpp"

namespace futrace {

enum class exec_mode : std::uint8_t {
  serial_elision,  // the paper's Seq baseline
  serial_dfs,      // depth-first with events (attach a detector for Racedet)
  parallel,        // work-stealing execution of the same program
};

const char* exec_mode_name(exec_mode mode);

namespace detail {

/// Type-erased shared state behind future<T>. The value lives in the derived
/// future_state<T>; this base carries what the engines need.
struct future_state_base {
  static constexpr std::uint32_t k_pending = 0;
  static constexpr std::uint32_t k_ready = 1;
  static constexpr std::uint32_t k_failed = 2;

  std::atomic<std::uint32_t> status{k_pending};
  /// Producing task: the dense id in serial modes, or the parallel engine's
  /// own spawn-order id (used by the deadlock watchdog's wait-graph dump).
  /// Atomic because the watchdog reads it from a different worker than the
  /// one that assigned it.
  std::atomic<task_id> task{k_invalid_task};
  std::exception_ptr error;

  virtual ~future_state_base() = default;

  bool settled() const noexcept {
    return status.load(std::memory_order_acquire) != k_pending;
  }

  /// Publishes the (already stored) result with release semantics.
  void publish(std::uint32_t final_status) noexcept {
    status.store(final_status, std::memory_order_release);
  }

  /// Rethrows the stored exception if the task failed.
  void rethrow_if_failed() const {
    if (status.load(std::memory_order_acquire) == k_failed) {
      std::rethrow_exception(error);
    }
  }
};

class engine {
 public:
  explicit engine(exec_mode mode) : mode_(mode) {}
  virtual ~engine() = default;

  engine(const engine&) = delete;
  engine& operator=(const engine&) = delete;

  exec_mode mode() const noexcept { return mode_; }

  /// Runs `main_fn` as the root task inside the implicit whole-program
  /// finish (paper §2: "There is an implicit finish scope surrounding the
  /// body of main()").
  virtual void run_program(const std::function<void()>& main_fn) = 0;

  // -- Serial (inline) spawning; parallel engine rejects these ---------------

  /// Creates a child task of the current task and makes it current. The
  /// caller must run the body and then call spawn_end() (via RAII guard).
  virtual task_id spawn_begin(task_kind kind) = 0;
  virtual void spawn_end() = 0;

  virtual void finish_begin() = 0;
  virtual void finish_end() = 0;

  // -- Parallel (deferred) spawning; serial engines run via spawn_begin ------

  /// Enqueues a task body for asynchronous execution. `produces`, when
  /// non-null, is the future state the task will settle; the engine stamps
  /// it with the task's id so a stalled get() can name its producer in the
  /// deadlock report.
  virtual void parallel_spawn(std::function<void()> body,
                              future_state_base* produces = nullptr);

  /// Blocks (or, in serial modes, validates and instruments) a get() on the
  /// given future state. On return the state is settled.
  virtual void wait_future(future_state_base& state) = 0;

  /// promise.put(): records the fulfilling task and, in serial DFS mode,
  /// splits the current task into a continuation (see promise.hpp). The
  /// value is already stored; this publishes it.
  virtual void promise_fulfilled(future_state_base& state) = 0;

  /// promise.get(): serial modes throw deadlock_error when unfulfilled (the
  /// put can no longer precede this step in any depth-first-consistent
  /// schedule); the parallel engine blocks, helping.
  virtual void wait_promise(future_state_base& state) = 0;

  /// Fired by shared<T> wrappers on instrumented accesses; only the serial
  /// DFS engine forwards these to observers.
  virtual void note_read(const void* addr, std::size_t size,
                         access_site site) = 0;
  virtual void note_write(const void* addr, std::size_t size,
                          access_site site) = 0;

  /// Bulk variants fired by shared_array range accessors: `count` elements
  /// of `stride` bytes starting at `addr`. The default decomposes to the
  /// per-element notes; the serial DFS engine overrides to forward one bulk
  /// event to observers instead.
  virtual void note_read_range(const void* addr, std::size_t count,
                               std::size_t stride, access_site site) {
    const char* p = static_cast<const char*>(addr);
    for (std::size_t i = 0; i < count; ++i) note_read(p + i * stride, stride, site);
  }
  virtual void note_write_range(const void* addr, std::size_t count,
                                std::size_t stride, access_site site) {
    const char* p = static_cast<const char*>(addr);
    for (std::size_t i = 0; i < count; ++i) note_write(p + i * stride, stride, site);
  }

  virtual task_id current_task() const = 0;

  /// Total tasks spawned (including the root), where tracked.
  virtual std::uint64_t tasks_spawned() const = 0;

 private:
  exec_mode mode_;
};

/// Ambient per-thread execution context. Set while runtime::run() is active
/// on this thread (and on every worker thread in parallel mode).
struct context {
  engine* eng = nullptr;
  bool instrument = false;  // fast-path gate for shared<T> hooks
};

context& ctx() noexcept;

/// Throws usage_error unless a runtime is active on this thread.
engine& require_engine();

/// RAII guard pairing spawn_begin/spawn_end across exceptions.
class spawn_scope {
 public:
  spawn_scope(engine& eng, task_kind kind)
      : eng_(eng), child_(eng.spawn_begin(kind)) {}
  ~spawn_scope() { eng_.spawn_end(); }
  spawn_scope(const spawn_scope&) = delete;
  spawn_scope& operator=(const spawn_scope&) = delete;
  task_id child() const noexcept { return child_; }

 private:
  engine& eng_;
  task_id child_;
};

}  // namespace detail
}  // namespace futrace
