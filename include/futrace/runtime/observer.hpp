#pragma once

/// \file observer.hpp
/// Event interface between the task runtime and its instrumentation clients.
/// The race detector (futrace::detect), the computation-graph recorder
/// (futrace::graph driven by graph_recorder), and the baseline detectors all
/// implement this interface and attach to a serial depth-first execution.
///
/// The event stream mirrors exactly the points where the paper's algorithm
/// acts: task creation, task termination, get(), finish start/end, and shared
/// memory reads/writes. Parallel executions fire no events (the paper's
/// detector runs on a 1-processor depth-first execution).

#include <cstddef>
#include <cstdint>
#include <span>

namespace futrace {

/// Dense task identifier assigned in spawn (preorder) order; the root task is
/// always 0. Matches futrace::dsr::task_id by construction.
using task_id = std::uint32_t;
inline constexpr task_id k_invalid_task = 0xFFFFFFFFu;

enum class task_kind : std::uint8_t {
  root,    // the implicit main task
  async,   // async { S } — joined only via its Immediately Enclosing Finish
  future,  // async<T> Expr — additionally joinable via get()
  /// The tail of a task that fulfilled a promise: promise.put() splits the
  /// current task so that the promise's join edge targets a task whose last
  /// step is the put (see promise.hpp). Continuations run inline, join the
  /// same finish their original task does, and behave like asyncs otherwise.
  continuation,
};

const char* task_kind_name(task_kind kind);

/// Source position of an instrumented access, for race reports.
struct access_site {
  const char* file = "?";
  std::uint32_t line = 0;
};

class execution_observer {
 public:
  virtual ~execution_observer() = default;

  /// The root task was created. Fired once, before any other event.
  virtual void on_program_start(task_id root) { (void)root; }

  /// `parent` spawned `child`; the child's body is about to run. For the
  /// root, on_program_start is fired instead.
  virtual void on_task_spawn(task_id parent, task_id child, task_kind kind) {
    (void)parent;
    (void)child;
    (void)kind;
  }

  /// Task `t` finished executing its body.
  virtual void on_task_end(task_id t) { (void)t; }

  /// Task `owner` entered a finish scope.
  virtual void on_finish_start(task_id owner) { (void)owner; }

  /// The finish scope ended; `joined` lists every task whose Immediately
  /// Enclosing Finish this was, in spawn order. All of them have terminated.
  virtual void on_finish_end(task_id owner, std::span<const task_id> joined) {
    (void)owner;
    (void)joined;
  }

  /// Task `waiter` performed get() on the completed future task `target`,
  /// or on a promise fulfilled by `target` (the pre-put identity).
  virtual void on_get(task_id waiter, task_id target) {
    (void)waiter;
    (void)target;
  }

  /// Task `fulfiller` fulfilled a promise (immediately before the engine
  /// splits it into a continuation). Detectors use this to mark the task as
  /// joinable-by-get for shadow-memory purposes.
  virtual void on_promise_put(task_id fulfiller) { (void)fulfiller; }

  /// Task `t` read `size` bytes at `addr`.
  virtual void on_read(task_id t, const void* addr, std::size_t size,
                       access_site site) {
    (void)t;
    (void)addr;
    (void)size;
    (void)site;
  }

  /// Task `t` wrote `size` bytes at `addr`.
  virtual void on_write(task_id t, const void* addr, std::size_t size,
                        access_site site) {
    (void)t;
    (void)addr;
    (void)size;
    (void)site;
  }

  /// Task `t` read `count` consecutive elements of `stride` bytes starting
  /// at `addr` (a `shared_array` range accessor). Semantically identical to
  /// `count` per-element on_read calls at the same step — the default
  /// implementation performs exactly that decomposition, so observers that
  /// never override the bulk events (graph recorder, baseline detectors,
  /// fault hooks) see an unchanged per-element stream.
  virtual void on_read_range(task_id t, const void* addr, std::size_t count,
                             std::size_t stride, access_site site) {
    const char* p = static_cast<const char*>(addr);
    for (std::size_t i = 0; i < count; ++i) {
      on_read(t, p + i * stride, stride, site);
    }
  }

  /// Task `t` wrote `count` consecutive elements of `stride` bytes starting
  /// at `addr`. Default: per-element decomposition, as with on_read_range.
  virtual void on_write_range(task_id t, const void* addr, std::size_t count,
                              std::size_t stride, access_site site) {
    const char* p = static_cast<const char*>(addr);
    for (std::size_t i = 0; i < count; ++i) {
      on_write(t, p + i * stride, stride, site);
    }
  }

  /// The root task's implicit finish ended and the program is complete.
  virtual void on_program_end() {}
};

}  // namespace futrace
