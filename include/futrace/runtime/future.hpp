#pragma once

/// \file future.hpp
/// future<T>: a handle to the result of an asynchronously evaluated task
/// (paper §2). Created by futrace::async_future; get() joins the producing
/// task — the point-to-point synchronization that makes computation graphs
/// non-strict and motivates the whole paper.
///
/// A default-constructed handle is *unset* (the analogue of a null future
/// reference in HJ); calling get() on it throws deadlock_error, mirroring the
/// NullPointerException/deadlock behaviours of Appendix A.

#include <memory>
#include <optional>
#include <utility>

#include "futrace/inject/hooks.hpp"
#include "futrace/runtime/engine.hpp"
#include "futrace/runtime/errors.hpp"

namespace futrace {

namespace detail {

template <typename T>
struct future_state final : future_state_base {
  std::optional<T> value;
};

template <>
struct future_state<void> final : future_state_base {};

}  // namespace detail

template <typename T>
class future {
 public:
  /// An unset handle; get() on it throws deadlock_error.
  future() = default;

  /// True iff the handle refers to a task (set handles only become unset by
  /// assignment from an unset handle).
  bool valid() const noexcept { return state_ != nullptr; }

  /// True iff the producing task has completed (success or failure).
  bool is_done() const noexcept { return state_ && state_->settled(); }

  /// The dense id of the producing task in serial executions, or
  /// k_invalid_task in elision/parallel modes.
  task_id task() const noexcept {
    return state_ ? state_->task.load(std::memory_order_relaxed)
                  : k_invalid_task;
  }

  /// Joins the producing task and returns its result. Inside a serial DFS
  /// execution this records the join with every attached observer (the race
  /// detector's Algorithm 4); inside a parallel execution it blocks, helping
  /// execute other tasks while waiting. Rethrows any exception the task
  /// body raised.
  T get() const {
    inject::get_site();
    wait();
    state_->rethrow_if_failed();
    if constexpr (!std::is_void_v<T>) {
      return *state_->value;
    }
  }

 private:
  template <typename Fn>
  friend auto async_future(Fn&& fn);

  explicit future(std::shared_ptr<detail::future_state<T>> state)
      : state_(std::move(state)) {}

  void wait() const {
    if (!state_) {
      throw deadlock_error(
          "get() on an unset future handle: in some schedule of this program "
          "the handle is still null here, which deadlocks or faults "
          "(paper Appendix A)");
    }
    detail::context& c = detail::ctx();
    if (c.eng != nullptr) {
      c.eng->wait_future(*state_);
    } else if (!state_->settled()) {
      throw usage_error(
          "get() outside runtime::run() on a future that is not complete");
    }
  }

  std::shared_ptr<detail::future_state<T>> state_;
};

}  // namespace futrace
