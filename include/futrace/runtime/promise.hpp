#pragma once

/// \file promise.hpp
/// promise<T>: a single-assignment cell fulfilled by put() from *any* task
/// and awaited by get() — the "promise" of paper §2 ("A future (or promise)
/// refers to an object that acts as a proxy for a result..."), known in
/// Habanero as a data-driven future. Unlike a future task, the producer is
/// not a dedicated task: put() may happen in the middle of a task that then
/// keeps running.
///
/// Mid-task fulfillment is what makes promises interesting for the
/// detector: the join edge created by get() originates at the *put point*,
/// not at the producer's last step, so task-granularity reachability (which
/// joins whole tasks) would over-order the producer's post-put code. The
/// serial engine therefore *splits* the fulfilling task at put(): the rest
/// of its body runs as a fresh continuation task (task_kind::continuation,
/// an inline child that joins the same finish the original task does), and
/// the promise records the pre-put identity as its fulfiller. The detector
/// then treats a promise join exactly like a future join on a task whose
/// last step is the put — no new reachability machinery needed, and the
/// producer's post-put code stays correctly parallel to the getter.
///
/// get() on an unfulfilled promise in the serial engines throws
/// deadlock_error (in depth-first order the put can no longer happen before
/// this step, so some schedule deadlocks — the Appendix A argument); the
/// parallel engine blocks, helping, with the usual stall watchdog.

#include <memory>
#include <optional>
#include <utility>

#include "futrace/inject/hooks.hpp"
#include "futrace/runtime/engine.hpp"
#include "futrace/runtime/errors.hpp"

namespace futrace {

namespace detail {

template <typename T>
struct promise_state final : future_state_base {
  std::optional<T> value;
};

template <>
struct promise_state<void> final : future_state_base {};

}  // namespace detail

template <typename T>
class promise {
 public:
  /// Creates an unfulfilled promise. Handles are copyable and share state.
  promise() : state_(std::make_shared<detail::promise_state<T>>()) {}

  bool is_fulfilled() const noexcept { return state_->settled(); }

  /// Fulfills the promise. Exactly one put() is allowed; a second throws
  /// usage_error. Inside a serial DFS execution this splits the current
  /// task (see file comment).
  template <typename U = T>
  void put(U&& value) {
    inject::put_site();
    if (state_->settled()) {
      throw usage_error("promise fulfilled twice");
    }
    if constexpr (!std::is_void_v<T>) {
      state_->value.emplace(std::forward<U>(value));
    }
    fulfill();
  }

  void put()
    requires std::is_void_v<T>
  {
    inject::put_site();
    if (state_->settled()) {
      throw usage_error("promise fulfilled twice");
    }
    fulfill();
  }

  /// Joins the put(): every step of the fulfilling task up to the put
  /// happens-before the code after get(). Returns the stored value.
  T get() const {
    inject::get_site();
    detail::context& c = detail::ctx();
    if (c.eng != nullptr) {
      c.eng->wait_promise(*state_);
    } else if (!state_->settled()) {
      throw usage_error(
          "get() outside runtime::run() on an unfulfilled promise");
    }
    if constexpr (!std::is_void_v<T>) {
      return *state_->value;
    }
  }

  /// The pre-put identity of the fulfilling task (serial modes).
  task_id fulfiller() const noexcept { return state_->task; }

 private:
  void fulfill() {
    // A dropped fulfillment leaves the promise unfulfilled forever: later
    // getters take the Appendix A deadlock path (serial engines throw, the
    // parallel watchdog fires). The value is stored but never published.
    if (inject::drop_put_site()) return;
    detail::context& c = detail::ctx();
    if (c.eng != nullptr) {
      c.eng->promise_fulfilled(*state_);
    } else {
      state_->publish(detail::future_state_base::k_ready);
    }
  }

  std::shared_ptr<detail::promise_state<T>> state_;
};

}  // namespace futrace
