#pragma once

/// \file errors.hpp
/// Exception types thrown by the runtime. Appendix A of the paper shows that
/// programs with races on future handles can deadlock in some schedules and
/// raise null-dereference errors in others; the serial depth-first execution
/// surfaces both as exceptions instead of hanging.

#include <stdexcept>
#include <string>

namespace futrace {

/// Base class for runtime-reported errors.
class runtime_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// get() on a future handle that no task was ever assigned to (the serial
/// analogue of HJ's NullPointerException on an unset future reference), or a
/// cyclic wait among futures detected by the parallel engine.
class deadlock_error : public runtime_error {
 public:
  using runtime_error::runtime_error;
};

/// An API call was made outside runtime::run(), or in an execution mode that
/// does not support it.
class usage_error : public runtime_error {
 public:
  using runtime_error::runtime_error;
};

}  // namespace futrace
