#pragma once

/// \file runtime.hpp
/// Umbrella header for the futrace task-parallel runtime: async / finish /
/// future constructs (paper §2), instrumented shared memory, and the runtime
/// object hosting elision, serial depth-first, and parallel executions.

#include "futrace/runtime/api.hpp"      // IWYU pragma: export
#include "futrace/runtime/errors.hpp"   // IWYU pragma: export
#include "futrace/runtime/future.hpp"   // IWYU pragma: export
#include "futrace/runtime/observer.hpp" // IWYU pragma: export
#include "futrace/runtime/parallel_ops.hpp"  // IWYU pragma: export
#include "futrace/runtime/promise.hpp"  // IWYU pragma: export
#include "futrace/runtime/shared.hpp"   // IWYU pragma: export
