#pragma once

/// \file shared.hpp
/// Instrumented shared-memory cells. The paper's implementation instruments
/// reads and writes of instance/static fields and array elements during a
/// bytecode pass; in C++ the program declares its shared state through these
/// wrappers and every access reaches the attached observers (and is counted
/// in #SharedMem). When no instrumenting engine is active the accessors
/// compile down to plain loads and stores guarded by one thread-local test.
///
/// Granularity: one wrapper cell (or one array element) is one "memory
/// location" in the sense of Definition 3.

#include <cstddef>
#include <source_location>
#include <span>
#include <utility>
#include <vector>

#include "futrace/runtime/engine.hpp"
#include "futrace/runtime/shared_regions.hpp"

namespace futrace {

namespace detail {

inline void instrument_read(const void* addr, std::size_t size,
                            const std::source_location& loc) {
  const context& c = ctx();
  if (c.instrument) [[unlikely]] {
    c.eng->note_read(addr, size,
                     access_site{loc.file_name(), loc.line()});
  }
}

inline void instrument_write(const void* addr, std::size_t size,
                             const std::source_location& loc) {
  const context& c = ctx();
  if (c.instrument) [[unlikely]] {
    c.eng->note_write(addr, size,
                      access_site{loc.file_name(), loc.line()});
  }
}

inline void instrument_read_range(const void* addr, std::size_t count,
                                  std::size_t stride,
                                  const std::source_location& loc) {
  const context& c = ctx();
  if (c.instrument) [[unlikely]] {
    c.eng->note_read_range(addr, count, stride,
                           access_site{loc.file_name(), loc.line()});
  }
}

inline void instrument_write_range(const void* addr, std::size_t count,
                                   std::size_t stride,
                                   const std::source_location& loc) {
  const context& c = ctx();
  if (c.instrument) [[unlikely]] {
    c.eng->note_write_range(addr, count, stride,
                            access_site{loc.file_name(), loc.line()});
  }
}

}  // namespace detail

/// A single shared scalar (the analogue of a field in the HJ benchmarks).
template <typename T>
class shared {
 public:
  shared() = default;
  explicit shared(T initial) : value_(std::move(initial)) {}

  // Shared cells name memory locations; copying one would silently fork the
  // location identity, so they are pinned.
  shared(const shared&) = delete;
  shared& operator=(const shared&) = delete;

  T read(std::source_location loc = std::source_location::current()) const {
    detail::instrument_read(&value_, sizeof(T), loc);
    return value_;
  }

  void write(T v,
             std::source_location loc = std::source_location::current()) {
    detail::instrument_write(&value_, sizeof(T), loc);
    value_ = std::move(v);
  }

  /// Address identifying this location in race reports.
  const void* address() const noexcept { return &value_; }

 private:
  T value_{};
};

/// A fixed-size array of shared elements; each element is its own location.
///
/// The element range is registered with the process-global region registry
/// (shared_regions.hpp) so shadow memory can direct-map it. Like `shared`,
/// arrays are pinned: copying would fork the location identity of every
/// element. Moves transfer the registration with the heap buffer.
template <typename T>
class shared_array {
 public:
  shared_array() = default;
  explicit shared_array(std::size_t n, T fill = T{}) : data_(n, fill) {
    register_range();
  }

  shared_array(const shared_array&) = delete;
  shared_array& operator=(const shared_array&) = delete;

  shared_array(shared_array&& other) noexcept
      : data_(std::move(other.data_)),
        registered_base_(std::exchange(other.registered_base_, nullptr)) {}

  shared_array& operator=(shared_array&& other) noexcept {
    if (this != &other) {
      unregister_range();
      data_ = std::move(other.data_);
      registered_base_ = std::exchange(other.registered_base_, nullptr);
    }
    return *this;
  }

  ~shared_array() { unregister_range(); }

  void assign(std::size_t n, T fill = T{}) {
    unregister_range();
    data_.assign(n, fill);
    register_range();
  }

  std::size_t size() const noexcept { return data_.size(); }

  T read(std::size_t i,
         std::source_location loc = std::source_location::current()) const {
    detail::instrument_read(&data_[i], sizeof(T), loc);
    return data_[i];
  }

  void write(std::size_t i, T v,
             std::source_location loc = std::source_location::current()) {
    detail::instrument_write(&data_[i], sizeof(T), loc);
    data_[i] = std::move(v);
  }

  /// Instruments a bulk read of `count` consecutive elements starting at
  /// `first` and returns a read-only view of them. One on_read_range event
  /// covers the whole run; detectors treat it exactly as `count`
  /// per-element reads at the current step (Definition 3 granularity is
  /// unchanged — every element stays its own location).
  std::span<const T> read_range(
      std::size_t first, std::size_t count,
      std::source_location loc = std::source_location::current()) const {
    if (count == 0) return {};
    detail::instrument_read_range(&data_[first], count, sizeof(T), loc);
    return std::span<const T>(data_.data() + first, count);
  }

  /// Instruments a bulk write of `count` consecutive elements starting at
  /// `first` and returns a writable view. The event fires at call time; the
  /// caller stores through the span afterwards (instrumentation order
  /// within one step is irrelevant to the detector).
  std::span<T> write_range(
      std::size_t first, std::size_t count,
      std::source_location loc = std::source_location::current()) {
    if (count == 0) return {};
    detail::instrument_write_range(&data_[first], count, sizeof(T), loc);
    return std::span<T>(data_.data() + first, count);
  }

  /// Whole-array views.
  std::span<const T> read_all(
      std::source_location loc = std::source_location::current()) const {
    return read_range(0, data_.size(), loc);
  }
  std::span<T> write_all(
      std::source_location loc = std::source_location::current()) {
    return write_range(0, data_.size(), loc);
  }

  const void* address(std::size_t i) const noexcept { return &data_[i]; }

  /// Uninstrumented access for result verification *outside* the timed /
  /// detected region (e.g. checksum checks after run()).
  const T& peek(std::size_t i) const noexcept { return data_[i]; }
  void poke(std::size_t i, T v) noexcept { data_[i] = std::move(v); }

 private:
  void register_range() {
    if (data_.empty()) return;
    if (detail::register_shared_region(data_.data(),
                                       data_.size() * sizeof(T), sizeof(T))) {
      registered_base_ = data_.data();
    }
  }

  void unregister_range() {
    if (registered_base_ != nullptr) {
      detail::unregister_shared_region(registered_base_);
      registered_base_ = nullptr;
    }
  }

  std::vector<T> data_;
  const void* registered_base_ = nullptr;
};

}  // namespace futrace
