#pragma once

/// \file shared_regions.hpp
/// Process-global registry of `shared_array` address ranges.
///
/// A `shared_array<T>` names a contiguous run of memory locations with a
/// fixed element stride. Registering that range lets shadow memory serve its
/// accesses from a direct-mapped slab — `(addr - base) >> log2(stride)` —
/// instead of hashing every access, which is the dominant cost in the
/// paper's slowdown numbers (§4.2). The registry is deliberately dumb: a
/// mutex-guarded vector of live ranges plus a monotonic version counter.
/// Shadow memory polls the version with one relaxed-ish atomic load per
/// access and resynchronizes only when it changed, so registration cost is
/// paid at array construction, never on the access path.
///
/// The registry records *live* ranges only. Shadow memory keeps any slab it
/// already built even after the range is unregistered — the same
/// never-forget policy the hashed table has for stale addresses, so address
/// reuse keeps its location identity within one execution.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace futrace::detail {

struct shared_region {
  std::uintptr_t base = 0;
  std::uintptr_t end = 0;     // one past the last byte
  std::uint32_t stride = 0;   // element size in bytes

  bool overlaps(const shared_region& o) const noexcept {
    return base < o.end && o.base < end;
  }
};

/// Bumped (release) on every successful registration or removal; shadow
/// memory compares it (acquire) against the last version it mirrored.
inline std::atomic<std::uint64_t> g_shared_region_version{1};

struct shared_region_registry_state {
  std::mutex mu;
  std::vector<shared_region> regions;
};

inline shared_region_registry_state& shared_region_state() {
  static shared_region_registry_state s;
  return s;
}

/// Registers [base, base+bytes) with element size `stride`. Returns false —
/// and records nothing — when the range is empty, overlaps a live range, or
/// the registry itself cannot allocate (registration is an optimization
/// hint; failure must never take the program down).
inline bool register_shared_region(const void* base, std::size_t bytes,
                                   std::size_t stride) noexcept {
  if (base == nullptr || bytes == 0 || stride == 0) return false;
  shared_region r;
  r.base = reinterpret_cast<std::uintptr_t>(base);
  r.end = r.base + bytes;
  r.stride = static_cast<std::uint32_t>(stride);
  auto& st = shared_region_state();
  std::lock_guard<std::mutex> lock(st.mu);
  for (const shared_region& live : st.regions) {
    if (r.overlaps(live)) return false;
  }
  try {
    st.regions.push_back(r);
  } catch (...) {
    return false;
  }
  g_shared_region_version.fetch_add(1, std::memory_order_release);
  return true;
}

/// Removes the live range starting at `base` (no-op if absent).
inline void unregister_shared_region(const void* base) noexcept {
  if (base == nullptr) return;
  const std::uintptr_t b = reinterpret_cast<std::uintptr_t>(base);
  auto& st = shared_region_state();
  std::lock_guard<std::mutex> lock(st.mu);
  for (std::size_t i = 0; i < st.regions.size(); ++i) {
    if (st.regions[i].base == b) {
      st.regions[i] = st.regions.back();
      st.regions.pop_back();
      g_shared_region_version.fetch_add(1, std::memory_order_release);
      return;
    }
  }
}

inline std::uint64_t shared_region_version() noexcept {
  return g_shared_region_version.load(std::memory_order_acquire);
}

inline std::vector<shared_region> shared_region_snapshot() {
  auto& st = shared_region_state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.regions;
}

}  // namespace futrace::detail
