#pragma once

/// \file api.hpp
/// The user-facing task-parallel constructs (paper §2) and the runtime object
/// that hosts an execution:
///
///   futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
///   rt.add_observer(&detector);
///   rt.run([] {
///     futrace::finish([] {
///       futrace::async([] { ... });
///       auto f = futrace::async_future([] { return 42; });
///       int v = f.get();
///     });
///   });
///
/// In elision mode the same program runs as its serial elision; in parallel
/// mode it runs on a work-stealing pool. The construct templates dispatch on
/// the ambient engine, so workload code is written once.

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "futrace/inject/hooks.hpp"
#include "futrace/runtime/engine.hpp"
#include "futrace/runtime/future.hpp"

namespace futrace {

/// Spawns an async child task executing `fn`. The child's joins happen at the
/// end of its Immediately Enclosing Finish.
template <typename Fn>
void async(Fn&& fn) {
  inject::spawn_site();
  detail::engine& eng = detail::require_engine();
  switch (eng.mode()) {
    case exec_mode::serial_elision:
      std::forward<Fn>(fn)();
      return;
    case exec_mode::serial_dfs: {
      detail::spawn_scope scope(eng, task_kind::async);
      std::forward<Fn>(fn)();
      return;
    }
    case exec_mode::parallel:
      eng.parallel_spawn(std::function<void()>(std::forward<Fn>(fn)));
      return;
  }
}

/// Spawns a future task evaluating `fn` and returns a handle to its result.
/// Exceptions thrown by `fn` are captured and rethrown from get().
template <typename Fn>
auto async_future(Fn&& fn) {
  inject::spawn_site();
  using T = std::invoke_result_t<std::decay_t<Fn>&>;
  detail::engine& eng = detail::require_engine();
  auto state = std::make_shared<detail::future_state<T>>();

  auto evaluate = [](detail::future_state<T>& st, auto& body) {
    try {
      if constexpr (std::is_void_v<T>) {
        body();
      } else {
        st.value.emplace(body());
      }
      st.publish(detail::future_state_base::k_ready);
    } catch (...) {
      st.error = std::current_exception();
      st.publish(detail::future_state_base::k_failed);
    }
  };

  switch (eng.mode()) {
    case exec_mode::serial_elision: {
      auto body = std::forward<Fn>(fn);
      evaluate(*state, body);
      break;
    }
    case exec_mode::serial_dfs: {
      detail::spawn_scope scope(eng, task_kind::future);
      state->task = scope.child();
      auto body = std::forward<Fn>(fn);
      evaluate(*state, body);
      break;
    }
    case exec_mode::parallel: {
      eng.parallel_spawn(
          [state, body = std::decay_t<Fn>(std::forward<Fn>(fn)),
           evaluate]() mutable { evaluate(*state, body); },
          state.get());
      break;
    }
  }
  return future<T>(state);
}

/// Executes `fn` and waits for every task (transitively) spawned within it.
template <typename Fn>
void finish(Fn&& fn) {
  detail::engine& eng = detail::require_engine();
  if (eng.mode() == exec_mode::serial_elision) {
    std::forward<Fn>(fn)();
    return;
  }
  eng.finish_begin();
  try {
    std::forward<Fn>(fn)();
  } catch (...) {
    // First exception wins: the finish still joins every outstanding child
    // (the parallel engine drains them in finish_end), but errors raised
    // during that teardown — a child's own failure, a detector report, a
    // deadlock on an abandoned child — do not displace the one that started
    // the unwinding.
    const std::exception_ptr primary = std::current_exception();
    try {
      eng.finish_end();
    } catch (...) {
    }
    std::rethrow_exception(primary);
  }
  eng.finish_end();
}

/// The dense id of the currently executing task (serial modes), or
/// k_invalid_task in elision/parallel modes.
inline task_id current_task() {
  return detail::require_engine().current_task();
}

struct runtime_config {
  exec_mode mode = exec_mode::serial_dfs;
  /// Worker-thread count for parallel mode; 0 means hardware concurrency.
  unsigned workers = 0;
  /// How long a parallel-mode wait (future/promise get) may find no runnable
  /// work before the watchdog declares deadlock and dumps the wait graph.
  /// Enclosing finish scopes wait 3x this before abandoning, giving blocked
  /// children time to fail and join first.
  std::uint32_t deadlock_timeout_ms = 10000;
};

/// Hosts one program execution. Observers (race detectors, computation-graph
/// recorders) may be attached before run() in serial_dfs mode.
class runtime {
 public:
  explicit runtime(runtime_config config = {});
  ~runtime();

  runtime(const runtime&) = delete;
  runtime& operator=(const runtime&) = delete;

  /// Attaches an observer; only legal in serial_dfs mode, before run().
  /// Observers are invoked in attachment order and must outlive the runtime.
  void add_observer(execution_observer* observer);

  /// Executes `main_fn` as the root task inside the implicit whole-program
  /// finish. May be called once per runtime instance. Exceptions from the
  /// program propagate after the engine unwinds.
  void run(const std::function<void()>& main_fn);

  exec_mode mode() const noexcept { return config_.mode; }

  /// Total tasks created, including the root (the paper's #Tasks counts
  /// spawned tasks, i.e. this minus one).
  std::uint64_t tasks_spawned() const;

 private:
  runtime_config config_;
  std::vector<execution_observer*> observers_;
  std::unique_ptr<detail::engine> engine_;
  bool ran_ = false;
};

}  // namespace futrace
