#pragma once

/// \file parallel_ops.hpp
/// Loop- and reduction-level conveniences built on async/finish, in the
/// spirit of HJ's forasync and finish accumulators. Nothing here extends the
/// detection algorithm: async_for lowers to a divide-and-conquer spawn tree
/// of plain asyncs, and accumulator keeps runtime-private per-contribution
/// state, so race-free-by-construction reductions do not trip the detector
/// the way a shared accumulation cell would.

#include <atomic>
#include <cstddef>
#include <utility>

#include "futrace/runtime/api.hpp"
#include "futrace/support/assert.hpp"

namespace futrace {

/// Executes body(i) for every i in [begin, end) as a balanced spawn tree of
/// async tasks; ranges of at most `grain` iterations run sequentially inside
/// one task. Must be called inside a finish (or rely on the caller's IEF) —
/// like any async, completion is only guaranteed once the enclosing finish
/// ends. In elision mode this is a plain loop.
template <typename Body>
void async_for(std::size_t begin, std::size_t end, std::size_t grain,
               Body body) {
  FUTRACE_CHECK_MSG(grain >= 1, "grain must be at least 1");
  if (begin >= end) return;
  if (end - begin <= grain) {
    async([begin, end, body] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
    return;
  }
  const std::size_t mid = begin + (end - begin) / 2;
  async([begin, mid, grain, body] { async_for(begin, mid, grain, body); });
  async_for(mid, end, grain, body);
}

/// Convenience: finish { async_for(...) } — returns once every iteration
/// completed.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  Body body) {
  finish([&] { async_for(begin, end, grain, body); });
}

/// A commutative-associative reduction cell in the spirit of HJ's finish
/// accumulators: any task may contribute(); the result is well-defined once
/// all contributing tasks have been joined (typically by the enclosing
/// finish). Contributions synchronize internally, so they are not
/// determinacy races — unlike accumulating into a shared<T> cell, which the
/// detector would (rightly) flag.
///
/// T must be an arithmetic-like type supported by std::atomic's
/// compare-exchange loop.
template <typename T, typename Op>
class accumulator {
 public:
  explicit accumulator(T identity, Op op = Op{})
      : identity_(identity), op_(op), value_(identity) {}

  /// Folds `v` into the accumulator. Safe from any task in any mode.
  void contribute(T v) {
    T current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, op_(current, v),
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Reads the reduced value. Meaningful once contributing tasks are joined.
  T get() const { return value_.load(std::memory_order_acquire); }

  /// Resets to the identity element.
  void reset() { value_.store(identity_, std::memory_order_release); }

 private:
  T identity_;
  Op op_;
  std::atomic<T> value_;
};

}  // namespace futrace
