#pragma once

/// \file ws_deque.hpp
/// Chase–Lev work-stealing deque (Chase & Lev, SPAA 2005), with the C11
/// memory-order discipline of Lê, Pop, Cohen & Zappa Nardelli (PPoPP 2013).
/// The owner pushes and pops at the bottom; thieves steal from the top.
/// Used by the parallel engine; exposed as a public header because it is
/// independently useful and independently unit-tested.
///
/// T must be trivially copyable (the engine stores raw task pointers).

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "futrace/support/assert.hpp"

namespace futrace {

template <typename T>
class ws_deque {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  explicit ws_deque(std::int64_t initial_capacity = 64) {
    FUTRACE_CHECK_MSG((initial_capacity & (initial_capacity - 1)) == 0,
                      "capacity must be a power of two");
    auto ring = std::make_unique<buffer>(initial_capacity);
    buffer_.store(ring.get(), std::memory_order_relaxed);
    retired_.push_back(std::move(ring));
  }

  ws_deque(const ws_deque&) = delete;
  ws_deque& operator=(const ws_deque&) = delete;

  /// Owner-only: pushes an element at the bottom.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > buf->capacity - 1) {
      buf = grow(buf, t, b);
    }
    buf->put(b, value);
    std::atomic_thread_fence(std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  /// Owner-only: pops the most recently pushed element, LIFO.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    std::optional<T> result;
    if (t <= b) {
      result = buf->get(b);
      if (t == b) {
        // Last element: race with thieves via CAS on top.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          result.reset();  // a thief got it
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
    } else {
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return result;
  }

  /// Thief: steals the oldest element, FIFO. May spuriously return nullopt
  /// under contention (caller loops or moves to another victim).
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      buffer* buf = buffer_.load(std::memory_order_acquire);
      T value = buf->get(t);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return std::nullopt;
      }
      return value;
    }
    return std::nullopt;
  }

  /// Approximate size; exact only when quiescent.
  std::int64_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct buffer {
    explicit buffer(std::int64_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<T>[]>(cap)) {}

    T get(std::int64_t i) const {
      return slots[i & mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      slots[i & mask].store(v, std::memory_order_relaxed);
    }

    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  buffer* grow(buffer* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    buffer* raw = bigger.get();
    buffer_.store(raw, std::memory_order_release);
    // The old buffer stays alive until destruction: concurrent thieves may
    // still hold a pointer to it.
    retired_.push_back(std::move(bigger));
    return raw;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<buffer>> retired_;  // owner-only mutation
};

}  // namespace futrace
