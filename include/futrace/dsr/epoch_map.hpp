#pragma once

/// \file epoch_map.hpp
/// Runtime-id <-> dense-index translation shared by the reachability graph
/// and the race detector across epoch compactions (service mode, DESIGN.md
/// §12). Runtime task ids are assigned once per execution and never reused;
/// a compaction retires the ids of finalized tasks and renumbers the
/// survivors into a dense prefix:
///
///   [0, kept.size())   one slot per surviving (live) task, sorted by id
///   kept.size()        the tombstone slot (stand-in for every retired id)
///   kept.size()+1 ...  tasks created after the compaction, in id order
///
/// Before the first compaction the map is the identity, so the pre-service
/// fast path pays nothing but a branch.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace futrace::dsr {

/// Dense task identifier; tasks are numbered in spawn (preorder) order.
/// Post-compaction this remains the *runtime* id — the external name of a
/// task — while storage indices are a separate, reused space.
using task_id = std::uint32_t;

inline constexpr task_id k_invalid_task = 0xFFFFFFFFu;

class epoch_id_map {
 public:
  /// False until the first compact(); the map is then the identity.
  bool compacted() const noexcept { return compacted_; }

  std::size_t kept_count() const noexcept { return kept_.size(); }

  /// Storage index of the tombstone slot (only meaningful once compacted).
  task_id tombstone_index() const noexcept {
    return static_cast<task_id>(kept_.size());
  }

  /// First storage index handed to tasks created after the compaction.
  task_id first_new_index() const noexcept {
    return compacted_ ? static_cast<task_id>(kept_.size() + 1) : 0;
  }

  /// Runtime ids at or above this value postdate the last compaction.
  task_id id_base() const noexcept { return base_; }

  const std::vector<task_id>& kept() const noexcept { return kept_; }

  /// Runtime id -> storage index; k_invalid_task if the id was retired.
  task_id to_index(task_id id) const noexcept {
    if (!compacted_) return id;
    if (id >= base_) {
      return static_cast<task_id>(id - base_ + kept_.size() + 1);
    }
    const auto it = std::lower_bound(kept_.begin(), kept_.end(), id);
    if (it != kept_.end() && *it == id) {
      return static_cast<task_id>(it - kept_.begin());
    }
    return k_invalid_task;
  }

  /// Storage index -> runtime id; k_invalid_task for the tombstone slot.
  task_id to_id(task_id index) const noexcept {
    if (!compacted_) return index;
    const auto k = static_cast<task_id>(kept_.size());
    if (index < k) return kept_[index];
    if (index == k) return k_invalid_task;
    return static_cast<task_id>(index - k - 1 + base_);
  }

  /// Installs a new mapping: `kept_sorted` are the surviving runtime ids in
  /// ascending order; every other id below `next_id` is retired. Ids
  /// assigned from `next_id` on map past the tombstone slot.
  void compact(std::vector<task_id> kept_sorted, task_id next_id) {
    kept_ = std::move(kept_sorted);
    base_ = next_id;
    compacted_ = true;
  }

 private:
  std::vector<task_id> kept_;
  task_id base_ = 0;
  bool compacted_ = false;
};

}  // namespace futrace::dsr
