#pragma once

/// \file labels.hpp
/// Interval labels for the dynamic spawn tree (paper §4.1, "Interval encoding
/// of spawn tree"). Every task receives a preorder value when it is spawned
/// and a *temporary* postorder value counting down from MAXINT; the final
/// postorder value is assigned when the task terminates. With this scheme the
/// ancestor relation in the spawn tree is exactly interval subsumption, even
/// while the tree is still unfolding:
///
///   ancestor(x, y)  ⟺  x.pre ≤ y.pre  ∧  y.post ≤ x.post
///
/// Live tasks form a root-to-cursor chain in a depth-first execution, so the
/// temporary values MAXINT, MAXINT-1, ... strictly decrease with depth and
/// exceed every final postorder value drawn from the (much smaller) dfid
/// counter. Algorithm 3 increments the temporary counter back on termination,
/// recycling temporary ids as the DFS stack pops.

#include <cstdint>
#include <limits>

#include "futrace/support/assert.hpp"

namespace futrace::dsr {

/// A [pre, post] interval from the spawn-tree numbering.
struct interval_label {
  std::uint64_t pre = 0;
  std::uint64_t post = 0;

  /// True iff this label's interval contains `other`'s (i.e. the task owning
  /// this label is an ancestor-or-self of the task owning `other`).
  constexpr bool subsumes(const interval_label& other) const noexcept {
    return pre <= other.pre && other.post <= post;
  }

  friend constexpr bool operator==(const interval_label&,
                                   const interval_label&) = default;
};

/// Allocates interval labels on the fly during a depth-first execution
/// (Algorithms 1–3 of the paper).
class label_allocator {
 public:
  /// Called when a task is spawned: assigns the next preorder value and a
  /// temporary postorder value.
  interval_label on_spawn() {
    FUTRACE_CHECK_MSG(dfid_ < tmpid_,
                      "label space exhausted: dfid collided with tmpid");
    interval_label label{dfid_, tmpid_};
    ++dfid_;
    --tmpid_;
    return label;
  }

  /// Called when a task terminates: returns the final postorder value and
  /// recycles one temporary id.
  std::uint64_t on_terminate() {
    const std::uint64_t post = dfid_;
    ++dfid_;
    ++tmpid_;
    FUTRACE_DCHECK(tmpid_ <= k_max_tmpid);
    return post;
  }

  /// Number of pre/post ids handed out so far (diagnostics).
  std::uint64_t ids_assigned() const noexcept { return dfid_; }

  /// Depth of the live-task chain implied by outstanding temporary ids.
  std::uint64_t live_depth() const noexcept { return k_max_tmpid - tmpid_; }

 private:
  static constexpr std::uint64_t k_max_tmpid =
      std::numeric_limits<std::uint64_t>::max();

  std::uint64_t dfid_ = 0;        // shared pre/post counter, counting up
  std::uint64_t tmpid_ = k_max_tmpid;  // temporary postorder, counting down
};

}  // namespace futrace::dsr
