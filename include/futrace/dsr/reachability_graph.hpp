#pragma once

/// \file reachability_graph.hpp
/// The dynamic task reachability graph (paper §4.1, Definition 1): the
/// compact, task-level encoding of computation-graph reachability that the
/// race detector queries on every shadow-memory check.
///
/// R = (N, D, L, P, A) where
///   N — one vertex per dynamic task,
///   D — disjoint sets of tasks connected by tree-join + continue edges
///       (union-find),
///   L — interval labels from the spawn-tree pre/post numbering, one label
///       per disjoint set (the label of the set member closest to the root),
///   P — per-set list of non-tree join predecessors,
///   A — per-set lowest significant ancestor (LSA): the nearest ancestor task
///       whose set has at least one incoming non-tree join edge.
///
/// The structure is driven by five events from the serial depth-first
/// execution (Algorithms 1–7) and answers PRECEDE queries (Algorithm 10).
/// PRECEDE(a, b) is only meaningful when invoked while task `b` is the
/// currently executing task and `a` executed (was spawned) earlier in the
/// depth-first order — exactly the shape of every query issued by the race
/// detector (Lemmas 5 and 6 of the paper).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "futrace/dsr/epoch_map.hpp"
#include "futrace/dsr/labels.hpp"
#include "futrace/support/assert.hpp"
#include "futrace/support/small_vector.hpp"

namespace futrace::dsr {

/// Aggregate statistics, exposed for the Table 2 counters and the
/// micro/ablation benchmarks.
struct reachability_stats {
  std::uint64_t tasks_created = 0;
  std::uint64_t tree_joins = 0;      // merges (get-as-tree-join + IEF joins)
  std::uint64_t non_tree_joins = 0;  // the paper's #NTJoins
  std::uint64_t precede_queries = 0;
  std::uint64_t visit_steps = 0;      // path nodes examined across all queries
  std::uint64_t nt_edges_walked = 0;  // non-tree edges traversed
  std::uint64_t lsa_hops = 0;         // significant-ancestor chain hops
  std::uint64_t memo_hits = 0;        // PRECEDE answered from the memo table
  std::uint64_t memo_invalidations = 0;  // epoch bumps (switch/merge/nt-edge)
  std::uint64_t epoch_compactions = 0;   // successful try_compact() passes
  std::uint64_t tasks_retired = 0;       // vertices freed by compaction

  // -- PRECEDE-backend comparison counters (precede_backend.hpp) -------------
  // Kept semantically comparable across the graph/depa/vc backends so one
  // ablation artifact can rank them: bytes of ordering labels held, label
  // comparisons performed (interval subsumptions / path-prefix tests / clock
  // bit tests), the longest single label in bytes, and how many queries fell
  // through to a bounded frontier search (always 0 for vc, which never
  // searches).
  std::uint64_t label_bytes = 0;
  std::uint64_t label_comparisons = 0;
  std::uint64_t max_label_len = 0;
  std::uint64_t frontier_searches = 0;
};

/// Everything a race report needs to justify a PRECEDE verdict by hand
/// against the paper's Figure semantics: both tasks' own spawn-tree
/// intervals and set intervals at query time, whether a positive verdict
/// came from interval subsumption alone, and the non-tree join structure
/// the search touched — the edge chain that established reachability, or,
/// for a negative verdict (a race), the predecessor frontier that was
/// searched and failed.
struct precede_explanation {
  bool reachable = false;
  bool by_subsumption = false;  // positive from label subsumption, no walk
  interval_label a_label;       // a's own [pre,post] at query time
  interval_label b_label;       // b's own [pre,post] at query time
  bool a_terminated = false;    // false: post is a temporary id (render "*")
  bool b_terminated = false;
  interval_label a_set_label;   // interval of a's disjoint set
  interval_label b_set_label;   // interval of b's disjoint set
  /// When reachable through non-tree edges: the predecessor chain walked
  /// from b toward a, ending at the task whose set answered the query.
  /// When not reachable: every non-tree predecessor examined before the
  /// search gave up, deduplicated, in first-visit order.
  std::vector<task_id> frontier;
  std::uint64_t lsa_hops = 0;  // significant-ancestor chain hops scanned
};

class reachability_graph {
 public:
  reachability_graph();

  reachability_graph(const reachability_graph&) = delete;
  reachability_graph& operator=(const reachability_graph&) = delete;
  reachability_graph(reachability_graph&&) noexcept = default;
  reachability_graph& operator=(reachability_graph&&) noexcept = default;

  /// Caps the number of task vertices; 0 means unlimited. The graph never
  /// refuses a create_task itself — the owning detector checks at_capacity()
  /// before each spawn and degrades (stops tracking) instead of growing.
  void set_max_tasks(std::size_t n) noexcept { max_tasks_ = n; }

  /// True once the vertex count has reached the configured cap.
  bool at_capacity() const noexcept {
    return max_tasks_ != 0 && nodes_.size() >= max_tasks_;
  }

  /// Algorithm 1: creates the root (main) task. Must be the first call.
  task_id create_root();

  /// Algorithm 2: task `parent` spawns a new task. Returns the child's id.
  task_id create_task(task_id parent);

  /// Algorithm 3: task `t` terminated; finalize its set's postorder value.
  void on_terminate(task_id t);

  /// Algorithm 4: task `waiter` performed get() on completed task `target`.
  /// Returns true if the join was a tree join (sets merged), false if a
  /// non-tree join edge was recorded.
  bool on_get(task_id waiter, task_id target);

  /// Algorithm 6 (one iteration): at the end of a finish owned by `owner`,
  /// task `joined` (whose IEF just ended) merges into the owner's set.
  void on_finish_join(task_id owner, task_id joined);

  /// Algorithm 10: true iff every step of `a` that has already executed must
  /// precede the current step of `b`. `a == k_invalid_task` (no previous
  /// writer) returns true. Non-const: advances the query epoch and applies
  /// path compression.
  bool precedes(task_id a, task_id b);

  /// Re-runs PRECEDE(a, b) purely for diagnosis: the same traversal as
  /// precedes() (Algorithm 10), but records the structure it searched and
  /// touches neither the stats counters nor the memo table — calling it on
  /// the cold race-report path cannot perturb Table-2 counters or cached
  /// verdicts. Still non-const: find() keeps applying path halving.
  precede_explanation explain(task_id a, task_id b);

  /// Enables/disables PRECEDE memoization (on by default). Positive
  /// verdicts are cached per (representative-of-a, querying-task) and
  /// invalidated by the only events that can change a cached answer's
  /// meaning: a task switch (the key's b changed), a set union (the
  /// representative index may now stand for a larger set), or a non-tree
  /// edge insertion (conservative; new edges only add ordering). Negative
  /// verdicts are never cached — they can flip as the graph grows.
  void set_memo_enabled(bool enabled) noexcept { memo_enabled_ = enabled; }

  // -- Epoch compaction (service mode, DESIGN.md §12) ------------------------

  /// Attempts a quiescent-point compaction. `live` are the runtime ids of
  /// every non-terminated task (the root continuation chain at a spawn whose
  /// parent is the chain tip). Quiescence holds iff every vertex belongs to
  /// a set containing a live task — then every retired task's set label
  /// subsumes all future labels, so retired ids can be answered without
  /// their vertices. On success, retires all finalized vertices, installs
  /// run-length maps answering on_get/on_finish_join for retired ids, and
  /// returns true; otherwise leaves the graph untouched and returns false.
  ///
  /// Verdicts and the paper counters (tasks, #NTJoins, PRECEDE queries) are
  /// bit-identical with and without compaction; traversal diagnostics
  /// (visit_steps, lsa_hops, nt_edges_walked, memo_hits) may diverge.
  bool try_compact(std::span<const task_id> live);

  /// Translation installed by try_compact (identity before the first one).
  const epoch_id_map& id_map() const noexcept { return map_; }

  // -- Introspection (tests, benchmarks, DOT dumps) --------------------------

  /// Current vertex count: total tasks created minus retired vertices.
  std::size_t task_count() const noexcept { return nodes_.size(); }
  bool same_set(task_id a, task_id b) { return find(idx(a)) == find(idx(b)); }
  interval_label set_label(task_id t) { return nodes_[find(idx(t))].label; }
  task_id spawn_parent(task_id t) const {
    const task_id p = nodes_[idx(t)].spawn_parent;
    return p == k_invalid_task ? k_invalid_task : map_.to_id(p);
  }
  /// Retired tasks are by definition terminated.
  bool terminated(task_id t) const {
    const task_id i = map_.to_index(t);
    return i == k_invalid_task || nodes_[i].terminated;
  }

  /// The set's lowest significant ancestor, or k_invalid_task.
  task_id set_lsa(task_id t) {
    const task_id l = nodes_[find(idx(t))].lsa;
    return l == k_invalid_task ? k_invalid_task : map_.to_id(l);
  }

  /// Copy of the set's non-tree predecessor list (k_invalid_task entries
  /// stand for predecessors retired by compaction).
  std::vector<task_id> set_non_tree_predecessors(task_id t);

  /// True iff `ancestor`'s interval subsumes `descendant`'s in the spawn
  /// tree (uses per-task labels, not set labels).
  bool is_spawn_ancestor(task_id ancestor, task_id descendant) const {
    return nodes_[idx(ancestor)].own_label.subsumes(
        nodes_[idx(descendant)].own_label);
  }

  const reachability_stats& stats() const noexcept { return stats_; }

  /// Approximate heap footprint in bytes (for the baseline-comparison bench).
  std::size_t memory_bytes() const;

  /// GraphViz rendering of the reachability graph's current state: one node
  /// per disjoint set (labelled with its interval and members), non-tree
  /// predecessor edges, and dashed LSA pointers — the paper's Fig. 3 view.
  std::string to_dot();

 private:
  struct node {
    // Immutable spawn-tree facts.
    task_id spawn_parent = k_invalid_task;
    interval_label own_label;  // the task's own label, never updated by merges
    bool terminated = false;

    std::uint32_t uf_size = 1;  // union-find size, valid at representatives

    // Set metadata; authoritative only at the representative.
    interval_label label;
    // Non-tree predecessors. Inline capacity sized from the Table 2
    // workload profile: stencil consumers hold up to 5 (Jacobi tile joins
    // its own tile + 4 neighbours, Smith-Waterman 3, Strassen combine 4),
    // and set merges concatenate two such lists transiently; 6 keeps the
    // common fan-ins off the heap (see bench/micro_dsr BM_PrecedeNtFanIn).
    support::small_vector<task_id, 6> nt;
    task_id lsa = k_invalid_task;

    // Query epoch stamps (avoid revisits inside one PRECEDE call).
    std::uint64_t path_epoch = 0;
    std::uint64_t lsa_scan_epoch = 0;
  };

  task_id find(task_id t);
  void merge(task_id ancestor_side, task_id descendant_side);
  bool visit(task_id a, task_id ra, task_id start);

  /// Runtime id -> storage index; the id must not be retired.
  task_id idx(task_id id) const {
    const task_id i = map_.to_index(id);
    FUTRACE_DCHECK(i != k_invalid_task);
    return i;
  }

  /// Storage index of the set a retired runtime id was merged into at its
  /// retirement (resolved through the current union-find on return).
  task_id retired_rep(task_id id);
  /// Same, for the retired id's spawn parent's set.
  task_id retired_parent_rep(task_id id);

  static task_id run_lookup(const std::vector<std::pair<task_id, task_id>>& m,
                            task_id id);

  // -- PRECEDE memo (direct-mapped, positive verdicts only) ------------------

  static constexpr std::size_t k_memo_slots = 1024;  // power of two

  struct memo_entry {
    task_id rep = k_invalid_task;
    std::uint64_t epoch = 0;
  };

  void memo_invalidate() {
    ++memo_epoch_;
    ++stats_.memo_invalidations;
  }

  void memo_store(task_id rep) {
    memo_[rep & (k_memo_slots - 1)] = memo_entry{rep, memo_epoch_};
  }

  // Union-find parent links live in their own dense array so find() touches
  // 4 bytes per hop instead of a full node (every PRECEDE query starts with
  // one or two finds; this is the hottest pointer chase in the detector).
  std::vector<task_id> uf_parent_;
  std::vector<node> nodes_;
  label_allocator labels_;
  epoch_id_map map_;
  task_id next_id_ = 0;  // next runtime id (monotone; survives compaction)
  // Run-length maps for retired ids, rebuilt (and re-collapsed) at each
  // compaction: entry (first_id, live_id) covers runtime ids from first_id
  // up to the next entry. Values are runtime ids of live chain tasks whose
  // set the retired id (resp. its spawn parent) had merged into.
  std::vector<std::pair<task_id, task_id>> retired_set_of_;
  std::vector<std::pair<task_id, task_id>> retired_parent_set_of_;
  std::uint64_t query_epoch_ = 0;
  std::size_t max_tasks_ = 0;  // 0 = unlimited
  reachability_stats stats_;
  std::vector<memo_entry> memo_;
  task_id memo_task_ = k_invalid_task;  // the b the memo is valid for
  std::uint64_t memo_epoch_ = 1;
  bool memo_enabled_ = true;
};

}  // namespace futrace::dsr
