#pragma once

/// \file precede_backend.hpp
/// Pluggable PRECEDE query backends (options::precede_backend /
/// --precede-backend={graph,depa,vc}).
///
/// Every backend shares the paper's reachability graph as the structural
/// core — Algorithm 4's tree/non-tree join classification, the retirement
/// maps, and explain() provenance all live there, which is what keeps
/// verdicts, race reports, and the paper counters (#NTJoins,
/// PrecedeQueries) bit-identical across backends. What a backend owns is
/// the *answer path* of the hot PRECEDE(a, b) query:
///
///   graph — delegates to reachability_graph::precedes verbatim (interval
///           subsumption + bounded frontier/LSA search + rep-keyed memo).
///   depa  — DePa-style fork-path labels (depa_labels.hpp) answer live
///           spawn-ancestor queries in O(min-label-length), and a
///           join-frontier overlay — an anchored union-find over the
///           paper's non-tree future edges — answers transitively joined
///           chains in O(α); everything else falls back to the graph
///           search. Labels are maintained at spawn/finish/get/put (a put
///           splits the fulfiller into a continuation child, which is just
///           another spawn) and freed at epoch retirement.
///   vc    — the vector-clock baseline promoted from vs_baselines: one
///           happens-before bitset per task, merged at spawn/get/finish;
///           queries are one bit test. The O(#tasks²) space cost is the
///           point of running it under identical instrumentation.
///
/// The base class owns the query counter (so PrecedeQueries is counted
/// identically regardless of backend) and a backend-agnostic positive memo
/// keyed on memo_key(a) — a key the backend promises is *stable*: for the
/// depa and vc backends a cached positive stays valid across set unions and
/// non-tree edge insertions (reachability to a fixed, still-running b only
/// grows), so the memo is invalidated only by a task switch or an epoch
/// compaction, unlike the graph's internal rep-keyed memo which every
/// union invalidates.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "futrace/dsr/reachability_graph.hpp"

namespace futrace::dsr {

enum class backend_kind : std::uint8_t { graph, depa, vector_clock };

inline const char* backend_kind_name(backend_kind k) noexcept {
  switch (k) {
    case backend_kind::graph:
      return "graph";
    case backend_kind::depa:
      return "depa";
    case backend_kind::vector_clock:
      return "vc";
  }
  return "?";
}

/// Parses "graph" / "depa" / "vc" (also "vector_clock"). Returns false on
/// anything else; *out is untouched then.
bool parse_backend_kind(std::string_view name, backend_kind* out) noexcept;

class precede_backend {
 public:
  explicit precede_backend(reachability_graph& graph) : graph_(graph) {}
  virtual ~precede_backend() = default;

  precede_backend(const precede_backend&) = delete;
  precede_backend& operator=(const precede_backend&) = delete;

  virtual backend_kind kind() const noexcept = 0;

  // -- structural event hooks (called by the detector after the graph event)
  virtual void on_root_created(task_id root) { (void)root; }
  /// `continuation` marks a promise-put split: the child is the parent's
  /// continuation identity. The graph does NOT order the (terminating)
  /// pre-split identity before its continuation until an explicit get edge
  /// appears, so backends must not infer ordering from this spawn edge the
  /// way they may for ordinary spawns (see the vc backend's taint bit).
  virtual void on_task_created(task_id parent, task_id child,
                               bool continuation) {
    (void)parent;
    (void)child;
    (void)continuation;
  }
  virtual void on_terminated(task_id t) { (void)t; }
  /// After graph.on_get(waiter, target); `tree_join` is its return value.
  virtual void on_get_joined(task_id waiter, task_id target, bool tree_join) {
    (void)waiter;
    (void)target;
    (void)tree_join;
  }
  virtual void on_finish_joined(task_id owner, task_id joined) {
    (void)owner;
    (void)joined;
  }
  /// After a successful graph.try_compact(): retire dead labels/clocks and
  /// re-key anything bound to storage indices.
  virtual void on_compacted() {}

  /// Algorithm 10 with this backend's answer path. Counts one query, then
  /// consults the backend-agnostic memo (if this backend opted in) before
  /// the virtual query. Queries always have b = the currently executing
  /// task, exactly like reachability_graph::precedes.
  bool precedes(task_id a, task_id b) {
    ++queries_;
    if (a == k_invalid_task) return true;
    if (use_memo_ && memo_enabled_) {
      if (b != memo_task_) {
        memo_task_ = b;
        ++memo_epoch_;
      }
      const std::uint64_t key = memo_key(a);
      if (key != k_no_memo_key) {
        memo_entry& e = memo_[key & (k_memo_slots - 1)];
        const std::uint64_t stamp = mutation_stamp();
        if (e.key == key && e.epoch == memo_epoch_ && e.stamp == stamp) {
          ++memo_hits_;
          return true;
        }
        if (query(a, b)) {
          e = memo_entry{key, memo_epoch_, stamp};
          return true;
        }
        return false;
      }
    }
    return query(a, b);
  }

  /// Mirrors options::enable_fastpath for the backend-level memo (the graph
  /// backend's internal memo is switched separately on the graph itself).
  void set_memo_enabled(bool enabled) noexcept { memo_enabled_ = enabled; }

  /// Folds this backend's query-layer counters into the graph's stats:
  /// overwrites precede_queries with the base count (identical across
  /// backends by construction), adds memo hits, and fills the
  /// backend-comparable label counters (label_bytes, label_comparisons,
  /// max_label_len, frontier_searches).
  virtual void merge_stats(reachability_stats& s) const {
    s.precede_queries = queries_;
    s.memo_hits += memo_hits_;
  }

  /// Approximate heap footprint of backend-owned state (labels, clocks,
  /// overlay), excluding the shared graph.
  virtual std::size_t memory_bytes() const { return 0; }

  std::uint64_t queries() const noexcept { return queries_; }
  std::uint64_t memo_hit_count() const noexcept { return memo_hits_; }

 protected:
  /// A stable memo key for vertex `a`, or k_no_memo_key to bypass the memo
  /// for this query. "Stable" means: while the same b keeps executing and
  /// mutation_stamp() is unchanged, a positive verdict cached under this
  /// key remains true — the backend's contract, exercised by the
  /// memo-after-union regression tests.
  virtual std::uint64_t memo_key(task_id a) {
    (void)a;
    return k_no_memo_key;
  }

  /// Bumps whenever cached positives could be invalidated wholesale (for
  /// depa/vc: epoch compactions only — unions and nt-edge insertions keep
  /// positives valid for a fixed live b).
  virtual std::uint64_t mutation_stamp() const { return 0; }

  /// The backend's verdict for PRECEDE(a, b); `a` is neither k_invalid_task
  /// nor memo-answered. Must equal reachability_graph::precedes(a, b).
  virtual bool query(task_id a, task_id b) = 0;

  static constexpr std::uint64_t k_no_memo_key = ~std::uint64_t{0};

  /// Derived constructors set this to opt into the base memo.
  bool use_memo_ = false;

  reachability_graph& graph_;

 private:
  static constexpr std::size_t k_memo_slots = 1024;  // power of two

  struct memo_entry {
    std::uint64_t key = k_no_memo_key;
    std::uint64_t epoch = 0;
    std::uint64_t stamp = 0;
  };

  std::uint64_t queries_ = 0;
  std::uint64_t memo_hits_ = 0;
  memo_entry memo_[k_memo_slots];
  task_id memo_task_ = k_invalid_task;
  std::uint64_t memo_epoch_ = 1;
  bool memo_enabled_ = true;
};

/// Constructs the backend selected by `kind` over `graph`. The graph must
/// outlive the backend.
std::unique_ptr<precede_backend> make_precede_backend(backend_kind kind,
                                                      reachability_graph& graph);

}  // namespace futrace::dsr
