#pragma once

/// \file depa_labels.hpp
/// DePa-style fork-path labels (Westrick, Wang, Acar: "DePa: Simple,
/// Provably Efficient, and Practical Order Maintenance for Task
/// Parallelism"). Every task is labelled by the path of spawn ordinals from
/// the root to itself: the root's path is empty, and the k-th child of a
/// task with path P gets path P·k. Labels are immutable once assigned, so
/// maintenance is O(1) amortized per spawn (one arena append) with no
/// global renumbering, and the spawn-tree ancestor test is a pure prefix
/// comparison in O(min(|a|, |b|)) bytes:
///
///   ancestor-or-self(a, b)  ⟺  path(a) is a prefix of path(b)
///
/// Ordinals are LEB128 varints. A varint is self-delimiting, so a byte
/// prefix that ends at a component boundary is exactly a component prefix —
/// and every stored path ends at a component boundary, which makes the
/// byte-level memcmp test exact.
///
/// The store is indexed by the reachability graph's storage indices and
/// rebuilt at epoch compaction: only surviving tasks' paths are copied into
/// the fresh arena, freeing every retired task's label bytes.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "futrace/dsr/epoch_map.hpp"
#include "futrace/support/assert.hpp"

namespace futrace::dsr {

class depa_label_store {
 public:
  /// Appends the root's label (the empty path). Must be the first label.
  void add_root() {
    FUTRACE_DCHECK(paths_.empty());
    paths_.push_back(path_ref{0, 0, 0});
    kids_.push_back(0);
  }

  /// Appends the label for the next child of `parent_index`: the parent's
  /// path plus the child's spawn ordinal as one varint.
  void add_child(task_id parent_index) {
    FUTRACE_DCHECK(parent_index < paths_.size());
    const path_ref parent = paths_[parent_index];
    const std::uint32_t ordinal = kids_[parent_index]++;
    const auto offset = static_cast<std::uint32_t>(arena_.size());
    arena_.insert(arena_.end(), arena_.begin() + parent.offset,
                  arena_.begin() + parent.offset + parent.bytes);
    std::uint32_t v = ordinal;
    while (v >= 0x80) {
      arena_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    arena_.push_back(static_cast<std::uint8_t>(v));
    const auto bytes = static_cast<std::uint32_t>(arena_.size()) - offset;
    paths_.push_back(path_ref{offset, bytes, parent.depth + 1});
    kids_.push_back(0);
    if (bytes > max_bytes_) max_bytes_ = bytes;
  }

  /// True iff `a_index`'s path is a prefix of `b_index`'s — i.e. a is a
  /// spawn-tree ancestor-or-self of b. Counts one label comparison.
  bool is_prefix(task_id a_index, task_id b_index) {
    ++comparisons_;
    const path_ref& a = paths_[a_index];
    const path_ref& b = paths_[b_index];
    if (a.bytes > b.bytes) return false;
    return std::memcmp(arena_.data() + a.offset, arena_.data() + b.offset,
                       a.bytes) == 0;
  }

  /// Epoch compaction: rebuilds the store over the new dense index space.
  /// `old_index_for_new` maps each surviving slot (kept tasks in their new
  /// order, then the tombstone as k_invalid_task) to its pre-compaction
  /// index; every other label's bytes are freed with the old arena. Child
  /// ordinal counters survive so labels minted after the compaction never
  /// collide with pre-compaction siblings.
  void rebuild(const std::vector<task_id>& old_index_for_new) {
    std::vector<std::uint8_t> arena;
    std::vector<path_ref> paths;
    std::vector<std::uint32_t> kids;
    paths.reserve(old_index_for_new.size());
    kids.reserve(old_index_for_new.size());
    for (const task_id oi : old_index_for_new) {
      if (oi == k_invalid_task) {  // the tombstone slot: empty path
        paths.push_back(path_ref{0, 0, 0});
        kids.push_back(0);
        continue;
      }
      const path_ref& src = paths_[oi];
      const auto offset = static_cast<std::uint32_t>(arena.size());
      arena.insert(arena.end(), arena_.begin() + src.offset,
                   arena_.begin() + src.offset + src.bytes);
      paths.push_back(path_ref{offset, src.bytes, src.depth});
      kids.push_back(kids_[oi]);
    }
    arena_ = std::move(arena);
    paths_ = std::move(paths);
    kids_ = std::move(kids);
    arena_.shrink_to_fit();
  }

  // -- introspection (stats merging and the Appendix-A label tests) ----------

  std::size_t size() const noexcept { return paths_.size(); }
  std::uint32_t depth(task_id index) const { return paths_[index].depth; }
  std::uint32_t byte_length(task_id index) const {
    return paths_[index].bytes;
  }

  /// Decodes the path into its component ordinals (tests only; queries never
  /// decode).
  std::vector<std::uint32_t> components(task_id index) const {
    const path_ref& p = paths_[index];
    std::vector<std::uint32_t> out;
    out.reserve(p.depth);
    std::uint32_t v = 0;
    int shift = 0;
    for (std::uint32_t i = 0; i < p.bytes; ++i) {
      const std::uint8_t byte = arena_[p.offset + i];
      v |= static_cast<std::uint32_t>(byte & 0x7F) << shift;
      if (byte & 0x80) {
        shift += 7;
      } else {
        out.push_back(v);
        v = 0;
        shift = 0;
      }
    }
    return out;
  }

  std::uint64_t arena_bytes() const noexcept { return arena_.size(); }
  std::uint64_t comparisons() const noexcept { return comparisons_; }
  std::uint64_t max_label_bytes() const noexcept { return max_bytes_; }

  std::size_t memory_bytes() const noexcept {
    return arena_.capacity() +
           paths_.capacity() * sizeof(path_ref) +
           kids_.capacity() * sizeof(std::uint32_t);
  }

 private:
  struct path_ref {
    std::uint32_t offset = 0;  // into arena_
    std::uint32_t bytes = 0;
    std::uint32_t depth = 0;  // component count
  };

  std::vector<std::uint8_t> arena_;
  std::vector<path_ref> paths_;   // by storage index
  std::vector<std::uint32_t> kids_;  // next child ordinal, by storage index
  std::uint64_t comparisons_ = 0;
  std::uint64_t max_bytes_ = 0;
};

}  // namespace futrace::dsr
