#pragma once

/// \file random_program.hpp
/// Random async/finish/future program generator for property testing. A
/// generated program is a deterministic function of its configuration (the
/// serial depth-first execution order fixes the RNG consumption order), so
/// the same config replays the same program — which lets the test harness
/// run it under the paper's detector and under the brute-force oracle and
/// compare verdicts (Theorem 2).
///
/// Handle-flow discipline. The paper's precision argument (Lemma 1 / Lemma 5)
/// assumes future references reach get() sites through race-free flows: a
/// task may only hold a handle it created, received by value at its own
/// spawn, or obtained from a future it joined. The generator supports two
/// modes:
///
///  - safe_handles = true (default): handles flow exactly by those rules —
///    every body snapshots its parent's visible handles at spawn, and a
///    get() imports the handles the joined future could have returned. Under
///    this discipline the detector must match the step-level oracle
///    *per location*.
///
///  - safe_handles = false: any task may get() any already-completed future;
///    the handle travels through an *instrumented* registry slot (one shared
///    write at creation, one shared read before each get), exactly what the
///    paper's bytecode instrumentation would see for a future reference in a
///    heap cell. Illegal flows then surface as races on the registry slots,
///    preserving the program-level verdict — but the per-location guarantee
///    for the ordinary variables degrades (the detector's reachability may
///    over-order tasks joined through racy handles), which the property
///    suite checks in its weakened form.

#include <cstdint>
#include <vector>

#include "futrace/runtime/runtime.hpp"
#include "futrace/support/rng.hpp"

namespace futrace::progen {

struct progen_config {
  std::uint64_t seed = 1;

  int max_depth = 4;      // nesting depth of spawned bodies
  int min_stmts = 2;      // statements per body
  int max_stmts = 8;
  int num_vars = 8;       // shared variables
  int max_tasks = 400;    // hard cap on spawned tasks

  // Relative action weights inside a body.
  double w_read = 4.0;
  double w_write = 3.0;
  double w_range_read = 1.2;   // bulk read of a contiguous var interval
  double w_range_write = 0.9;  // bulk write of a contiguous var interval
  double w_async = 1.2;
  double w_future = 1.4;
  double w_finish = 0.8;
  double w_get = 1.8;
  double w_promise = 0.5;      // create a promise handle
  double w_put = 0.9;          // fulfill a visible unfulfilled promise
  double w_promise_get = 0.9;  // join a visible fulfilled promise

  int max_range_len = 4;  // longest generated interval (clamped to num_vars)

  bool safe_handles = true;  // see file comment; promises always flow safely
};

struct progen_stats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t range_reads = 0;
  std::uint64_t range_writes = 0;
  std::uint64_t gets = 0;
  std::uint64_t asyncs = 0;
  std::uint64_t futures = 0;
  std::uint64_t finishes = 0;
  std::uint64_t promises = 0;
  std::uint64_t puts = 0;
  std::uint64_t promise_gets = 0;
};

class random_program {
 public:
  explicit random_program(progen_config config);

  /// The main-task body; pass to runtime::run. Resets internal state first,
  /// so one object can be executed several times (e.g. once per detector).
  void operator()();

  const progen_stats& stats() const noexcept { return stats_; }

  /// Addresses of the shared variables (for mapping verdicts to var names).
  const void* var_address(int i) const { return vars_.address(i); }
  int num_vars() const { return config_.num_vars; }

 private:
  using handle_set = std::vector<std::uint32_t>;

  /// Future and promise handles a task may legally use (value flow).
  struct visible_state {
    handle_set futures;
    handle_set promises;
  };

  struct pool_entry {
    future<int> f;
    /// Handles this future could legally have returned: its visible set at
    /// completion. Imported by safe-mode getters.
    visible_state exported;
  };

  void body(int depth, visible_state& visible);
  bool pick_get_target(const visible_state& visible, std::uint32_t& out);

  progen_config config_;
  shared_array<int> vars_;
  std::vector<pool_entry> pool_;
  std::vector<promise<int>> promises_;
  shared_array<future<int>> registry_;  // instrumented handle cells (unsafe)
  support::xoshiro256 rng_;
  int tasks_spawned_ = 0;
  progen_stats stats_;
};

}  // namespace futrace::progen
