#pragma once

/// \file jacobi.hpp
/// Two-dimensional 5-point Jacobi stencil with tile-level future
/// dependencies — the paper's translation of the Kastors OpenMP
/// `depends`-clause benchmark into futures: each tile task at iteration k
/// performs get() on its own tile and its four neighbours at iteration k-1.
/// Those producers are siblings (all spawned by the main task), so every one
/// of these joins is a *non-tree* join: this workload exercises the
/// non-tree-predecessor machinery the way Table 2's Jacobi row does.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "futrace/runtime/runtime.hpp"

namespace futrace::workloads {

struct jacobi_config {
  std::size_t n = 130;      // grid edge including the fixed boundary
  std::size_t tile = 32;    // tile edge (interior is split into tiles)
  int iterations = 6;
  // Convergence monitoring: when nonzero, every tile task also writes its
  // per-iteration residual and reads its own tile's residuals from the last
  // `residual_window` iterations. Each such read is ordered only
  // transitively through the per-tile dependency chain, so it forces a
  // non-tree PRECEDE query whose hop distance ranges up to the window —
  // the deep-frontier regime `ablation_ntjoins` sweeps. 0 (default) adds
  // no accesses and leaves the workload's event stream byte-identical.
  std::size_t residual_window = 0;
  std::uint64_t seed = 77;
};

class jacobi_workload {
 public:
  explicit jacobi_workload(const jacobi_config& config);

  void operator()();

  /// Compares the final grid against an uninstrumented serial reference.
  bool verify() const;

  double checksum() const;

  std::size_t tiles_per_side() const noexcept { return tiles_; }

  const jacobi_config& config() const noexcept { return cfg_; }

 private:
  std::size_t index(std::size_t r, std::size_t c) const {
    return r * cfg_.n + c;
  }
  void fill_initial();
  std::vector<double> reference() const;

  jacobi_config cfg_;
  std::size_t tiles_;
  shared_array<double> grid_[2];
  shared_array<double> residual_;  // [iteration][tile], residual_window only
  std::vector<double> initial_;    // untimed copy for the reference run
};

}  // namespace futrace::workloads
