#pragma once

/// \file crypt.hpp
/// The JGF "Crypt" benchmark: IDEA-encrypt a byte buffer, then decrypt it,
/// with one task per small group of 8-byte blocks. With the paper's task
/// granularity (one block per task) this is the worst row of Table 2: the
/// work per task is tiny, so the per-task detector overhead dominates and
/// the slowdown climbs toward ~8×.
///
/// Variants: async-finish ("Crypt-af") and futures ("Crypt-future", handles
/// stored in instrumented shared cells and joined by the main task).

#include <cstddef>
#include <cstdint>

#include "futrace/runtime/runtime.hpp"
#include "futrace/workloads/idea.hpp"

namespace futrace::workloads {

struct crypt_config {
  std::size_t bytes = 40000;        // buffer size; rounded up to blocks of 8
  std::size_t blocks_per_task = 1;  // paper granularity: one block per task
  bool use_futures = false;
  std::uint64_t seed = 0x1DEA;
};

class crypt_workload {
 public:
  explicit crypt_workload(const crypt_config& config);

  void operator()();

  /// True iff decrypt(encrypt(plain)) == plain and ciphertext != plaintext.
  bool verify() const;

  const crypt_config& config() const noexcept { return cfg_; }

 private:
  void run_pass(const shared_array<std::uint8_t>& input,
                shared_array<std::uint8_t>& output,
                const idea_subkeys& keys);

  crypt_config cfg_;
  idea_subkeys enc_keys_;
  idea_subkeys dec_keys_;
  shared_array<std::uint8_t> plain_;
  shared_array<std::uint8_t> encrypted_;
  shared_array<std::uint8_t> decrypted_;
  shared_array<future<void>> handles_;  // future variant only
};

}  // namespace futrace::workloads
