#pragma once

/// \file idea.hpp
/// The IDEA block cipher (Lai–Massey, 1991) — the kernel of the JGF "Crypt"
/// benchmark. 64-bit blocks, 128-bit keys, 8.5 rounds over three group
/// operations: XOR, addition mod 2^16, and multiplication mod 2^16+1 with 0
/// representing 2^16. Implemented from the standard description; the
/// encrypt→decrypt round trip is the self-check of the crypt workload and a
/// dedicated unit-test suite.

#include <array>
#include <cstdint>

namespace futrace::workloads {

using idea_key = std::array<std::uint8_t, 16>;
using idea_subkeys = std::array<std::uint16_t, 52>;

/// a ⊙ b in IDEA's multiplicative group mod 65537 (0 encodes 65536).
std::uint16_t idea_mul(std::uint16_t a, std::uint16_t b);

/// Multiplicative inverse in the same group: idea_mul(x, idea_mul_inv(x)) == 1.
std::uint16_t idea_mul_inv(std::uint16_t x);

/// Expands a 128-bit user key into the 52 encryption subkeys.
idea_subkeys idea_encrypt_subkeys(const idea_key& key);

/// Derives the 52 decryption subkeys from the encryption subkeys.
idea_subkeys idea_decrypt_subkeys(const idea_subkeys& enc);

/// Transforms one 8-byte block in place using the given subkeys. Encryption
/// and decryption are the same transform under different subkeys.
void idea_crypt_block(const std::uint8_t in[8], std::uint8_t out[8],
                      const idea_subkeys& keys);

}  // namespace futrace::workloads
