#pragma once

/// \file workloads.hpp
/// Umbrella header for the Table 2 benchmark kernels.

#include "futrace/workloads/crypt.hpp"           // IWYU pragma: export
#include "futrace/workloads/idea.hpp"            // IWYU pragma: export
#include "futrace/workloads/jacobi.hpp"          // IWYU pragma: export
#include "futrace/workloads/series.hpp"          // IWYU pragma: export
#include "futrace/workloads/smith_waterman.hpp"  // IWYU pragma: export
#include "futrace/workloads/strassen.hpp"        // IWYU pragma: export
