#pragma once

/// \file strassen.hpp
/// Strassen matrix multiplication with future tasks — the paper's
/// translation of the Kastors OpenMP `depends` benchmark. At each recursion
/// level the seven products M1..M7 run as future tasks; four combine tasks
/// then get() the products they need (sibling joins — non-tree) and assemble
/// the result quadrants; the parent joins the combiners (tree joins).
///
/// All matrix storage lives in instrumented shared arrays allocated from a
/// never-freed pool: the shadow memory holds references to locations for the
/// whole execution (the paper's Java implementation relies on GC for the
/// same property), so addresses must not be recycled mid-run.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "futrace/runtime/runtime.hpp"

namespace futrace::workloads {

struct strassen_config {
  std::size_t n = 128;      // matrix edge; power of two
  std::size_t cutoff = 32;  // naive-multiply threshold; power of two
  std::uint64_t seed = 0x57;
};

class strassen_workload {
 public:
  explicit strassen_workload(const strassen_config& config);

  void operator()();

  /// Compares C = A·B against an uninstrumented naive reference.
  bool verify() const;

  const strassen_config& config() const noexcept { return cfg_; }

 private:
  /// A square matrix backed by a pool-owned shared array.
  struct mat {
    shared_array<double>* cells = nullptr;
    std::size_t n = 0;
  };

  mat alloc(std::size_t n);
  void multiply(mat a, mat b, mat c);
  void multiply_naive(mat a, mat b, mat c);

  strassen_config cfg_;
  std::vector<double> input_a_;  // untimed copies for the reference check
  std::vector<double> input_b_;
  mat a_, b_, c_;
  std::vector<std::unique_ptr<shared_array<double>>> pool_;
  std::mutex pool_mutex_;  // the parallel engine allocates concurrently
};

}  // namespace futrace::workloads
