#pragma once

/// \file smith_waterman.hpp
/// Smith–Waterman local sequence alignment with a tiled wavefront of future
/// tasks (the COMP322-style benchmark of Table 2): tile (i,j) performs get()
/// on tiles (i-1,j), (i,j-1) and (i-1,j-1) — all siblings, hence non-tree
/// joins — then fills its block of the DP matrix.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "futrace/runtime/runtime.hpp"

namespace futrace::workloads {

struct sw_config {
  std::size_t rows = 400;  // length of sequence A
  std::size_t cols = 400;  // length of sequence B
  std::size_t tile = 40;   // tile edge
  int match = 2;
  int mismatch = -1;
  int gap = -1;
  std::uint64_t seed = 0xA11C;
};

class sw_workload {
 public:
  explicit sw_workload(const sw_config& config);

  void operator()();

  /// Compares the DP matrix and best score against a serial reference.
  bool verify() const;

  /// The best local-alignment score found.
  int best_score() const noexcept { return best_; }

  const sw_config& config() const noexcept { return cfg_; }

 private:
  std::size_t index(std::size_t r, std::size_t c) const {
    return r * (cfg_.cols + 1) + c;
  }
  int score(std::uint8_t a, std::uint8_t b) const {
    return a == b ? cfg_.match : cfg_.mismatch;
  }
  std::vector<int> reference() const;

  sw_config cfg_;
  std::vector<std::uint8_t> seq_a_;  // untimed inputs
  std::vector<std::uint8_t> seq_b_;
  shared_array<int> h_;  // (rows+1) × (cols+1) DP matrix
  int best_ = 0;
};

}  // namespace futrace::workloads
