#pragma once

/// \file series.hpp
/// Fourier coefficient analysis (the JGF "Series" benchmark): computes the
/// first N Fourier coefficient pairs of f(x) = (x+1)^x on [0,2] by trapezoid
/// integration. One task per coefficient pair — the embarrassingly parallel
/// row of Table 2 (expected slowdown ≈ 1.0×: work per task dominates the
/// detector overhead).
///
/// Two variants, as in the paper:
///  - async-finish ("Series-af"): a finish over one async per pair.
///  - futures ("Series-future"): one future per pair, handles stored in an
///    *instrumented* shared array and joined by the main task. The handle
///    store/load traffic reproduces the paper's observation that the future
///    variant performs ≥ 2 extra shared-memory accesses per task.

#include <cstddef>

#include "futrace/runtime/runtime.hpp"

namespace futrace::workloads {

struct series_config {
  std::size_t coefficients = 1000;  // pairs beyond a_0
  int integration_points = 100;     // trapezoid sample count per coefficient
  bool use_futures = false;
};

class series_workload {
 public:
  explicit series_workload(const series_config& config);

  /// The program body; run inside runtime::run (any execution mode).
  void operator()();

  /// Spot-checks a handful of coefficients against direct evaluation.
  bool verify() const;

  /// Order-independent digest of all coefficients (for cross-mode equality).
  double checksum() const;

  const series_config& config() const noexcept { return cfg_; }

 private:
  double coefficient(std::size_t i, bool sine) const;

  series_config cfg_;
  shared_array<double> a_;
  shared_array<double> b_;
  shared_array<future<void>> handles_;  // future variant only
};

}  // namespace futrace::workloads
