#pragma once

/// \file metrics.hpp
/// Central, namespaced metrics registry: one place every engine registers
/// its counters/gauges into (detector, shadow tiers, reachability graph,
/// pipeline rings/workers, fault injector, trace emitter), and one JSON
/// schema every consumer reads (table2 / vs_baselines / ablation_ntjoins
/// rows, `tools/bench_diff`, `tools/fault_soak`).
///
/// Two registration styles:
///  - *sources*: pull-model callbacks sampled at snapshot() time. Engines
///    keep their cheap single-writer struct counters on the hot path; the
///    registry flattens them into "namespace/key" entries on demand. The
///    `add_*_source` adapters below define the canonical key set per
///    engine — the same keys, in the same order, as the checked-in
///    BENCH_*.json baselines, so registry snapshots and bench rows are
///    bit-identical.
///  - *owned counters*: lock-free sharded counters for metrics produced by
///    concurrent writers with no natural owner (e.g. trace drops). Adds
///    touch one cache-line-private shard; snapshot() sums the shards.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "futrace/detect/pipeline.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/detect/shadow_memory.hpp"
#include "futrace/dsr/reachability_graph.hpp"
#include "futrace/inject/fault_injector.hpp"
#include "futrace/support/json.hpp"

namespace futrace::obs {

class trace_session;

/// One named scalar in a snapshot. Counters are monotonic sums; gauges are
/// instantaneous values (rates, percentages, booleans-as-0/1).
struct metric {
  enum class kind : std::uint8_t { counter, gauge };
  double value = 0.0;
  kind k = kind::counter;
};

/// A flattened, insertion-ordered view of every registered metric, keyed by
/// (namespace, key). to_json() nests namespaces into sub-objects — exactly
/// the layout the bench rows and bench_diff consume.
class metrics_snapshot {
 public:
  struct entry {
    std::string ns;
    std::string key;
    metric m;
  };

  void counter(std::string ns, std::string key, double v) {
    entries_.push_back({std::move(ns), std::move(key),
                        metric{v, metric::kind::counter}});
  }
  void gauge(std::string ns, std::string key, double v) {
    entries_.push_back(
        {std::move(ns), std::move(key), metric{v, metric::kind::gauge}});
  }

  const std::vector<entry>& entries() const noexcept { return entries_; }

  bool has(std::string_view ns, std::string_view key) const noexcept;
  /// The metric's value, or 0.0 when absent (pair with has() when 0 is a
  /// meaningful reading).
  double value(std::string_view ns, std::string_view key) const noexcept;

  /// {"ns": {"key": value, ...}, ...} in registration order.
  support::json to_json() const;

 private:
  std::vector<entry> entries_;
};

/// Lock-free counter for concurrent producers: adds touch a per-thread
/// shard (cache-line padded), sum() folds the shards. Wait-free on the add
/// path; sum is a racy-but-monotonic read, exact once writers quiesce.
class sharded_counter {
 public:
  static constexpr unsigned k_shards = 16;

  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_hint() % k_shards].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    std::uint64_t total = 0;
    for (const shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Stable per-thread shard index (thread-local, assigned on first use).
  static unsigned shard_hint() noexcept;

 private:
  struct alignas(64) shard {
    std::atomic<std::uint64_t> v{0};
  };
  shard shards_[k_shards];
};

class metrics_registry {
 public:
  using source_fn = std::function<void(metrics_snapshot&)>;

  /// Registers (or replaces) the pull source `name`. The callback runs on
  /// every snapshot(); it must outlive the registry or be removed first.
  void add_source(std::string name, source_fn fn);
  bool remove_source(std::string_view name);
  std::size_t source_count() const noexcept { return sources_.size(); }

  /// An owned sharded counter reported as `ns`/`key` in every snapshot.
  /// Stable address for the registry's lifetime.
  sharded_counter& owned_counter(std::string ns, std::string key);

  metrics_snapshot snapshot() const;
  support::json to_json() const { return snapshot().to_json(); }

 private:
  struct source {
    std::string name;
    source_fn fn;
  };
  struct owned {
    std::string ns;
    std::string key;
    std::unique_ptr<sharded_counter> c;
  };
  std::vector<source> sources_;
  std::vector<owned> owned_;
};

// ---------------------------------------------------------------- schema

/// The paper's Table-2 counters: every metrics schema must carry them
/// (bench_diff gates on a missing one), and — minus the query/hit
/// diagnostics, which legitimately vary with the engine tier — they are
/// exact across inline / fastpath / pipelined runs.
inline constexpr const char* k_paper_counter_keys[] = {
    "tasks",     "non_tree_joins", "shared_mem_accesses",
    "reads",     "writes",         "locations",
    "avg_readers", "races_observed", "precede_queries",
};

bool is_paper_counter(std::string_view key) noexcept;

// Fast-path hit rates (DESIGN.md §9); shared by the table renderer, the
// bench JSON emitters, and the registry source so the numbers agree.
double direct_hit_rate(const detect::detector_counters& c) noexcept;
double memo_hit_rate(const detect::detector_counters& c) noexcept;
double stamp_hit_rate(const detect::detector_counters& c) noexcept;
double range_hit_rate(const detect::detector_counters& c) noexcept;

/// Exact Table-2 row sub-objects — the canonical "counters" / "rates" /
/// "pipe" schema (same keys, same order, same values as the checked-in
/// bench baselines).
support::json counters_json(const detect::detector_counters& c);
support::json rates_json(const detect::detector_counters& c);
support::json pipe_json(const detect::pipeline_stats& p);

// ------------------------------------------------------- engine adapters
// Pull-source registration helpers. Each getter is copied into the
// registry and sampled at snapshot() time.

void add_detector_source(metrics_registry& reg,
                         std::function<detect::detector_counters()> get);
void add_pipeline_source(metrics_registry& reg,
                         std::function<detect::pipeline_stats()> get);
void add_shadow_source(metrics_registry& reg,
                       std::function<detect::shadow_stats()> get);
void add_reachability_source(metrics_registry& reg,
                             std::function<dsr::reachability_stats()> get);
void add_fault_source(metrics_registry& reg,
                      std::function<inject::fault_injector::counters()> get);
/// Samples recorded/dropped of a live trace session (ns "trace"). The
/// session must outlive the registry or be removed ("trace") first.
void add_trace_source(metrics_registry& reg, const trace_session& session);

}  // namespace futrace::obs
