#pragma once

/// \file trace.hpp
/// Low-overhead timeline tracing: a bounded binary ring of runtime +
/// detector events, exported as Chrome trace-event JSON (loadable in
/// Perfetto / chrome://tracing). One track per task (pid 1) and one per
/// checker worker (pid 2).
///
/// The emission side follows the fault-injection hook idiom
/// (inject/hooks.hpp): a single process-global atomic sink pointer, one
/// relaxed load plus a never-taken branch when tracing is off. Hooks sit
/// only on the *rare* event classes (spawn/end/finish/get/put, slab
/// materialization, race reports, pipeline stalls and takeovers) — the
/// per-access hot path is never instrumented, so a disabled trace adds no
/// measurable overhead and an enabled one stays proportional to the task
/// structure, not the access count.
///
/// Memory is bounded: the buffer is sized up front and events past the
/// capacity are counted as dropped, never allocated. The JSON export
/// reports the truncation in `otherData`.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace futrace::obs {

enum class trace_kind : std::uint8_t {
  task_begin,        // "B" on the task's track; arg0 = task_kind, arg1 = parent
  task_end,          // "E" on the task's track
  finish,            // instant; arg0 = number of tasks joined
  get,               // instant on the waiter's track; arg0 = target task
  put,               // instant on the fulfiller's track
  race,              // instant; arg0 = canonical address, arg1 = race kind
  slab_materialize,  // instant; arg0 = cells materialized from a run summary
  precede_sample,    // "C" counter track; arg0 = precede queries, arg1 = memo hits
  ring_stall,        // instant on a checker-worker track (backpressure)
  takeover,          // instant: producer took over a dead worker's shard
  worker_death,      // instant on the dead worker's track
};

/// Track namespace an event belongs to: program tasks or checker workers.
enum class trace_track : std::uint8_t { task = 0, checker = 1 };

struct trace_event {
  std::uint64_t ts_ns = 0;  // nanoseconds since the session started
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint32_t track = 0;  // task id (trace_track::task) or worker index
  trace_kind kind = trace_kind::task_begin;
  trace_track track_type = trace_track::task;
};

/// Fixed-capacity multi-producer event buffer. `record` is wait-free: one
/// fetch_add to claim a slot; claims past the capacity only bump the
/// dropped counter. Slot payloads are written without synchronization —
/// readers must not run concurrently with writers (the exporters run after
/// the traced execution has quiesced).
class trace_buffer {
 public:
  explicit trace_buffer(std::size_t capacity);

  void record(trace_kind kind, trace_track type, std::uint32_t track,
              std::uint64_t arg0, std::uint64_t arg1) noexcept;

  std::size_t capacity() const noexcept { return slots_.size(); }
  std::uint64_t recorded() const noexcept;
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// The recorded prefix, in claim order. Quiescent use only.
  std::vector<trace_event> events() const;

 private:
  std::vector<trace_event> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point start_;
};

namespace detail {
extern std::atomic<trace_buffer*> g_trace_sink;
}  // namespace detail

/// The currently installed sink, or nullptr when tracing is off.
inline trace_buffer* trace_sink() noexcept {
  return detail::g_trace_sink.load(std::memory_order_relaxed);
}

inline bool trace_enabled() noexcept { return trace_sink() != nullptr; }

/// The emission hook: a relaxed load and a never-taken branch when off.
inline void trace_emit(trace_kind kind, trace_track type, std::uint32_t track,
                       std::uint64_t arg0 = 0, std::uint64_t arg1 = 0) noexcept {
  trace_buffer* sink = trace_sink();
  if (sink != nullptr) [[unlikely]] {
    sink->record(kind, type, track, arg0, arg1);
  }
}

/// Renders the buffer as a Chrome trace-event JSON document (object
/// format: {"traceEvents": [...], "otherData": {...}}). Tasks appear as
/// pid 1 with one thread per task id; checker workers as pid 2.
std::string to_chrome_json(const trace_buffer& buf);

/// RAII tracing scope: installs a bounded buffer as the process-global
/// sink and, on destruction, restores the previous sink and writes the
/// Chrome JSON to `path` (empty path = capture only, export by hand via
/// to_json()). Sessions nest; the innermost one captures.
class trace_session {
 public:
  explicit trace_session(std::string path, std::size_t capacity = 1 << 16);
  ~trace_session();

  trace_session(const trace_session&) = delete;
  trace_session& operator=(const trace_session&) = delete;

  const trace_buffer& buffer() const noexcept { return *buf_; }
  std::uint64_t recorded() const noexcept { return buf_->recorded(); }
  std::uint64_t dropped() const noexcept { return buf_->dropped(); }
  std::string to_json() const { return to_chrome_json(*buf_); }

  /// Writes the Chrome JSON to `path`; false (with a stderr note) on I/O
  /// failure. Called automatically by the destructor when a path was given.
  bool write(const std::string& path) const;

 private:
  std::string path_;
  std::unique_ptr<trace_buffer> buf_;
  trace_buffer* previous_ = nullptr;
};

}  // namespace futrace::obs
