#pragma once

/// \file computation_graph.hpp
/// Full computation-graph recorder (paper §3). Each node is a *step*: a
/// maximal sequence of statement instances containing no task boundary, get,
/// or finish boundary. Edges are continue, spawn, and join edges (tree,
/// non-tree, and finish joins).
///
/// The race detector never builds this graph — its whole point is the compact
/// reachability encoding in futrace::dsr. The recorder exists as the *oracle*:
/// property tests replay a program through both the detector and this graph
/// and require identical per-location race verdicts (Theorem 2), and the
/// examples export DOT renderings of the paper's figures.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "futrace/support/assert.hpp"

namespace futrace::graph {

using step_id = std::uint32_t;
using task_id = std::uint32_t;

inline constexpr step_id k_invalid_step = 0xFFFFFFFFu;

enum class edge_kind : std::uint8_t {
  continuation,    // sequencing of steps within one task
  spawn,           // parent's spawning step -> child's first step
  join_tree,       // last step of task -> ancestor, via get() or finish
  join_non_tree,   // last step of task -> non-ancestor, via get()
};

const char* edge_kind_name(edge_kind kind);

struct edge {
  step_id from;
  step_id to;
  edge_kind kind;
};

class computation_graph {
 public:
  /// Creates a step belonging to `task`. Steps must be created in execution
  /// (serial depth-first) order; ids are consequently a topological order.
  step_id add_step(task_id task);

  /// Adds an edge; `from < to` is required (all computation-graph edges point
  /// forward in depth-first execution order).
  void add_edge(step_id from, step_id to, edge_kind kind);

  std::size_t step_count() const noexcept { return step_tasks_.size(); }
  std::size_t edge_count() const noexcept { return edges_.size(); }
  task_id task_of(step_id s) const { return step_tasks_[s]; }
  const std::vector<edge>& edges() const noexcept { return edges_; }

  /// True iff there is a directed path from `from` to `to` (the paper's
  /// u ≺ v). Reflexive: reachable(s, s) is true.
  bool reachable(step_id from, step_id to) const;

  /// True iff the two steps may logically execute in parallel (u ∥ v):
  /// distinct steps with no path either way.
  bool parallel(step_id u, step_id v) const {
    return u != v && !reachable(u, v) && !reachable(v, u);
  }

  /// Number of join edges of the given kind (for test assertions).
  std::size_t count_edges(edge_kind kind) const;

  /// GraphViz rendering; steps are grouped into one cluster per task.
  /// `task_names` may be empty (tasks are then labelled T0, T1, ...).
  std::string to_dot(const std::vector<std::string>& task_names = {}) const;

 private:
  std::vector<task_id> step_tasks_;
  std::vector<edge> edges_;
  std::vector<std::vector<step_id>> successors_;
  // Scratch for reachability queries; epoch stamps avoid clearing.
  mutable std::vector<std::uint64_t> visit_epoch_;
  mutable std::uint64_t epoch_ = 0;
};

}  // namespace futrace::graph
