#pragma once

/// \file graph_recorder.hpp
/// Observer that reconstructs the full computation graph (steps + edges,
/// paper §3) from a serial depth-first execution. Steps are split exactly at
/// the boundaries of Definition 1: async start/end, finish start/end, and
/// get() operations.

#include <vector>

#include "futrace/graph/computation_graph.hpp"
#include "futrace/runtime/observer.hpp"

namespace futrace::graph {

class graph_recorder : public execution_observer {
 public:
  // -- execution_observer ----------------------------------------------------
  void on_program_start(futrace::task_id root) override;
  void on_task_spawn(futrace::task_id parent, futrace::task_id child,
                     task_kind kind) override;
  void on_task_end(futrace::task_id t) override;
  void on_finish_start(futrace::task_id owner) override;
  void on_finish_end(futrace::task_id owner,
                     std::span<const futrace::task_id> joined) override;
  void on_get(futrace::task_id waiter, futrace::task_id target) override;

  // -- results ----------------------------------------------------------------
  const computation_graph& graph() const noexcept { return graph_; }

  /// The step currently open for task `t` (its last step once terminated).
  step_id current_step(futrace::task_id t) const {
    return current_step_[t];
  }

  /// The final step of a terminated task (join edges originate here).
  step_id last_step(futrace::task_id t) const { return current_step_[t]; }

  futrace::task_id spawn_parent(futrace::task_id t) const {
    return parent_[t];
  }

  task_kind kind_of(futrace::task_id t) const { return kinds_[t]; }

  /// True iff `a` is a spawn-tree ancestor of `d` (strictly; a != d).
  bool is_ancestor(futrace::task_id a, futrace::task_id d) const;

  std::size_t task_count() const noexcept { return parent_.size(); }

 private:
  /// Opens a fresh step for `t`, adding a continue edge from its previous
  /// step, and returns the new step.
  step_id advance_step(futrace::task_id t);

  computation_graph graph_;
  std::vector<step_id> current_step_;
  std::vector<futrace::task_id> parent_;
  std::vector<task_kind> kinds_;
  std::vector<futrace::task_id> task_stack_;
};

}  // namespace futrace::graph
