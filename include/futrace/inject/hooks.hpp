#pragma once

/// \file hooks.hpp
/// The runtime-facing face of fault injection. The public construct headers
/// (async/get/put) and the parallel engine call these free functions at
/// every injectable site; with no injector installed each hook is one
/// relaxed atomic load and a never-taken branch, so production executions
/// pay nothing measurable. This header is deliberately dependency-free —
/// it is included from the runtime's public headers.

#include <atomic>
#include <cstdint>

namespace futrace::inject {

class fault_injector;

namespace detail {

/// The installed injector (nullptr when fault injection is off). Installed
/// and cleared by scoped_injector (fault_injector.hpp).
extern std::atomic<fault_injector*> g_injector;

// Slow paths, defined in the inject library.
void spawn_site_slow(fault_injector& inj);  // may throw injected_fault
void get_site_slow(fault_injector& inj);    // may throw injected_fault
void put_site_slow(fault_injector& inj);    // may throw injected_fault
bool drop_put_slow(fault_injector& inj) noexcept;
void epoch_reset_slow(fault_injector& inj);  // may throw injected_fault
std::uint32_t steal_start_slow(fault_injector& inj, std::uint32_t self,
                               std::uint32_t workers,
                               std::uint32_t fallback) noexcept;
bool yield_slow(fault_injector& inj) noexcept;
int pipe_worker_slow(fault_injector& inj) noexcept;
std::uint32_t pipe_ring_full_slow(fault_injector& inj) noexcept;

}  // namespace detail

inline fault_injector* current_injector() noexcept {
  return detail::g_injector.load(std::memory_order_acquire);
}

/// Fired by async()/async_future() at the call site, inside the spawning
/// task's body. Throws injected_fault when the plan's trigger fires.
inline void spawn_site() {
  if (fault_injector* inj = current_injector()) [[unlikely]] {
    detail::spawn_site_slow(*inj);
  }
}

/// Fired by future<T>::get() and promise<T>::get().
inline void get_site() {
  if (fault_injector* inj = current_injector()) [[unlikely]] {
    detail::get_site_slow(*inj);
  }
}

/// Fired by promise<T>::put() before the engine is notified.
inline void put_site() {
  if (fault_injector* inj = current_injector()) [[unlikely]] {
    detail::put_site_slow(*inj);
  }
}

/// Fired by the race detector at a quiescent point, immediately before an
/// epoch compaction runs. Throws injected_fault when the plan's
/// epoch-reset trigger fires.
inline void epoch_reset_site() {
  if (fault_injector* inj = current_injector()) [[unlikely]] {
    detail::epoch_reset_slow(*inj);
  }
}

/// True iff this promise fulfillment should be silently lost.
inline bool drop_put_site() noexcept {
  fault_injector* inj = current_injector();
  return inj != nullptr && detail::drop_put_slow(*inj);
}

/// Steal-victim starting index for worker `self`; returns `fallback`
/// (the engine's own choice) when no perturbation is armed.
inline std::uint32_t steal_start_site(std::uint32_t self,
                                      std::uint32_t workers,
                                      std::uint32_t fallback) noexcept {
  fault_injector* inj = current_injector();
  return inj == nullptr
             ? fallback
             : detail::steal_start_slow(*inj, self, workers, fallback);
}

/// True iff the worker should yield before this help/steal attempt.
inline bool yield_site() noexcept {
  fault_injector* inj = current_injector();
  return inj != nullptr && detail::yield_slow(*inj);
}

/// Fired by a pipelined-detector checker worker before processing each
/// event. Returns inject::pipe_proceed / pipe_stall / pipe_kill.
inline int pipe_worker_site() noexcept {
  fault_injector* inj = current_injector();
  return inj == nullptr ? 0 : detail::pipe_worker_slow(*inj);
}

/// Fired by the pipelined-detector producer before each ring push; a
/// nonzero return forces that many backpressure spins even though the ring
/// has space.
inline std::uint32_t pipe_ring_full_site() noexcept {
  fault_injector* inj = current_injector();
  return inj == nullptr ? 0 : detail::pipe_ring_full_slow(*inj);
}

}  // namespace futrace::inject
