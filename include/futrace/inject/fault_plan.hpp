#pragma once

/// \file fault_plan.hpp
/// Declarative description of the faults one execution should suffer. A plan
/// is plain data: deterministic (trigger points are operation ordinals, not
/// wall-clock), serializable to/from command-line flags, and cheap to derive
/// from a seed — the fault_soak driver generates hundreds of them per run.
///
/// All `*_at` triggers are 1-based operation ordinals counted process-wide
/// by the installed fault_injector; 0 disables the trigger. In the serial
/// engines the ordinal order equals the depth-first program order, so the
/// same plan faults the same program point on every run (the determinism
/// invariant fault_soak checks). In parallel mode the ordinal is a global
/// atomic count, so *a* fault fires at the Nth operation but which task
/// performs it depends on the schedule.

#include <cstdint>
#include <string>

#include "futrace/support/flags.hpp"

namespace futrace::inject {

struct fault_plan {
  /// Seed for the schedule-perturbation randomness (victim selection,
  /// forced yields). Unrelated to the trigger ordinals below.
  std::uint64_t seed = 0;

  // -- Synthetic exceptions (injected_fault) at API sites --------------------
  std::uint64_t throw_at_spawn = 0;  // Nth async/async_future call site
  std::uint64_t throw_at_get = 0;    // Nth future/promise get() call site
  std::uint64_t throw_at_put = 0;    // Nth promise put() call site

  /// The Nth epoch-reset attempt throws just before compaction runs (the
  /// detector's quiescent-point hook; see race_detector::maybe_epoch_reset).
  /// In pipelined mode the ordinal counts attempts process-wide across the
  /// producer and every worker replica, so the throw lands in whichever
  /// replica reaches the armed attempt — a worker death during reset.
  std::uint64_t throw_at_epoch_reset = 0;

  // -- Lost synchronization --------------------------------------------------
  /// The Nth promise fulfillment is silently dropped: the value is stored
  /// but never published, so later getters see an unfulfilled promise —
  /// the paper's Appendix A deadlock path.
  std::uint64_t drop_put_at = 0;

  // -- Resource exhaustion ---------------------------------------------------
  /// The Nth gated allocation (arena block, shadow-memory cell) is denied.
  std::uint64_t fail_alloc_at = 0;
  /// After fail_alloc_at fired, additionally deny every Nth allocation.
  std::uint64_t fail_alloc_every = 0;

  // -- Schedule perturbation (parallel engine only) --------------------------
  /// Replace the engine's steal-victim starting point with a seeded
  /// pseudo-random one, exploring different steal orders.
  bool perturb_steals = false;
  /// Force a yield before every Nth help/steal attempt; 0 disables.
  std::uint32_t yield_every = 0;

  // -- Pipelined-detector faults (detect/pipeline.hpp) -----------------------
  /// Stall the checker worker about to process the Nth pipeline event (a
  /// finite sleep), backing events up into its ring so the producer hits
  /// backpressure.
  std::uint64_t pipe_stall_at = 0;
  /// Kill the checker worker about to process the Nth pipeline event: the
  /// worker exits without draining its ring; the producer must detect the
  /// death and degrade that shard to inline checking.
  std::uint64_t pipe_kill_at = 0;
  /// Starting at the Nth producer-side ring push, pretend the ring is full
  /// for pipe_ring_full_spins backpressure spins before proceeding.
  std::uint64_t pipe_ring_full_at = 0;
  std::uint32_t pipe_ring_full_spins = 0;

  /// True iff any trigger is armed.
  bool any() const noexcept {
    return throw_at_spawn != 0 || throw_at_get != 0 || throw_at_put != 0 ||
           throw_at_epoch_reset != 0 || drop_put_at != 0 ||
           fail_alloc_at != 0 || perturb_steals || yield_every != 0 ||
           pipe_stall_at != 0 || pipe_kill_at != 0 || pipe_ring_full_at != 0;
  }

  /// Human-readable one-line summary ("spawn-throw@3 yield-every=7 ...").
  std::string describe() const;
};

/// Registers the `--fault-*` flags a tool needs to accept a plan from the
/// command line, and reads them back.
void define_fault_flags(support::flag_parser& flags);
fault_plan fault_plan_from_flags(const support::flag_parser& flags);

}  // namespace futrace::inject
