#pragma once

/// \file fault_injector.hpp
/// Executes a fault_plan against a running program. One injector instance is
/// installed process-wide with scoped_injector; the runtime's construct
/// headers and the parallel engine consult it through the hooks in
/// hooks.hpp, and the support allocation gate routes through it for
/// arena/shadow-memory allocation failures.
///
/// All trigger counters are atomics, so one injector observes a parallel
/// execution coherently; in serial modes the counters advance in exactly
/// the depth-first program order, which makes every injected fault
/// reproducible from (program seed, plan) alone.

#include <atomic>
#include <cstdint>

#include "futrace/inject/fault_plan.hpp"
#include "futrace/inject/hooks.hpp"
#include "futrace/runtime/errors.hpp"

namespace futrace::inject {

/// The synthetic exception thrown at armed spawn/get/put sites. Derives from
/// futrace::runtime_error so generic handlers treat it like any runtime
/// failure, but is distinguishable for tests and the soak harness.
class injected_fault : public futrace::runtime_error {
 public:
  using runtime_error::runtime_error;
};

class fault_injector {
 public:
  explicit fault_injector(fault_plan plan) : plan_(plan) {}

  const fault_plan& plan() const noexcept { return plan_; }

  /// What actually fired, for harness assertions ("the planned fault was
  /// reached") and reporting.
  struct counters {
    std::uint64_t spawn_sites = 0;
    std::uint64_t get_sites = 0;
    std::uint64_t put_sites = 0;
    std::uint64_t epoch_reset_sites = 0;
    std::uint64_t alloc_gates = 0;
    std::uint64_t thrown_spawn = 0;
    std::uint64_t thrown_get = 0;
    std::uint64_t thrown_put = 0;
    std::uint64_t thrown_epoch_reset = 0;
    std::uint64_t dropped_puts = 0;
    std::uint64_t failed_allocs = 0;
    std::uint64_t forced_yields = 0;
    std::uint64_t perturbed_steals = 0;
    std::uint64_t pipe_stalls = 0;
    std::uint64_t pipe_kills = 0;
    std::uint64_t pipe_forced_fulls = 0;

    std::uint64_t faults_fired() const noexcept {
      return thrown_spawn + thrown_get + thrown_put + thrown_epoch_reset +
             dropped_puts + failed_allocs + pipe_stalls + pipe_kills +
             pipe_forced_fulls;
    }
  };

  counters snapshot() const noexcept;

  // -- Hook backends (called via inject::*_site) -----------------------------
  void op_spawn();  // throws injected_fault at the armed ordinal
  void op_get();
  void op_put();
  void op_epoch_reset();
  bool drop_put() noexcept;
  bool fail_alloc(std::size_t bytes) noexcept;
  std::uint32_t steal_start(std::uint32_t self, std::uint32_t workers,
                            std::uint32_t fallback) noexcept;
  bool force_yield() noexcept;
  /// Pipeline checker-worker action for the next event: pipe_proceed,
  /// pipe_stall (sleep briefly, then process), or pipe_kill (exit without
  /// draining). Ordinals count events process-wide across all workers.
  int pipe_worker_event() noexcept;
  /// Forced backpressure spins for this producer push (0 = none).
  std::uint32_t pipe_ring_full() noexcept;

 private:
  fault_plan plan_;
  std::atomic<std::uint64_t> spawn_sites_{0};
  std::atomic<std::uint64_t> get_sites_{0};
  std::atomic<std::uint64_t> put_sites_{0};
  std::atomic<std::uint64_t> epoch_reset_sites_{0};
  std::atomic<std::uint64_t> puts_seen_{0};  // drop-put trigger counter
  std::atomic<std::uint64_t> allocs_seen_{0};
  std::atomic<std::uint64_t> steal_calls_{0};
  std::atomic<std::uint64_t> thrown_spawn_{0};
  std::atomic<std::uint64_t> thrown_get_{0};
  std::atomic<std::uint64_t> thrown_put_{0};
  std::atomic<std::uint64_t> thrown_epoch_reset_{0};
  std::atomic<std::uint64_t> dropped_puts_{0};
  std::atomic<std::uint64_t> failed_allocs_{0};
  std::atomic<std::uint64_t> forced_yields_{0};
  std::atomic<std::uint64_t> perturbed_steals_{0};
  std::atomic<std::uint64_t> pipe_events_{0};  // worker-side event ordinal
  std::atomic<std::uint64_t> pipe_pushes_{0};  // producer-side push ordinal
  std::atomic<std::uint64_t> pipe_stalls_{0};
  std::atomic<std::uint64_t> pipe_kills_{0};
  std::atomic<std::uint64_t> pipe_forced_fulls_{0};
};

/// pipe_worker_event() verdicts.
inline constexpr int pipe_proceed = 0;
inline constexpr int pipe_stall = 1;
inline constexpr int pipe_kill = 2;

/// Installs `inj` as the process-wide injector (and wires the support
/// allocation gate to it) for the guard's lifetime. Not reentrant: at most
/// one injector may be installed at a time.
class scoped_injector {
 public:
  explicit scoped_injector(fault_injector& inj);
  ~scoped_injector();

  scoped_injector(const scoped_injector&) = delete;
  scoped_injector& operator=(const scoped_injector&) = delete;
};

}  // namespace futrace::inject
