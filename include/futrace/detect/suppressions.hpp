#pragma once

/// \file suppressions.hpp
/// Known-race suppression files for service mode (DESIGN.md §12), after
/// Valgrind's error-suppression machinery. A file is a sequence of blocks:
///
///   # accepted benign race in the histogram merge
///   {
///     histogram-merge
///     kind: write-write
///     first: histogram.cpp:88
///     second: histogram.cpp:*
///     addr: *
///     tier: direct
///     labels: *
///   }
///
/// The block's first line names the rule; every later line is `field:
/// pattern`. Omitted fields default to `*`. Patterns are shell-style globs
/// (`*` any run, `?` one char) matched against the provenance the PR 5
/// race witness established as stable keys:
///
///   kind    write-read | read-write | write-write
///   first   "file:line" of the earlier access site
///   second  "file:line" of the later access site
///   addr    canonical location, printf %p rendering (e.g. 0x5c3f10)
///   tier    shadow tier name at the location (direct | hashed)
///   labels  "[pre,post] || [pre,post]" set-label rendering of the witness
///           (computed lazily, only when a rule constrains it)
///
/// A suppression_set is immutable after loading and shared by reference
/// (pipelined workers all match against one set); hit counts live in each
/// detector so no synchronization is needed.

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace futrace::detect {

struct suppression_rule {
  std::string name;
  std::string kind = "*";
  std::string first = "*";
  std::string second = "*";
  std::string addr = "*";
  std::string tier = "*";
  std::string labels = "*";

  /// True when matching requires the (lazily rendered) witness labels.
  bool wants_labels() const noexcept { return labels != "*"; }
};

/// One candidate race, as the detector presents it to match(). `labels` is
/// invoked at most once, and only if a rule whose other fields all matched
/// constrains the label rendering.
struct suppression_query {
  std::string_view kind;
  std::string_view first;
  std::string_view second;
  std::string_view addr;
  std::string_view tier;
  std::function<std::string()> labels;
};

class suppression_set {
 public:
  /// Parses suppression text. On failure returns false and, when `error` is
  /// non-null, stores a "line N: what" description; previously loaded rules
  /// are left untouched.
  bool parse(std::string_view text, std::string* error);

  /// Loads and parses a file; file-system errors land in `error` too.
  bool load_file(const std::string& path, std::string* error);

  std::size_t size() const noexcept { return rules_.size(); }
  bool empty() const noexcept { return rules_.empty(); }
  const suppression_rule& rule(std::size_t i) const { return rules_[i]; }

  /// Index of the first matching rule, or -1. Rules match in file order.
  int match(const suppression_query& q) const;

  /// Shell-style glob: `*` matches any run (including empty), `?` exactly
  /// one character. Exposed for the self-check and unit tests.
  static bool glob_match(std::string_view pattern, std::string_view text);

 private:
  std::vector<suppression_rule> rules_;
};

}  // namespace futrace::detect
