#pragma once

/// \file pipeline.hpp
/// Pipelined, address-sharded race detection: overlap the instrumented
/// serial execution with race checking instead of paying the full detector
/// on the execution thread.
///
///   execution thread                      checker workers (W threads)
///   ----------------                      ---------------------------
///   run program, observe events  ──ring 0──►  worker 0: graph replica +
///   span_of + shard routing      ──ring 1──►  worker 1:   shadow shard
///   (~tens of ns per event)          ...         ...
///
/// Architecture (DESIGN.md §10): every worker owns a complete private
/// race_detector — its own reachability-graph replica and a shadow memory
/// clipped to the address chunks it owns (shard.hpp). Graph events (spawn,
/// end, finish, get, put) are broadcast to every ring; access events are
/// routed to exactly one worker by address. Because a mutation rides in the
/// same FIFO as the accesses it orders, a worker can never check an access
/// against a graph state other than the one the serial execution had — per
/// -ring FIFO order *is* the epoch barrier, with no coordinator thread and
/// no shared mutable detector state.
///
/// Determinism: per-location verdicts are exactly the inline detector's
/// (one worker sees all accesses of a location, in serial order, against
/// the correct graph), merged reports reproduce the inline report sequence
/// (workers tag reports with the serial event number; a deterministic merge
/// reorders them), and the paper-level counters of Table 2 are exact sums /
/// maxima over shards. Engine-tier diagnostics (direct/hashed/stamp hit
/// counts and the like) are layout-dependent and only comparable between
/// runs of the same configuration.
///
/// Failure model: a full ring means backpressure (the producer spins),
/// never allocation or drops. A checker worker that dies mid-run (fault
/// injection, thread-start failure) degrades the pipeline to inline
/// checking for that shard — sticky and counted, never a deadlock or a
/// lost event. options::fail_fast forces inline mode outright: the first
/// race must throw at the faulting access on the execution thread.

#include <cstdint>
#include <memory>
#include <vector>

#include "futrace/detect/race_detector.hpp"
#include "futrace/detect/shard.hpp"
#include "futrace/runtime/observer.hpp"

namespace futrace::detect {

/// Pipeline-plumbing counters (reported next to detector_counters; these
/// are timing/address-dependent diagnostics, never equality-gated across
/// configurations).
struct pipeline_stats {
  std::uint64_t workers = 0;        // checker threads actually started
  std::uint64_t ring_capacity = 0;  // slots per ring (rounded to pow2)
  std::uint64_t events = 0;         // serial observer events streamed
  std::uint64_t access_events = 0;  // subset routed by address
  /// Extra sub-events minted when a range access straddled chunk owners.
  std::uint64_t split_subevents = 0;
  /// Producer spins while a ring was full (the backpressure path).
  std::uint64_t backpressure_waits = 0;
  /// Ring fill-level sampling (every 64th push), for the Pipe% column.
  std::uint64_t occupancy_samples = 0;
  std::uint64_t occupancy_sum = 0;
  /// Events applied inline on the execution thread after a worker died or
  /// the pipeline could not be constructed. Sticky degradation, not an
  /// error: verdicts stay exact, overlap is lost for the affected shard.
  std::uint64_t inline_fallbacks = 0;
  std::uint64_t workers_died = 0;

  /// Mean sampled ring occupancy as a percentage of capacity.
  double occupancy_pct() const noexcept {
    if (occupancy_samples == 0 || ring_capacity == 0) return 0.0;
    return 100.0 * static_cast<double>(occupancy_sum) /
           (static_cast<double>(occupancy_samples) *
            static_cast<double>(ring_capacity));
  }
};

/// Drop-in replacement for attaching a race_detector directly: construct
/// with options whose detect_threads selects inline (0) or pipelined (N)
/// checking, attach to the runtime, query results after run(). Queries
/// finalize the pipeline (join workers, merge shards) on first use.
class pipelined_detector final : public execution_observer {
 public:
  struct tuning {
    /// Slots per worker ring (rounded up to a power of two). 16Ki slots =
    /// 1 MiB per ring: deep enough to absorb checker hiccups, small enough
    /// to stay resident in L2/L3.
    std::size_t ring_capacity = std::size_t{1} << 14;
    /// log2 of the address-chunk size dealt round-robin to workers.
    unsigned chunk_shift = k_default_chunk_shift;
  };

  explicit pipelined_detector(race_detector::options opts);
  pipelined_detector(race_detector::options opts, tuning tune);
  ~pipelined_detector() override;

  pipelined_detector(const pipelined_detector&) = delete;
  pipelined_detector& operator=(const pipelined_detector&) = delete;
  pipelined_detector(pipelined_detector&&) noexcept;
  pipelined_detector& operator=(pipelined_detector&&) noexcept;

  // -- execution_observer ----------------------------------------------------
  void on_program_start(task_id root) override;
  void on_task_spawn(task_id parent, task_id child, task_kind kind) override;
  void on_task_end(task_id t) override;
  void on_finish_end(task_id owner, std::span<const task_id> joined) override;
  void on_get(task_id waiter, task_id target) override;
  void on_promise_put(task_id fulfiller) override;
  void on_read(task_id t, const void* addr, std::size_t size,
               access_site site) override;
  void on_write(task_id t, const void* addr, std::size_t size,
                access_site site) override;
  void on_read_range(task_id t, const void* addr, std::size_t count,
                     std::size_t stride, access_site site) override;
  void on_write_range(task_id t, const void* addr, std::size_t count,
                      std::size_t stride, access_site site) override;
  void on_program_end() override;

  // -- results (mirror race_detector's query surface) -------------------------
  bool race_detected() const;
  std::uint64_t race_count() const;
  bool degraded() const;
  const std::vector<race_report>& reports() const;
  std::vector<const void*> racy_locations() const;
  detector_counters counters() const;
  std::size_t memory_bytes() const;
  const pipeline_stats& pipe_stats() const;

  /// Per-rule suppression hit counts (index-aligned with the rules of
  /// options::suppressions), summed across shards in pipelined mode.
  std::vector<std::uint64_t> suppression_hits() const;

  /// True when events are being streamed to checker threads (false in
  /// inline mode: detect_threads == 0, fail_fast, or a refused ring
  /// allocation at construction).
  bool pipelined() const;

 private:
  struct impl;
  std::unique_ptr<impl> impl_;
};

}  // namespace futrace::detect
