#pragma once

/// \file race_detector.hpp
/// The paper's on-the-fly determinacy race detector (Algorithms 1–10).
/// Attach to a serial_dfs runtime; after run() completes, query reports and
/// counters. The detector is sound and precise for async/finish/future
/// programs: it reports a race iff the executed input admits one
/// (Theorem 2), independent of scheduling, because it analyses the serial
/// depth-first execution.
///
///   futrace::detect::race_detector det;
///   futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
///   rt.add_observer(&det);
///   rt.run(program);
///   if (det.race_detected()) { ... det.reports() ... }

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "futrace/detect/race_report.hpp"
#include "futrace/detect/shadow_memory.hpp"
#include "futrace/dsr/precede_backend.hpp"
#include "futrace/dsr/reachability_graph.hpp"
#include "futrace/obs/trace.hpp"
#include "futrace/runtime/errors.hpp"
#include "futrace/runtime/observer.hpp"

namespace futrace::detect {

/// Run-local PRECEDE verdict cache used by the range-check engine (defined
/// in race_detector.cpp). One instance lives for exactly one observer event,
/// during which the reachability graph cannot change, so both verdict
/// polarities are cacheable.
struct precede_cache;

/// Known-race filter loaded from --suppressions=FILE (suppressions.hpp).
class suppression_set;

/// Why a detector stopped materializing state (or reports), as a bitmask so
/// soak runs can distinguish benign throttling from real capacity loss.
/// degraded() covers only the capacity bits; the error-limit bit is benign
/// (paper counters stay exact, only report materialization is bounded).
enum degradation_reason : std::uint32_t {
  k_degraded_shadow_cap = 1u << 0,   // shadow byte cap / failed allocation
  k_degraded_graph_cap = 1u << 1,    // task-vertex cap / failed allocation
  k_degraded_worker_death = 1u << 2, // pipelined worker died, inline fallback
  k_degraded_error_limit = 1u << 3,  // report throttling engaged (benign)
};

/// The per-execution statistics of Table 2, plus detector internals.
struct detector_counters {
  std::uint64_t tasks = 0;          // spawned tasks (excludes the root)
  std::uint64_t async_tasks = 0;
  std::uint64_t future_tasks = 0;
  std::uint64_t continuation_tasks = 0;  // promise put() splits
  std::uint64_t promise_puts = 0;
  std::uint64_t get_operations = 0;
  std::uint64_t non_tree_joins = 0;  // #NTJoins
  std::uint64_t shared_mem_accesses = 0;  // #SharedMem
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double avg_readers = 0.0;  // #AvgReaders
  std::uint64_t max_readers = 0;
  std::uint64_t locations = 0;
  std::uint64_t races_observed = 0;
  std::uint64_t racy_locations = 0;
  /// Accesses that were counted but not shadow-tracked (degraded mode).
  std::uint64_t untracked_accesses = 0;
  /// True iff a resource cap (or injected allocation failure) forced the
  /// detector to stop materializing state; counts above keep counting, but
  /// race reports from that point on are incomplete.
  bool degraded = false;
  /// degradation_reason bits explaining `degraded` (plus the benign
  /// error-limit bit, which does not set `degraded`).
  std::uint32_t degradation_reasons = 0;

  // -- service mode (DESIGN.md §12) ------------------------------------------
  /// Distinct race site pairs that arrived after max_reports was exhausted
  /// and were therefore not materialized ("N further distinct race sites
  /// not shown").
  std::uint64_t reports_capped = 0;
  /// Successful quiescent-point epoch compactions.
  std::uint64_t epoch_resets = 0;
  /// Races matched by a suppression rule (counted in races_observed too).
  std::uint64_t suppressed_races = 0;
  /// Races dropped by the per-pair/global error limits (counted in
  /// races_observed too).
  std::uint64_t errors_throttled = 0;

  // -- fast-path instrumentation (see DESIGN.md "Performance architecture")
  /// Accesses served by a direct-mapped shared_array slab (no hashing).
  std::uint64_t direct_hits = 0;
  /// Accesses served by the hashed ptr_map tier.
  std::uint64_t hashed_hits = 0;
  /// PRECEDE queries answered from the reachability memo table.
  std::uint64_t memo_hits = 0;
  /// Accesses elided entirely by the per-cell (task, step) stamp.
  std::uint64_t stamp_hits = 0;
  /// Total PRECEDE queries issued (denominator for the memo-hit rate).
  std::uint64_t precede_queries = 0;
  /// Bulk on_read_range/on_write_range events received (counted whether or
  /// not native range checking served them).
  std::uint64_t range_events = 0;
  /// Elements served by the native range engine — one slab resolution plus
  /// a tight per-cell loop, or an O(1) summary transition — instead of
  /// per-element decomposition.
  std::uint64_t range_hits = 0;
  /// Elements answered by a slab run-summary transition (the O(1) re-sweep
  /// path; a subset of range_hits).
  std::uint64_t summary_hits = 0;
};

/// Thrown by the detector when options::fail_fast is set and the first
/// determinacy race is found; carries the report.
class race_found_error : public futrace::runtime_error {
 public:
  explicit race_found_error(race_report report)
      : futrace::runtime_error(report.to_string()), report_(report) {}

  const race_report& report() const noexcept { return report_; }

 private:
  race_report report_;
};

class race_detector final : public execution_observer {
 public:
  struct options {
    /// Maximum number of detailed reports retained; further races are
    /// counted but not materialized.
    std::size_t max_reports = 64;
    /// Throw race_found_error at the first race instead of collecting —
    /// the CI-style fail-fast mode. The first report is always a true race
    /// (precision holds up to the first race even under racy handle flows).
    bool fail_fast = false;
    /// Cap on reachability-graph task vertices; 0 = unlimited. Beyond the
    /// cap the detector degrades gracefully instead of growing: counters
    /// keep counting, race checks stop.
    std::size_t max_tasks = 0;
    /// Cap on shadow-memory table bytes; 0 = unlimited. Beyond the cap (or
    /// on an injected allocation failure) new locations stop materializing;
    /// already-tracked locations keep full detection.
    std::size_t max_shadow_bytes = 0;
    /// Enables the hot-path fast paths: direct-mapped array shadow, PRECEDE
    /// memoization, and per-cell access-stamp elision. Off reproduces the
    /// unoptimized detector exactly (the --no-fastpath differential mode);
    /// race verdicts per location are identical either way.
    bool enable_fastpath = true;
    /// Expected number of distinct shared locations (the --shadow-hint
    /// flag / workload hint); pre-sizes the hashed shadow tier to avoid
    /// rehash storms mid-run. 0 = no hint.
    std::size_t shadow_reserve = 0;
    /// Enables native checking of on_read_range/on_write_range events: one
    /// slab resolution per run, a tight per-cell loop with a run-local
    /// PRECEDE cache, and O(1) full-slab run summaries. Off decomposes
    /// every range event into the per-element path (the --no-ranges
    /// differential mode); race verdicts per location are identical either
    /// way. The native path needs the slab tier, so it engages only when
    /// enable_fastpath is also on.
    bool enable_range_checks = true;
    /// Number of pipelined checker workers (pipeline.hpp). 0 — the default —
    /// means inline checking on the execution thread; N >= 1 streams events
    /// to N address-sharded workers. race_detector itself ignores the field
    /// (it is always a single-threaded checker); pipelined_detector reads it
    /// to decide between forwarding inline and spinning up the pipeline.
    unsigned detect_threads = 0;
    /// When non-empty, the detector owns an obs::trace_session for its
    /// lifetime and the Chrome trace-event JSON is written here at
    /// destruction (the --trace=FILE flag on benches and examples). Empty —
    /// the default — means no session is installed and the trace hooks stay
    /// a single predicted-untaken branch.
    std::string trace_path{};

    // -- service mode (DESIGN.md §12) ----------------------------------------
    /// Every N spawns, attempt a quiescent-point epoch compaction: retire
    /// finalized reachability vertices, free cold shadow slabs of
    /// unregistered regions, and shrink the hashed shadow tier, so
    /// steady-state RSS plateaus under streaming workloads. 0 — the
    /// default — disables compaction. Verdicts and paper counters are
    /// bit-identical either way.
    std::size_t epoch_reset_interval = 0;
    /// Known/accepted races to filter (non-owning; must outlive the
    /// detector). Matched races count in races_observed and the racy
    /// location set but are neither materialized nor allowed to trip
    /// fail_fast; per-rule hit counts are kept in suppression_hits().
    const suppression_set* suppressions = nullptr;
    /// Valgrind-style "too many errors, disabling further reporting at this
    /// site": after this many reports for one (site, site) pair, further
    /// races at that pair are counted but not materialized. 0 = unlimited.
    std::uint64_t error_limit_per_pair = 0;
    /// Global counterpart of error_limit_per_pair. 0 = unlimited.
    std::uint64_t error_limit_global = 0;
    /// Which PRECEDE answer path serves reachability queries (the
    /// --precede-backend flag; precede_backend.hpp). Race verdicts, reports,
    /// and paper counters are bit-identical across backends; only the
    /// query-cost profile differs.
    dsr::backend_kind precede_backend = dsr::backend_kind::graph;
  };

  race_detector();
  explicit race_detector(options opts);

  // -- pipelined-worker configuration (pipeline.hpp) --------------------------
  /// Promises that every scalar on_read/on_write address is already the
  /// canonical element base with size == stride (the pipelined producer runs
  /// span_of before routing), so the worker-side detector skips the span
  /// decomposition entirely. Off by default: the inline detector must
  /// canonicalize for itself.
  void set_assume_canonical(bool on) noexcept { assume_canonical_ = on; }

  /// Restricts this detector's shadow memory to the addresses one pipelined
  /// worker owns (shard.hpp); forwards to shadow_memory::set_shard. Must be
  /// called before the first access event.
  void configure_shard(unsigned chunk_shift, std::size_t index,
                       std::size_t count) noexcept {
    shadow_.set_shard(chunk_shift, index, count);
  }

  /// The exact #AvgReaders numerator (sample sum), so per-shard averages
  /// merge without rounding: avg = sum(samples) / sum(accesses).
  std::uint64_t reader_samples() const noexcept {
    return shadow_.reader_samples();
  }

  /// Silences this detector's runtime-event trace emissions (spawn/end/
  /// finish/get/put). Pipelined worker replicas replay the producer's graph
  /// stream, so without muting every runtime event would appear once per
  /// worker in the timeline; races and slab events stay un-muted because
  /// address sharding already makes each of those unique to one worker.
  void set_trace_muted(bool on) noexcept { trace_muted_ = on; }

  /// Worker-side scalar access entry points: like on_read/on_write with
  /// assume-canonical in force (`addr` is the canonical element base), but
  /// carrying the address the program actually touched so reports keep
  /// their provenance across the pipeline. `user_addr == nullptr` means
  /// the producer recorded no distinct user address (treated as == addr).
  void on_canonical_read(task_id t, const void* addr, const void* user_addr,
                         access_site site);
  void on_canonical_write(task_id t, const void* addr, const void* user_addr,
                          access_site site);

  // -- execution_observer ----------------------------------------------------
  void on_program_start(task_id root) override;
  void on_task_spawn(task_id parent, task_id child, task_kind kind) override;
  void on_task_end(task_id t) override;
  void on_finish_end(task_id owner, std::span<const task_id> joined) override;
  void on_get(task_id waiter, task_id target) override;
  void on_promise_put(task_id fulfiller) override;
  void on_program_end() override;
  void on_read(task_id t, const void* addr, std::size_t size,
               access_site site) override;
  void on_write(task_id t, const void* addr, std::size_t size,
                access_site site) override;
  void on_read_range(task_id t, const void* addr, std::size_t count,
                     std::size_t stride, access_site site) override;
  void on_write_range(task_id t, const void* addr, std::size_t count,
                      std::size_t stride, access_site site) override;

  // -- results ----------------------------------------------------------------
  bool race_detected() const noexcept { return races_observed_ > 0; }
  std::uint64_t race_count() const noexcept { return races_observed_; }

  /// True once a resource cap or injected allocation failure made the
  /// detector stop materializing state. Sticky; the detector stays fully
  /// queryable, but reports after the degradation point are incomplete.
  /// Excludes the benign error-limit reason (see degradation_reasons()).
  bool degraded() const noexcept {
    return graph_degraded_ || shadow_.degraded();
  }

  /// Bitmask of degradation_reason explaining degraded(), plus the benign
  /// k_degraded_error_limit bit when report throttling engaged.
  std::uint32_t degradation_reasons() const noexcept {
    std::uint32_t r = 0;
    if (shadow_.degraded()) r |= k_degraded_shadow_cap;
    if (graph_degraded_) r |= k_degraded_graph_cap;
    if (error_limited_) r |= k_degraded_error_limit;
    return r;
  }

  const std::vector<race_report>& reports() const noexcept { return reports_; }

  /// Distinct race site pairs dropped after max_reports was exhausted; when
  /// non-zero, report renderers should append "N further distinct race
  /// sites not shown".
  std::uint64_t reports_capped() const noexcept { return reports_capped_; }

  /// Successful epoch compactions (options::epoch_reset_interval).
  std::uint64_t epoch_resets() const noexcept { return epoch_resets_; }

  /// Per-rule hit counts, index-aligned with options::suppressions' rules.
  const std::vector<std::uint64_t>& suppression_hits() const noexcept {
    return suppression_hits_;
  }

  /// Total suppressed races (sum of suppression_hits()).
  std::uint64_t suppressed_races() const noexcept { return suppressed_; }

  /// Races dropped by the error limits.
  std::uint64_t errors_throttled() const noexcept { return errors_throttled_; }

  /// Distinct locations with at least one detected race, sorted by address.
  /// This is the unit of Theorem 2's guarantee and what the property tests
  /// compare against the brute-force oracle.
  std::vector<const void*> racy_locations() const;

  detector_counters counters() const;

  /// The graph's structural stats merged with the active backend's
  /// query-layer counters (precede_queries, memo_hits, label_*). By value:
  /// the merge composes two sources.
  dsr::reachability_stats reachability_stats() const {
    dsr::reachability_stats s = graph_.stats();
    backend_->merge_stats(s);
    return s;
  }

  const shadow_stats& storage_stats() const { return shadow_.stats(); }

  /// Approximate detector heap footprint (reachability graph + shadow
  /// memory), for the baseline-comparison benchmark.
  std::size_t memory_bytes() const;

  /// Footprint of the reachability structure alone (no shadow memory): the
  /// O(a + f + n) term of Theorem 1 plus the active backend's label/clock
  /// storage, comparable against a vector-clock detector's clock storage.
  std::size_t structure_bytes() const {
    return graph_.memory_bytes() + backend_->memory_bytes();
  }

  /// True iff the task can still be joined by a later get(): future tasks
  /// and tasks that fulfilled a promise. Lemma 4's one-async-reader coverage
  /// only applies to tasks joinable exclusively through finish, so the read
  /// rule keys on this. The cell checks never reach a task retired by epoch
  /// compaction (retired readers are ordered, hence removed, first), so the
  /// retired answer is a conservative placeholder.
  bool is_joinable(task_id t) const {
    const dsr::task_id i = graph_.id_map().to_index(t);
    if (i == dsr::k_invalid_task) return false;
    return kinds_[i] == task_kind::future || put_flags_[i];
  }

 private:
  /// `addr` is the canonical shadow-cell base (the dedup/report key);
  /// `user_addr` is what the program actually touched, carried only so the
  /// report can print both when span_of canonicalized a sub-element access.
  void report(const void* addr, const void* user_addr, race_kind kind,
              task_id first, site_id first_site, task_id second,
              site_id second_site);

  /// Epoch compaction (options::epoch_reset_interval): once the interval
  /// has elapsed, every non-continuation spawn whose parent is the
  /// root-chain tip is a quiescence candidate; the graph verifies and
  /// compacts, then the detector compacts its id-indexed mirrors and the
  /// shadow tiers. Continuation splits are excluded because they can fire
  /// from a noexcept unwind context (~spawn_scope).
  void maybe_epoch_reset(task_id parent, task_kind kind);
  void compact_local_state();

  /// PRECEDE with the run-local verdict cache (sound for the duration of
  /// one observer event; see precede_cache).
  bool ordered(task_id before, task_id after, precede_cache& cache);

  /// The Algorithm 9 read check on one cell (stamp elision included).
  void check_read_cell(shadow_cell& cell, task_id t, site_id sid,
                       const void* addr, const void* user_addr,
                       precede_cache& cache);

  /// The Algorithm 8 write check on one cell. Returns true iff the cell is
  /// known to have left the check in the uniform state {writer = t, no
  /// readers} with the full check actually run (stamp-elided cells return
  /// false — elision can hide earlier reader state). A full-slab write walk
  /// that is uniform everywhere collapses into a run summary.
  bool check_write_cell(shadow_cell& cell, task_id t, site_id sid,
                        const void* addr, const void* user_addr,
                        precede_cache& cache);

  /// O(1) summary transitions for a full-slab range access. Return false —
  /// mutating nothing the per-cell walk would not also do — when the access
  /// diverges from what one uniform interval can represent (a race, or a
  /// second concurrent reader); the caller then materializes and walks.
  bool try_summary_read(shadow_memory::direct_range& slab, task_id t,
                        site_id sid, std::size_t count);
  bool try_summary_write(shadow_memory::direct_range& slab, task_id t,
                         site_id sid, std::size_t count);

  /// Every observer event that can change the current task or the
  /// reachability graph advances the step counter; between two events the
  /// serial depth-first execution stays in one step of one task, which is
  /// what makes the per-cell stamp elision sound. The stamp stores the low
  /// 31 bits plus a write-kind bit; if an execution ever exceeds 2^31
  /// steps the stamp tier shuts off for good rather than risk a stale
  /// match after wraparound.
  void bump_step() noexcept {
    ++step_;
    if (step_ >= (1ull << 31)) stamp_enabled_ = false;
    step_low_ = static_cast<std::uint32_t>(step_) & 0x7FFFFFFFu;
  }

  options opts_;
  dsr::reachability_graph graph_;
  /// The PRECEDE answer path (options::precede_backend). Holds a reference
  /// to graph_, so it is declared after it (destroyed first).
  std::unique_ptr<dsr::precede_backend> backend_;
  shadow_memory shadow_;
  site_table sites_;
  std::vector<task_kind> kinds_;
  std::vector<std::uint8_t> put_flags_;  // task fulfilled a promise
  std::vector<race_report> reports_;
  /// Dedup index for reports_: (first site, second site, canonical address,
  /// kind) → index into reports_. Duplicates bump occurrences on the first
  /// report instead of burning a max_reports slot; entries whose report was
  /// dropped by the cap map to k_report_dropped so later duplicates are
  /// still recognized (and still not materialized).
  static constexpr std::size_t k_report_dropped = static_cast<std::size_t>(-1);
  using report_key =
      std::tuple<std::uint32_t, std::uint32_t, const void*, std::uint8_t>;
  std::map<report_key, std::size_t> report_index_;
  std::vector<const void*> racy_location_list_;  // deduped lazily
  std::uint64_t races_observed_ = 0;
  std::uint64_t get_operations_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t promise_puts_ = 0;
  // Per-kind spawn tallies (kinds_ is compacted by epoch resets, so the
  // Table 2 counters cannot be derived from it by iteration).
  std::uint64_t tasks_spawned_ = 0;
  std::uint64_t async_tasks_ = 0;
  std::uint64_t future_tasks_ = 0;
  std::uint64_t continuation_tasks_ = 0;
  // -- service mode ----------------------------------------------------------
  /// The root task's continuation chain (every identity it has split into):
  /// at a spawn whose parent is the chain tip these are exactly the live
  /// tasks, which is when epoch compaction can run.
  std::vector<task_id> root_chain_;
  task_id root_chain_tip_ = k_invalid_task;
  std::uint64_t spawns_since_reset_ = 0;
  std::uint64_t epoch_resets_ = 0;
  /// The graph's id translation as of the last compaction this detector
  /// mirrored; compact_local_state() uses it to re-index kinds_/put_flags_
  /// before adopting the graph's new map.
  dsr::epoch_id_map id_map_;
  std::vector<std::uint64_t> suppression_hits_;
  std::uint64_t suppressed_ = 0;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
      pair_error_counts_;
  std::uint64_t global_error_count_ = 0;
  std::uint64_t errors_throttled_ = 0;
  std::uint64_t reports_capped_ = 0;
  bool error_limited_ = false;
  std::uint64_t step_ = 0;
  std::uint32_t step_low_ = 0;
  std::uint64_t stamp_hits_ = 0;
  std::uint64_t range_events_ = 0;
  std::uint64_t range_hits_ = 0;
  std::uint64_t summary_hits_ = 0;
  bool stamp_enabled_ = true;
  bool range_enabled_ = true;
  bool assume_canonical_ = false;  // pipelined worker mode: skip span_of
  bool trace_muted_ = false;       // worker replica: no runtime-event tracing
  /// Owned trace sink when options::trace_path is set (null otherwise).
  /// Declared last: it is torn down first, so the global hook is already
  /// uninstalled (and the JSON flushed) before any other member dies.
  std::unique_ptr<obs::trace_session> trace_;
  /// Set when the task cap (or an injected node-allocation failure) fires:
  /// tasks past this point have no graph vertex, so every reachability
  /// query — and with it all race checking — stops. Scalar counters and
  /// already-collected reports remain valid and queryable.
  bool graph_degraded_ = false;
};

}  // namespace futrace::detect
