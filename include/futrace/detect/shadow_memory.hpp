#pragma once

/// \file shadow_memory.hpp
/// Shadow memory (paper §4.2). Every instrumented location carries:
///   - w: the task that last wrote it, and
///   - r: the set of tasks that read it in parallel since the last write —
///        at most one async task (Lemma 4 makes one representative async
///        reader sufficient) but arbitrarily many future tasks.
///
/// One shadow lookup happens per instrumented access, and big workloads
/// touch hundreds of megabytes of shadow state, so storage is two-tier:
///
///   - Direct-mapped slabs. A `shared_array<T>` registers its address range
///     (shared_regions.hpp); accesses inside a registered range resolve to
///     `slab[(addr - base) >> log2(stride)]` — one bounds check and one
///     indexed load, no hashing, no probing. Array elements dominate the
///     paper's workloads (Jacobi, Smith-Waterman, Crypt), so most accesses
///     take this path.
///   - A hashed `ptr_map` for everything else: scalar `shared<T>` cells,
///     unregistered ranges, and ranges whose slab could not be built
///     (byte cap, allocation failure, non-power-of-two stride, overlap
///     with an existing slab).
///
/// The cell layout stays compact: 32 bytes (two per cache line), with
/// source positions interned to 4-byte site ids, one reader stored inline
/// (the paper's #AvgReaders is < 2 everywhere; additional future readers
/// spill to a heap vector), and an 8-byte access stamp the detector uses to
/// elide provably-redundant re-checks (race_detector.hpp).
///
/// The detector owns the update rules (Algorithms 8 and 9); this class owns
/// storage and the counters the paper reports (#SharedMem, #AvgReaders).

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "futrace/obs/trace.hpp"
#include "futrace/runtime/observer.hpp"
#include "futrace/runtime/shared_regions.hpp"
#include "futrace/support/alloc_gate.hpp"
#include "futrace/support/ptr_map.hpp"
#include "futrace/support/small_vector.hpp"

namespace futrace::detect {

/// Interned source position (index into site_table).
using site_id = std::uint32_t;

/// Interns access_site values; hot loops hit the one-entry cache because
/// consecutive accesses come from the same statement.
class site_table {
 public:
  site_table() { sites_.push_back(access_site{"<unknown>", 0}); }

  site_id intern(access_site site) {
    if (site.file == last_file_ && site.line == last_line_) return last_id_;
    const std::uint64_t key =
        mix(reinterpret_cast<std::uint64_t>(site.file)) ^
        mix(0x9E3779B97F4A7C15ULL + site.line);
    auto [it, inserted] = index_.try_emplace(
        key, static_cast<site_id>(sites_.size()));
    if (inserted) sites_.push_back(site);
    last_file_ = site.file;
    last_line_ = site.line;
    last_id_ = it->second;
    return it->second;
  }

  access_site resolve(site_id id) const {
    return id < sites_.size() ? sites_[id] : sites_[0];
  }

 private:
  // splitmix64 finalizer. The previous key, (file_ptr << 16) ^ line, threw
  // away the pointer's high 16 bits and let two files collide whenever
  // their pointers differed only there (or a line number cancelled the low
  // pointer bits); mixing each component to full avalanche first makes the
  // combined key collision-resistant.
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::vector<access_site> sites_;
  std::unordered_map<std::uint64_t, site_id> index_;
  const char* last_file_ = nullptr;
  std::uint32_t last_line_ = 0;
  site_id last_id_ = 0;
};

struct reader_entry {
  task_id task = k_invalid_task;
  site_id site = 0;
};

/// In shadow_cell::stamp_step: set when the stamped access was a write.
inline constexpr std::uint32_t k_stamp_write = 0x80000000u;

/// 32-byte shadow cell: writer + one inline reader + overflow list + the
/// detector's last-access stamp (task and 31-bit step, with k_stamp_write
/// marking write accesses). Two cells per cache line.
struct shadow_cell {
  task_id writer = k_invalid_task;
  site_id writer_site = 0;
  reader_entry reader0;
  std::vector<reader_entry>* overflow = nullptr;
  task_id stamp_task = k_invalid_task;
  std::uint32_t stamp_step = 0;

  std::size_t reader_count() const {
    if (reader0.task == k_invalid_task) return 0;
    return 1 + (overflow ? overflow->size() : 0);
  }

  reader_entry reader_at(std::size_t i) const {
    return i == 0 ? reader0 : (*overflow)[i - 1];
  }

  /// O(1) unordered removal: the last entry fills the hole.
  void remove_reader_at(std::size_t i) {
    if (overflow && !overflow->empty()) {
      if (i == 0) {
        reader0 = overflow->back();
      } else {
        (*overflow)[i - 1] = overflow->back();
      }
      overflow->pop_back();
      return;
    }
    reader0 = reader_entry{};
  }

  /// Records a reader. Returns false — dropping the entry — only when the
  /// overflow vector is needed and its allocation is refused by the alloc
  /// gate; the caller must then treat detection results as incomplete.
  bool add_reader(reader_entry e) {
    if (reader0.task == k_invalid_task) {
      reader0 = e;
      return true;
    }
    if (!overflow) {
      if (support::alloc_should_fail(sizeof(std::vector<reader_entry>))) {
        return false;
      }
      overflow = new std::vector<reader_entry>();
    }
    overflow->push_back(e);
    return true;
  }

  /// True once any access touched this cell (Algorithms 8/9 always leave a
  /// writer or at least one reader behind); lets slabs count distinct
  /// locations without per-cell occupancy bookkeeping.
  bool touched() const noexcept {
    return writer != k_invalid_task || reader0.task != k_invalid_task;
  }
};
static_assert(sizeof(shadow_cell) <= 32);

/// Counters for the storage fast path (direct-mapped slabs vs hashing).
struct shadow_stats {
  std::uint64_t direct_hits = 0;   // accesses served by a slab
  std::uint64_t hashed_hits = 0;   // accesses served by the ptr_map
  std::uint64_t mru_hits = 0;      // hashed hits served by the one-slot MRU
  std::uint64_t slabs_built = 0;   // registered ranges direct-mapped
  std::uint64_t slab_fallbacks = 0;   // ranges kept on the hashed path
  std::uint64_t rejected_overlaps = 0;  // ranges colliding with a live slab
  std::uint64_t migrated_cells = 0;  // hashed cells moved into a new slab
  std::uint64_t summaries_established = 0;  // full-slab runs collapsed
  std::uint64_t summary_materializations = 0;  // summaries expanded back
};

class shadow_memory {
 public:
  /// Uniform-interval summary of a whole slab: when valid, *every* cell of
  /// the slab logically holds this state (writer, at most one reader, and
  /// the detector's last-access stamp) and the per-cell array is stale. A
  /// summary is established by the detector after a full-slab range write
  /// that reported no race — the one walk that provably leaves all cells
  /// identical — and is maintained in O(1) by later full-slab range
  /// accesses. Any scalar access, partial range, race, or state the single
  /// reader slot cannot hold triggers materialize(), copying the summary
  /// back into every cell before per-cell checking resumes, so the set of
  /// reported races is exactly that of per-element checking.
  struct run_summary {
    bool valid = false;
    task_id writer = k_invalid_task;
    site_id writer_site = 0;
    reader_entry reader;
    task_id stamp_task = k_invalid_task;
    std::uint32_t stamp_step = 0;
  };

  /// One direct-mapped range: a contiguous slab of cells covering
  /// [base, end) at 1 << shift bytes per element. Slabs persist for the
  /// lifetime of the shadow memory even if the underlying shared_array is
  /// destroyed — same never-forget policy as the hashed table, so address
  /// reuse keeps its location identity within one execution.
  struct direct_range {
    std::uintptr_t base = 0;
    std::uintptr_t end = 0;
    std::uint32_t shift = 0;
    /// The mirrored_regions_ key of the registration this slab was built
    /// from, so retiring the slab also forgets the registration and an
    /// identical later re-registration gets a fresh slab.
    std::uint64_t region_key = 0;
    std::vector<shadow_cell> cells;
    run_summary summary;
  };

  /// A resolved range access: `count` consecutive cells starting at `first`
  /// inside `slab`. `first == nullptr` means the range could not be served
  /// natively (hashed tier, stride mismatch, misalignment, or spilling past
  /// the slab) and the caller must decompose to per-element accesses.
  struct slab_run {
    shadow_cell* first = nullptr;
    direct_range* slab = nullptr;
    bool full = false;  // the run covers every cell of the slab
  };

  /// A scalar access decomposed against the registered element geometry:
  /// the access [addr, addr+size) overlaps `count` elements of `stride`
  /// bytes, the first starting at `first` (element-aligned). count == 1
  /// for the common case of an access no larger than its element.
  struct access_span {
    const void* first = nullptr;
    std::size_t count = 1;
    std::size_t stride = 0;
  };

  shadow_memory() = default;
  shadow_memory(shadow_memory&&) noexcept = default;
  shadow_memory& operator=(shadow_memory&&) noexcept = default;

  ~shadow_memory() {
    cells_.for_each([](const void*, shadow_cell& cell) {
      delete cell.overflow;
      cell.overflow = nullptr;
    });
    for (direct_range& r : ranges_) {
      for (shadow_cell& cell : r.cells) {
        delete cell.overflow;
        cell.overflow = nullptr;
      }
    }
  }

  /// Finds or creates the cell for a location, counting the access and the
  /// readers currently stored (the paper's #AvgReaders statistic samples the
  /// reader-set size at every read/write).
  shadow_cell& access(const void* addr) {
    ++accesses_;
    if (shadow_cell* cell = direct_find(addr)) {
      ++stats_.direct_hits;
      readers_sampled_ += cell->reader_count();
      return *cell;
    }
    if (shadow_cell* cell = hashed_mru(addr)) {
      readers_sampled_ += cell->reader_count();
      return *cell;
    }
    shadow_cell& cell = cells_[addr];
    ++stats_.hashed_hits;
    note_hashed_cell(addr, &cell);
    readers_sampled_ += cell.reader_count();
    return cell;
  }

  /// Caps the shadow table's heap footprint; 0 means unlimited. Once the cap
  /// (or an injected allocation failure) is hit, the map degrades: existing
  /// cells keep working, new locations stop materializing, and accesses keep
  /// being counted. Slab construction also respects the cap, but a refused
  /// slab is not degradation — the range falls back to the hashed path with
  /// full fidelity.
  void set_max_bytes(std::size_t bytes) noexcept { max_bytes_ = bytes; }

  /// Enables/disables the direct-mapped slab tier (on by default). The
  /// detector turns it off in --no-fastpath differential-debugging runs.
  void set_direct_mapped(bool enabled) noexcept { direct_enabled_ = enabled; }

  /// Restricts this shadow instance to the addresses one pipelined checker
  /// worker owns (shard.hpp's chunk rule): registered regions are clipped to
  /// the owned chunks, producing one slab per owned chunk-intersection
  /// instead of one slab per region. The sharded producer routes every
  /// access to its owner, so cells for unowned addresses are simply never
  /// materialized — and a per-chunk range sub-event that covers a whole
  /// clipped slab still collapses into a run summary, keeping the O(1)
  /// re-sweep tier alive under sharding. Must be set before the first
  /// access; `count <= 1` means no clipping (the inline layout).
  void set_shard(unsigned chunk_shift, std::size_t index,
                 std::size_t count) noexcept {
    shard_shift_ = chunk_shift;
    shard_index_ = index;
    shard_count_ = count;
  }

  /// Pre-sizes the hashed table for `expected_locations` entries (the
  /// --shadow-hint flag / workload hint), avoiding rehash storms
  /// mid-benchmark. Silently skipped when it would exceed the byte cap or
  /// the alloc gate refuses — a hint must never cause degradation.
  void reserve(std::size_t expected_locations) {
    std::size_t cap = 16;
    while (cap < expected_locations * 2) cap <<= 1;
    const std::size_t bytes = cap * (sizeof(shadow_cell) + sizeof(void*));
    if (max_bytes_ != 0 && slab_bytes_ + bytes > max_bytes_) return;
    if (support::alloc_should_fail(bytes)) return;
    cells_.reserve(expected_locations);
  }

  /// True once an insertion was refused (byte cap or injected allocation
  /// failure). Sticky: detection results are incomplete from that point on.
  bool degraded() const noexcept { return degraded_; }

  /// Marks the shadow state incomplete (used by the detector when a reader
  /// entry had to be dropped because its overflow allocation was refused).
  void mark_degraded() noexcept { degraded_ = true; }

  /// Resource-capped variant of access(): returns nullptr instead of
  /// materializing a cell when the table cannot (or must not) grow. The
  /// access is counted either way — Table 2 counters survive degradation.
  shadow_cell* try_access(const void* addr) {
    ++accesses_;
    if (shadow_cell* cell = direct_find(addr)) {
      ++stats_.direct_hits;
      readers_sampled_ += cell->reader_count();
      return cell;
    }
    if (shadow_cell* cell = hashed_mru(addr)) {
      readers_sampled_ += cell->reader_count();
      return cell;
    }
    if (shadow_cell* cell = cells_.find(addr)) {
      ++stats_.hashed_hits;
      note_hashed_cell(addr, cell);
      readers_sampled_ += cell->reader_count();
      return cell;
    }
    if (!degraded_) {
      const bool over_cap =
          max_bytes_ != 0 &&
          slab_bytes_ + cells_.bytes_after_insert() > max_bytes_;
      if (!over_cap && !support::alloc_should_fail(sizeof(shadow_cell))) {
        ++stats_.hashed_hits;
        shadow_cell* cell = &cells_[addr];
        note_hashed_cell(addr, cell);
        return cell;
      }
      degraded_ = true;
    }
    ++skipped_;
    return nullptr;
  }

  /// Counts an access without touching storage (used once the detector's
  /// reachability graph has degraded and cell contents no longer matter).
  void count_only() noexcept {
    ++accesses_;
    ++skipped_;
  }

  /// Bulk count_only: `count` untracked accesses in one call.
  void count_only_n(std::size_t count) noexcept {
    accesses_ += count;
    skipped_ += count;
  }

  /// Counts `count` slab-served accesses in one call (the range engine's
  /// tight loop and the summary fast path both resolve the slab once but
  /// must keep #SharedMem and the tier counters element-exact).
  void note_range_direct(std::size_t count) noexcept {
    accesses_ += count;
    stats_.direct_hits += count;
  }

  /// Adds `n` to the #AvgReaders sample sum (range paths sample readers in
  /// bulk instead of once per access()).
  void add_reader_samples(std::uint64_t n) noexcept { readers_sampled_ += n; }

  /// The #AvgReaders numerator. Exposed exactly (not via the avg double) so
  /// the pipelined detector can merge per-shard averages without rounding.
  std::uint64_t reader_samples() const noexcept { return readers_sampled_; }

  /// Resolves a range access of `count` elements of `stride` bytes starting
  /// at `addr` against the slab tier. Succeeds only when the whole run lives
  /// in one slab, element-aligned, with stride equal to the slab's: then the
  /// caller can walk `count` consecutive cells from `first` with no further
  /// lookups. Does NOT materialize a pending summary — the caller decides
  /// between the O(1) summary transition and materialize-then-walk.
  slab_run find_run(const void* addr, std::size_t count, std::size_t stride) {
    if (!direct_enabled_) return {};
    sync_if_stale();
    if (ranges_.empty()) return {};
    const std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
    direct_range* r = find_slab(a);
    if (r == nullptr) return {};
    if (stride != (std::size_t{1} << r->shift)) return {};
    if (((a - r->base) & (stride - 1)) != 0) return {};
    if (count > ((r->end - a) >> r->shift)) return {};
    const std::size_t idx = static_cast<std::size_t>((a - r->base) >> r->shift);
    return slab_run{&r->cells[idx], r, idx == 0 && count == r->cells.size()};
  }

  /// Collapses a slab to the given uniform state (detector calls this after
  /// a race-free full-slab write walk).
  void establish_summary(direct_range& r, const run_summary& s) {
    r.summary = s;
    r.summary.valid = true;
    ++stats_.summaries_established;
  }

  /// Expands a slab summary back into per-cell state: every cell takes the
  /// uniform writer/reader/stamp; spilled reader vectors are cleared but
  /// keep their allocation. No allocation happens here, so materialization
  /// can never degrade the shadow state.
  void materialize(direct_range& r) noexcept {
    obs::trace_emit(obs::trace_kind::slab_materialize, obs::trace_track::task,
                    0, r.cells.size());
    const run_summary s = r.summary;
    r.summary = run_summary{};
    for (shadow_cell& cell : r.cells) {
      cell.writer = s.writer;
      cell.writer_site = s.writer_site;
      cell.reader0 = s.reader;
      if (cell.overflow) cell.overflow->clear();
      cell.stamp_task = s.stamp_task;
      cell.stamp_step = s.stamp_step;
    }
    ++stats_.summary_materializations;
  }

  /// Decomposes a scalar access of `size` bytes at `addr` against the
  /// registered element geometry (the live region list, independent of
  /// whether slabs are enabled). An access no larger than the smallest
  /// registered element — the overwhelmingly common case — returns
  /// {addr, 1} after one version check; an access that straddles element
  /// boundaries returns the aligned run of every element it overlaps, so
  /// the detector checks each underlying location instead of only the
  /// first (mixed-size under-checking fix).
  access_span span_of(const void* addr, std::size_t size) {
    sync_if_stale();
    const std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
    // Fast bail for the common aligned scalar: when every live region has a
    // power-of-two stride and a stride-aligned base, element boundaries are
    // `size`-aligned for any power-of-two size <= the minimum stride, so a
    // size-aligned access cannot cross one.
    if (geoms_aligned_ && size <= min_geom_stride_ &&
        (size & (size - 1)) == 0 && (a & (size - 1)) == 0) {
      return access_span{addr, 1, size};
    }
    const auto it = std::upper_bound(
        geoms_.begin(), geoms_.end(), a,
        [](std::uintptr_t key, const detail::shared_region& g) {
          return key < g.base;
        });
    if (it == geoms_.begin()) return access_span{addr, 1, size};
    const detail::shared_region& g = *std::prev(it);
    if (a >= g.end) return access_span{addr, 1, size};
    const std::uintptr_t first = g.base + (a - g.base) / g.stride * g.stride;
    const std::uintptr_t last = std::min<std::uintptr_t>(a + size, g.end);
    const std::size_t count =
        static_cast<std::size_t>((last - first + g.stride - 1) / g.stride);
    // count == 1 still canonicalizes `first` to the element base, so the
    // hashed and slab tiers key sub-element accesses to the same location.
    return access_span{reinterpret_cast<const void*>(first), count, g.stride};
  }

  /// Side-effect-free tier probe for race-report provenance: names the
  /// tier holding `addr`'s shadow state. A plain binary search over the
  /// slab index — no MRU update, no summary materialization, no lazy sync —
  /// so calling it on the cold report path cannot perturb any counter,
  /// cached state, or pending summary (unlike the access-path lookups).
  const char* tier_name(const void* addr) const noexcept {
    const std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
    const auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), a,
        [](std::uintptr_t key, const direct_range& r) { return key < r.base; });
    if (it != ranges_.begin()) {
      const direct_range& r = *std::prev(it);
      if (a >= r.base && a < r.end) return "direct";
    }
    return "hashed";
  }

  /// Accesses whose shadow state was not tracked (degraded mode).
  std::uint64_t skipped_accesses() const noexcept { return skipped_; }

  /// Number of distinct locations touched. Hashed cells materialize on
  /// first access; slab cells are pre-allocated, so only touched ones count.
  std::size_t location_count() const noexcept {
    std::size_t n = cells_.size() + retired_locations_;
    for (const direct_range& r : ranges_) {
      for (const shadow_cell& cell : r.cells) {
        if (cell.touched()) ++n;
      }
    }
    return n;
  }

  /// Total read+write accesses observed (the paper's #SharedMem).
  std::uint64_t access_count() const noexcept { return accesses_; }

  /// Mean reader-set size over all accesses (the paper's #AvgReaders).
  double average_readers() const noexcept {
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(readers_sampled_) /
                                static_cast<double>(accesses_);
  }

  /// Largest reader set ever sampled (diagnostics; bounded by the number of
  /// future tasks, per the space bound of Theorem 1).
  std::uint64_t max_readers() const noexcept { return max_readers_; }

  void note_reader_count(std::size_t n) {
    if (n > max_readers_) max_readers_ = n;
  }

  const shadow_stats& stats() const noexcept { return stats_; }

  /// Approximate heap footprint: table, slabs, plus spilled reader vectors.
  std::size_t memory_bytes() const {
    std::size_t bytes = cells_.table_bytes() + slab_bytes_;
    const auto count_overflow = [&bytes](const shadow_cell& cell) {
      if (cell.overflow) {
        bytes += sizeof(*cell.overflow) +
                 cell.overflow->capacity() * sizeof(reader_entry);
      }
    };
    cells_.for_each(
        [&](const void*, const shadow_cell& cell) { count_overflow(cell); });
    for (const direct_range& r : ranges_) {
      for (const shadow_cell& cell : r.cells) count_overflow(cell);
    }
    return bytes;
  }

  /// Epoch compaction (DESIGN.md §12): frees every slab whose address range
  /// no longer overlaps a *live* registered region — the backing
  /// shared_array is gone, so no tracked access can resolve there again
  /// short of raw address reuse — and rehashes the hashed tier down to its
  /// current population. Touched retired cells keep counting in
  /// location_count() through an accumulator (exact up to address reuse,
  /// where a re-registered range restarts its count). Returns the number of
  /// slabs retired. Never touches a slab an overlapping live region is
  /// being served by, so detection state for reachable locations is intact.
  std::size_t retire_dead_slabs() {
    sync_if_stale();
    const std::vector<detail::shared_region> live =
        detail::shared_region_snapshot();
    std::size_t retired = 0;
    for (std::size_t i = 0; i < ranges_.size();) {
      direct_range& r = ranges_[i];
      bool overlaps_live = false;
      for (const detail::shared_region& reg : live) {
        if (r.base < reg.end && reg.base < r.end) {
          overlaps_live = true;
          break;
        }
      }
      if (overlaps_live) {
        ++i;
        continue;
      }
      std::size_t touched = 0;
      if (r.summary.valid) {
        // Uniform pending state: every cell is logically touched iff the
        // summary records an access (the per-cell array is stale).
        shadow_cell synth;
        synth.writer = r.summary.writer;
        synth.reader0 = r.summary.reader;
        if (synth.touched()) touched = r.cells.size();
      }
      for (shadow_cell& cell : r.cells) {
        if (!r.summary.valid && cell.touched()) ++touched;
        delete cell.overflow;
        cell.overflow = nullptr;
      }
      retired_locations_ += touched;
      slab_bytes_ -= r.cells.size() * sizeof(shadow_cell);
      mirrored_regions_.erase(r.region_key);
      ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(i));
      ++retired;
    }
    if (retired != 0) mru_range_ = 0;  // indices shifted under the MRU
    cells_.shrink();
    invalidate_hashed_mru();  // shrink() may rehash: cached pointers dangle
    return retired;
  }

  /// Calls fn(addr, cell) for every materialized hashed cell and every
  /// touched slab cell. A summarized slab presents its uniform state for
  /// every cell (the per-cell array is stale while a summary is pending).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    cells_.for_each(fn);
    for (const direct_range& r : ranges_) {
      if (r.summary.valid) {
        shadow_cell synth;
        synth.writer = r.summary.writer;
        synth.writer_site = r.summary.writer_site;
        synth.reader0 = r.summary.reader;
        synth.stamp_task = r.summary.stamp_task;
        synth.stamp_step = r.summary.stamp_step;
        for (std::size_t i = 0; i < r.cells.size(); ++i) {
          fn(reinterpret_cast<const void*>(r.base + (i << r.shift)), synth);
        }
        continue;
      }
      for (std::size_t i = 0; i < r.cells.size(); ++i) {
        if (r.cells[i].touched()) {
          fn(reinterpret_cast<const void*>(r.base + (i << r.shift)),
             r.cells[i]);
        }
      }
    }
  }

 private:
  /// One-slot MRU over the hashed tier: bulk workloads re-touch the same
  /// scalar location in bursts, and a hit skips the whole probe sequence.
  /// The cached pointer dangles whenever the map erases (backshift deletion
  /// moves *other* entries, not only the erased key — see ptr_map::erase) or
  /// rehashes, so: every erase clears the slot, and every hashed
  /// access/insert refreshes it with a pointer obtained *after* any growth.
  shadow_cell* hashed_mru(const void* addr) noexcept {
    if (addr == mru_addr_ && mru_cell_ != nullptr) {
      ++stats_.hashed_hits;
      ++stats_.mru_hits;
      return mru_cell_;
    }
    return nullptr;
  }

  void note_hashed_cell(const void* addr, shadow_cell* cell) noexcept {
    mru_addr_ = addr;
    mru_cell_ = cell;
  }

  void invalidate_hashed_mru() noexcept {
    mru_addr_ = nullptr;
    mru_cell_ = nullptr;
  }

  void sync_if_stale() {
    if (region_version_seen_ != detail::shared_region_version())
        [[unlikely]] {
      sync_regions();
    }
  }

  /// Resolves `addr` to its slab — one most-recently-used probe (bulk
  /// workloads stream through one array at a time), then a binary search
  /// over the base-sorted range list. Divide-and-conquer workloads
  /// (Strassen) keep hundreds of temporary-array slabs alive and alternate
  /// between them every iteration, so the miss path must be logarithmic,
  /// not linear. Callers have already synced and checked ranges_ nonempty.
  direct_range* find_slab(std::uintptr_t a) {
    direct_range& mru = ranges_[mru_range_];
    if (a >= mru.base && a < mru.end) return &mru;
    const auto it = std::upper_bound(
        ranges_.begin(), ranges_.end(), a,
        [](std::uintptr_t key, const direct_range& r) { return key < r.base; });
    if (it == ranges_.begin()) return nullptr;
    direct_range& r = *std::prev(it);
    if (a >= r.end) return nullptr;
    mru_range_ = static_cast<std::size_t>(std::prev(it) - ranges_.begin());
    return &r;
  }

  /// The scalar access-path lookup. A pending run summary materializes
  /// here: a scalar access into a summarized slab is exactly the
  /// "divergence" the summary cannot represent.
  shadow_cell* direct_find(const void* addr) {
    if (!direct_enabled_) return nullptr;
    sync_if_stale();
    if (ranges_.empty()) return nullptr;
    const std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
    direct_range* r = find_slab(a);
    if (r == nullptr) return nullptr;
    if (r->summary.valid) [[unlikely]] materialize(*r);
    return &r->cells[(a - r->base) >> r->shift];
  }

  void sync_regions() {
    const std::uint64_t version = detail::shared_region_version();
    const std::vector<detail::shared_region> snapshot =
        detail::shared_region_snapshot();
    for (const detail::shared_region& reg : snapshot) {
      // Seen-set keyed on the full geometry: re-registering an identical
      // range (address reuse by an identical array) silently reuses its
      // slab, while a geometry change at the same address goes through
      // try_build_slab and is rejected to the hashed path, which keeps
      // per-address location identity exact.
      const std::uint64_t key = mix64(reg.base) ^ mix64(reg.end + 1) ^
                                mix64(0x100000000ULL + reg.stride);
      if (!mirrored_regions_.insert(key).second) continue;
      if (direct_enabled_) try_build_slab(reg);
    }
    // Element-geometry mirror for span_of(): the *live* regions only —
    // decomposition follows the current registration, while slabs keep
    // their never-forget policy above.
    geoms_ = snapshot;
    std::sort(geoms_.begin(), geoms_.end(),
              [](const detail::shared_region& x, const detail::shared_region& y) {
                return x.base < y.base;
              });
    min_geom_stride_ = static_cast<std::size_t>(-1);
    geoms_aligned_ = true;
    for (const detail::shared_region& g : geoms_) {
      if (g.stride < min_geom_stride_) min_geom_stride_ = g.stride;
      geoms_aligned_ = geoms_aligned_ && g.stride != 0 &&
                       (g.stride & (g.stride - 1)) == 0 &&
                       (g.base & (g.stride - 1)) == 0;
    }
    region_version_seen_ = version;
  }

  static std::uint64_t mix64(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Builds a slab for a newly registered region, or records why it stays
  /// on the hashed path. A refused slab is never degradation: the hashed
  /// tier serves the range with identical fidelity, just slower.
  void try_build_slab(const detail::shared_region& reg) {
    // Only power-of-two strides index with a shift.
    if (reg.stride == 0 || (reg.stride & (reg.stride - 1)) != 0) {
      ++stats_.slab_fallbacks;
      return;
    }
    for (const direct_range& r : ranges_) {
      if (reg.base < r.end && r.base < reg.end) {
        // Overlaps a slab built for an earlier (possibly since-destroyed)
        // array. Serving two identities from one slab would corrupt cell
        // state, so the newcomer stays hashed.
        ++stats_.rejected_overlaps;
        ++stats_.slab_fallbacks;
        return;
      }
    }
    std::uint32_t shift = 0;
    while ((1u << shift) != reg.stride) ++shift;
    // In shard mode the region is clipped to the chunks this instance owns:
    // one run of consecutively owned cells per chunk-intersection, each run
    // becoming its own slab. A cell is owned by the chunk containing its
    // base address (the element may straddle into the next chunk), which is
    // exactly the producer's routing rule, so every cell the router sends
    // here has a slab and no unowned cell ever materializes.
    struct cell_run {
      std::uintptr_t base;
      std::uintptr_t end;
    };
    support::small_vector<cell_run, 8> runs;
    if (shard_count_ <= 1) {
      runs.push_back({reg.base, reg.end});
    } else {
      const std::uintptr_t chunk = std::uintptr_t{1} << shard_shift_;
      for (std::uintptr_t c = reg.base & ~(chunk - 1); c < reg.end;
           c += chunk) {
        if (((c >> shard_shift_) % shard_count_) != shard_index_) continue;
        // Cells whose base lies in [c, c + chunk) ∩ [reg.base, reg.end).
        const std::uintptr_t lo = std::max(c, reg.base);
        const std::uintptr_t hi = std::min(c + chunk, reg.end);
        const std::uintptr_t first =
            reg.base + (lo - reg.base + reg.stride - 1) / reg.stride *
                           reg.stride;
        const std::uintptr_t last =
            reg.base + (hi - reg.base + reg.stride - 1) / reg.stride *
                           reg.stride;
        if (first < last) runs.push_back({first, last});
      }
      if (runs.empty()) return;  // nothing owned; not a fallback
    }
    std::size_t total_bytes = 0;
    for (const auto& [run_base, run_end] : runs) {
      total_bytes += (static_cast<std::size_t>(run_end - run_base) >> shift) *
                     sizeof(shadow_cell);
    }
    if (max_bytes_ != 0 &&
        slab_bytes_ + total_bytes + cells_.table_bytes() > max_bytes_) {
      ++stats_.slab_fallbacks;
      return;
    }
    if (support::alloc_should_fail(total_bytes)) {
      ++stats_.slab_fallbacks;
      return;
    }
    for (const auto& [run_base, run_end] : runs) {
      direct_range r;
      r.base = run_base;
      r.end = run_end;
      r.shift = shift;
      r.region_key = mix64(reg.base) ^ mix64(reg.end + 1) ^
                     mix64(0x100000000ULL + reg.stride);
      std::size_t inserted_at = 0;
      try {
        r.cells.resize(static_cast<std::size_t>(run_end - run_base) >> shift);
        // Keep the list sorted by base so direct_find can binary-search;
        // overlap rejection above guarantees the order is total.
        const auto pos = std::upper_bound(
            ranges_.begin(), ranges_.end(), r.base,
            [](std::uintptr_t key, const direct_range& existing) {
              return key < existing.base;
            });
        const auto ins = ranges_.insert(pos, std::move(r));
        inserted_at = static_cast<std::size_t>(ins - ranges_.begin());
      } catch (...) {
        ++stats_.slab_fallbacks;
        return;
      }
      mru_range_ = inserted_at;
      slab_bytes_ +=
          ranges_[inserted_at].cells.size() * sizeof(shadow_cell);
      migrate_into_slab(ranges_[inserted_at]);
    }
    ++stats_.slabs_built;
  }

  /// Moves cells the hashed tier already materialized for in-range
  /// addresses into the new slab, so a range registered after its first
  /// accesses (e.g. `assign` on a default-constructed array) keeps its
  /// shadow state.
  void migrate_into_slab(direct_range& r) {
    std::vector<const void*> in_range;
    cells_.for_each([&](const void* addr, shadow_cell&) {
      const std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
      if (a >= r.base && a < r.end) in_range.push_back(addr);
    });
    for (const void* addr : in_range) {
      const std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
      // The copied cell takes ownership of the overflow pointer; erase()
      // resets the vacated slot to a default-constructed cell.
      r.cells[(a - r.base) >> r.shift] = *cells_.find(addr);
      cells_.erase(addr);
      ++stats_.migrated_cells;
    }
    // Backshift deletion relocates entries *other* than the erased keys, so
    // the MRU pointer may dangle even for an address that was never in range.
    if (!in_range.empty()) invalidate_hashed_mru();
  }

  support::ptr_map<shadow_cell> cells_;
  std::vector<direct_range> ranges_;
  std::vector<detail::shared_region> geoms_;  // live regions, base-sorted
  std::size_t min_geom_stride_ = static_cast<std::size_t>(-1);
  bool geoms_aligned_ = true;  // all strides pow2, all bases stride-aligned
  std::unordered_set<std::uint64_t> mirrored_regions_;
  std::size_t mru_range_ = 0;
  const void* mru_addr_ = nullptr;     // one-slot hashed-tier MRU
  shadow_cell* mru_cell_ = nullptr;
  unsigned shard_shift_ = 0;           // set_shard(): chunk size log2
  std::size_t shard_index_ = 0;
  std::size_t shard_count_ = 1;        // 1 = unsharded (inline layout)
  std::uint64_t region_version_seen_ = 0;
  std::size_t slab_bytes_ = 0;
  bool direct_enabled_ = true;
  std::size_t retired_locations_ = 0;  // touched cells of retired slabs
  std::uint64_t accesses_ = 0;
  std::uint64_t readers_sampled_ = 0;
  std::uint64_t max_readers_ = 0;
  std::uint64_t skipped_ = 0;
  std::size_t max_bytes_ = 0;  // 0 = unlimited
  bool degraded_ = false;
  shadow_stats stats_;
};

}  // namespace futrace::detect
