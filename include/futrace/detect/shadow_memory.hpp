#pragma once

/// \file shadow_memory.hpp
/// Shadow memory (paper §4.2). Every instrumented location carries:
///   - w: the task that last wrote it, and
///   - r: the set of tasks that read it in parallel since the last write —
///        at most one async task (Lemma 4 makes one representative async
///        reader sufficient) but arbitrarily many future tasks.
///
/// One shadow lookup happens per instrumented access, and big workloads
/// touch hundreds of megabytes of shadow state, so the cell layout is
/// compact: 24 bytes, with source positions interned to 4-byte site ids and
/// one reader stored inline (the paper's #AvgReaders is < 2 everywhere);
/// additional future readers spill to a heap vector.
///
/// The detector owns the update rules (Algorithms 8 and 9); this class owns
/// storage and the counters the paper reports (#SharedMem, #AvgReaders).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "futrace/runtime/observer.hpp"
#include "futrace/support/alloc_gate.hpp"
#include "futrace/support/ptr_map.hpp"

namespace futrace::detect {

/// Interned source position (index into site_table).
using site_id = std::uint32_t;

/// Interns access_site values; hot loops hit the one-entry cache because
/// consecutive accesses come from the same statement.
class site_table {
 public:
  site_table() { sites_.push_back(access_site{"<unknown>", 0}); }

  site_id intern(access_site site) {
    if (site.file == last_file_ && site.line == last_line_) return last_id_;
    const std::uint64_t key =
        (reinterpret_cast<std::uint64_t>(site.file) << 16) ^ site.line;
    auto [it, inserted] = index_.try_emplace(
        key, static_cast<site_id>(sites_.size()));
    if (inserted) sites_.push_back(site);
    last_file_ = site.file;
    last_line_ = site.line;
    last_id_ = it->second;
    return it->second;
  }

  access_site resolve(site_id id) const {
    return id < sites_.size() ? sites_[id] : sites_[0];
  }

 private:
  std::vector<access_site> sites_;
  std::unordered_map<std::uint64_t, site_id> index_;
  const char* last_file_ = nullptr;
  std::uint32_t last_line_ = 0;
  site_id last_id_ = 0;
};

struct reader_entry {
  task_id task = k_invalid_task;
  site_id site = 0;
};

/// 24-byte shadow cell: writer + one inline reader + overflow list.
struct shadow_cell {
  task_id writer = k_invalid_task;
  site_id writer_site = 0;
  reader_entry reader0;
  std::vector<reader_entry>* overflow = nullptr;

  std::size_t reader_count() const {
    if (reader0.task == k_invalid_task) return 0;
    return 1 + (overflow ? overflow->size() : 0);
  }

  reader_entry reader_at(std::size_t i) const {
    return i == 0 ? reader0 : (*overflow)[i - 1];
  }

  /// O(1) unordered removal: the last entry fills the hole.
  void remove_reader_at(std::size_t i) {
    if (overflow && !overflow->empty()) {
      if (i == 0) {
        reader0 = overflow->back();
      } else {
        (*overflow)[i - 1] = overflow->back();
      }
      overflow->pop_back();
      return;
    }
    reader0 = reader_entry{};
  }

  void add_reader(reader_entry e) {
    if (reader0.task == k_invalid_task) {
      reader0 = e;
      return;
    }
    if (!overflow) overflow = new std::vector<reader_entry>();
    overflow->push_back(e);
  }
};
static_assert(sizeof(shadow_cell) <= 24);

class shadow_memory {
 public:
  shadow_memory() = default;
  shadow_memory(shadow_memory&&) noexcept = default;
  shadow_memory& operator=(shadow_memory&&) noexcept = default;

  ~shadow_memory() {
    cells_.for_each([](const void*, shadow_cell& cell) {
      delete cell.overflow;
      cell.overflow = nullptr;
    });
  }

  /// Finds or creates the cell for a location, counting the access and the
  /// readers currently stored (the paper's #AvgReaders statistic samples the
  /// reader-set size at every read/write).
  shadow_cell& access(const void* addr) {
    shadow_cell& cell = cells_[addr];
    ++accesses_;
    readers_sampled_ += cell.reader_count();
    return cell;
  }

  /// Caps the shadow table's heap footprint; 0 means unlimited. Once the cap
  /// (or an injected allocation failure) is hit, the map degrades: existing
  /// cells keep working, new locations stop materializing, and accesses keep
  /// being counted.
  void set_max_bytes(std::size_t bytes) noexcept { max_bytes_ = bytes; }

  /// True once an insertion was refused (byte cap or injected allocation
  /// failure). Sticky: detection results are incomplete from that point on.
  bool degraded() const noexcept { return degraded_; }

  /// Resource-capped variant of access(): returns nullptr instead of
  /// materializing a cell when the table cannot (or must not) grow. The
  /// access is counted either way — Table 2 counters survive degradation.
  shadow_cell* try_access(const void* addr) {
    ++accesses_;
    if (shadow_cell* cell = cells_.find(addr)) {
      readers_sampled_ += cell->reader_count();
      return cell;
    }
    if (!degraded_) {
      const bool over_cap =
          max_bytes_ != 0 && cells_.bytes_after_insert() > max_bytes_;
      if (!over_cap && !support::alloc_should_fail(sizeof(shadow_cell))) {
        return &cells_[addr];
      }
      degraded_ = true;
    }
    ++skipped_;
    return nullptr;
  }

  /// Counts an access without touching storage (used once the detector's
  /// reachability graph has degraded and cell contents no longer matter).
  void count_only() noexcept {
    ++accesses_;
    ++skipped_;
  }

  /// Accesses whose shadow state was not tracked (degraded mode).
  std::uint64_t skipped_accesses() const noexcept { return skipped_; }

  /// Number of distinct locations touched.
  std::size_t location_count() const noexcept { return cells_.size(); }

  /// Total read+write accesses observed (the paper's #SharedMem).
  std::uint64_t access_count() const noexcept { return accesses_; }

  /// Mean reader-set size over all accesses (the paper's #AvgReaders).
  double average_readers() const noexcept {
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(readers_sampled_) /
                                static_cast<double>(accesses_);
  }

  /// Largest reader set ever sampled (diagnostics; bounded by the number of
  /// future tasks, per the space bound of Theorem 1).
  std::uint64_t max_readers() const noexcept { return max_readers_; }

  void note_reader_count(std::size_t n) {
    if (n > max_readers_) max_readers_ = n;
  }

  /// Approximate heap footprint: table plus spilled reader vectors.
  std::size_t memory_bytes() const {
    std::size_t bytes = cells_.table_bytes();
    cells_.for_each([&bytes](const void*, const shadow_cell& cell) {
      if (cell.overflow) {
        bytes += sizeof(*cell.overflow) +
                 cell.overflow->capacity() * sizeof(reader_entry);
      }
    });
    return bytes;
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    cells_.for_each(std::forward<Fn>(fn));
  }

 private:
  support::ptr_map<shadow_cell> cells_;
  std::uint64_t accesses_ = 0;
  std::uint64_t readers_sampled_ = 0;
  std::uint64_t max_readers_ = 0;
  std::uint64_t skipped_ = 0;
  std::size_t max_bytes_ = 0;  // 0 = unlimited
  bool degraded_ = false;
};

}  // namespace futrace::detect
