#pragma once

/// \file shard.hpp
/// Address-sharding rule shared by the pipelined detector's producer (which
/// routes access events to checker workers) and by shadow memory (which, in
/// shard mode, materializes slab cells only for the addresses its worker
/// owns). Both sides MUST agree on ownership, so the rule lives here alone:
///
///   owner(addr) = (addr >> chunk_shift) % shard_count
///
/// i.e. the address space is cut into 2^chunk_shift-byte chunks dealt
/// round-robin to the workers. Chunks (rather than a per-address hash) keep
/// runs of consecutive array elements on one worker, so bulk range events
/// split into at most a handful of per-chunk sub-events and the range-walk
/// fast path survives sharding. A location is owned by the chunk containing
/// its *element base* address — scalar accesses are canonicalized to the
/// element base before routing, so sub-element and straddling accesses
/// resolve to the same owner as the element itself.

#include <cstddef>
#include <cstdint>

namespace futrace::detect {

/// Default chunk size: 16 KiB. Big enough that tile-sized range events
/// (hundreds of bytes) rarely straddle a boundary, small enough that one
/// benchmark array spreads over every worker.
inline constexpr unsigned k_default_chunk_shift = 14;

inline std::size_t shard_of(std::uintptr_t addr, unsigned chunk_shift,
                            std::size_t shard_count) noexcept {
  return static_cast<std::size_t>((addr >> chunk_shift) % shard_count);
}

inline std::size_t shard_of(const void* addr, unsigned chunk_shift,
                            std::size_t shard_count) noexcept {
  return shard_of(reinterpret_cast<std::uintptr_t>(addr), chunk_shift,
                  shard_count);
}

/// First address past `addr` where ownership can change: the next chunk
/// boundary.
inline std::uintptr_t next_chunk_boundary(std::uintptr_t addr,
                                          unsigned chunk_shift) noexcept {
  return ((addr >> chunk_shift) + 1) << chunk_shift;
}

}  // namespace futrace::detect
