#pragma once

/// \file race_report.hpp
/// Determinacy-race reports. A report names the two conflicting accesses in
/// depth-first execution order: `first` executed earlier, `second` is the
/// access at which the detector proved first ∥ second (Definition 3).

#include <cstdint>
#include <string>
#include <vector>

#include "futrace/dsr/labels.hpp"
#include "futrace/runtime/observer.hpp"

namespace futrace::detect {

enum class race_kind : std::uint8_t {
  write_write,  // earlier write, current write
  read_write,   // earlier read,  current write
  write_read,   // earlier write, current read
};

const char* race_kind_name(race_kind kind);

/// Why the detector believed first ∥ second: the PRECEDE(first, second)
/// structure captured at the moment of the report, so the verdict can be
/// checked by hand against the paper's Figure semantics. Interval labels
/// are the spawn-tree [pre, post] numbering (§4.1); a task still live at
/// query time has a temporary postorder id, flagged by *_terminated and
/// rendered as "*".
struct race_witness {
  bool valid = false;
  dsr::interval_label first_label;   // first task's own [pre,post]
  dsr::interval_label second_label;  // second task's own [pre,post]
  bool first_terminated = false;
  bool second_terminated = false;
  dsr::interval_label first_set_label;   // interval of first's disjoint set
  dsr::interval_label second_set_label;  // interval of second's disjoint set
  /// The non-tree predecessor frontier PRECEDE searched (and exhausted)
  /// before concluding the accesses are unordered; empty when the labels
  /// alone decided (no non-tree edges reachable from `second`).
  std::vector<task_id> frontier;
  std::uint64_t lsa_hops = 0;  // significant-ancestor chain hops scanned
  /// Shadow tier that produced the verdict: "direct" (slab) or "hashed".
  const char* tier = "";
};

struct race_report {
  /// Canonical shadow-cell base of the racing location (what all shadow
  /// tiers key on, and what racy_locations() reports).
  const void* location = nullptr;
  /// The address the program actually touched; differs from `location`
  /// only when span_of canonicalized a sub-element access.
  const void* user_location = nullptr;
  race_kind kind = race_kind::write_write;
  task_id first_task = k_invalid_task;
  task_id second_task = k_invalid_task;
  access_site first_site;
  access_site second_site;
  /// How many times this exact race — same site pair, same canonical
  /// address, same kind — was observed; duplicates are folded into the
  /// first occurrence (races_observed keeps counting every one).
  std::uint64_t occurrences = 1;
  race_witness witness;

  /// Human-readable single-line rendering for logs and examples.
  std::string to_string() const;
};

}  // namespace futrace::detect
