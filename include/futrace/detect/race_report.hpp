#pragma once

/// \file race_report.hpp
/// Determinacy-race reports. A report names the two conflicting accesses in
/// depth-first execution order: `first` executed earlier, `second` is the
/// access at which the detector proved first ∥ second (Definition 3).

#include <cstdint>
#include <string>

#include "futrace/runtime/observer.hpp"

namespace futrace::detect {

enum class race_kind : std::uint8_t {
  write_write,  // earlier write, current write
  read_write,   // earlier read,  current write
  write_read,   // earlier write, current read
};

const char* race_kind_name(race_kind kind);

struct race_report {
  const void* location = nullptr;
  race_kind kind = race_kind::write_write;
  task_id first_task = k_invalid_task;
  task_id second_task = k_invalid_task;
  access_site first_site;
  access_site second_site;

  /// Human-readable single-line rendering for logs and examples.
  std::string to_string() const;
};

}  // namespace futrace::detect
