#pragma once

/// \file event_ring.hpp
/// The event vocabulary of the pipelined detector: one cache-line-sized slot
/// per observer event, streamed from the execution thread to each checker
/// worker through a bounded support::spsc_ring (one ring per worker, so
/// every ring is strictly single-producer single-consumer).
///
/// Two event families share the encoding:
///
///   - Graph events (program start, spawn, end, finish-exit, get, put).
///     These are the serial execution's sequence points: they are broadcast
///     to *every* worker ring, and each worker applies them to its private
///     reachability-graph replica in stream order. FIFO order per ring is
///     what makes a graph event an epoch barrier — a worker cannot check an
///     access against a graph state other than the one the serial execution
///     had when the access happened, because the mutation rides in the same
///     queue as the accesses it orders.
///   - Access events (read/write, scalar and range). Routed to exactly one
///     worker by the sharding rule (shard.hpp); range events are split at
///     chunk boundaries into per-owner sub-events, numbered by `sub` so the
///     serial interleaving of reports can be reconstructed exactly.
///
/// A finish-exit event carries its joined-task list in trailing
/// continuation slots (finish fan-in is unbounded); the slot count derives
/// from the joined count in the header (event_slots). The producer
/// publishes header + continuations with one release store whenever the
/// event fits the ring, so a consumer never observes a torn event; a
/// finish list larger than the whole ring streams incrementally and the
/// consumer pops slots as it collects them.

#include <cstddef>
#include <cstdint>

#include "futrace/runtime/observer.hpp"
#include "futrace/support/spsc_ring.hpp"

namespace futrace::detect {

enum class pipe_op : std::uint8_t {
  program_start,  // task = root
  spawn,          // task = parent, a = child, b = task_kind
  task_end,       // task = t
  finish_end,     // task = owner, a = joined count, ids in continuations
  get,            // task = waiter, a = target
  put,            // task = fulfiller
  read,           // task, a = addr (canonical), b = size, stride = user addr
  write,          // task, a = addr (canonical), b = size, stride = user addr
  read_range,     // task, a = addr, b = count, stride
  write_range,    // task, a = addr, b = count, stride
};

struct alignas(64) pipe_event {
  pipe_op op = pipe_op::program_start;
  std::uint8_t pad8 = 0;
  std::uint16_t pad16 = 0;
  std::uint32_t sub = 0;   // sub-event index within one serial event
  task_id task = 0;        // the event's acting task
  std::uint32_t line = 0;  // access_site line
  std::uint64_t seq = 0;   // serial event number (report-merge key)
  std::uint64_t a = 0;     // addr / child / target / joined count
  std::uint64_t b = 0;     // count / size / task_kind
  std::uint64_t stride = 0;
  const char* file = nullptr;  // access_site file (static-duration string)
  /// Explicit tail fill: continuation slots are written through a
  /// bit_cast'ed pipe_event *assignment*, and member-wise copies need not
  /// preserve padding bytes — the last two ids of a pipe_cont_view live
  /// here, so these bytes must be a real member, not tail padding.
  std::uint64_t pad_tail = 0;
};
static_assert(sizeof(pipe_event) == 64,
              "one event per cache line; adjust the layout, not the assert");

/// A continuation slot reinterpreted as packed task ids (finish_end joined
/// lists). 15 ids per slot: index 0 stores how many of this slot's entries
/// are valid so consumers need no arithmetic against the header.
struct alignas(64) pipe_cont_view {
  static constexpr std::size_t k_ids = 15;
  std::uint32_t used = 0;
  std::uint32_t ids[k_ids] = {};
};
static_assert(sizeof(pipe_cont_view) == 64);

/// Continuation slots needed for a joined list of `n` tasks.
inline std::size_t cont_slots_for(std::size_t n) noexcept {
  return (n + pipe_cont_view::k_ids - 1) / pipe_cont_view::k_ids;
}

/// Total ring slots (header + continuations) one event occupies. Only a
/// finish-exit event is ever wider than one slot; its width derives from
/// the joined count it carries, so fan-in is unbounded.
inline std::size_t event_slots(const pipe_event& ev) noexcept {
  return ev.op == pipe_op::finish_end
             ? 1 + cont_slots_for(static_cast<std::size_t>(ev.a))
             : 1;
}

using event_ring = support::spsc_ring<pipe_event>;

}  // namespace futrace::detect
