#pragma once

/// \file vector_clock_detector.hpp
/// Vector-clock style determinacy race detector, the approach the paper's
/// introduction argues is impractical for dynamic task parallelism: sound
/// and precise clocks need one component per *task*, so the per-task state
/// is O(#tasks) and total space is O(#tasks²). This implementation keeps
/// one happens-before bitset per task (bit X set in task T's set ⟺ every
/// step task X has executed precedes T's current step, maintained at spawn,
/// get, and finish boundaries of the serial depth-first execution).
///
/// It produces the same verdicts as the paper's detector — the point of the
/// vs_baselines benchmark is the time and, above all, the memory column.

#include <cstdint>
#include <vector>

#include "futrace/runtime/observer.hpp"
#include "futrace/support/ptr_map.hpp"
#include "futrace/support/small_vector.hpp"

namespace futrace::baselines {

class vector_clock_detector final : public execution_observer {
 public:
  // -- execution_observer ----------------------------------------------------
  void on_program_start(task_id root) override;
  void on_task_spawn(task_id parent, task_id child, task_kind kind) override;
  void on_finish_end(task_id owner, std::span<const task_id> joined) override;
  void on_get(task_id waiter, task_id target) override;
  void on_read(task_id t, const void* addr, std::size_t size,
               access_site site) override;
  void on_write(task_id t, const void* addr, std::size_t size,
                access_site site) override;

  // -- results ----------------------------------------------------------------
  bool race_detected() const noexcept { return races_ > 0; }
  std::uint64_t race_count() const noexcept { return races_; }
  std::vector<const void*> racy_locations() const;

  /// Bytes held by the happens-before bitsets — the quadratic term.
  std::size_t clock_bytes() const;
  std::size_t memory_bytes() const;

 private:
  // One dynamic bitset per task, indexed by task id.
  using bits = std::vector<std::uint64_t>;

  struct cell {
    task_id writer = k_invalid_task;
    support::small_vector<task_id, 2> readers;
  };

  static void set_bit(bits& b, task_id t);
  static bool test_bit(const bits& b, task_id t);
  static void merge_into(bits& into, const bits& from);

  bool precedes(task_id x, task_id current) const;

  std::vector<bits> clocks_;
  support::ptr_map<cell> shadow_;
  std::vector<const void*> racy_;
  std::uint64_t races_ = 0;
};

}  // namespace futrace::baselines
