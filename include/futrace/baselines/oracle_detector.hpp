#pragma once

/// \file oracle_detector.hpp
/// Brute-force reference detector: records the *full* computation graph and
/// every memory access at step granularity, and decides u ∥ v by graph
/// search. Exactly the "building the transitive closure of the
/// happens-before relation" approach the paper's introduction rejects for
/// cost — which makes it the perfect oracle: the property tests require the
/// real detector's per-location verdicts to match this one on thousands of
/// random programs (Theorem 2).

#include <vector>

#include "futrace/graph/graph_recorder.hpp"
#include "futrace/runtime/observer.hpp"
#include "futrace/support/ptr_map.hpp"

namespace futrace::baselines {

class oracle_detector final : public execution_observer {
 public:
  // -- execution_observer ----------------------------------------------------
  void on_program_start(task_id root) override;
  void on_task_spawn(task_id parent, task_id child, task_kind kind) override;
  void on_task_end(task_id t) override;
  void on_finish_start(task_id owner) override;
  void on_finish_end(task_id owner, std::span<const task_id> joined) override;
  void on_get(task_id waiter, task_id target) override;
  void on_read(task_id t, const void* addr, std::size_t size,
               access_site site) override;
  void on_write(task_id t, const void* addr, std::size_t size,
                access_site site) override;

  // -- results ----------------------------------------------------------------
  bool race_detected() const noexcept { return races_ > 0; }
  std::uint64_t race_count() const noexcept { return races_; }

  /// Distinct locations involved in at least one step-level race, sorted.
  std::vector<const void*> racy_locations() const;

  /// One entry per detected racy step pair (first executed earlier).
  struct racy_pair {
    const void* location;
    graph::step_id first;
    graph::step_id second;
    bool first_is_write;
    bool second_is_write;
  };
  const std::vector<racy_pair>& racy_pairs() const noexcept {
    return racy_pairs_;
  }

  const graph::graph_recorder& recorder() const noexcept { return recorder_; }
  const graph::computation_graph& graph() const noexcept {
    return recorder_.graph();
  }

 private:
  struct access {
    graph::step_id step;
    bool is_write;
  };

  void check(task_id t, const void* addr, bool is_write);

  graph::graph_recorder recorder_;
  support::ptr_map<std::vector<access>> history_;
  std::vector<const void*> racy_;
  std::vector<racy_pair> racy_pairs_;
  std::uint64_t races_ = 0;
};

}  // namespace futrace::baselines
