#pragma once

/// \file esp_bags_detector.hpp
/// ESP-bags determinacy race detector for async-finish programs (Raman,
/// Zhao, Sarkar, Vechev & Yahav, "Efficient Data Race Detection for
/// Async-Finish Parallelism"), the paper's reference point for structured
/// parallelism: §5 argues the new algorithm "does not incur additional
/// overhead for async/finish constructs relative to state-of-the-art
/// implementations", and the vs_baselines benchmark measures exactly that by
/// running both detectors on the same async-finish workloads.
///
/// Invariant (from SP-bags): a completed task sits in an S-bag iff every
/// step it executed precedes the current step; in a P-bag iff it can run in
/// parallel with the current step. Futures are *not* supported — attaching
/// this detector to a program that performs get() is an error, which is the
/// paper's point.

#include <cstdint>
#include <vector>

#include "futrace/runtime/observer.hpp"
#include "futrace/support/ptr_map.hpp"

namespace futrace::baselines {

class esp_bags_detector final : public execution_observer {
 public:
  // -- execution_observer ----------------------------------------------------
  void on_program_start(task_id root) override;
  void on_task_spawn(task_id parent, task_id child, task_kind kind) override;
  void on_task_end(task_id t) override;
  void on_finish_start(task_id owner) override;
  void on_finish_end(task_id owner, std::span<const task_id> joined) override;
  void on_get(task_id waiter, task_id target) override;
  void on_promise_put(task_id fulfiller) override;
  void on_read(task_id t, const void* addr, std::size_t size,
               access_site site) override;
  void on_write(task_id t, const void* addr, std::size_t size,
                access_site site) override;

  // -- results ----------------------------------------------------------------
  bool race_detected() const noexcept { return races_ > 0; }
  std::uint64_t race_count() const noexcept { return races_; }
  std::vector<const void*> racy_locations() const;

  std::size_t memory_bytes() const;

 private:
  enum class bag_tag : std::uint8_t { s_bag, p_bag };

  struct node {
    task_id uf_parent;
    std::uint32_t uf_size = 1;
    bag_tag tag = bag_tag::s_bag;  // authoritative at the representative
  };

  struct cell {
    task_id writer = k_invalid_task;
    task_id reader = k_invalid_task;
  };

  task_id find(task_id t);
  void set_union(task_id into, task_id from, bag_tag tag);
  bool precedes(task_id x, task_id current);

  std::vector<node> nodes_;
  // One P-bag per finish: represented by the set of the first task merged
  // into it (k_invalid_task while empty).
  struct finish_frame {
    task_id owner;
    task_id pbag = k_invalid_task;
  };
  std::vector<finish_frame> finish_stack_;

  support::ptr_map<cell> shadow_;
  std::vector<const void*> racy_;
  std::uint64_t races_ = 0;
};

}  // namespace futrace::baselines
