#pragma once

/// \file table.hpp
/// Column-aligned plain-text table printer. The Table 2 harness prints the
/// same columns the paper reports; this keeps the formatting in one place.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace futrace::support {

class text_table {
 public:
  explicit text_table(std::vector<std::string> headers);

  /// Appends a row; the number of cells must equal the number of headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with right-aligned numeric-looking cells and a header rule.
  std::string render() const;

  void print(std::ostream& os) const;

  /// Formats a count with thousands separators, e.g. 1,150,000,682.
  static std::string with_commas(std::uint64_t value);

  /// Formats a double with the given precision, e.g. "9.92".
  static std::string fixed(double value, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace futrace::support
