#pragma once

/// \file json.hpp
/// Minimal JSON document model: parse, build, dump. Exists so the bench
/// harness can emit and `tools/bench_diff` can consume machine-readable
/// BENCH_*.json files without adding a third-party dependency. Scope is
/// deliberately small — the JSON this repo produces (nested objects,
/// arrays, numbers, strings, bools) plus whatever google-benchmark's
/// --benchmark_out writes. Numbers are stored as double; integral values
/// round-trip exactly up to 2^53.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace futrace::support {

/// Thrown by json::parse on malformed input; carries the byte offset.
class json_parse_error : public std::runtime_error {
 public:
  json_parse_error(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class json {
 public:
  enum class kind { null, boolean, number, string, array, object };

  // Object members keep insertion order so dumped files diff cleanly.
  using member = std::pair<std::string, json>;

  json() = default;
  json(bool b) : kind_(kind::boolean), num_(b ? 1 : 0) {}
  json(double v) : kind_(kind::number), num_(v) {}
  json(int v) : kind_(kind::number), num_(v) {}
  json(std::int64_t v) : kind_(kind::number), num_(static_cast<double>(v)) {}
  json(std::uint64_t v) : kind_(kind::number), num_(static_cast<double>(v)) {}
  json(const char* s) : kind_(kind::string), str_(s) {}
  json(std::string s) : kind_(kind::string), str_(std::move(s)) {}

  static json array() {
    json j;
    j.kind_ = kind::array;
    return j;
  }
  static json object() {
    json j;
    j.kind_ = kind::object;
    return j;
  }

  kind type() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == kind::null; }
  bool is_number() const noexcept { return kind_ == kind::number; }
  bool is_string() const noexcept { return kind_ == kind::string; }
  bool is_bool() const noexcept { return kind_ == kind::boolean; }
  bool is_array() const noexcept { return kind_ == kind::array; }
  bool is_object() const noexcept { return kind_ == kind::object; }

  double as_double() const { return num_; }
  bool as_bool() const { return num_ != 0; }
  const std::string& as_string() const { return str_; }

  // -- array access ----------------------------------------------------------

  std::size_t size() const noexcept {
    return kind_ == kind::array ? items_.size()
                                : (kind_ == kind::object ? members_.size() : 0);
  }
  const json& at(std::size_t i) const { return items_.at(i); }
  void push_back(json v) {
    kind_ = kind::array;
    items_.push_back(std::move(v));
  }
  const std::vector<json>& items() const noexcept { return items_; }

  // -- object access ---------------------------------------------------------

  /// Finds or creates the member `key` (converts this value to an object).
  json& operator[](const std::string& key) {
    kind_ = kind::object;
    for (member& m : members_) {
      if (m.first == key) return m.second;
    }
    members_.emplace_back(key, json{});
    return members_.back().second;
  }

  /// Pointer to the member `key`, or nullptr.
  const json* find(const std::string& key) const {
    for (const member& m : members_) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }

  const std::vector<member>& members() const noexcept { return members_; }

  // -- serialization ---------------------------------------------------------

  /// Parses a complete JSON document (throws json_parse_error).
  static json parse(const std::string& text);

  /// Pretty-prints with `indent` spaces per level (0 = compact one-liner).
  std::string dump(int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  kind kind_ = kind::null;
  double num_ = 0;
  std::string str_;
  std::vector<json> items_;
  std::vector<member> members_;
};

}  // namespace futrace::support
