#pragma once

/// \file timer.hpp
/// Monotonic wall-clock timing for the benchmark harnesses. Table 2 of the
/// paper reports milliseconds; the harness reports the same unit.

#include <chrono>
#include <cstdint>

namespace futrace::support {

class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Elapsed time in nanoseconds since construction or the last restart().
  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

  double elapsed_ms() const {
    return static_cast<double>(elapsed_ns()) * 1e-6;
  }

  double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace futrace::support
