#pragma once

/// \file spsc_ring.hpp
/// Bounded single-producer single-consumer ring buffer. The pipelined race
/// detector streams fixed-size event slots from the execution thread to each
/// checker worker through one of these; the design goals are the classic
/// ones for that shape:
///
///   - Bounded and allocation-free after construction: a full ring means
///     backpressure (the producer spins), never growth, so the detection
///     pipeline cannot allocate on the instrumented program's hot path.
///   - Batched publish/consume: the producer writes any number of slots and
///     publishes them with one release store; the consumer observes a whole
///     batch with one acquire load and retires it with one release store.
///   - No sharing beyond the two indices. Head and tail live on their own
///     cache lines, and each side keeps a cached copy of the opposite index
///     so the common case (space available / data available) re-reads its
///     own cache line only.
///
/// Indices are free-running 64-bit counters masked on access, so fullness is
/// `tail - head == capacity` with no reserved slot and no wraparound
/// ambiguity within any realistic execution.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "futrace/support/assert.hpp"

namespace futrace::support {

template <typename T>
class spsc_ring {
 public:
  /// Capacity is rounded up to a power of two (minimum 2) and allocated
  /// eagerly — the only allocation this class ever performs.
  explicit spsc_ring(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  spsc_ring(const spsc_ring&) = delete;
  spsc_ring& operator=(const spsc_ring&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  // -- Producer side ---------------------------------------------------------

  /// Slots the producer may write right now. Refreshes the cached consumer
  /// index only when the cached view looks full, so a streaming producer
  /// pays one relaxed load of its own tail per call.
  std::size_t free_slots() noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
    }
    return capacity() - static_cast<std::size_t>(tail - head_cache_);
  }

  /// Like free_slots(), but always refreshes the cached consumer index —
  /// for a producer spinning until a multi-slot event fits. The lazy rule
  /// above only triggers on a completely-full view, so a stale view showing
  /// 0 < free < need would never refresh and the wait would never observe
  /// the consumer's progress (a livelock, not just staleness).
  std::size_t free_slots_refresh() noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    head_cache_ = head_.load(std::memory_order_acquire);
    return capacity() - static_cast<std::size_t>(tail - head_cache_);
  }

  /// The i-th unpublished slot past the current tail. Valid for
  /// i < free_slots(); contents become visible to the consumer only after
  /// publish().
  T& produce_slot(std::size_t i) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    return slots_[static_cast<std::size_t>(tail + i) & mask_];
  }

  /// Publishes the first `n` written slots (release: the consumer's
  /// matching acquire sees their contents fully written).
  void publish(std::size_t n) noexcept {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    FUTRACE_DCHECK(tail - head_cache_ + n <= capacity());
    tail_.store(tail + n, std::memory_order_release);
  }

  // -- Consumer side ---------------------------------------------------------

  /// Slots ready to read. Refreshes the cached producer index only when the
  /// cached view looks empty.
  std::size_t readable() noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (tail_cache_ == head) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
    }
    return static_cast<std::size_t>(tail_cache_ - head);
  }

  /// Like readable(), but always refreshes the cached producer index — for
  /// a consumer waiting on the remaining slots of a multi-slot event whose
  /// prefix is already visible (the cached view is nonempty, so readable()
  /// would never refresh and the wait would never observe progress).
  std::size_t readable_refresh() noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    tail_cache_ = tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail_cache_ - head);
  }

  /// The i-th readable slot. Valid for i < readable().
  const T& consume_slot(std::size_t i) const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    return slots_[static_cast<std::size_t>(head + i) & mask_];
  }

  /// Retires the first `n` readable slots (release: the producer's matching
  /// acquire knows it may overwrite them).
  void pop(std::size_t n) noexcept {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    FUTRACE_DCHECK(n <= tail_cache_ - head);
    head_.store(head + n, std::memory_order_release);
  }

  /// Producer-side fill level (diagnostic; the occupancy column of the
  /// pipelined bench). Exact for the producer, a snapshot for anyone else.
  std::size_t size_approx() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_relaxed) -
                                    head_.load(std::memory_order_relaxed));
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer-owned
  alignas(64) std::uint64_t tail_cache_ = 0;        // consumer's view of tail
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer-owned
  alignas(64) std::uint64_t head_cache_ = 0;        // producer's view of head
};

}  // namespace futrace::support
