#pragma once

/// \file stats.hpp
/// Streaming statistics accumulators used by the benchmark harness
/// (per-benchmark timing summaries) and by the detector's counters
/// (#AvgReaders is a streaming mean over every shadow-memory access).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "futrace/support/assert.hpp"

namespace futrace::support {

/// Welford's online algorithm for mean/variance plus min/max tracking.
class running_stats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ ? mean_ : 0.0; }
  double min() const noexcept { return count_ ? min_ : 0.0; }
  double max() const noexcept { return count_ ? max_ : 0.0; }

  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  void merge(const running_stats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples and answers percentile queries; used for benchmark timing
/// where the paper reports means of repeated runs.
class sample_set {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const noexcept { return samples_.size(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double total = 0.0;
    for (double s : samples_) total += s;
    return total / static_cast<double>(samples_.size());
  }

  /// Linear-interpolated percentile, q in [0, 100].
  double percentile(double q) const {
    FUTRACE_CHECK(!samples_.empty());
    FUTRACE_CHECK(q >= 0.0 && q <= 100.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
  }

  double median() const { return percentile(50.0); }

 private:
  std::vector<double> samples_;
};

}  // namespace futrace::support
