#pragma once

/// \file arena.hpp
/// Bump-pointer arena allocator. The detector allocates one record per task
/// and those records must stay alive for the whole execution (shadow memory
/// holds raw task references, per the paper's space bound of O(a + f + n)).
/// An arena makes allocation a pointer bump and frees everything at once.
///
/// Objects allocated from the arena must be trivially destructible, or the
/// owner must arrange destruction itself; the arena only releases memory.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "futrace/support/alloc_gate.hpp"
#include "futrace/support/assert.hpp"

namespace futrace::support {

class arena {
 public:
  /// \param block_bytes granularity of the backing allocations.
  explicit arena(std::size_t block_bytes = 1 << 16)
      : block_bytes_(block_bytes) {}

  arena(const arena&) = delete;
  arena& operator=(const arena&) = delete;
  arena(arena&&) noexcept = default;
  arena& operator=(arena&&) noexcept = default;

  /// Allocates raw storage with the given size and alignment.
  void* allocate(std::size_t bytes, std::size_t align) {
    FUTRACE_DCHECK(align != 0 && (align & (align - 1)) == 0);
    std::uintptr_t p = (cursor_ + align - 1) & ~(std::uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      new_block(bytes + align);
      p = (cursor_ + align - 1) & ~(std::uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    bytes_used_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Constructs a T in arena storage. The object is never destroyed by the
  /// arena; see the file comment.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<Args>(args)...);
  }

  /// Total payload bytes handed out (excludes alignment padding and block
  /// slack). Used by benchmarks to report detector memory footprints.
  std::size_t bytes_used() const noexcept { return bytes_used_; }

  /// Total bytes reserved from the system.
  std::size_t bytes_reserved() const noexcept { return bytes_reserved_; }

  /// Releases every block. All objects created from the arena become invalid.
  void reset() {
    blocks_.clear();
    cursor_ = 0;
    limit_ = 0;
    bytes_used_ = 0;
    bytes_reserved_ = 0;
  }

 private:
  void new_block(std::size_t min_bytes) {
    std::size_t bytes = std::max(block_bytes_, min_bytes);
    // Honors the process-wide allocation gate so fault-injection runs can
    // exercise the owner's out-of-memory path deterministically.
    if (alloc_should_fail(bytes)) throw std::bad_alloc();
    blocks_.emplace_back(new unsigned char[bytes]);
    cursor_ = reinterpret_cast<std::uintptr_t>(blocks_.back().get());
    limit_ = cursor_ + bytes;
    bytes_reserved_ += bytes;
  }

  std::size_t block_bytes_;
  std::vector<std::unique_ptr<unsigned char[]>> blocks_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace futrace::support
