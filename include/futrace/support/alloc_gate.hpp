#pragma once

/// \file alloc_gate.hpp
/// Process-wide allocation gate consulted by the library's growable
/// structures (arena blocks, shadow-memory cells) before they reserve more
/// memory. By default the gate is open and the check compiles down to one
/// relaxed load and a predictable branch. The fault-injection subsystem
/// (futrace::inject) installs a callback here to simulate allocation
/// failure deterministically; the gate lives in support so that support
/// never depends on the layers above it.

#include <atomic>
#include <cstddef>

namespace futrace::support {

/// Returns true if the allocation of `bytes` should be denied.
using alloc_gate_fn = bool (*)(std::size_t bytes) noexcept;

/// The installed gate callback slot (nullptr when no gate is installed).
std::atomic<alloc_gate_fn>& alloc_gate() noexcept;

/// True iff a gate is installed and denies this allocation. Callers decide
/// what denial means: the arena throws std::bad_alloc, shadow memory
/// degrades in place.
inline bool alloc_should_fail(std::size_t bytes) noexcept {
  const alloc_gate_fn fn = alloc_gate().load(std::memory_order_acquire);
  return fn != nullptr && fn(bytes);
}

}  // namespace futrace::support
