#pragma once

/// \file small_vector.hpp
/// A vector with inline storage for the first N elements. The detector keeps
/// a non-tree-predecessor list per disjoint set and a reader list per shadow
/// cell; both are empty or tiny for almost every task/location (the paper's
/// #AvgReaders column is < 2 for every benchmark), so inline storage removes
/// the allocation from the common path.
///
/// Only the operations the library needs are provided; the element type must
/// be trivially copyable (task pointers, ids, small PODs), which keeps the
/// grow/relocate path a memcpy.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <new>
#include <type_traits>

#include "futrace/support/assert.hpp"

namespace futrace::support {

template <typename T, std::size_t N>
class small_vector {
  static_assert(std::is_trivially_copyable_v<T>,
                "small_vector is restricted to trivially copyable elements");
  static_assert(N >= 1, "inline capacity must be at least 1");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  small_vector() noexcept = default;

  small_vector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  small_vector(const small_vector& other) { append(other); }

  small_vector& operator=(const small_vector& other) {
    if (this != &other) {
      clear();
      append(other);
    }
    return *this;
  }

  small_vector(small_vector&& other) noexcept { move_from(std::move(other)); }

  small_vector& operator=(small_vector&& other) noexcept {
    if (this != &other) {
      release();
      move_from(std::move(other));
    }
    return *this;
  }

  ~small_vector() { release(); }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool uses_inline_storage() const noexcept { return data_ == inline_data(); }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }

  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }

  T& operator[](std::size_t i) {
    FUTRACE_DCHECK(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    FUTRACE_DCHECK(i < size_);
    return data_[i];
  }

  T& back() {
    FUTRACE_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }
  const T& back() const {
    FUTRACE_DCHECK(size_ > 0);
    return data_[size_ - 1];
  }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data_[size_++] = v;
  }

  void pop_back() {
    FUTRACE_DCHECK(size_ > 0);
    --size_;
  }

  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  void resize(std::size_t n, const T& fill = T{}) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = n;
  }

  /// Removes the element at index i by swapping the last element into its
  /// place. O(1); does not preserve order. Reader sets are unordered, so the
  /// detector's removal path uses this.
  void erase_unordered(std::size_t i) {
    FUTRACE_DCHECK(i < size_);
    data_[i] = data_[size_ - 1];
    --size_;
  }

  bool contains(const T& v) const {
    return std::find(begin(), end(), v) != end();
  }

  void append(const small_vector& other) {
    reserve(size_ + other.size_);
    std::memcpy(data_ + size_, other.data_, other.size_ * sizeof(T));
    size_ += other.size_;
  }

  friend bool operator==(const small_vector& a, const small_vector& b) {
    return a.size_ == b.size_ &&
           std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  T* inline_data() noexcept { return reinterpret_cast<T*>(inline_storage_); }
  const T* inline_data() const noexcept {
    return reinterpret_cast<const T*>(inline_storage_);
  }

  void grow(std::size_t new_capacity) {
    new_capacity = std::max<std::size_t>(new_capacity, N * 2);
    T* heap = static_cast<T*>(::operator new(new_capacity * sizeof(T)));
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (!uses_inline_storage()) ::operator delete(data_);
    data_ = heap;
    capacity_ = new_capacity;
  }

  void release() noexcept {
    if (!uses_inline_storage()) ::operator delete(data_);
    data_ = inline_data();
    capacity_ = N;
    size_ = 0;
  }

  void move_from(small_vector&& other) noexcept {
    if (other.uses_inline_storage()) {
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
      std::memcpy(data_, other.data_, size_ * sizeof(T));
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace futrace::support
