#pragma once

/// \file ptr_map.hpp
/// Open-addressing hash map keyed by memory addresses, used for shadow
/// memory. One lookup happens on *every* instrumented read and write — the
/// dominant cost in the paper's slowdown numbers — so this avoids the
/// node allocations and pointer chasing of std::unordered_map. Linear
/// probing, power-of-two capacity, 0 as the empty-key sentinel (no valid
/// object lives at address 0).

#include <cstdint>
#include <utility>
#include <vector>

#include "futrace/support/assert.hpp"

namespace futrace::support {

template <typename V>
class ptr_map {
 public:
  explicit ptr_map(std::size_t initial_capacity = 1024) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Returns the value for `key`, default-constructing it if absent.
  /// Grows at 50% load: linear probing stays near one probe (and with
  /// 32-byte slots the occasional second probe shares the cache line).
  V& operator[](const void* key) {
    const std::uintptr_t k = reinterpret_cast<std::uintptr_t>(key);
    FUTRACE_DCHECK(k != 0);
    if ((size_ + 1) * 2 > slots_.size()) grow();
    std::size_t i = index_of(k);
    while (slots_[i].key != 0) {
      if (slots_[i].key == k) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    slots_[i].key = k;
    ++size_;
    return slots_[i].value;
  }

  /// Returns a pointer to the value for `key`, or nullptr if absent.
  V* find(const void* key) {
    const std::uintptr_t k = reinterpret_cast<std::uintptr_t>(key);
    std::size_t i = index_of(k);
    while (slots_[i].key != 0) {
      if (slots_[i].key == k) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  const V* find(const void* key) const {
    return const_cast<ptr_map*>(this)->find(key);
  }

  /// Pre-sizes the table so `expected` entries fit without a rehash (the
  /// 50% load target is preserved). Never shrinks.
  void reserve(std::size_t expected) {
    std::size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Rehashes down to the smallest power-of-two table that still meets the
  /// 50% load target for the current size (floor 16 slots). Epoch
  /// compaction calls this after a workload's peak so the steady-state
  /// table footprint tracks the live entry count, not the high-water mark.
  void shrink() {
    std::size_t cap = 16;
    while (cap < (size_ + 1) * 2) cap <<= 1;
    if (cap < slots_.size()) rehash(cap);
  }

  /// Removes `key` if present; returns true iff an entry was removed.
  /// Backward-shift deletion keeps probe chains intact without tombstones:
  /// every entry after the hole that could have probed past it slides back.
  /// Vacated slots are reset to a default-constructed V so values holding
  /// raw resources (shadow cells' overflow pointers) are not left dangling
  /// in dead slots.
  bool erase(const void* key) {
    const std::uintptr_t k = reinterpret_cast<std::uintptr_t>(key);
    std::size_t i = index_of(k);
    while (slots_[i].key != k) {
      if (slots_[i].key == 0) return false;
      i = (i + 1) & mask_;
    }
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask_;
    while (slots_[j].key != 0) {
      const std::size_t home = index_of(slots_[j].key);
      // Entry j may fill the hole iff the hole lies within j's probe
      // sequence, i.e. cyclic-distance(home → j) covers the hole.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole].key = slots_[j].key;
        slots_[hole].value = std::move(slots_[j].value);
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole].key = 0;
    slots_[hole].value = V{};
    --size_;
    return true;
  }

  /// Calls fn(key_as_void_ptr, value&) for every entry.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& slot : slots_) {
      if (slot.key != 0) {
        fn(reinterpret_cast<const void*>(slot.key), slot.value);
      }
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& slot : slots_) {
      if (slot.key != 0) {
        fn(reinterpret_cast<const void*>(slot.key), slot.value);
      }
    }
  }

  /// Approximate heap footprint of the table itself (not of heap memory the
  /// values may own).
  std::size_t table_bytes() const noexcept {
    return slots_.capacity() * sizeof(slot);
  }

  /// Footprint the table will have after one more insertion, accounting for
  /// the growth step the insert would trigger. Lets byte-capped owners
  /// (shadow memory under a resource limit) refuse the insert instead of
  /// committing to the enlarged table.
  std::size_t bytes_after_insert() const noexcept {
    if ((size_ + 1) * 2 <= slots_.size()) return table_bytes();
    const std::size_t grown =
        slots_.size() < (1u << 22) ? slots_.size() * 4 : slots_.size() * 2;
    return grown * sizeof(slot);
  }

 private:
  struct slot {
    std::uintptr_t key = 0;
    V value{};
  };

  std::size_t index_of(std::uintptr_t k) const noexcept {
    // splitmix64 finalizer as the hash; addresses share low-entropy bits.
    std::uint64_t z = k;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return static_cast<std::size_t>(z) & mask_;
  }

  void grow() {
    // Quadruple while moderate: rehashing is a full zero+copy pass over a
    // table that no longer fits cache, so fewer, bigger growth steps win.
    rehash(slots_.size() < (1u << 22) ? slots_.size() * 4 : slots_.size() * 2);
  }

  void rehash(std::size_t new_capacity) {
    std::vector<slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_capacity);
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (auto& s : old) {
      if (s.key == 0) continue;
      std::size_t i = index_of(s.key);
      while (slots_[i].key != 0) i = (i + 1) & mask_;
      slots_[i].key = s.key;
      slots_[i].value = std::move(s.value);
      ++size_;
    }
  }

  std::vector<slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace futrace::support
