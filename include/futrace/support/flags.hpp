#pragma once

/// \file flags.hpp
/// Minimal command-line flag parsing for the benchmark harnesses and
/// examples: `--name=value` or `--name value`, plus `--help`. The harnesses
/// need size/scale/repeat knobs without pulling in an external dependency.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace futrace::support {

class flag_parser {
 public:
  /// Outcome of a non-exiting parse (try_parse). `ok == false` means an
  /// unknown flag was seen (`error` holds the message); `warnings` collects
  /// recoverable oddities — currently duplicate flag assignments, where the
  /// last value wins but a silent override has historically hidden typoed
  /// benchmark invocations.
  struct parse_result {
    bool ok = true;
    bool help_requested = false;
    std::string error;
    std::vector<std::string> warnings;
  };

  /// Registers a flag with a default value and help text. Returns *this for
  /// chaining. Flags are stringly typed at registration; typed getters parse
  /// on access and abort with a clear message on malformed input.
  flag_parser& define(const std::string& name, const std::string& default_val,
                      const std::string& help);

  /// Parses argv. Unknown flags or `--help` print usage; `--help` exits 0,
  /// unknown flags abort (exit 2). Duplicate assignments keep the last
  /// value and print a warning to stderr. Positional arguments are
  /// collected separately.
  void parse(int argc, char** argv);

  /// parse() without the process-exit side effects, for tests and embedders:
  /// never prints, never exits, reports everything through the result.
  /// Flag values are applied exactly as parse() would apply them (including
  /// last-one-wins duplicates) up to the first unknown flag.
  parse_result try_parse(int argc, char** argv);

  /// Warnings collected by the most recent parse()/try_parse() call.
  const std::vector<std::string>& warnings() const { return warnings_; }

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct flag_info {
    std::string value;
    std::string default_value;
    std::string help;
    bool set = false;  // assigned at least once by the current parse
  };

  std::string program_name_;
  std::map<std::string, flag_info> flags_;
  std::vector<std::string> positional_;
  std::vector<std::string> warnings_;
};

}  // namespace futrace::support
