#pragma once

/// \file flags.hpp
/// Minimal command-line flag parsing for the benchmark harnesses and
/// examples: `--name=value` or `--name value`, plus `--help`. The harnesses
/// need size/scale/repeat knobs without pulling in an external dependency.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace futrace::support {

class flag_parser {
 public:
  /// Registers a flag with a default value and help text. Returns *this for
  /// chaining. Flags are stringly typed at registration; typed getters parse
  /// on access and abort with a clear message on malformed input.
  flag_parser& define(const std::string& name, const std::string& default_val,
                      const std::string& help);

  /// Parses argv. Unknown flags or `--help` print usage; `--help` exits 0,
  /// unknown flags abort. Positional arguments are collected separately.
  void parse(int argc, char** argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct flag_info {
    std::string value;
    std::string default_value;
    std::string help;
  };

  std::string program_name_;
  std::map<std::string, flag_info> flags_;
  std::vector<std::string> positional_;
};

}  // namespace futrace::support
