#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation (splitmix64 seeding feeding
/// xoshiro256**). Workload generators and the property-test program generator
/// must be reproducible across runs and platforms, so the library does not
/// use std::mt19937's unspecified seeding paths.

#include <cstdint>

namespace futrace::support {

/// splitmix64: used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna; public domain reference algorithm.
class xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr xoshiro256(std::uint64_t seed = 0xF07142D2ED527D21ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  constexpr std::uint64_t operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero. Uses Lemire's
  /// multiply-shift rejection-free mapping (bias < 2^-64, irrelevant here).
  constexpr std::uint64_t below(std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace futrace::support
