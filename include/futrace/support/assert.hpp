#pragma once

/// \file assert.hpp
/// Always-on checked assertions (FUTRACE_CHECK) and debug-only assertions
/// (FUTRACE_DCHECK). A failed check prints the condition, location, and an
/// optional message, then aborts. Race-detection correctness depends on
/// internal invariants (interval-label subsumption, disjoint-set metadata
/// residency), so the library keeps FUTRACE_CHECK enabled in release builds.

#include <cstdint>
#include <string>

namespace futrace::support {

/// Terminates the process after printing a diagnostic for a failed check.
[[noreturn]] void check_failed(const char* condition, const char* file,
                               int line, const std::string& message);

}  // namespace futrace::support

#define FUTRACE_CHECK(cond)                                                 \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::futrace::support::check_failed(#cond, __FILE__, __LINE__, "");      \
    }                                                                       \
  } while (0)

#define FUTRACE_CHECK_MSG(cond, msg)                                        \
  do {                                                                      \
    if (!(cond)) [[unlikely]] {                                             \
      ::futrace::support::check_failed(#cond, __FILE__, __LINE__, (msg));   \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define FUTRACE_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define FUTRACE_DCHECK(cond) FUTRACE_CHECK(cond)
#endif
