#pragma once

/// \file bench_main.hpp
/// Shared main() for the google-benchmark binaries. Adds one repo-level
/// convention on top of the stock driver: `--json[=path]` writes the run as
/// machine-readable JSON (default path BENCH_<binary>.json, consumable by
/// tools/bench_diff) by expanding to google-benchmark's
/// --benchmark_out/--benchmark_out_format flags. All other arguments pass
/// through untouched.

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

namespace futrace::bench {

inline int bench_main(int argc, char** argv, const char* default_json_path) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      args.emplace_back(std::string("--benchmark_out=") + default_json_path);
      args.emplace_back("--benchmark_out_format=json");
    } else if (arg.rfind("--json=", 0) == 0) {
      args.emplace_back("--benchmark_out=" + arg.substr(7));
      args.emplace_back("--benchmark_out_format=json");
    } else {
      args.push_back(arg);
    }
  }

  std::vector<char*> cargs;
  cargs.reserve(args.size());
  for (std::string& a : args) cargs.push_back(a.data());
  int cargc = static_cast<int>(cargs.size());

  benchmark::Initialize(&cargc, cargs.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace futrace::bench

/// Expands to a main() that honors `--json[=path]` with the given default
/// output path, e.g. FUTRACE_BENCH_MAIN("BENCH_micro_shadow.json").
#define FUTRACE_BENCH_MAIN(default_json_path)                            \
  int main(int argc, char** argv) {                                      \
    return futrace::bench::bench_main(argc, argv, default_json_path);    \
  }
