// Micro-benchmarks for the shadow-memory path: one ptr_map lookup plus
// reader/writer checks per instrumented access — the dominant term in the
// Table 2 slowdowns.

#include <benchmark/benchmark.h>

#include <vector>

#include "futrace/detect/race_detector.hpp"
#include "futrace/support/ptr_map.hpp"

namespace {

using futrace::access_site;
using futrace::detect::race_detector;
using futrace::support::ptr_map;

void BM_PtrMapHit(benchmark::State& state) {
  ptr_map<int> map;
  std::vector<int> keys(4096);
  for (auto& k : keys) map[&k] = 1;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(&keys[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PtrMapHit);

void BM_PtrMapMiss(benchmark::State& state) {
  ptr_map<int> map;
  std::vector<int> keys(4096), absent(4096);
  for (auto& k : keys) map[&k] = 1;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(&absent[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PtrMapMiss);

// Detector driven directly through its observer interface: repeated writes
// by one task (the same-task fast path every sequential program hits).
void BM_DetectorSameTaskWrites(benchmark::State& state) {
  race_detector det;
  det.on_program_start(0);
  std::vector<int> cells(1024);
  const access_site site{"bench", 1};
  std::size_t i = 0;
  for (auto _ : state) {
    det.on_write(0, &cells[i], sizeof(int), site);
    i = (i + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorSameTaskWrites);

// Read path with a prior ordered writer: one PRECEDE per read.
void BM_DetectorOrderedReadAfterWrite(benchmark::State& state) {
  race_detector det;
  det.on_program_start(0);
  std::vector<int> cells(1024);
  const access_site site{"bench", 1};
  for (auto& c : cells) det.on_write(0, &c, sizeof(int), site);
  std::size_t i = 0;
  for (auto _ : state) {
    det.on_read(0, &cells[i], sizeof(int), site);
    i = (i + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorOrderedReadAfterWrite);

// Write path that must test a reader set of the given size (the v*(f+1)
// term): future readers joined through tree joins.
void BM_DetectorWriteOverFutureReaders(benchmark::State& state) {
  const auto readers = static_cast<std::size_t>(state.range(0));
  race_detector det;
  det.on_program_start(0);
  int cell = 0;
  const access_site site{"bench", 1};
  det.on_write(0, &cell, sizeof(int), site);
  std::vector<futrace::task_id> tasks;
  for (std::size_t i = 0; i < readers; ++i) {
    const futrace::task_id t = static_cast<futrace::task_id>(i + 1);
    det.on_task_spawn(0, t, futrace::task_kind::future);
    det.on_read(t, &cell, sizeof(int), site);
    det.on_task_end(t);
    tasks.push_back(t);
  }
  for (const auto t : tasks) det.on_get(0, t);  // tree joins: all ordered
  for (auto _ : state) {
    det.on_write(0, &cell, sizeof(int), site);
    state.PauseTiming();
    // Restore the reader set so every iteration pays the same cost.
    for (const auto t : tasks) det.on_read(t, &cell, sizeof(int), site);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorWriteOverFutureReaders)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
