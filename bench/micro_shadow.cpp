// Micro-benchmarks for the shadow-memory path: one ptr_map lookup plus
// reader/writer checks per instrumented access — the dominant term in the
// Table 2 slowdowns.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_main.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/detect/shadow_memory.hpp"
#include "futrace/runtime/shared_regions.hpp"
#include "futrace/support/ptr_map.hpp"

namespace {

using futrace::access_site;
using futrace::detect::race_detector;
using futrace::detect::shadow_memory;
using futrace::support::ptr_map;

void BM_PtrMapHit(benchmark::State& state) {
  ptr_map<int> map;
  std::vector<int> keys(4096);
  for (auto& k : keys) map[&k] = 1;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(&keys[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PtrMapHit);

void BM_PtrMapMiss(benchmark::State& state) {
  ptr_map<int> map;
  std::vector<int> keys(4096), absent(4096);
  for (auto& k : keys) map[&k] = 1;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(&absent[i]));
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PtrMapMiss);

// Shadow lookup through the hashed ptr_map tier (scalar shared<T> path).
void BM_ShadowHashedAccess(benchmark::State& state) {
  shadow_memory shadow;
  std::vector<int> cells(4096);
  for (auto& c : cells) shadow.access(&c).writer = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shadow.access(&cells[i]).writer);
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ShadowHashedAccess);

// Same lookup served by a direct-mapped slab (registered shared_array range):
// one shift+index instead of a hash probe.
void BM_ShadowDirectAccess(benchmark::State& state) {
  std::vector<int> cells(4096);
  futrace::detail::register_shared_region(
      cells.data(), cells.size() * sizeof(int), sizeof(int));
  shadow_memory shadow;
  for (auto& c : cells) shadow.access(&c).writer = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shadow.access(&cells[i]).writer);
    i = (i + 1) & 4095;
  }
  state.SetItemsProcessed(state.iterations());
  futrace::detail::unregister_shared_region(cells.data());
}
BENCHMARK(BM_ShadowDirectAccess);

// Detector driven directly through its observer interface: repeated writes
// by one task (the same-task fast path every sequential program hits).
void BM_DetectorSameTaskWrites(benchmark::State& state) {
  race_detector det;
  det.on_program_start(0);
  std::vector<int> cells(1024);
  const access_site site{"bench", 1};
  std::size_t i = 0;
  for (auto _ : state) {
    det.on_write(0, &cells[i], sizeof(int), site);
    i = (i + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorSameTaskWrites);

// Read path with a prior ordered writer: one PRECEDE per read.
void BM_DetectorOrderedReadAfterWrite(benchmark::State& state) {
  race_detector det;
  det.on_program_start(0);
  std::vector<int> cells(1024);
  const access_site site{"bench", 1};
  for (auto& c : cells) det.on_write(0, &c, sizeof(int), site);
  std::size_t i = 0;
  for (auto _ : state) {
    det.on_read(0, &cells[i], sizeof(int), site);
    i = (i + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorOrderedReadAfterWrite);

// Write path that must test a reader set of the given size (the v*(f+1)
// term): future readers joined through tree joins.
void BM_DetectorWriteOverFutureReaders(benchmark::State& state) {
  const auto readers = static_cast<std::size_t>(state.range(0));
  race_detector det;
  det.on_program_start(0);
  int cell = 0;
  const access_site site{"bench", 1};
  det.on_write(0, &cell, sizeof(int), site);
  std::vector<futrace::task_id> tasks;
  for (std::size_t i = 0; i < readers; ++i) {
    const futrace::task_id t = static_cast<futrace::task_id>(i + 1);
    det.on_task_spawn(0, t, futrace::task_kind::future);
    det.on_read(t, &cell, sizeof(int), site);
    det.on_task_end(t);
    tasks.push_back(t);
  }
  for (const auto t : tasks) det.on_get(0, t);  // tree joins: all ordered
  for (auto _ : state) {
    det.on_write(0, &cell, sizeof(int), site);
    state.PauseTiming();
    // Restore the reader set so every iteration pays the same cost.
    for (const auto t : tasks) det.on_read(t, &cell, sizeof(int), site);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorWriteOverFutureReaders)->Arg(1)->Arg(4)->Arg(16);

// Reads elided by the per-cell (task, step) stamp: after the first read of
// each address, subsequent same-step reads skip the PRECEDE machinery.
void BM_DetectorStampElidedReads(benchmark::State& state) {
  race_detector det;
  det.on_program_start(0);
  int cell = 0;
  const access_site site{"bench", 1};
  det.on_write(0, &cell, sizeof(int), site);
  det.on_read(0, &cell, sizeof(int), site);  // first read sets the stamp
  for (auto _ : state) {
    det.on_read(0, &cell, sizeof(int), site);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorStampElidedReads);

// The same loop with fast paths disabled: every read re-runs the full
// reader-set + PRECEDE check. The gap to BM_DetectorStampElidedReads is the
// stamp's payoff.
void BM_DetectorRepeatReadsNoFastpath(benchmark::State& state) {
  race_detector det({.enable_fastpath = false});
  det.on_program_start(0);
  int cell = 0;
  const access_site site{"bench", 1};
  det.on_write(0, &cell, sizeof(int), site);
  det.on_read(0, &cell, sizeof(int), site);
  for (auto _ : state) {
    det.on_read(0, &cell, sizeof(int), site);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorRepeatReadsNoFastpath);

}  // namespace

FUTRACE_BENCH_MAIN("BENCH_micro_shadow.json");
