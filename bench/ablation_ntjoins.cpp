// Ablation backing the paper's §5 observation that "slowdowns are not
// significantly impacted by the number of non-tree edges ... usually only
// requiring 1-2 hops involving non-tree edges":
//
//  (a) sweep the number of non-tree joins at constant shared-memory traffic
//      (future chain: every task joins its predecessor),
//  (b) sweep the *hop distance* a PRECEDE query must walk (task i joins
//      task i-1, but the queried access pairs are k hops apart),
//  (c) sweep the number of parallel future readers per location (the
//      v·(f+1) term of Theorem 1's space/time bound).
//
// Reported per configuration: detection time, PRECEDE queries, non-tree
// edges walked per query — the direct cost drivers in Algorithm 10.

#include <cstdio>
#include <fstream>
#include <vector>

#include "futrace/detect/race_detector.hpp"
#include "futrace/obs/metrics.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"
#include "futrace/support/json.hpp"
#include "futrace/support/table.hpp"
#include "futrace/support/timer.hpp"
#include "futrace/workloads/jacobi.hpp"

namespace {

using namespace futrace;
using support::stopwatch;
using support::text_table;

struct run_stats {
  double ms = 0;
  detect::detector_counters counters;
  dsr::reachability_stats reach;
};

template <typename Fn>
run_stats run_detected(const detect::race_detector::options& opts,
                       Fn&& program) {
  detect::race_detector det(opts);
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  stopwatch timer;
  rt.run(std::forward<Fn>(program));
  run_stats s;
  s.ms = timer.elapsed_ms();
  s.counters = det.counters();
  s.reach = det.reachability_stats();
  if (det.race_detected()) {
    std::fprintf(stderr, "ablation workload unexpectedly racy\n");
    std::exit(1);
  }
  return s;
}

double per_query(std::uint64_t total, std::uint64_t queries) {
  return queries == 0 ? 0.0
                      : static_cast<double>(total) /
                            static_cast<double>(queries);
}

// (a)+(b): chain of future tasks; task i gets task i-hop, then reads the
// cells written by that predecessor and writes its own.
void chain_workload(std::size_t tasks, std::size_t hop,
                    std::size_t accesses_per_task) {
  shared_array<int> cells(tasks * accesses_per_task, 0);
  std::vector<future<void>> futs(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    future<void> dep = i >= hop ? futs[i - hop] : future<void>{};
    futs[i] = async_future([&cells, i, hop, accesses_per_task, dep] {
      if (dep.valid()) dep.get();
      for (std::size_t a = 0; a < accesses_per_task; ++a) {
        if (i >= hop) {
          (void)cells.read((i - hop) * accesses_per_task + a);
        }
        cells.write(i * accesses_per_task + a, static_cast<int>(i));
      }
    });
  }
  for (std::size_t i = tasks - hop > tasks ? 0 : tasks - hop; i < tasks; ++i) {
    futs[i].get();
  }
  // Join stragglers so the implicit finish is quiet about them.
  for (auto& f : futs) f.get();
}

// (b): chain where every task joins only its immediate predecessor but reads
// cells written `back` tasks earlier — the PRECEDE query must walk `back`
// non-tree edges to prove the transitive ordering.
void chain_read_back_workload(std::size_t tasks, std::size_t back,
                              std::size_t accesses_per_task) {
  shared_array<int> cells(tasks * accesses_per_task, 0);
  std::vector<future<void>> futs(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    future<void> dep = i >= 1 ? futs[i - 1] : future<void>{};
    futs[i] = async_future([&cells, i, back, accesses_per_task, dep] {
      if (dep.valid()) dep.get();
      for (std::size_t a = 0; a < accesses_per_task; ++a) {
        if (i >= back) {
          (void)cells.read((i - back) * accesses_per_task + a);
        }
        cells.write(i * accesses_per_task + a, static_cast<int>(i));
      }
    });
  }
  for (auto& f : futs) f.get();
}

// (c): f parallel future readers of one location, then an ordered writer.
void reader_fanout_workload(std::size_t readers, std::size_t rounds) {
  shared_array<int> cell(1, 7);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<future<int>> rs(readers);
    for (std::size_t i = 0; i < readers; ++i) {
      rs[i] = async_future([&cell] { return cell.read(0); });
    }
    for (auto& r : rs) (void)r.get();
    cell.write(0, static_cast<int>(round));
  }
}

}  // namespace

int main(int argc, char** argv) {
  support::flag_parser flags;
  flags.define("tasks", "4000", "tasks in the future chain")
      .define("accesses", "64", "shared accesses per task")
      .define("json", "false", "write machine-readable results")
      .define("json-out", "BENCH_ablation_ntjoins.json",
              "path for --json output")
      .define("no-fastpath", "false",
              "disable the direct/memo/stamp fast paths")
      .define("precede-backend", "graph",
              "PRECEDE backend: graph, depa, vc, or all (one sweep per "
              "backend; every JSON row carries its backend)")
      .define("trace", "",
              "write a Chrome trace-event JSON of each detected run to this "
              "path (runs overwrite; the file holds the last sweep point)");
  flags.parse(argc, argv);
  const auto tasks = static_cast<std::size_t>(flags.get_int("tasks"));
  const auto accesses = static_cast<std::size_t>(flags.get_int("accesses"));
  detect::race_detector::options opts;
  opts.enable_fastpath = !flags.get_bool("no-fastpath");
  opts.trace_path = flags.get_string("trace");

  const std::string backend_flag = flags.get_string("precede-backend");
  std::vector<dsr::backend_kind> backends;
  if (backend_flag == "all") {
    backends = {dsr::backend_kind::graph, dsr::backend_kind::depa,
                dsr::backend_kind::vector_clock};
  } else {
    dsr::backend_kind kind;
    if (!dsr::parse_backend_kind(backend_flag, &kind)) {
      std::fprintf(stderr,
                   "unknown --precede-backend '%s' (graph, depa, vc, all)\n",
                   backend_flag.c_str());
      return 2;
    }
    backends = {kind};
  }

  using support::json;
  json doc = json::object();
  doc["bench"] = "ablation_ntjoins";
  doc["tasks"] = static_cast<std::uint64_t>(tasks);
  doc["accesses"] = static_cast<std::uint64_t>(accesses);
  doc["fastpath"] = opts.enable_fastpath;
  doc["backend"] = backend_flag;
  json sweep_nt = json::array();
  json sweep_hop = json::array();
  json sweep_readers = json::array();
  json sweep_jacobi = json::array();

  for (const dsr::backend_kind backend : backends) {
    opts.precede_backend = backend;
    const char* bname = dsr::backend_kind_name(backend);
    if (backends.size() > 1) {
      std::printf("==== PRECEDE backend: %s ====\n\n", bname);
    }

    {
      text_table table({"#NTJoins", "#SharedMem", "Time(ms)",
                        "PrecedeQueries", "NtEdges/query",
                        "VisitSteps/query"});
      for (const std::size_t n : {0ul, 500ul, 1000ul, 2000ul, 4000ul}) {
        // Constant total work: n chained future tasks plus (tasks - n)
        // independent ones.
        const std::size_t chain = n == 0 ? 1 : n;
        run_stats s = run_detected(opts, [&] {
          chain_workload(chain, 1, accesses * tasks / chain);
        });
        table.add_row(
            {text_table::with_commas(s.counters.non_tree_joins),
             text_table::with_commas(s.counters.shared_mem_accesses),
             text_table::fixed(s.ms, 1),
             text_table::with_commas(s.reach.precede_queries),
             text_table::fixed(
                 per_query(s.reach.nt_edges_walked, s.reach.precede_queries),
                 2),
             text_table::fixed(
                 per_query(s.reach.visit_steps, s.reach.precede_queries),
                 2)});
        json row = json::object();
        row["backend"] = bname;
        row["nt_joins"] = s.counters.non_tree_joins;
        row["shared_mem_accesses"] = s.counters.shared_mem_accesses;
        row["time_ms"] = s.ms;
        row["precede_queries"] = s.reach.precede_queries;
        row["nt_edges_per_query"] =
            per_query(s.reach.nt_edges_walked, s.reach.precede_queries);
        row["visit_steps_per_query"] =
            per_query(s.reach.visit_steps, s.reach.precede_queries);
        row["label_bytes"] = s.reach.label_bytes;
        row["label_comparisons_per_query"] =
            per_query(s.reach.label_comparisons, s.reach.precede_queries);
        row["frontier_searches_per_query"] =
            per_query(s.reach.frontier_searches, s.reach.precede_queries);
        row["counters"] = obs::counters_json(s.counters);
        sweep_nt.push_back(row);
      }
      std::printf("(a) Sweep of non-tree join count at constant shared-memory "
                  "traffic (paper §5: NT joins do not dominate)\n\n");
      std::fputs(table.render().c_str(), stdout);
    }

    {
      text_table table({"HopDistance", "Time(ms)", "NtEdges/query",
                        "VisitSteps/query", "Frontier/query"});
      for (const std::size_t hop : {1ul, 2ul, 4ul, 16ul, 64ul, 256ul}) {
        run_stats s = run_detected(
            opts, [&] { chain_read_back_workload(tasks, hop, accesses); });
        table.add_row(
            {std::to_string(hop), text_table::fixed(s.ms, 1),
             text_table::fixed(
                 per_query(s.reach.nt_edges_walked, s.reach.precede_queries),
                 2),
             text_table::fixed(
                 per_query(s.reach.visit_steps, s.reach.precede_queries), 2),
             text_table::fixed(per_query(s.reach.frontier_searches,
                                         s.reach.precede_queries),
                               2)});
        json row = json::object();
        row["backend"] = bname;
        row["hop_distance"] = static_cast<std::uint64_t>(hop);
        row["time_ms"] = s.ms;
        row["nt_edges_per_query"] =
            per_query(s.reach.nt_edges_walked, s.reach.precede_queries);
        row["visit_steps_per_query"] =
            per_query(s.reach.visit_steps, s.reach.precede_queries);
        row["label_bytes"] = s.reach.label_bytes;
        row["label_comparisons_per_query"] =
            per_query(s.reach.label_comparisons, s.reach.precede_queries);
        row["frontier_searches_per_query"] =
            per_query(s.reach.frontier_searches, s.reach.precede_queries);
        row["counters"] = obs::counters_json(s.counters);
        sweep_hop.push_back(row);
      }
      std::printf("\n(b) Sweep of producer-consumer hop distance (paper §5: "
                  "benchmarks need 1-2 hops; cost grows with distance)\n\n");
      std::fputs(table.render().c_str(), stdout);
    }

    {
      text_table table({"FutureReaders", "#AvgReaders", "Time(ms)",
                        "PrecedeQueries"});
      for (const std::size_t readers : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
        run_stats s = run_detected(opts, [&] {
          reader_fanout_workload(readers, 3000 / readers);
        });
        table.add_row({std::to_string(readers),
                       text_table::fixed(s.counters.avg_readers, 2),
                       text_table::fixed(s.ms, 1),
                       text_table::with_commas(s.reach.precede_queries)});
        json row = json::object();
        row["backend"] = bname;
        row["future_readers"] = static_cast<std::uint64_t>(readers);
        row["avg_readers"] = s.counters.avg_readers;
        row["time_ms"] = s.ms;
        row["precede_queries"] = s.reach.precede_queries;
        row["counters"] = obs::counters_json(s.counters);
        sweep_readers.push_back(row);
      }
      std::printf("\n(c) Sweep of parallel future readers per location (the "
                  "v*(f+1) term of Theorem 1)\n\n");
      std::fputs(table.render().c_str(), stdout);
    }

    {
      // (d) Jacobi with a residual convergence window: a real stencil
      // workload whose extra reads force transitive non-tree queries up to
      // `window` hops deep (single tile, so the per-iteration chain is the
      // only ordering path). This is the Jacobi configuration where the
      // PRECEDE backend dominates time-to-verdict.
      text_table table({"ResidualWindow", "Time(ms)", "PrecedeQueries",
                        "NtEdges/query", "VisitSteps/query"});
      for (const std::size_t win : {0ul, 16ul, 64ul, 256ul}) {
        workloads::jacobi_workload w(workloads::jacobi_config{
            .n = 34, .tile = 32, .iterations = 400, .residual_window = win});
        run_stats s = run_detected(opts, [&] { w(); });
        if (!w.verify()) {
          std::fprintf(stderr, "jacobi residual sweep failed verification\n");
          return 1;
        }
        table.add_row(
            {std::to_string(win), text_table::fixed(s.ms, 1),
             text_table::with_commas(s.reach.precede_queries),
             text_table::fixed(
                 per_query(s.reach.nt_edges_walked, s.reach.precede_queries),
                 2),
             text_table::fixed(
                 per_query(s.reach.visit_steps, s.reach.precede_queries),
                 2)});
        json row = json::object();
        row["backend"] = bname;
        row["residual_window"] = static_cast<std::uint64_t>(win);
        row["time_ms"] = s.ms;
        row["precede_queries"] = s.reach.precede_queries;
        row["nt_edges_per_query"] =
            per_query(s.reach.nt_edges_walked, s.reach.precede_queries);
        row["visit_steps_per_query"] =
            per_query(s.reach.visit_steps, s.reach.precede_queries);
        row["label_bytes"] = s.reach.label_bytes;
        row["label_comparisons_per_query"] =
            per_query(s.reach.label_comparisons, s.reach.precede_queries);
        row["frontier_searches_per_query"] =
            per_query(s.reach.frontier_searches, s.reach.precede_queries);
        row["counters"] = obs::counters_json(s.counters);
        sweep_jacobi.push_back(row);
      }
      std::printf("\n(d) Jacobi with a residual convergence window (deep "
                  "transitive non-tree queries on a real stencil)\n\n");
      std::fputs(table.render().c_str(), stdout);
    }
  }

  if (flags.get_bool("json")) {
    doc["sweep_nt_joins"] = sweep_nt;
    doc["sweep_hop_distance"] = sweep_hop;
    doc["sweep_future_readers"] = sweep_readers;
    doc["sweep_jacobi_residual"] = sweep_jacobi;
    const std::string path = flags.get_string("json-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 1;
    }
    out << doc.dump();
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
