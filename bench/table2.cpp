// Regenerates Table 2 of the paper: for each benchmark, the dynamic task
// count, non-tree join count, shared-memory access count, average stored
// readers, sequential (serial elision) time, race-detection time, and the
// slowdown ratio.
//
// Absolute times are machine-dependent (the paper used HJ on a 16-core
// Ivybridge JVM; this is ahead-of-time C++), so the column to compare is
// *Slowdown* and the structural counters. Paper values are printed alongside
// for reference. Sizes default to a laptop-friendly scale; use --scale (and
// --repeats) to grow toward the paper's inputs.

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>

#include "futrace/detect/pipeline.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/obs/metrics.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"
#include "futrace/support/json.hpp"
#include "futrace/support/stats.hpp"
#include "futrace/support/table.hpp"
#include "futrace/support/timer.hpp"
#include "futrace/workloads/workloads.hpp"

namespace {

using futrace::support::sample_set;
using futrace::support::stopwatch;
using futrace::support::text_table;

struct paper_row {
  const char* tasks;
  const char* ntjoins;
  const char* slowdown;
};

struct row_result {
  std::string name;
  futrace::detect::detector_counters counters;
  futrace::detect::pipeline_stats pipe{};
  bool pipe_mode = false;  // row ran with --detect-threads > 0
  double seq_ms = 0;
  double racedet_ms = 0;
  bool verified = false;
  paper_row paper;

  double slowdown() const { return seq_ms > 0 ? racedet_ms / seq_ms : 0; }
  // Fast-path hit rates (see DESIGN.md "Performance architecture"); the
  // formulas live in obs/metrics so table cells, bench JSON, and registry
  // snapshots can never drift apart.
  double direct_rate() const { return futrace::obs::direct_hit_rate(counters); }
  double memo_rate() const { return futrace::obs::memo_hit_rate(counters); }
  double stamp_rate() const { return futrace::obs::stamp_hit_rate(counters); }
  double range_rate() const { return futrace::obs::range_hit_rate(counters); }
};

/// Global bench configuration shared by every row.
struct bench_config {
  int repeats = 3;
  bool fastpath = true;
  bool ranges = true;
  std::size_t shadow_hint = 0;  // 0 = use the per-row workload hint
  unsigned detect_threads = 0;  // 0 = inline detector, N = pipelined
  futrace::dsr::backend_kind backend = futrace::dsr::backend_kind::graph;
  std::string trace_path;       // --trace=FILE: Chrome trace of the last rep
};

// Runs one benchmark in both configurations. `make` returns a fresh workload
// object; workloads are single-use because shadow memory is keyed by the
// addresses the run touches. `workload_hint` is the expected distinct
// location count, used to pre-size shadow storage unless --shadow-hint
// overrides it.
template <typename Make>
row_result run_row(const std::string& name, Make make,
                   const bench_config& cfg, std::size_t workload_hint,
                   paper_row paper) {
  row_result row;
  row.name = name;
  row.paper = paper;

  sample_set seq_times;
  for (int r = 0; r < cfg.repeats; ++r) {
    auto w = make();
    futrace::runtime rt({.mode = futrace::exec_mode::serial_elision});
    stopwatch timer;
    rt.run([&] { (*w)(); });
    seq_times.add(timer.elapsed_ms());
    if (r == 0) row.verified = w->verify();
  }

  futrace::detect::race_detector::options det_opts;
  det_opts.enable_fastpath = cfg.fastpath;
  det_opts.enable_range_checks = cfg.ranges;
  det_opts.shadow_reserve =
      cfg.shadow_hint != 0 ? cfg.shadow_hint : workload_hint;
  det_opts.detect_threads = cfg.detect_threads;
  det_opts.precede_backend = cfg.backend;
  row.pipe_mode = cfg.detect_threads > 0;

  // The timed region covers run *and* verdict: in pipelined mode the first
  // query drains the rings and joins the checkers, so the measurement is
  // end-to-end time-to-verdict, not just time-to-last-event.
  sample_set det_times;
  for (int r = 0; r < cfg.repeats; ++r) {
    auto w = make();
    futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
    // Only the final repetition traces, so the exported timeline is one
    // clean run (and earlier timed reps stay unperturbed).
    det_opts.trace_path =
        r == cfg.repeats - 1 ? cfg.trace_path : std::string();
    if (row.pipe_mode) {
      futrace::detect::pipelined_detector det(det_opts);
      rt.add_observer(&det);
      stopwatch timer;
      rt.run([&] { (*w)(); });
      const bool raced = det.race_detected();
      det_times.add(timer.elapsed_ms());
      row.verified = row.verified && w->verify() && !raced;
      if (r == cfg.repeats - 1) {
        row.counters = det.counters();
        row.pipe = det.pipe_stats();
      }
    } else {
      futrace::detect::race_detector det(det_opts);
      rt.add_observer(&det);
      stopwatch timer;
      rt.run([&] { (*w)(); });
      const bool raced = det.race_detected();
      det_times.add(timer.elapsed_ms());
      row.verified = row.verified && w->verify() && !raced;
      if (r == cfg.repeats - 1) row.counters = det.counters();
    }
  }

  row.seq_ms = seq_times.mean();
  row.racedet_ms = det_times.mean();
  return row;
}

futrace::support::json row_to_json(const row_result& r) {
  using futrace::support::json;
  json row = json::object();
  row["name"] = r.name;
  row["verified"] = r.verified;
  row["seq_ms"] = r.seq_ms;
  row["racedet_ms"] = r.racedet_ms;
  row["slowdown"] = r.slowdown();
  // The canonical sub-object schemas come from obs/metrics — the same keys,
  // order, and values as every other bench emitter and the checked-in
  // baselines (bench_diff gates on the paper counters within them).
  row["counters"] = futrace::obs::counters_json(r.counters);
  row["rates"] = futrace::obs::rates_json(r.counters);
  if (r.pipe_mode) {
    // Ring/fill metrics are scheduling-dependent (bench_diff treats
    // occupancy/backpressure as advisory); pipe_events and inline_fallbacks
    // are deterministic and gate normally.
    row["pipe"] = futrace::obs::pipe_json(r.pipe);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  futrace::support::flag_parser flags;
  flags.define("scale", "1", "size multiplier toward the paper's inputs")
      .define("repeats", "3", "timed repetitions per configuration")
      .define("rows", "all",
              "comma-free row filter substring (e.g. 'crypt', 'jacobi')")
      .define("json", "false", "write machine-readable results")
      .define("json-out", "BENCH_table2.json", "path for --json output")
      .define("no-fastpath", "false",
              "disable the direct/memo/stamp fast paths (baseline mode)")
      .define("no-ranges", "false",
              "decompose bulk accesses per element (PR 2 scalar path)")
      .define("shadow-hint", "0",
              "pre-size shadow storage for this many locations "
              "(0 = per-row workload estimate)")
      .define("detect-threads", "0",
              "stream events to N address-sharded checker threads "
              "(0 = inline detection on the execution thread)")
      .define("precede-backend", "graph",
              "PRECEDE backend: graph (paper search), depa (fork-path "
              "labels), vc (vector clocks)")
      .define("trace", "",
              "write a Chrome trace-event JSON (Perfetto-loadable) of each "
              "row's final timed repetition to this path; rows overwrite, "
              "so combine with --rows to pick one workload");
  flags.parse(argc, argv);
  const auto scale = static_cast<std::size_t>(flags.get_int("scale"));
  const std::string filter = flags.get_string("rows");
  const bool emit_json = flags.get_bool("json");
  const std::string json_path = flags.get_string("json-out");

  bench_config cfg;
  cfg.repeats = static_cast<int>(flags.get_int("repeats"));
  cfg.fastpath = !flags.get_bool("no-fastpath");
  cfg.ranges = !flags.get_bool("no-ranges");
  cfg.shadow_hint = static_cast<std::size_t>(flags.get_int("shadow-hint"));
  cfg.detect_threads = static_cast<unsigned>(flags.get_int("detect-threads"));
  if (!futrace::dsr::parse_backend_kind(flags.get_string("precede-backend"),
                                        &cfg.backend)) {
    std::fprintf(stderr, "unknown --precede-backend '%s' (graph, depa, vc)\n",
                 flags.get_string("precede-backend").c_str());
    return 2;
  }
  cfg.trace_path = flags.get_string("trace");

  using namespace futrace::workloads;
  std::vector<row_result> rows;
  auto want = [&](const char* name) {
    return filter == "all" || std::string(name).find(filter) !=
                                  std::string::npos;
  };

  std::size_t pow2_scale = 1;
  while (pow2_scale * 2 <= scale) pow2_scale *= 2;

  // Per-row workload hints: expected distinct shared locations, used to
  // pre-size shadow storage (see options::shadow_reserve).
  if (want("Series-af")) {
    rows.push_back(run_row(
        "Series-af",
        [&] {
          return std::make_unique<series_workload>(series_config{
              .coefficients = 2000 * scale, .integration_points = 150});
        },
        cfg, 4000 * scale, {"999,999", "0", "1.00"}));
  }
  if (want("Series-future")) {
    rows.push_back(run_row(
        "Series-future",
        [&] {
          return std::make_unique<series_workload>(
              series_config{.coefficients = 2000 * scale,
                            .integration_points = 150,
                            .use_futures = true});
        },
        cfg, 4000 * scale, {"999,999", "0", "1.00"}));
  }
  if (want("Crypt-af")) {
    rows.push_back(run_row(
        "Crypt-af",
        [&] {
          return std::make_unique<crypt_workload>(
              crypt_config{.bytes = 262144 * scale});
        },
        cfg, 3 * 262144 * scale, {"12,500,000", "0", "7.77"}));
  }
  if (want("Crypt-future")) {
    rows.push_back(run_row(
        "Crypt-future",
        [&] {
          return std::make_unique<crypt_workload>(crypt_config{
              .bytes = 262144 * scale, .use_futures = true});
        },
        cfg, 3 * 262144 * scale, {"12,500,000", "0", "8.26"}));
  }
  if (want("Jacobi")) {
    const std::size_t n = 256 * pow2_scale + 2;
    rows.push_back(run_row(
        "Jacobi",
        [&, n] {
          return std::make_unique<jacobi_workload>(
              jacobi_config{.n = n, .tile = 32, .iterations = 8});
        },
        cfg, 2 * n * n, {"8,192", "34,944", "8.05"}));
  }
  if (want("Smith-Waterman")) {
    const std::size_t dim = 1000 * scale;
    rows.push_back(run_row(
        "Smith-Waterman",
        [&, dim] {
          return std::make_unique<sw_workload>(
              sw_config{.rows = dim, .cols = dim, .tile = 50});
        },
        cfg, (dim + 1) * (dim + 1), {"1,608", "4,641", "9.92"}));
  }
  if (want("Strassen")) {
    const std::size_t n = 128 * pow2_scale;
    rows.push_back(run_row(
        "Strassen",
        [&, n] {
          return std::make_unique<strassen_workload>(
              strassen_config{.n = n, .cutoff = 32});
        },
        cfg, 3 * n * n, {"30,811", "33,612", "5.35"}));
  }

  text_table table({"Benchmark", "#Tasks", "#NTJoins", "#SharedMem",
                    "#AvgReaders", "Seq(ms)", "Racedet(ms)", "Slowdown",
                    "Direct%", "Memo%", "Stamp%", "Range%", "Pipe%",
                    "PaperSlowdown", "Verified"});
  for (const row_result& r : rows) {
    table.add_row({r.name, text_table::with_commas(r.counters.tasks),
                   text_table::with_commas(r.counters.non_tree_joins),
                   text_table::with_commas(r.counters.shared_mem_accesses),
                   text_table::fixed(r.counters.avg_readers, 3),
                   text_table::fixed(r.seq_ms, 1),
                   text_table::fixed(r.racedet_ms, 1),
                   text_table::fixed(r.slowdown(), 2) + "x",
                   text_table::fixed(100.0 * r.direct_rate(), 1),
                   text_table::fixed(100.0 * r.memo_rate(), 1),
                   text_table::fixed(100.0 * r.stamp_rate(), 1),
                   text_table::fixed(100.0 * r.range_rate(), 1),
                   r.pipe_mode ? text_table::fixed(r.pipe.occupancy_pct(), 1)
                               : std::string("-"),
                   std::string(r.paper.slowdown) + "x",
                   r.verified ? "yes" : "NO"});
  }
  std::printf("Table 2 — determinacy race detection overhead "
              "(scale=%zu, repeats=%d, fastpath=%s, ranges=%s, "
              "detect-threads=%u, backend=%s)\n\n",
              scale, cfg.repeats, cfg.fastpath ? "on" : "off",
              cfg.ranges ? "on" : "off", cfg.detect_threads,
              futrace::dsr::backend_kind_name(cfg.backend));
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nPaper rows used JGF Size C / 2048x2048 / 10000x10000 / 1024x1024 "
      "inputs on a 16-core Ivybridge JVM; compare slowdown shape, not "
      "absolute ms.\n");

  if (emit_json) {
    using futrace::support::json;
    json doc = json::object();
    doc["bench"] = "table2";
    doc["scale"] = static_cast<std::uint64_t>(scale);
    doc["repeats"] = cfg.repeats;
    doc["fastpath"] = cfg.fastpath;
    doc["ranges"] = cfg.ranges;
    doc["detect_threads"] = static_cast<std::uint64_t>(cfg.detect_threads);
    doc["backend"] = futrace::dsr::backend_kind_name(cfg.backend);
    json row_array = json::array();
    for (const row_result& r : rows) {
      json row = row_to_json(r);
      row["backend"] = futrace::dsr::backend_kind_name(cfg.backend);
      row_array.push_back(row);
    }
    doc["rows"] = row_array;
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 1;
    }
    out << doc.dump();
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  for (const row_result& r : rows) {
    if (!r.verified) {
      std::fprintf(stderr, "FAILED verification: %s\n", r.name.c_str());
      return 1;
    }
  }
  return 0;
}
