// Regenerates Table 2 of the paper: for each benchmark, the dynamic task
// count, non-tree join count, shared-memory access count, average stored
// readers, sequential (serial elision) time, race-detection time, and the
// slowdown ratio.
//
// Absolute times are machine-dependent (the paper used HJ on a 16-core
// Ivybridge JVM; this is ahead-of-time C++), so the column to compare is
// *Slowdown* and the structural counters. Paper values are printed alongside
// for reference. Sizes default to a laptop-friendly scale; use --scale (and
// --repeats) to grow toward the paper's inputs.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"
#include "futrace/support/stats.hpp"
#include "futrace/support/table.hpp"
#include "futrace/support/timer.hpp"
#include "futrace/workloads/workloads.hpp"

namespace {

using futrace::support::sample_set;
using futrace::support::stopwatch;
using futrace::support::text_table;

struct paper_row {
  const char* tasks;
  const char* ntjoins;
  const char* slowdown;
};

struct row_result {
  std::string name;
  futrace::detect::detector_counters counters;
  double seq_ms = 0;
  double racedet_ms = 0;
  bool verified = false;
  paper_row paper;
};

// Runs one benchmark in both configurations. `make` returns a fresh workload
// object; workloads are single-use because shadow memory is keyed by the
// addresses the run touches.
template <typename Make>
row_result run_row(const std::string& name, Make make, int repeats,
                   paper_row paper) {
  row_result row;
  row.name = name;
  row.paper = paper;

  sample_set seq_times;
  for (int r = 0; r < repeats; ++r) {
    auto w = make();
    futrace::runtime rt({.mode = futrace::exec_mode::serial_elision});
    stopwatch timer;
    rt.run([&] { (*w)(); });
    seq_times.add(timer.elapsed_ms());
    if (r == 0) row.verified = w->verify();
  }

  sample_set det_times;
  for (int r = 0; r < repeats; ++r) {
    auto w = make();
    futrace::detect::race_detector det;
    futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
    rt.add_observer(&det);
    stopwatch timer;
    rt.run([&] { (*w)(); });
    det_times.add(timer.elapsed_ms());
    row.verified = row.verified && w->verify() && !det.race_detected();
    if (r == repeats - 1) row.counters = det.counters();
  }

  row.seq_ms = seq_times.mean();
  row.racedet_ms = det_times.mean();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  futrace::support::flag_parser flags;
  flags.define("scale", "1", "size multiplier toward the paper's inputs")
      .define("repeats", "3", "timed repetitions per configuration")
      .define("rows", "all",
              "comma-free row filter substring (e.g. 'crypt', 'jacobi')");
  flags.parse(argc, argv);
  const auto scale = static_cast<std::size_t>(flags.get_int("scale"));
  const int repeats = static_cast<int>(flags.get_int("repeats"));
  const std::string filter = flags.get_string("rows");

  using namespace futrace::workloads;
  std::vector<row_result> rows;
  auto want = [&](const char* name) {
    return filter == "all" || std::string(name).find(filter) !=
                                  std::string::npos;
  };

  std::size_t pow2_scale = 1;
  while (pow2_scale * 2 <= scale) pow2_scale *= 2;

  if (want("Series-af")) {
    rows.push_back(run_row(
        "Series-af",
        [&] {
          return std::make_unique<series_workload>(series_config{
              .coefficients = 2000 * scale, .integration_points = 150});
        },
        repeats, {"999,999", "0", "1.00"}));
  }
  if (want("Series-future")) {
    rows.push_back(run_row(
        "Series-future",
        [&] {
          return std::make_unique<series_workload>(
              series_config{.coefficients = 2000 * scale,
                            .integration_points = 150,
                            .use_futures = true});
        },
        repeats, {"999,999", "0", "1.00"}));
  }
  if (want("Crypt-af")) {
    rows.push_back(run_row(
        "Crypt-af",
        [&] {
          return std::make_unique<crypt_workload>(
              crypt_config{.bytes = 262144 * scale});
        },
        repeats, {"12,500,000", "0", "7.77"}));
  }
  if (want("Crypt-future")) {
    rows.push_back(run_row(
        "Crypt-future",
        [&] {
          return std::make_unique<crypt_workload>(crypt_config{
              .bytes = 262144 * scale, .use_futures = true});
        },
        repeats, {"12,500,000", "0", "8.26"}));
  }
  if (want("Jacobi")) {
    rows.push_back(run_row(
        "Jacobi",
        [&] {
          return std::make_unique<jacobi_workload>(jacobi_config{
              .n = 256 * pow2_scale + 2, .tile = 32, .iterations = 8});
        },
        repeats, {"8,192", "34,944", "8.05"}));
  }
  if (want("Smith-Waterman")) {
    rows.push_back(run_row(
        "Smith-Waterman",
        [&] {
          return std::make_unique<sw_workload>(sw_config{
              .rows = 1000 * scale, .cols = 1000 * scale, .tile = 50});
        },
        repeats, {"1,608", "4,641", "9.92"}));
  }
  if (want("Strassen")) {
    rows.push_back(run_row(
        "Strassen",
        [&] {
          return std::make_unique<strassen_workload>(
              strassen_config{.n = 128 * pow2_scale, .cutoff = 32});
        },
        repeats, {"30,811", "33,612", "5.35"}));
  }

  text_table table({"Benchmark", "#Tasks", "#NTJoins", "#SharedMem",
                    "#AvgReaders", "Seq(ms)", "Racedet(ms)", "Slowdown",
                    "PaperSlowdown", "Verified"});
  for (const row_result& r : rows) {
    table.add_row({r.name, text_table::with_commas(r.counters.tasks),
                   text_table::with_commas(r.counters.non_tree_joins),
                   text_table::with_commas(r.counters.shared_mem_accesses),
                   text_table::fixed(r.counters.avg_readers, 3),
                   text_table::fixed(r.seq_ms, 1),
                   text_table::fixed(r.racedet_ms, 1),
                   text_table::fixed(r.racedet_ms / r.seq_ms, 2) + "x",
                   std::string(r.paper.slowdown) + "x",
                   r.verified ? "yes" : "NO"});
  }
  std::printf("Table 2 — determinacy race detection overhead "
              "(scale=%zu, repeats=%d)\n\n",
              scale, repeats);
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nPaper rows used JGF Size C / 2048x2048 / 10000x10000 / 1024x1024 "
      "inputs on a 16-core Ivybridge JVM; compare slowdown shape, not "
      "absolute ms.\n");

  for (const row_result& r : rows) {
    if (!r.verified) {
      std::fprintf(stderr, "FAILED verification: %s\n", r.name.c_str());
      return 1;
    }
  }
  return 0;
}
