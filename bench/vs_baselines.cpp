// Baseline comparisons backing two of the paper's verbal claims:
//
//  1. §5: on async-finish programs the detector "performs similarly to
//     SP-bags" — measured here against our ESP-bags implementation on the
//     async-finish rows of Table 2.
//
//  2. §1/§6: vector-clock detectors are impractical for dynamic task
//     parallelism — measured as detection time and, decisively, clock
//     memory against our detector on future-heavy workloads.

#include <cstdio>
#include <fstream>
#include <memory>

#include "futrace/baselines/esp_bags_detector.hpp"
#include "futrace/baselines/vector_clock_detector.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/obs/metrics.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"
#include "futrace/support/json.hpp"
#include "futrace/support/table.hpp"
#include "futrace/support/timer.hpp"
#include "futrace/workloads/workloads.hpp"

namespace {

using futrace::support::stopwatch;
using futrace::support::text_table;

template <typename MakeDet, typename Make>
std::pair<double, std::size_t> time_with(MakeDet make_det, Make make,
                                         int repeats) {
  double best = 1e300;
  std::size_t mem = 0;
  for (int r = 0; r < repeats; ++r) {
    auto w = make();
    auto det = make_det();
    futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
    rt.add_observer(&det);
    stopwatch timer;
    rt.run([&] { (*w)(); });
    best = std::min(best, timer.elapsed_ms());
    mem = det.memory_bytes();
  }
  return {best, mem};
}

std::string mib(std::size_t bytes) {
  return text_table::fixed(static_cast<double>(bytes) / (1024.0 * 1024.0), 2) +
         " MiB";
}

}  // namespace

int main(int argc, char** argv) {
  futrace::support::flag_parser flags;
  flags.define("scale", "1", "size multiplier")
      .define("repeats", "3", "repetitions (best-of)")
      .define("json", "false", "write machine-readable results")
      .define("json-out", "BENCH_vs_baselines.json", "path for --json output")
      .define("no-fastpath", "false",
              "disable the direct/memo/stamp fast paths")
      .define("precede-backend", "graph",
              "PRECEDE backend for 'ours' rows: graph, depa, vc")
      .define("trace", "",
              "write a Chrome trace-event JSON of the final repetition of "
              "each part-2 'ours' run to this path (rows overwrite)");
  flags.parse(argc, argv);
  const auto scale = static_cast<std::size_t>(flags.get_int("scale"));
  const int repeats = static_cast<int>(flags.get_int("repeats"));
  const std::string trace_path = flags.get_string("trace");
  futrace::detect::race_detector::options det_opts;
  det_opts.enable_fastpath = !flags.get_bool("no-fastpath");
  if (!futrace::dsr::parse_backend_kind(flags.get_string("precede-backend"),
                                        &det_opts.precede_backend)) {
    std::fprintf(stderr, "unknown --precede-backend '%s' (graph, depa, vc)\n",
                 flags.get_string("precede-backend").c_str());
    return 2;
  }
  const char* backend_name =
      futrace::dsr::backend_kind_name(det_opts.precede_backend);

  using namespace futrace::workloads;
  using futrace::support::json;
  json doc = json::object();
  doc["bench"] = "vs_baselines";
  doc["scale"] = static_cast<std::uint64_t>(scale);
  doc["repeats"] = repeats;
  doc["fastpath"] = det_opts.enable_fastpath;
  doc["backend"] = backend_name;
  json esp_rows = json::array();
  json vc_rows = json::array();

  // ---- Part 1: ours vs ESP-bags on async-finish programs -------------------
  {
    text_table table({"Benchmark", "This paper (ms)", "ESP-bags (ms)",
                      "Ratio"});
    auto add = [&](const char* name, auto make) {
      auto [ours, ours_mem] = time_with(
          [&] { return futrace::detect::race_detector(det_opts); }, make,
          repeats);
      auto [esp, esp_mem] = time_with(
          [] { return futrace::baselines::esp_bags_detector(); }, make,
          repeats);
      (void)ours_mem;
      (void)esp_mem;
      table.add_row({name, text_table::fixed(ours, 1),
                     text_table::fixed(esp, 1),
                     text_table::fixed(ours / esp, 2) + "x"});
      json row = json::object();
      row["name"] = name;
      row["backend"] = backend_name;
      row["ours_ms"] = ours;
      row["esp_bags_ms"] = esp;
      row["ratio"] = esp > 0 ? ours / esp : 0.0;
      esp_rows.push_back(row);
    };
    add("Series-af", [&] {
      return std::make_unique<series_workload>(series_config{
          .coefficients = 1500 * scale, .integration_points = 120});
    });
    add("Crypt-af", [&] {
      return std::make_unique<crypt_workload>(
          crypt_config{.bytes = 131072 * scale});
    });
    std::printf("Detector vs ESP-bags on async-finish programs (paper §5: "
                "\"no additional overhead for async/finish\")\n\n");
    std::fputs(table.render().c_str(), stdout);
  }

  // ---- Part 2: ours vs vector clocks on future programs --------------------
  // Memory columns compare the *ordering structures* only — the reachability
  // graph (O(a + f + n), Theorem 1) against the per-task clocks (O(#tasks)
  // per task) — since both detectors share the same shadow-memory design.
  {
    text_table table({"Benchmark", "#Tasks", "This paper (ms)",
                      "Graph mem", "VectorClock (ms)", "Clock mem"});
    auto add = [&](const char* name, auto make) {
      double ours_ms = 1e300, vc_ms = 1e300;
      std::size_t graph_mem = 0, clock_mem = 0;
      std::uint64_t tasks = 0;
      futrace::support::json counters;
      for (int r = 0; r < repeats; ++r) {
        {
          auto w = make();
          futrace::detect::race_detector::options opts = det_opts;
          // Only the final repetition traces; best-of timing keeps the
          // reported minimum clean of any tracing overhead.
          if (r == repeats - 1) opts.trace_path = trace_path;
          futrace::detect::race_detector det(opts);
          futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
          rt.add_observer(&det);
          stopwatch timer;
          rt.run([&] { (*w)(); });
          ours_ms = std::min(ours_ms, timer.elapsed_ms());
          graph_mem = det.structure_bytes();
          tasks = det.counters().tasks;
          counters = futrace::obs::counters_json(det.counters());
        }
        {
          auto w = make();
          futrace::baselines::vector_clock_detector det;
          futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
          rt.add_observer(&det);
          stopwatch timer;
          rt.run([&] { (*w)(); });
          vc_ms = std::min(vc_ms, timer.elapsed_ms());
          clock_mem = det.clock_bytes();
        }
      }
      table.add_row({name, text_table::with_commas(tasks),
                     text_table::fixed(ours_ms, 1), mib(graph_mem),
                     text_table::fixed(vc_ms, 1), mib(clock_mem)});
      json row = json::object();
      row["name"] = name;
      row["backend"] = backend_name;
      row["tasks"] = tasks;
      row["ours_ms"] = ours_ms;
      row["graph_mem_bytes"] = static_cast<std::uint64_t>(graph_mem);
      row["vector_clock_ms"] = vc_ms;
      row["clock_mem_bytes"] = static_cast<std::uint64_t>(clock_mem);
      // Canonical counters schema (obs/metrics), shared with table2 rows.
      row["counters"] = counters;
      vc_rows.push_back(row);
    };
    add("Series-future", [&] {
      return std::make_unique<series_workload>(
          series_config{.coefficients = 1500 * scale,
                        .integration_points = 120,
                        .use_futures = true});
    });
    add("Crypt-future", [&] {
      return std::make_unique<crypt_workload>(
          crypt_config{.bytes = 131072 * scale, .use_futures = true});
    });
    add("Jacobi", [&] {
      return std::make_unique<jacobi_workload>(
          jacobi_config{.n = 258, .tile = 32, .iterations = 8});
    });
    add("Smith-Waterman", [&] {
      return std::make_unique<sw_workload>(
          sw_config{.rows = 600, .cols = 600, .tile = 40});
    });
    std::printf("\nDetector vs per-task vector clocks on future programs "
                "(paper §1/§6: clock storage grows with task count)\n\n");
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nEvery spawn copies the parent's O(#tasks) clock, so clock "
                "bytes grow quadratically with task count; the reachability "
                "graph stays O(tasks + non-tree joins).\n");
  }

  if (flags.get_bool("json")) {
    doc["esp_bags"] = esp_rows;
    doc["vector_clock"] = vc_rows;
    const std::string path = flags.get_string("json-out");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return 1;
    }
    out << doc.dump();
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}
