// Baseline comparisons backing two of the paper's verbal claims:
//
//  1. §5: on async-finish programs the detector "performs similarly to
//     SP-bags" — measured here against our ESP-bags implementation on the
//     async-finish rows of Table 2.
//
//  2. §1/§6: vector-clock detectors are impractical for dynamic task
//     parallelism — measured as detection time and, decisively, clock
//     memory against our detector on future-heavy workloads.

#include <cstdio>
#include <memory>

#include "futrace/baselines/esp_bags_detector.hpp"
#include "futrace/baselines/vector_clock_detector.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"
#include "futrace/support/table.hpp"
#include "futrace/support/timer.hpp"
#include "futrace/workloads/workloads.hpp"

namespace {

using futrace::support::stopwatch;
using futrace::support::text_table;

template <typename Detector, typename Make>
std::pair<double, std::size_t> time_with(Make make, int repeats) {
  double best = 1e300;
  std::size_t mem = 0;
  for (int r = 0; r < repeats; ++r) {
    auto w = make();
    Detector det;
    futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
    rt.add_observer(&det);
    stopwatch timer;
    rt.run([&] { (*w)(); });
    best = std::min(best, timer.elapsed_ms());
    mem = det.memory_bytes();
  }
  return {best, mem};
}

std::string mib(std::size_t bytes) {
  return text_table::fixed(static_cast<double>(bytes) / (1024.0 * 1024.0), 2) +
         " MiB";
}

}  // namespace

int main(int argc, char** argv) {
  futrace::support::flag_parser flags;
  flags.define("scale", "1", "size multiplier")
      .define("repeats", "3", "repetitions (best-of)");
  flags.parse(argc, argv);
  const auto scale = static_cast<std::size_t>(flags.get_int("scale"));
  const int repeats = static_cast<int>(flags.get_int("repeats"));

  using namespace futrace::workloads;

  // ---- Part 1: ours vs ESP-bags on async-finish programs -------------------
  {
    text_table table({"Benchmark", "This paper (ms)", "ESP-bags (ms)",
                      "Ratio"});
    auto add = [&](const char* name, auto make) {
      auto [ours, ours_mem] =
          time_with<futrace::detect::race_detector>(make, repeats);
      auto [esp, esp_mem] =
          time_with<futrace::baselines::esp_bags_detector>(make, repeats);
      (void)ours_mem;
      (void)esp_mem;
      table.add_row({name, text_table::fixed(ours, 1),
                     text_table::fixed(esp, 1),
                     text_table::fixed(ours / esp, 2) + "x"});
    };
    add("Series-af", [&] {
      return std::make_unique<series_workload>(series_config{
          .coefficients = 1500 * scale, .integration_points = 120});
    });
    add("Crypt-af", [&] {
      return std::make_unique<crypt_workload>(
          crypt_config{.bytes = 131072 * scale});
    });
    std::printf("Detector vs ESP-bags on async-finish programs (paper §5: "
                "\"no additional overhead for async/finish\")\n\n");
    std::fputs(table.render().c_str(), stdout);
  }

  // ---- Part 2: ours vs vector clocks on future programs --------------------
  // Memory columns compare the *ordering structures* only — the reachability
  // graph (O(a + f + n), Theorem 1) against the per-task clocks (O(#tasks)
  // per task) — since both detectors share the same shadow-memory design.
  {
    text_table table({"Benchmark", "#Tasks", "This paper (ms)",
                      "Graph mem", "VectorClock (ms)", "Clock mem"});
    auto add = [&](const char* name, auto make) {
      double ours_ms = 1e300, vc_ms = 1e300;
      std::size_t graph_mem = 0, clock_mem = 0;
      std::uint64_t tasks = 0;
      for (int r = 0; r < repeats; ++r) {
        {
          auto w = make();
          futrace::detect::race_detector det;
          futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
          rt.add_observer(&det);
          stopwatch timer;
          rt.run([&] { (*w)(); });
          ours_ms = std::min(ours_ms, timer.elapsed_ms());
          graph_mem = det.structure_bytes();
          tasks = det.counters().tasks;
        }
        {
          auto w = make();
          futrace::baselines::vector_clock_detector det;
          futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
          rt.add_observer(&det);
          stopwatch timer;
          rt.run([&] { (*w)(); });
          vc_ms = std::min(vc_ms, timer.elapsed_ms());
          clock_mem = det.clock_bytes();
        }
      }
      table.add_row({name, text_table::with_commas(tasks),
                     text_table::fixed(ours_ms, 1), mib(graph_mem),
                     text_table::fixed(vc_ms, 1), mib(clock_mem)});
    };
    add("Series-future", [&] {
      return std::make_unique<series_workload>(
          series_config{.coefficients = 1500 * scale,
                        .integration_points = 120,
                        .use_futures = true});
    });
    add("Crypt-future", [&] {
      return std::make_unique<crypt_workload>(
          crypt_config{.bytes = 131072 * scale, .use_futures = true});
    });
    add("Jacobi", [&] {
      return std::make_unique<jacobi_workload>(
          jacobi_config{.n = 258, .tile = 32, .iterations = 8});
    });
    add("Smith-Waterman", [&] {
      return std::make_unique<sw_workload>(
          sw_config{.rows = 600, .cols = 600, .tile = 40});
    });
    std::printf("\nDetector vs per-task vector clocks on future programs "
                "(paper §1/§6: clock storage grows with task count)\n\n");
    std::fputs(table.render().c_str(), stdout);
    std::printf("\nEvery spawn copies the parent's O(#tasks) clock, so clock "
                "bytes grow quadratically with task count; the reachability "
                "graph stays O(tasks + non-tree joins).\n");
  }
  return 0;
}
