// Micro-benchmarks for the dynamic task reachability graph: the per-event
// and per-query costs behind Theorem 1's bounds.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_main.hpp"

#include "futrace/dsr/labels.hpp"
#include "futrace/dsr/reachability_graph.hpp"

namespace {

using futrace::dsr::label_allocator;
using futrace::dsr::reachability_graph;
using futrace::dsr::task_id;

void BM_LabelSpawnTerminate(benchmark::State& state) {
  for (auto _ : state) {
    label_allocator alloc;
    for (int i = 0; i < 1024; ++i) {
      auto label = alloc.on_spawn();
      benchmark::DoNotOptimize(label);
      benchmark::DoNotOptimize(alloc.on_terminate());
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_LabelSpawnTerminate);

void BM_CreateTask(benchmark::State& state) {
  for (auto _ : state) {
    reachability_graph g;
    const task_id root = g.create_root();
    for (int i = 0; i < 1024; ++i) {
      benchmark::DoNotOptimize(g.create_task(root));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CreateTask);

void BM_FinishJoinMerge(benchmark::State& state) {
  for (auto _ : state) {
    reachability_graph g;
    const task_id root = g.create_root();
    for (int i = 0; i < 1024; ++i) {
      const task_id c = g.create_task(root);
      g.on_terminate(c);
      g.on_finish_join(root, c);
    }
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FinishJoinMerge);

// PRECEDE via the same-set fast path.
void BM_PrecedeSameSet(benchmark::State& state) {
  reachability_graph g;
  const task_id root = g.create_root();
  const task_id c = g.create_task(root);
  g.on_terminate(c);
  g.on_finish_join(root, c);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.precedes(c, root));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrecedeSameSet);

// PRECEDE via interval subsumption (live ancestor).
void BM_PrecedeSubsumption(benchmark::State& state) {
  reachability_graph g;
  task_id cur = g.create_root();
  for (int i = 0; i < 64; ++i) cur = g.create_task(cur);
  const task_id root = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.precedes(root, cur));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrecedeSubsumption);

// PRECEDE answered negatively for a parallel sibling (single nt scan).
void BM_PrecedeParallelSibling(benchmark::State& state) {
  reachability_graph g;
  const task_id root = g.create_root();
  const task_id a = g.create_task(root);
  g.on_terminate(a);
  const task_id b = g.create_task(root);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.precedes(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PrecedeParallelSibling);

// PRECEDE across a chain of non-tree joins of the given length: the
// (n+1)-factor of Theorem 1's query bound. With `memoized` true the repeated
// query is answered from the PRECEDE memo table (the hot-loop case every
// read in a stencil workload hits); with it false every iteration walks the
// whole chain.
void precede_nt_chain(benchmark::State& state, bool memoized) {
  const auto hops = static_cast<std::size_t>(state.range(0));
  reachability_graph g;
  g.set_memo_enabled(memoized);
  const task_id root = g.create_root();
  std::vector<task_id> chain;
  for (std::size_t i = 0; i <= hops; ++i) {
    const task_id t = g.create_task(root);
    if (!chain.empty()) g.on_get(t, chain.back());
    g.on_terminate(t);
    chain.push_back(t);
  }
  // Query: does the head of the chain precede a fresh task that joined only
  // the tail? Answering requires walking the whole chain.
  const task_id cur = g.create_task(root);
  g.on_get(cur, chain.back());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.precedes(chain.front(), cur));
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_PrecedeNtChain(benchmark::State& state) {
  precede_nt_chain(state, /*memoized=*/false);
}
BENCHMARK(BM_PrecedeNtChain)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_PrecedeNtChainMemoized(benchmark::State& state) {
  precede_nt_chain(state, /*memoized=*/true);
}
BENCHMARK(BM_PrecedeNtChainMemoized)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The union-find pointer chase itself: nested finishes join each singleton
// parent set under its (larger) descendant set, so the UF parent chain
// grows one hop per nesting level, and the first PRECEDE query after the
// innermost finish walks the whole chain cold. find() path-halves as it
// walks — two loads per hop (parent, then grandparent) — so this bench
// pins the loads-per-hop constant: a regression to the naive three-load
// find shows up directly in ns/hop. The graph is rebuilt outside the timed
// region each iteration to keep the chain un-halved.
void BM_PrecedeDeepChain(benchmark::State& state) {
  const auto hops = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    reachability_graph g;
    const task_id root = g.create_root();
    std::vector<task_id> spine{root};
    for (std::size_t i = 0; i < hops; ++i) {
      spine.push_back(g.create_task(spine.back()));
    }
    for (std::size_t i = hops; i >= 1; --i) {
      g.on_terminate(spine[i]);
      g.on_finish_join(spine[i - 1], spine[i]);
    }
    const task_id cur = g.create_task(root);
    state.ResumeTiming();
    benchmark::DoNotOptimize(g.precedes(spine[1], cur));
  }
  state.SetItemsProcessed(state.iterations() * hops);
}
BENCHMARK(BM_PrecedeDeepChain)->Arg(64)->Arg(512)->Arg(4096);

// Non-tree predecessor fan-in: each consumer get()s `fan` sibling futures,
// so its set's nt list holds `fan` entries. The Table 2 stencil consumers
// hold up to 5 (Jacobi: own tile + 4 neighbours; Smith-Waterman: 3;
// Strassen combine: 4), which sizes small_vector's inline nt capacity —
// the Arg values cross the inline/heap boundary to expose the allocation
// cliff if the capacity regresses.
void BM_PrecedeNtFanIn(benchmark::State& state) {
  const auto fan = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t k_consumers = 128;
  std::vector<task_id> producers;
  producers.reserve(64);
  for (auto _ : state) {
    reachability_graph g;
    const task_id root = g.create_root();
    for (std::size_t c = 0; c < k_consumers; ++c) {
      producers.clear();
      for (std::size_t i = 0; i < fan; ++i) {
        const task_id p = g.create_task(root);
        g.on_terminate(p);
        producers.push_back(p);
      }
      const task_id consumer = g.create_task(root);
      for (const task_id p : producers) g.on_get(consumer, p);
      benchmark::DoNotOptimize(g.precedes(producers.front(), consumer));
      g.on_terminate(consumer);
    }
  }
  state.SetItemsProcessed(state.iterations() * k_consumers * fan);
}
BENCHMARK(BM_PrecedeNtFanIn)->Arg(2)->Arg(5)->Arg(8)->Arg(32);

// Union-find pressure: wide finish with path compression afterwards.
void BM_WideFinishThenQueries(benchmark::State& state) {
  const auto width = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    reachability_graph g;
    const task_id root = g.create_root();
    std::vector<task_id> kids;
    for (std::size_t i = 0; i < width; ++i) {
      const task_id c = g.create_task(root);
      g.on_terminate(c);
      kids.push_back(c);
    }
    for (const task_id c : kids) g.on_finish_join(root, c);
    const task_id cur = g.create_task(root);
    state.ResumeTiming();
    for (const task_id c : kids) {
      benchmark::DoNotOptimize(g.precedes(c, cur));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WideFinishThenQueries)->Arg(256)->Arg(4096);

}  // namespace

FUTRACE_BENCH_MAIN("BENCH_micro_dsr.json");
