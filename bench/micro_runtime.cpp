// Micro-benchmarks for the runtime substrate: construct overheads in each
// execution mode and the work-stealing deque.

#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_main.hpp"

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/runtime/ws_deque.hpp"

namespace {

using namespace futrace;

constexpr int kTasksPerRun = 4096;

void spawn_many() {
  finish([] {
    for (int i = 0; i < kTasksPerRun; ++i) {
      async([] { benchmark::DoNotOptimize(0); });
    }
  });
}

void BM_SpawnElision(benchmark::State& state) {
  for (auto _ : state) {
    runtime rt({.mode = exec_mode::serial_elision});
    rt.run(spawn_many);
  }
  state.SetItemsProcessed(state.iterations() * kTasksPerRun);
}
BENCHMARK(BM_SpawnElision);

void BM_SpawnSerialDfs(benchmark::State& state) {
  for (auto _ : state) {
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.run(spawn_many);
  }
  state.SetItemsProcessed(state.iterations() * kTasksPerRun);
}
BENCHMARK(BM_SpawnSerialDfs);

void BM_SpawnSerialWithDetector(benchmark::State& state) {
  for (auto _ : state) {
    detect::race_detector det;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&det);
    rt.run(spawn_many);
  }
  state.SetItemsProcessed(state.iterations() * kTasksPerRun);
}
BENCHMARK(BM_SpawnSerialWithDetector);

void BM_SpawnParallel(benchmark::State& state) {
  for (auto _ : state) {
    std::atomic<int> sink{0};
    runtime rt({.mode = exec_mode::parallel, .workers = 2});
    rt.run([&] {
      finish([&] {
        for (int i = 0; i < kTasksPerRun; ++i) {
          async([&] { sink.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    });
    benchmark::DoNotOptimize(sink.load());
  }
  state.SetItemsProcessed(state.iterations() * kTasksPerRun);
}
BENCHMARK(BM_SpawnParallel);

void BM_FutureCreateGetSerial(benchmark::State& state) {
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.run([&] {
    for (auto _ : state) {
      auto f = async_future([] { return 1; });
      benchmark::DoNotOptimize(f.get());
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FutureCreateGetSerial);

void BM_SharedReadUninstrumented(benchmark::State& state) {
  runtime rt({.mode = exec_mode::serial_elision});
  rt.run([&] {
    shared<int> x(42);
    for (auto _ : state) {
      benchmark::DoNotOptimize(x.read());
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedReadUninstrumented);

void BM_SharedReadDetected(benchmark::State& state) {
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([&] {
    shared<int> x(42);
    x.write(42);
    for (auto _ : state) {
      benchmark::DoNotOptimize(x.read());
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedReadDetected);

void BM_PromisePutGetSerial(benchmark::State& state) {
  // One put splits the current chain into a continuation; this measures the
  // full promise round trip including the split bookkeeping.
  detect::race_detector det;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.run([&] {
    for (auto _ : state) {
      promise<int> p;
      p.put(1);
      benchmark::DoNotOptimize(p.get());
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PromisePutGetSerial);

void BM_PromisePutGetParallel(benchmark::State& state) {
  runtime rt({.mode = exec_mode::parallel, .workers = 2});
  rt.run([&] {
    for (auto _ : state) {
      promise<int> p;
      p.put(1);
      benchmark::DoNotOptimize(p.get());
    }
  });
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PromisePutGetParallel);

void BM_WsDequePushPop(benchmark::State& state) {
  ws_deque<int*> dq;
  int value = 0;
  for (auto _ : state) {
    dq.push(&value);
    benchmark::DoNotOptimize(dq.pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WsDequePushPop);

void BM_WsDequeStealUncontended(benchmark::State& state) {
  ws_deque<int*> dq;
  int value = 0;
  for (auto _ : state) {
    dq.push(&value);
    benchmark::DoNotOptimize(dq.steal());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WsDequeStealUncontended);

}  // namespace

FUTRACE_BENCH_MAIN("BENCH_micro_runtime.json");
