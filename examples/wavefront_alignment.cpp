// Wavefront sequence alignment: the Smith-Waterman tile pipeline from
// Table 2 as a small application. Each tile is a future task that joins its
// left / upper / diagonal neighbours — point-to-point synchronization that
// plain async-finish cannot express without serializing whole anti-diagonals.
//
//   ./wavefront_alignment                      # defaults
//   ./wavefront_alignment --rows 1200 --cols 900 --tile 60
//   ./wavefront_alignment --mode detect        # race-check the pipeline
//   ./wavefront_alignment --mode parallel      # run on the pool

#include <cstdio>
#include <string>

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"
#include "futrace/support/timer.hpp"
#include "futrace/workloads/smith_waterman.hpp"

int main(int argc, char** argv) {
  futrace::support::flag_parser flags;
  flags.define("rows", "800", "length of sequence A")
      .define("cols", "800", "length of sequence B")
      .define("tile", "40", "tile edge")
      .define("seed", "42", "sequence seed")
      .define("mode", "parallel", "one of: elision, serial, detect, parallel");
  flags.parse(argc, argv);

  futrace::workloads::sw_config config;
  config.rows = static_cast<std::size_t>(flags.get_int("rows"));
  config.cols = static_cast<std::size_t>(flags.get_int("cols"));
  config.tile = static_cast<std::size_t>(flags.get_int("tile"));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  futrace::workloads::sw_workload workload(config);

  const std::string mode = flags.get_string("mode");
  futrace::support::stopwatch timer;

  if (mode == "detect") {
    futrace::detect::race_detector detector;
    futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
    rt.add_observer(&detector);
    rt.run([&] { workload(); });
    const auto counters = detector.counters();
    std::printf("race check: %llu tile tasks, %llu non-tree joins, "
                "%llu shared accesses, %llu races\n",
                static_cast<unsigned long long>(counters.tasks),
                static_cast<unsigned long long>(counters.non_tree_joins),
                static_cast<unsigned long long>(counters.shared_mem_accesses),
                static_cast<unsigned long long>(counters.races_observed));
    if (counters.races_observed != 0) {
      for (const auto& report : detector.reports()) {
        std::printf("  %s\n", report.to_string().c_str());
      }
      return 1;
    }
  } else {
    futrace::runtime_config rc;
    if (mode == "elision") {
      rc.mode = futrace::exec_mode::serial_elision;
    } else if (mode == "serial") {
      rc.mode = futrace::exec_mode::serial_dfs;
    } else if (mode == "parallel") {
      rc.mode = futrace::exec_mode::parallel;
    } else {
      std::fprintf(stderr, "unknown --mode %s\n%s", mode.c_str(),
                   flags.usage().c_str());
      return 2;
    }
    futrace::runtime rt(rc);
    rt.run([&] { workload(); });
  }

  std::printf("%s alignment of %zu x %zu (tile %zu): best local score %d "
              "in %.1f ms — self-check %s\n",
              mode.c_str(), config.rows, config.cols, config.tile,
              workload.best_score(), timer.elapsed_ms(),
              workload.verify() ? "passed" : "FAILED");
  return workload.verify() ? 0 : 1;
}
