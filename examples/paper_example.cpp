// Executes the paper's running examples and renders their computation
// graphs:
//
//  - the Figure 1 program (three futures with sibling joins and a transitive
//    dependence from B to the main task through C), and
//  - a Figure 2/3-style program whose reachability graph exercises tree
//    joins, non-tree joins, and the lowest-significant-ancestor chain.
//
// Usage: ./paper_example [--dot <path-prefix>]
// With --dot, writes <prefix>_fig1.dot / <prefix>_fig3.dot (GraphViz).

#include <cstdio>
#include <fstream>
#include <string>

#include "futrace/baselines/oracle_detector.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/dsr/reachability_graph.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"

namespace {

using namespace futrace;

void describe(const char* title, const baselines::oracle_detector& oracle,
              const detect::race_detector& detector) {
  const auto& g = oracle.graph();
  std::printf("%s\n", title);
  std::printf("  steps: %zu, edges: %zu (spawn %zu, continue %zu, "
              "tree-join %zu, non-tree-join %zu)\n",
              g.step_count(), g.edge_count(),
              g.count_edges(graph::edge_kind::spawn),
              g.count_edges(graph::edge_kind::continuation),
              g.count_edges(graph::edge_kind::join_tree),
              g.count_edges(graph::edge_kind::join_non_tree));
  const auto counters = detector.counters();
  std::printf("  detector: %llu tasks, %llu get()s, %llu non-tree joins, "
              "%llu races\n\n",
              static_cast<unsigned long long>(counters.tasks),
              static_cast<unsigned long long>(counters.get_operations),
              static_cast<unsigned long long>(counters.non_tree_joins),
              static_cast<unsigned long long>(counters.races_observed));
}

void maybe_write_dot(const std::string& prefix, const char* suffix,
                     const baselines::oracle_detector& oracle,
                     const std::vector<std::string>& names) {
  if (prefix.empty()) return;
  const std::string path = prefix + suffix;
  std::ofstream out(path);
  out << oracle.graph().to_dot(names);
  std::printf("  wrote %s\n\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  support::flag_parser flags;
  flags.define("dot", "", "path prefix for GraphViz dumps");
  flags.parse(argc, argv);
  const std::string dot_prefix = flags.get_string("dot");

  // ---- Figure 1 -------------------------------------------------------------
  {
    baselines::oracle_detector oracle;
    detect::race_detector detector;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&oracle);
    rt.add_observer(&detector);
    rt.run([&] {
      shared<int> effect(0);
      auto a = async_future([&] { return 1; });            // Task T_A
      auto b = async_future([&, a] {                       // Task T_B
        (void)a.get();                                     // Stmt3/Stmt4
        effect.write(42);
        return 2;
      });
      auto c = async_future([&, a, b] {                    // Task T_C
        (void)a.get();                                     // Stmt6/Stmt7
        (void)b.get();
        return 3;
      });
      (void)a.get();                                       // Stmt "A.get()"
      (void)c.get();                                       // Stmt "C.get()"
      // Stmt10: B's side effect is visible here although the main task
      // never joined B — the transitive dependence through C (paper §2).
      std::printf("Figure 1: Stmt10 observes B's side effect = %d\n",
                  effect.read());
    });
    describe("Figure 1 computation graph:", oracle, detector);
    maybe_write_dot(dot_prefix, "_fig1.dot", oracle,
                    {"TM", "TA", "TB", "TC"});
  }

  // ---- Figure 2/3-style program --------------------------------------------
  {
    baselines::oracle_detector oracle;
    detect::race_detector detector;
    dsr::reachability_graph reachability_view;  // mirror for the Fig.3 dump
    struct mirror final : execution_observer {
      dsr::reachability_graph* g;
      void on_program_start(task_id r) override { (void)g->create_root(); (void)r; }
      void on_task_spawn(task_id p, task_id, task_kind) override {
        (void)g->create_task(p);
      }
      void on_task_end(task_id t) override { g->on_terminate(t); }
      void on_get(task_id w, task_id t) override { (void)g->on_get(w, t); }
      void on_finish_end(task_id o, std::span<const task_id> j) override {
        for (task_id t : j) g->on_finish_join(o, t);
      }
    } reach_mirror;
    reach_mirror.g = &reachability_view;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&oracle);
    rt.add_observer(&detector);
    rt.add_observer(&reach_mirror);
    // Mid-execution snapshots, mirroring the paper's Table 1 (a) and (b):
    // the reachability graph after T3's non-tree joins, and after the tree
    // joins collapse T3's subtree into one set.
    std::string snapshot_after_joins, snapshot_after_finish;
    rt.run([&] {
      shared<int> x(0), y(0);
      auto t1 = async_future([&] {  // producer of x
        x.write(10);
        return 1;
      });
      auto t2 = async_future([&] {  // producer of y
        y.write(20);
        return 2;
      });
      auto t3 = async_future([&, t1, t2] {
        (void)t1.get();  // non-tree join: P(T3) = {T1}
        (void)t2.get();  // non-tree join: P(T3) = {T1, T2}
        snapshot_after_joins = reachability_view.to_dot();
        int acc = 0;
        // T4..T6: descendants of T3; their lowest significant ancestor is
        // T3, so their reads of x and y are ordered through T3's
        // predecessor list (paper Fig. 3 discussion).
        finish([&] {
          async([&] { acc += x.read(); });
          async([&] {
            async([&] { acc += y.read(); });
          });
        });
        snapshot_after_finish = reachability_view.to_dot();
        return acc;
      });
      std::printf("Figure 3: T3 and its subtree computed %d\n", t3.get());
    });
    std::printf("Reachability graph after T3's non-tree joins "
                "(paper Table 1a):\n%s\n",
                snapshot_after_joins.c_str());
    std::printf("Reachability graph after T3's finish collapsed its subtree "
                "(paper Table 1b):\n%s\n",
                snapshot_after_finish.c_str());
    describe("Figure 3 computation graph:", oracle, detector);
    maybe_write_dot(dot_prefix, "_fig3.dot", oracle,
                    {"T0", "T1", "T2", "T3", "T4", "T5", "T6"});
    if (!dot_prefix.empty()) {
      const std::string path = dot_prefix + "_fig3_reachability.dot";
      std::ofstream out(path);
      out << reachability_view.to_dot();
      std::printf("  wrote %s (dynamic task reachability graph)\n\n",
                  path.c_str());
    }
  }
  return 0;
}
