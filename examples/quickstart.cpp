// Quickstart: write a task-parallel program with async / finish / futures,
// check it for determinacy races, read the report, fix the bug, and re-check.
//
//   $ ./quickstart
//
// The program computes a dot product in two halves. The buggy version lets
// the combining step race with one of the halves; the fixed version joins
// both futures first.

#include <cstdio>
#include <vector>

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"

namespace {

constexpr std::size_t kN = 1024;

// Returns the detector after checking `program` on its serial depth-first
// execution (the detector analyses every schedule at once; one run decides).
template <typename Fn>
futrace::detect::race_detector check(Fn&& program) {
  futrace::detect::race_detector detector;
  futrace::runtime rt({.mode = futrace::exec_mode::serial_dfs});
  rt.add_observer(&detector);
  rt.run(std::forward<Fn>(program));
  return detector;
}

double expected_dot(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  double total = 0;
  for (std::size_t i = 0; i < kN; ++i) total += xs[i] * ys[i];
  return total;
}

}  // namespace

int main() {
  std::vector<double> xs(kN), ys(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    xs[i] = 0.5 + static_cast<double>(i % 7);
    ys[i] = 1.5 - static_cast<double>(i % 5);
  }

  // ---- Buggy version: combines before joining the second half -------------
  double buggy_result = 0;
  auto buggy = check([&] {
    futrace::shared<double> left(0), right(0);
    auto l = futrace::async_future([&] {
      double s = 0;
      for (std::size_t i = 0; i < kN / 2; ++i) s += xs[i] * ys[i];
      left.write(s);
    });
    auto r = futrace::async_future([&] {
      double s = 0;
      for (std::size_t i = kN / 2; i < kN; ++i) s += xs[i] * ys[i];
      right.write(s);
    });
    l.get();
    // BUG: r is never joined — right.read() races with right.write().
    buggy_result = left.read() + right.read();
    (void)r;
  });

  std::printf("buggy version: %llu race(s) detected\n",
              static_cast<unsigned long long>(buggy.race_count()));
  for (const auto& report : buggy.reports()) {
    std::printf("  %s\n", report.to_string().c_str());
  }

  // ---- Fixed version: join both futures before combining ------------------
  double fixed_result = 0;
  auto fixed = check([&] {
    futrace::shared<double> left(0), right(0);
    auto l = futrace::async_future([&] {
      double s = 0;
      for (std::size_t i = 0; i < kN / 2; ++i) s += xs[i] * ys[i];
      left.write(s);
    });
    auto r = futrace::async_future([&] {
      double s = 0;
      for (std::size_t i = kN / 2; i < kN; ++i) s += xs[i] * ys[i];
      right.write(s);
    });
    l.get();
    r.get();  // the fix
    fixed_result = left.read() + right.read();
  });

  std::printf("fixed version: %llu race(s) detected; dot = %.3f "
              "(expected %.3f)\n",
              static_cast<unsigned long long>(fixed.race_count()),
              fixed_result, expected_dot(xs, ys));

  // Race-free programs are determinate (paper Appendix A): safe to deploy on
  // the parallel work-stealing runtime unchanged.
  double parallel_result = 0;
  {
    futrace::runtime rt({.mode = futrace::exec_mode::parallel});
    rt.run([&] {
      futrace::shared<double> left(0), right(0);
      auto l = futrace::async_future([&] {
        double s = 0;
        for (std::size_t i = 0; i < kN / 2; ++i) s += xs[i] * ys[i];
        left.write(s);
      });
      auto r = futrace::async_future([&] {
        double s = 0;
        for (std::size_t i = kN / 2; i < kN; ++i) s += xs[i] * ys[i];
        right.write(s);
      });
      l.get();
      r.get();
      parallel_result = left.read() + right.read();
    });
  }
  std::printf("parallel execution of the fixed version: dot = %.3f\n",
              parallel_result);

  return fixed.race_detected() || !buggy.race_detected() ? 1 : 0;
}
