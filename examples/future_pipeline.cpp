// Point-to-point pipeline: the synchronization pattern the paper's
// introduction motivates (OpenMP `depends`-style dependences that
// async-finish cannot express without losing parallelism).
//
// A 3-stage pipeline processes a stream of blocks:
//   stage 0: generate   block[i]          depends on nothing
//   stage 1: transform  block[i]          depends on (0,i) and (1,i-1)
//   stage 2: accumulate block[i]          depends on (1,i) and (2,i-1)
// Every cross-stage dependence is a future get(); the whole dependence
// graph is non-strict (joins between siblings), and the detector verifies
// it race-free before the parallel run.

#include <cstdio>
#include <vector>

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"

namespace {

using namespace futrace;

struct pipeline {
  explicit pipeline(std::size_t blocks, std::size_t block_size)
      : blocks(blocks), block_size(block_size),
        raw(blocks * block_size, 0), cooked(blocks * block_size, 0),
        totals(blocks, 0) {}

  void operator()() {
    std::vector<future<void>> gen(blocks), tra(blocks), acc(blocks);
    for (std::size_t i = 0; i < blocks; ++i) {
      gen[i] = async_future([this, i] {
        for (std::size_t j = 0; j < block_size; ++j) {
          raw.write(i * block_size + j,
                    static_cast<long>((i * 37 + j * 11) % 101));
        }
      });

      future<void> left_tra = i > 0 ? tra[i - 1] : future<void>{};
      tra[i] = async_future([this, i, g = gen[i], left_tra] {
        g.get();  // the block exists
        if (left_tra.valid()) left_tra.get();  // in-order transform stage
        for (std::size_t j = 0; j < block_size; ++j) {
          const long v = raw.read(i * block_size + j);
          cooked.write(i * block_size + j, v * v + 1);
        }
      });

      future<void> left_acc = i > 0 ? acc[i - 1] : future<void>{};
      acc[i] = async_future([this, i, t = tra[i], left_acc] {
        t.get();
        if (left_acc.valid()) left_acc.get();
        long total = i > 0 ? totals.read(i - 1) : 0;
        for (std::size_t j = 0; j < block_size; ++j) {
          total += cooked.read(i * block_size + j);
        }
        totals.write(i, total);
      });
    }
    acc[blocks - 1].get();
  }

  long result() const { return totals.peek(blocks - 1); }

  long expected() const {
    long total = 0;
    for (std::size_t i = 0; i < blocks; ++i) {
      for (std::size_t j = 0; j < block_size; ++j) {
        const long v = static_cast<long>((i * 37 + j * 11) % 101);
        total += v * v + 1;
      }
    }
    return total;
  }

  std::size_t blocks, block_size;
  shared_array<long> raw, cooked;
  shared_array<long> totals;
};

}  // namespace

int main(int argc, char** argv) {
  support::flag_parser flags;
  flags.define("blocks", "64", "number of pipeline blocks")
      .define("block-size", "512", "elements per block");
  flags.parse(argc, argv);
  const auto blocks = static_cast<std::size_t>(flags.get_int("blocks"));
  const auto block_size =
      static_cast<std::size_t>(flags.get_int("block-size"));

  // 1) Race-check once on the serial depth-first execution.
  {
    pipeline p(blocks, block_size);
    detect::race_detector detector;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&detector);
    rt.run([&] { p(); });
    const auto counters = detector.counters();
    std::printf("detector: %llu tasks, %llu non-tree joins, %llu races\n",
                static_cast<unsigned long long>(counters.tasks),
                static_cast<unsigned long long>(counters.non_tree_joins),
                static_cast<unsigned long long>(counters.races_observed));
    if (detector.race_detected()) {
      for (const auto& r : detector.reports()) {
        std::printf("  %s\n", r.to_string().c_str());
      }
      return 1;
    }
  }

  // 2) Race-free ⇒ determinate (paper Appendix A): deploy on the pool.
  pipeline p(blocks, block_size);
  {
    runtime rt({.mode = exec_mode::parallel});
    rt.run([&] { p(); });
  }
  std::printf("pipeline total over %zu blocks: %ld (expected %ld) — %s\n",
              blocks, p.result(), p.expected(),
              p.result() == p.expected() ? "ok" : "MISMATCH");
  return p.result() == p.expected() ? 0 : 1;
}
