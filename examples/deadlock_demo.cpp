// Appendix A of the paper: programs with races on future *handles* can
// deadlock in some schedules and fault in others. This demo runs the
// appendix's two-future program on the serial depth-first engine, where the
// unset-handle get() surfaces as a deadlock_error instead of a hang, and
// shows that the handle cells themselves are reported as racy — the paper's
// point that race freedom (on handles included) implies deadlock freedom.

#include <cstdio>
#include <cstring>

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"

int main(int argc, char** argv) {
  using namespace futrace;

  support::flag_parser flags;
  flags.define("trace", "",
               "write a Chrome trace-event JSON of the race-checked run to "
               "this path");
  flags.parse(argc, argv);

  // ---- The appendix program, verbatim shape ---------------------------------
  //   future<T> a = null, b = null;
  //   async { a = async<T> { b.get(); ... } }   // F1
  //   async { b = async<T> { a.get(); ... } }   // F2
  std::printf("running the Appendix A program on the serial engine...\n");
  {
    runtime rt({.mode = exec_mode::serial_dfs});
    try {
      rt.run([] {
        future<int> a, b;
        async([&] {
          a = async_future([&] { return b.get(); });  // F1
        });
        async([&] {
          b = async_future([&] { return a.get(); });  // F2
        });
        (void)b.get();
      });
      std::printf("  FAILED: expected deadlock_error, program completed\n");
      return 1;
    } catch (const deadlock_error& e) {
      std::printf("  deadlock_error: %s\n\n", e.what());
    } catch (const std::exception& e) {
      std::printf("  FAILED: expected deadlock_error, got: %s\n", e.what());
      return 1;
    }
  }

  // ---- The same cyclic wait on the parallel engine --------------------------
  // Two future tasks get() each other (handles passed through promises).
  // Instead of hanging, the watchdog dumps the wait graph: which tasks are
  // blocked, what each waits on, and the cycle task A -> task B -> task A.
  std::printf("running a cyclic future wait on the parallel engine...\n");
  {
    runtime rt({.mode = exec_mode::parallel,
                .workers = 2,
                .deadlock_timeout_ms = 200});
    try {
      rt.run([] {
        promise<future<int>> pa, pb;
        future<int> a = async_future([&] { return pb.get().get(); });
        future<int> b = async_future([&] { return pa.get().get(); });
        pa.put(a);
        pb.put(b);
        (void)a.get();
      });
      std::printf("  FAILED: expected deadlock_error, program completed\n");
      return 1;
    } catch (const deadlock_error& e) {
      std::printf("  deadlock_error:\n%s\n\n", e.what());
      if (std::strstr(e.what(), "blocked: task") == nullptr) {
        std::printf("  FAILED: report does not list the blocked tasks\n");
        return 1;
      }
    } catch (const std::exception& e) {
      std::printf("  FAILED: expected deadlock_error, got: %s\n", e.what());
      return 1;
    }
  }

  // ---- Why: the handle cells race -------------------------------------------
  std::printf("race-checking the handle cells (shared future references):\n");
  detect::race_detector::options det_opts;
  det_opts.trace_path = flags.get_string("trace");
  detect::race_detector detector(det_opts);
  {
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&detector);
    rt.run([] {
      shared<future<int>> a_cell, b_cell;
      async([&] {
        a_cell.write(async_future([&] {
          future<int> b = b_cell.read();
          return b.valid() && b.is_done() ? b.get() : -1;
        }));
      });
      async([&] {
        b_cell.write(async_future([&] {
          future<int> a = a_cell.read();
          return a.valid() && a.is_done() ? a.get() : -1;
        }));
      });
    });
  }
  std::printf("  %llu race(s) on the handle cells:\n",
              static_cast<unsigned long long>(detector.race_count()));
  for (const auto& report : detector.reports()) {
    std::printf("  %s\n", report.to_string().c_str());
  }
  std::printf("\nAppendix A: a program with async/finish/future deadlocks "
              "only if future references race; race-free programs are "
              "deadlock-free and determinate.\n");
  return detector.race_detected() ? 0 : 1;
}
