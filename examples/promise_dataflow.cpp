// Promise-based dataflow: single-assignment cells fulfilled mid-task, the
// "promise" variant of futures from paper §2 (Habanero's data-driven
// futures). A diamond dependence graph runs as four tasks synchronizing
// purely through promises; the detector verifies the wiring, then the same
// program runs on the parallel pool.
//
//        source
//        /    \
//     left    right
//        \    /
//         sink

#include <cstdio>

#include "futrace/detect/race_detector.hpp"
#include "futrace/runtime/runtime.hpp"

namespace {

using namespace futrace;

struct diamond {
  shared<int> source_out{0};
  shared<int> left_out{0};
  shared<int> right_out{0};
  shared<int> sink_out{0};
  promise<void> source_done;
  promise<void> left_done;
  promise<void> right_done;

  void operator()() {
    finish([&] {
      async([&] {
        source_out.write(10);
        source_done.put();
        // Post-put code is correctly *parallel* with the consumers: the
        // detector knows this task's identity split at the put.
      });
      async([&] {
        source_done.get();
        left_out.write(source_out.read() * 2);
        left_done.put();
      });
      async([&] {
        source_done.get();
        right_out.write(source_out.read() + 5);
        right_done.put();
      });
      async([&] {
        left_done.get();
        right_done.get();
        sink_out.write(left_out.read() + right_out.read());
      });
    });
  }
};

}  // namespace

int main() {
  // 1) Verify the dataflow wiring once, on the serial depth-first engine.
  {
    diamond d;
    detect::race_detector detector;
    runtime rt({.mode = exec_mode::serial_dfs});
    rt.add_observer(&detector);
    rt.run([&] { d(); });
    const auto c = detector.counters();
    std::printf("detector: %llu tasks (%llu continuations from puts), "
                "%llu puts, %llu non-tree joins, %llu races\n",
                static_cast<unsigned long long>(c.tasks),
                static_cast<unsigned long long>(c.continuation_tasks),
                static_cast<unsigned long long>(c.promise_puts),
                static_cast<unsigned long long>(c.non_tree_joins),
                static_cast<unsigned long long>(c.races_observed));
    if (detector.race_detected()) {
      for (const auto& r : detector.reports()) {
        std::printf("  %s\n", r.to_string().c_str());
      }
      return 1;
    }
    std::printf("serial result: %d (expected 35)\n", d.sink_out.read());
  }

  // 2) Race-free ⇒ determinate: run on the pool.
  diamond d;
  {
    runtime rt({.mode = exec_mode::parallel});
    rt.run([&] { d(); });
  }
  const int result = d.sink_out.read();
  std::printf("parallel result: %d — %s\n", result,
              result == 35 ? "ok" : "MISMATCH");
  return result == 35 ? 0 : 1;
}
