// Compares two BENCH_*.json files (as written by bench/table2 --json, the
// google-benchmark binaries via --json, or bench/vs_baselines --json) and
// exits nonzero when the candidate regresses past a threshold.
//
// Classification is by leaf key name, because the two producers use
// different schemas but consistent naming:
//
//   * time-like keys (contain "ms", "time", "cpu", "real", "slowdown",
//     "per_second") are machine-dependent and therefore ADVISORY by
//     default — printed, never gated — unless --strict-time is given.
//   * rate/hit keys ("*_rate", "*_hits") measure fast-path effectiveness:
//     LOWER is worse; gated.
//   * booleans ("verified", "fastpath") must not flip true -> false; gated.
//   * every other numeric key is a structural counter (tasks, nt joins,
//     precede_queries, ...): HIGHER is worse (more work per access); gated.
//
// Arrays of objects are matched by their "name" member when present so row
// order does not matter; other arrays are matched by index. Keys present in
// the baseline but missing from the candidate produce a warning, not a
// failure, so schemas can evolve — EXCEPT the paper counters of the shared
// obs/metrics schema (tasks, precede_queries, ...): those are the measured
// claims of Table 2, and a candidate that silently stops reporting one is
// gated, not excused. Keys only the candidate has are advisory warnings.

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "futrace/obs/metrics.hpp"
#include "futrace/support/json.hpp"

namespace {

using futrace::support::json;

enum class key_class {
  ignored,
  advisory_time,     // machine-dependent; gated only under --strict-time
  advisory_load,     // scheduling-dependent fill levels; never gated
  advisory_backend,  // PRECEDE-backend label/frontier profile; never gated
  rate,
  counter,
  boolean,
  missing_paper,  // paper counter absent from the candidate; always gated
};

struct finding {
  std::string path;
  key_class cls;
  double base = 0;
  double cand = 0;
  double delta_pct = 0;  // signed change relative to baseline
  bool gated = false;    // counts toward the exit status
};

struct diff_config {
  double max_regress_pct = 10.0;
  bool strict_time = false;
};

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

key_class classify(const std::string& raw_key) {
  const std::string key = lower(raw_key);
  // Run metadata that legitimately differs between runs.
  if (key == "iterations" || key == "repetitions" || key == "repeats" ||
      key == "threads" || contains(key, "index")) {
    return key_class::ignored;
  }
  // Pipeline fill metrics (bench/table2 --detect-threads): ring occupancy
  // and backpressure spins depend on the OS schedule, not the trace, so a
  // swing in either direction is reported but never gated — not even under
  // --strict-time.
  if (contains(key, "occupancy") || contains(key, "backpressure")) {
    return key_class::advisory_load;
  }
  // PRECEDE-backend comparison counters (label bytes/comparisons, frontier
  // searches): these are the quantity being *compared across backends*, so a
  // baseline recorded under one backend must not gate a run under another —
  // a swing is surfaced for the reader, never a verdict.
  if (contains(key, "label") || contains(key, "frontier")) {
    return key_class::advisory_backend;
  }
  if (contains(key, "ms") || contains(key, "time") || contains(key, "cpu") ||
      contains(key, "real") || contains(key, "slowdown") ||
      contains(key, "per_second")) {
    return key_class::advisory_time;
  }
  if (contains(key, "rate") || contains(key, "hits")) return key_class::rate;
  return key_class::counter;
}

/// Key for matching array elements: the "name" member when present.
std::string element_key(const json& v, std::size_t index) {
  if (v.is_object()) {
    if (const json* name = v.find("name"); name && name->is_string()) {
      return name->as_string();
    }
  }
  return "#" + std::to_string(index);
}

void diff_value(const std::string& path, const std::string& leaf_key,
                const json& base, const json& cand, const diff_config& cfg,
                std::vector<finding>& out, std::vector<std::string>& warnings);

void diff_object(const std::string& path, const json& base, const json& cand,
                 const diff_config& cfg, std::vector<finding>& out,
                 std::vector<std::string>& warnings) {
  for (const auto& [key, base_member] : base.members()) {
    const json* cand_member = cand.find(key);
    if (cand_member == nullptr) {
      if (futrace::obs::is_paper_counter(key)) {
        out.push_back({path + "/" + key, key_class::missing_paper,
                       base_member.is_number() ? base_member.as_double() : 0,
                       0, -100.0, true});
      } else {
        warnings.push_back("candidate is missing " + path + "/" + key);
      }
      continue;
    }
    diff_value(path + "/" + key, key, base_member, *cand_member, cfg, out,
               warnings);
  }
  // The reverse direction — keys only the candidate reports — cannot be a
  // regression of anything the baseline measured, so it stays advisory.
  for (const auto& [key, cand_member] : cand.members()) {
    (void)cand_member;
    if (base.find(key) == nullptr) {
      warnings.push_back("candidate adds unknown key " + path + "/" + key);
    }
  }
}

void diff_array(const std::string& path, const json& base, const json& cand,
                const diff_config& cfg, std::vector<finding>& out,
                std::vector<std::string>& warnings) {
  for (std::size_t i = 0; i < base.size(); ++i) {
    const std::string key = element_key(base.at(i), i);
    const json* match = nullptr;
    if (key.rfind('#', 0) == 0) {
      if (i < cand.size()) match = &cand.at(i);
    } else {
      for (std::size_t j = 0; j < cand.size(); ++j) {
        if (element_key(cand.at(j), j) == key) {
          match = &cand.at(j);
          break;
        }
      }
    }
    if (match == nullptr) {
      warnings.push_back("candidate is missing " + path + "[" + key + "]");
      continue;
    }
    diff_value(path + "[" + key + "]", key, base.at(i), *match, cfg, out,
               warnings);
  }
}

void diff_value(const std::string& path, const std::string& leaf_key,
                const json& base, const json& cand, const diff_config& cfg,
                std::vector<finding>& out, std::vector<std::string>& warnings) {
  if (base.is_object() && cand.is_object()) {
    diff_object(path, base, cand, cfg, out, warnings);
    return;
  }
  if (base.is_array() && cand.is_array()) {
    diff_array(path, base, cand, cfg, out, warnings);
    return;
  }
  if (base.is_bool() && cand.is_bool()) {
    if (base.as_bool() && !cand.as_bool()) {
      out.push_back({path, key_class::boolean, 1, 0, -100.0, true});
    }
    return;
  }
  if (!base.is_number() || !cand.is_number()) return;  // strings etc.

  const key_class cls = classify(leaf_key);
  if (cls == key_class::ignored) return;
  const double b = base.as_double();
  const double c = cand.as_double();
  if (b == 0 && c == 0) return;
  const double delta_pct = b != 0 ? (c - b) / b * 100.0 : 100.0;

  bool regressed = false;
  bool gated = true;
  switch (cls) {
    case key_class::advisory_time:
      regressed = delta_pct > cfg.max_regress_pct;  // slower = worse
      gated = cfg.strict_time;
      break;
    case key_class::advisory_load:
      // Either direction is worth a look (a drained ring can mean the
      // producer slowed down just as much as a full one can mean the
      // checkers did), but neither is a verdict.
      regressed = delta_pct > cfg.max_regress_pct ||
                  delta_pct < -cfg.max_regress_pct;
      gated = false;
      break;
    case key_class::advisory_backend:
      regressed = delta_pct > cfg.max_regress_pct ||
                  delta_pct < -cfg.max_regress_pct;
      gated = false;
      break;
    case key_class::rate:
      regressed = delta_pct < -cfg.max_regress_pct;  // fewer hits = worse
      break;
    case key_class::counter:
      regressed = delta_pct > cfg.max_regress_pct;  // more work = worse
      break;
    default:
      break;
  }
  if (!regressed) return;
  out.push_back({path, cls, b, c, delta_pct, gated});
}

json load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return json::parse(buf.str());
  } catch (const futrace::support::json_parse_error& e) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path.c_str(), e.what());
    std::exit(2);
  }
}

int report(const std::vector<finding>& findings,
           const std::vector<std::string>& warnings,
           const diff_config& cfg) {
  for (const std::string& w : warnings) {
    std::fprintf(stderr, "warning: %s\n", w.c_str());
  }
  int gated = 0;
  for (const finding& f : findings) {
    const char* tag = f.gated ? "REGRESSION" : "advisory";
    const char* why = "";
    switch (f.cls) {
      case key_class::advisory_time: why = "slower"; break;
      case key_class::advisory_load: why = "load shifted"; break;
      case key_class::advisory_backend:
        why = "backend label profile shifted";
        break;
      case key_class::rate: why = "hit rate dropped"; break;
      case key_class::counter: why = "counter grew"; break;
      case key_class::boolean: why = "flag flipped to false"; break;
      case key_class::missing_paper:
        why = "paper counter missing from candidate";
        break;
      default: break;
    }
    std::printf("%-10s %s: %.6g -> %.6g (%+.1f%%, %s)\n", tag,
                f.path.c_str(), f.base, f.cand, f.delta_pct, why);
    if (f.gated) ++gated;
  }
  if (gated > 0) {
    std::printf("%d gated regression(s) beyond %.1f%%\n", gated,
                cfg.max_regress_pct);
    return 1;
  }
  std::printf("no gated regressions (threshold %.1f%%, %zu advisory)\n",
              cfg.max_regress_pct, findings.size());
  return 0;
}

// Hermetic check of the classification rules, runnable as a ctest entry
// without any benchmark having to run first.
int self_test() {
  diff_config cfg;
  auto run = [&](const char* base_text, const char* cand_text) {
    std::vector<finding> findings;
    std::vector<std::string> warnings;
    const json base = json::parse(base_text);
    const json cand = json::parse(cand_text);
    diff_value("", "", base, cand, cfg, findings, warnings);
    int gated = 0;
    for (const finding& f : findings) gated += f.gated ? 1 : 0;
    return gated;
  };
  int failures = 0;
  auto expect = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "self-test FAILED: %s\n", what);
      ++failures;
    }
  };

  expect(run(R"({"seq_ms": 10})", R"({"seq_ms": 100})") == 0,
         "time keys are advisory by default");
  expect(run(R"({"precede_queries": 100})", R"({"precede_queries": 150})") == 1,
         "counter growth is gated");
  expect(run(R"({"precede_queries": 100})", R"({"precede_queries": 104})") == 0,
         "counter growth inside the threshold passes");
  expect(run(R"({"memo_hit_rate": 0.9})", R"({"memo_hit_rate": 0.5})") == 1,
         "hit-rate drop is gated");
  expect(run(R"({"direct_hits": 50})", R"({"direct_hits": 100})") == 0,
         "hit growth is an improvement");
  expect(run(R"({"verified": true})", R"({"verified": false})") == 1,
         "verified flipping false is gated");
  // Range-coalescing keys from bench/table2: effectiveness metrics, so a
  // drop gates and growth passes.
  expect(run(R"({"range_hit_rate": 0.8})", R"({"range_hit_rate": 0.2})") == 1,
         "range hit-rate drop is gated");
  expect(run(R"({"range_hit_rate": 0.5})", R"({"range_hit_rate": 0.9})") == 0,
         "range hit-rate growth passes");
  expect(run(R"({"summary_hits": 1000})", R"({"summary_hits": 10})") == 1,
         "summary-hit drop is gated");
  expect(run(R"({"range_events": 100})", R"({"range_events": 90})") == 0,
         "fewer range events (better coalescing) passes");
  expect(run(R"({"rows": [{"name": "b", "tasks": 5}, {"name": "a", "tasks": 9}]})",
             R"({"rows": [{"name": "a", "tasks": 9}, {"name": "b", "tasks": 5}]})") == 0,
         "rows are matched by name, not order");
  expect(run(R"({"iterations": 1000})", R"({"iterations": 5000})") == 0,
         "iteration counts are ignored");

  // Pipelined-detector keys from bench/table2 --detect-threads: fill levels
  // are scheduling noise, degradation counters are hard facts.
  expect(run(R"({"occupancy_pct": 12.0})", R"({"occupancy_pct": 80.0})") == 0,
         "ring occupancy swings are never gated");
  expect(run(R"({"backpressure_waits": 10})",
             R"({"backpressure_waits": 9000})") == 0,
         "backpressure spins are never gated");
  expect(run(R"({"inline_fallbacks": 0})", R"({"inline_fallbacks": 3})") == 1,
         "inline fallbacks appearing is gated");
  expect(run(R"({"pipe_events": 1000})", R"({"pipe_events": 1500})") == 1,
         "pipeline event-count growth is gated");

  // PRECEDE-backend comparison keys: baselines recorded under one backend
  // must not gate a run under another, in either direction.
  expect(run(R"({"label_bytes": 4096})", R"({"label_bytes": 40960})") == 0,
         "label-byte growth is never gated");
  expect(run(R"({"label_comparisons": 100})",
             R"({"label_comparisons": 9000})") == 0,
         "label-comparison growth is never gated");
  expect(run(R"({"frontier_searches": 500})",
             R"({"frontier_searches": 0})") == 0,
         "frontier-search drop is never gated");
  expect(run(R"({"max_label_len": 16})", R"({"max_label_len": 48})") == 0,
         "max-label-length growth is never gated");

  cfg.strict_time = true;
  expect(run(R"({"seq_ms": 10})", R"({"seq_ms": 100})") == 1,
         "--strict-time gates time keys");
  expect(run(R"({"occupancy_pct": 12.0})", R"({"occupancy_pct": 80.0})") == 0,
         "--strict-time still does not gate occupancy");
  cfg.strict_time = false;

  // Missing keys warn instead of failing — unless they are paper counters.
  {
    std::vector<finding> findings;
    std::vector<std::string> warnings;
    diff_value("", "", json::parse(R"({"tasks": 1, "gone": 2})"),
               json::parse(R"({"tasks": 1})"), cfg, findings, warnings);
    expect(findings.empty() && warnings.size() == 1,
           "missing candidate keys warn");
  }
  expect(run(R"({"counters": {"precede_queries": 100}})",
             R"({"counters": {}})") == 1,
         "missing paper counter is gated");
  expect(run(R"({"counters": {"tasks": 7, "races_observed": 0}})",
             R"({"counters": {"races_observed": 0}})") == 1,
         "dropping the tasks counter is gated");
  // Candidate-only keys are advisory: a schema can grow without a baseline
  // refresh, but the addition is surfaced.
  {
    std::vector<finding> findings;
    std::vector<std::string> warnings;
    diff_value("", "", json::parse(R"({"tasks": 1})"),
               json::parse(R"({"tasks": 1, "novel_metric": 3})"), cfg,
               findings, warnings);
    expect(findings.empty() && warnings.size() == 1 &&
               warnings[0].find("novel_metric") != std::string::npos,
           "candidate-only keys warn without gating");
  }

  if (failures == 0) std::printf("bench_diff self-test: all checks passed\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  diff_config cfg;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") return self_test();
    if (arg == "--strict-time") {
      cfg.strict_time = true;
    } else if (arg == "--max-regress" && i + 1 < argc) {
      cfg.max_regress_pct = std::atof(argv[++i]);
    } else if (arg.rfind("--max-regress=", 0) == 0) {
      cfg.max_regress_pct = std::atof(arg.c_str() + std::strlen("--max-regress="));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_diff: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <candidate.json>\n"
                 "       [--max-regress <pct>] [--strict-time] | --self-test\n");
    return 2;
  }

  const json base = load_file(files[0]);
  const json cand = load_file(files[1]);
  std::vector<finding> findings;
  std::vector<std::string> warnings;
  diff_value("", "", base, cand, cfg, findings, warnings);
  return report(findings, warnings, cfg);
}
