/// serve_soak: long-running service-mode soak for the always-on detector
/// (DESIGN.md §12). One runtime and one race_detector stay alive for the
/// whole process while the root task loops over "requests" — generated
/// progen programs plus a fixed known-racy program — each wrapped in
/// finish{} so the detector returns to a quiescent point between requests
/// and epoch compaction (--epoch-reset) can retire the finished epoch.
///
/// The driver asserts the service-mode invariants:
///
///   1. RSS plateau: with epoch compaction on, resident memory stops
///      growing once the working set is warm — the post-warmup high-water
///      mark stays within 10% of the high-water at warmup end. --rss-budget
///      additionally enforces a hard cap every request.
///   2. Verdict stability: the fixed racy request reports its race every
///      single time (races_observed advances by exactly one), no matter how
///      many epochs have been compacted before it.
///   3. Report dedup: the racy request's site pair materializes exactly one
///      report whose occurrence count tracks every repeat; further distinct
///      race sites beyond --max-reports are counted ("N further distinct
///      race sites not shown"), never silently lost.
///   4. Suppressions / error limits: matched races are excluded from the
///      report set but still counted per rule and in races_observed.
///
/// SIGUSR1 requests an obs metrics snapshot (detector/shadow/dsr registry
/// JSON on stdout); the handler only sets a flag, drained at the next
/// request boundary on the execution thread.
///
/// --self-check runs a seconds-scale deterministic version of the soak for
/// ctest: the full invariant set minus the RSS-plateau assertion (too short
/// to warm up), plus an end-to-end suppression pass against a generated
/// suppression file.

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "futrace/detect/race_detector.hpp"
#include "futrace/detect/suppressions.hpp"
#include "futrace/obs/metrics.hpp"
#include "futrace/progen/random_program.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"

namespace {

using namespace futrace;

volatile std::sig_atomic_t g_dump_requested = 0;

extern "C" void on_sigusr1(int) { g_dump_requested = 1; }

/// Resident set size in bytes, from /proc/self/statm (field 2 is resident
/// pages). Returns 0 when unreadable (non-Linux), which disables the RSS
/// assertions rather than failing them.
std::size_t read_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long vm_pages = 0, rss_pages = 0;
  const int got = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::size_t>(rss_pages) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
}

double mb(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

struct soak_config {
  std::uint64_t task_target = 1000000;
  std::uint64_t seconds = 0;       // 0 = no wall-clock budget
  std::uint64_t rss_budget_mb = 0; // 0 = no hard cap
  std::size_t epoch_reset = 2048;
  std::uint64_t racy_every = 8;    // every Nth request is the fixed racy one
  std::size_t max_reports = 32;
  std::uint64_t error_limit_per_pair = 0;
  std::uint64_t error_limit_global = 0;
  int progen_tasks = 120;          // task cap per generated request
  std::uint64_t seed_base = 1;
  std::uint64_t progress_every = 0;  // progress line every N requests
  const detect::suppression_set* suppressions = nullptr;
  bool check_plateau = true;
  std::string metrics_out;
};

struct soak_result {
  int failures = 0;
  std::uint64_t requests = 0;
  std::uint64_t racy_requests = 0;
  std::size_t report_count = 0;  // materialized reports
  detect::detector_counters det{};
  std::vector<std::uint64_t> rule_hits;
  std::size_t racy_reports = 0;       // materialized reports at the racy cell
  std::uint64_t racy_occurrences = 0; // folded repeats on that report
  std::size_t warmup_high = 0;        // RSS high-water at warmup end
  std::size_t final_high = 0;         // RSS high-water over the whole run
  double elapsed_s = 0.0;
};

void fail(soak_result& r, const char* invariant, const std::string& detail) {
  std::printf("FAIL %s: %s\n", invariant, detail.c_str());
  ++r.failures;
}

/// The fixed known-racy request: two unordered asyncs both write cell 0.
/// Same two source lines every time, so every repeat folds into one report.
void racy_request(shared_array<int>& cell) {
  finish([&cell] {
    async([&cell] { cell.write(0, 1); });
    async([&cell] { cell.write(0, 2); });
  });
}

soak_result run_soak(const soak_config& cfg) {
  soak_result res;

  detect::race_detector::options opts;
  opts.max_reports = cfg.max_reports;
  opts.epoch_reset_interval = cfg.epoch_reset;
  opts.suppressions = cfg.suppressions;
  opts.error_limit_per_pair = cfg.error_limit_per_pair;
  opts.error_limit_global = cfg.error_limit_global;
  detect::race_detector det(opts);

  obs::metrics_registry reg;
  obs::add_detector_source(reg, [&det] { return det.counters(); });
  obs::add_shadow_source(reg, [&det] { return det.storage_stats(); });
  obs::add_reachability_source(reg, [&det] { return det.reachability_stats(); });

  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t warmup_tasks = cfg.task_target / 4;
  bool warmup_done = false;
  bool rss_exceeded = false;

  rt.run([&] {
    // Persistent across every request: the racy cell's address (and its
    // shadow slab) must survive all epoch compactions.
    shared_array<int> racy_cell(1);

    std::uint64_t req = 0;
    while (true) {
      const std::uint64_t tasks_so_far = rt.tasks_spawned();
      if (tasks_so_far >= cfg.task_target) break;
      if (cfg.seconds != 0) {
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration_cast<std::chrono::seconds>(now - start)
                .count() >= static_cast<std::int64_t>(cfg.seconds)) {
          break;
        }
      }

      if (g_dump_requested != 0) {
        g_dump_requested = 0;
        std::printf("serve_soak: SIGUSR1 metrics snapshot\n%s\n",
                    reg.snapshot().to_json().dump().c_str());
        std::fflush(stdout);
      }

      if (req % cfg.racy_every == 0) {
        // Verdict stability: the known race must be observed on every
        // repeat, whatever compaction has happened in between.
        const std::uint64_t before = det.race_count();
        racy_request(racy_cell);
        ++res.racy_requests;
        if (det.race_count() != before + 1) {
          fail(res, "verdict-stability",
               "racy request " + std::to_string(res.racy_requests) +
                   " observed " + std::to_string(det.race_count() - before) +
                   " races, expected 1");
        }
      } else {
        // A generated request: fresh program, fresh shared arrays whose
        // region registrations end with the request — exactly the slab
        // garbage epoch compaction must reclaim. The request body runs in a
        // child task, not on the root: a promise put() splits the identity
        // that performs it, and while a child's continuation chain ends with
        // the child, the root's chain stays open until program end — every
        // root-level put would permanently grow the live set no compaction
        // can retire (DESIGN.md §12).
        progen::progen_config pc;
        pc.seed = cfg.seed_base + req;
        pc.max_tasks = cfg.progen_tasks;
        // The steady-state stream exercises async/finish/future programs but
        // not promise put(): a put splits the identity of every task on the
        // resume path up to the root, and the root's pre-split identities
        // stay live (open intervals future getters may be ordered against)
        // until program end — memory no compaction can retire, growing with
        // every put-bearing request. Promise flows are covered at bounded
        // scale by the epoch differential tests and fault_soak; a service
        // keeping RSS flat must confine puts to child tasks that complete
        // (DESIGN.md §12).
        pc.w_promise = 0.0;
        pc.w_put = 0.0;
        pc.w_promise_get = 0.0;
        progen::random_program prog(pc);
        finish([&prog] { async([&prog] { prog(); }); });
      }
      ++req;
      if (cfg.progress_every != 0 && req % cfg.progress_every == 0) {
        std::printf("serve_soak: req=%llu tasks=%llu rss=%.1fMB "
                    "detector=%.1fMB graph=%.1fMB resets=%llu\n",
                    static_cast<unsigned long long>(req),
                    static_cast<unsigned long long>(rt.tasks_spawned()),
                    mb(read_rss_bytes()), mb(det.memory_bytes()),
                    mb(det.structure_bytes()),
                    static_cast<unsigned long long>(det.epoch_resets()));
      }

      const std::size_t rss = read_rss_bytes();
      if (rss > res.final_high) res.final_high = rss;
      if (!warmup_done && tasks_so_far >= warmup_tasks) {
        warmup_done = true;
        res.warmup_high = res.final_high;
      }
      if (cfg.rss_budget_mb != 0 && rss != 0 &&
          mb(rss) > static_cast<double>(cfg.rss_budget_mb)) {
        fail(res, "rss-budget",
             "resident set " + std::to_string(mb(rss)) + " MB exceeds --rss-budget=" +
                 std::to_string(cfg.rss_budget_mb) + " MB at request " +
                 std::to_string(req));
        rss_exceeded = true;
        break;
      }
    }
    res.requests = req;
  });

  res.elapsed_s = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start)
                      .count() /
                  1000.0;
  res.det = det.counters();
  res.report_count = det.reports().size();
  res.rule_hits = det.suppression_hits();

  // The racy request's dedup invariant: exactly one materialized report for
  // the cell (zero when a suppression rule claims it), folding every repeat
  // — or, under a per-pair error limit, every repeat up to the limit.
  std::uint64_t expected_occurrences = res.racy_requests;
  if (cfg.error_limit_per_pair != 0 &&
      expected_occurrences > cfg.error_limit_per_pair) {
    expected_occurrences = cfg.error_limit_per_pair;
  }
  const void* racy_addr = nullptr;
  for (const detect::race_report& r : det.reports()) {
    // The racy cell is the only shared state declared in this file.
    const std::string_view file = r.second_site.file;
    if (file.find("serve_soak") != std::string_view::npos) {
      racy_addr = r.location;
      ++res.racy_reports;
      res.racy_occurrences = r.occurrences;
    }
  }
  (void)racy_addr;
  const bool racy_suppressed =
      cfg.suppressions != nullptr && res.det.suppressed_races > 0;
  if (res.racy_requests > 0 && !racy_suppressed) {
    if (res.racy_reports != 1) {
      fail(res, "report-dedup",
           std::to_string(res.racy_reports) +
               " materialized reports for the fixed racy pair, expected 1");
    } else if (res.racy_occurrences != expected_occurrences) {
      fail(res, "report-dedup",
           "racy report folded " + std::to_string(res.racy_occurrences) +
               " occurrences, expected " +
               std::to_string(expected_occurrences));
    }
  }
  if (racy_suppressed && res.racy_reports != 0) {
    fail(res, "suppression",
         "suppressed racy pair still materialized a report");
  }

  if (cfg.epoch_reset != 0 && res.det.epoch_resets == 0 && !rss_exceeded) {
    fail(res, "epoch-reset", "no epoch compaction ran in the whole soak");
  }

  // RSS plateau: once warm, compaction must hold the line. The 8 MB slack
  // absorbs allocator noise on small-footprint runs.
  if (cfg.check_plateau && warmup_done && res.warmup_high != 0) {
    const double limit = static_cast<double>(res.warmup_high) * 1.10 +
                         8.0 * 1024.0 * 1024.0;
    if (static_cast<double>(res.final_high) > limit) {
      fail(res, "rss-plateau",
           "post-warmup high-water " + std::to_string(mb(res.final_high)) +
               " MB vs warmup high-water " + std::to_string(mb(res.warmup_high)) +
               " MB (limit " + std::to_string(mb(static_cast<std::size_t>(limit))) +
               " MB)");
    }
  }

  if (!cfg.metrics_out.empty()) {
    std::ofstream out(cfg.metrics_out);
    if (!out) {
      fail(res, "metrics-out", "cannot open " + cfg.metrics_out);
    } else {
      out << reg.snapshot().to_json().dump();
    }
  }
  return res;
}

void print_summary(const soak_config& cfg, const soak_result& r) {
  std::printf(
      "serve_soak: %llu tasks across %llu requests (%llu racy) in %.1f s\n",
      static_cast<unsigned long long>(r.det.tasks),
      static_cast<unsigned long long>(r.requests),
      static_cast<unsigned long long>(r.racy_requests), r.elapsed_s);
  std::printf(
      "serve_soak: races_observed=%llu reports=%zu suppressed=%llu "
      "throttled=%llu\n",
      static_cast<unsigned long long>(r.det.races_observed), r.report_count,
      static_cast<unsigned long long>(r.det.suppressed_races),
      static_cast<unsigned long long>(r.det.errors_throttled));
  if (r.det.reports_capped != 0) {
    std::printf("serve_soak: %llu further distinct race sites not shown\n",
                static_cast<unsigned long long>(r.det.reports_capped));
  }
  if (cfg.suppressions != nullptr) {
    for (std::size_t i = 0; i < r.rule_hits.size(); ++i) {
      std::printf("serve_soak: suppression '%s': %llu hit(s)\n",
                  cfg.suppressions->rule(i).name.c_str(),
                  static_cast<unsigned long long>(r.rule_hits[i]));
    }
  }
  std::printf(
      "serve_soak: epoch_resets=%llu rss warmup-high=%.1f MB final-high=%.1f "
      "MB degradation=0x%x\n",
      static_cast<unsigned long long>(r.det.epoch_resets), mb(r.warmup_high),
      mb(r.final_high), r.det.degradation_reasons);
}

int run_self_check() {
  int failures = 0;

  // Pass 1: the invariant soak, time-compressed. No plateau assertion — a
  // seconds-scale run never leaves warmup — but hard dedup / verdict /
  // epoch-reset checks, plus a per-pair error limit low enough to engage.
  soak_config cfg;
  cfg.task_target = 40000;
  cfg.epoch_reset = 256;
  cfg.racy_every = 8;
  cfg.max_reports = 16;
  cfg.error_limit_per_pair = 4;
  cfg.check_plateau = false;
  soak_result r1 = run_soak(cfg);
  print_summary(cfg, r1);
  failures += r1.failures;
  if (r1.det.errors_throttled == 0) {
    std::printf("FAIL self-check: per-pair error limit never engaged\n");
    ++failures;
  }
  if ((r1.det.degradation_reasons & detect::k_degraded_error_limit) == 0) {
    std::printf("FAIL self-check: error-limit degradation reason not set\n");
    ++failures;
  }
  if (r1.det.reports_capped == 0) {
    std::printf("FAIL self-check: report cap never engaged "
                "(max_reports=16 should be exceeded)\n");
    ++failures;
  }

  // Pass 2: the same soak under a suppression file claiming the fixed racy
  // pair. The race is still observed every time (verdict stability holds),
  // but no report for it materializes and the rule's hit count tracks it.
  const char* supp_path = "serve_soak_selfcheck.supp";
  {
    std::ofstream out(supp_path);
    out << "# generated by serve_soak --self-check\n"
        << "{\n"
        << "  accepted-serve-soak-racy-cell\n"
        << "  kind: write-write\n"
        << "  first: *serve_soak.cpp:*\n"
        << "  second: *serve_soak.cpp:*\n"
        << "}\n";
  }
  detect::suppression_set supp;
  std::string err;
  if (!supp.load_file(supp_path, &err)) {
    std::printf("FAIL self-check: generated suppression file rejected: %s\n",
                err.c_str());
    return failures + 1;
  }
  soak_config cfg2 = cfg;
  cfg2.suppressions = &supp;
  soak_result r2 = run_soak(cfg2);
  print_summary(cfg2, r2);
  failures += r2.failures;
  if (r2.det.suppressed_races != r2.racy_requests) {
    std::printf("FAIL self-check: suppressed %llu races, expected one per "
                "racy request (%llu)\n",
                static_cast<unsigned long long>(r2.det.suppressed_races),
                static_cast<unsigned long long>(r2.racy_requests));
    ++failures;
  }
  if (r2.rule_hits.size() != 1 ||
      r2.rule_hits[0] != r2.det.suppressed_races) {
    std::printf("FAIL self-check: per-rule hit count does not match "
                "suppressed total\n");
    ++failures;
  }
  if (r2.det.races_observed != r1.det.races_observed) {
    std::printf("FAIL self-check: suppression changed races_observed "
                "(%llu vs %llu) — paper counters must be unaffected\n",
                static_cast<unsigned long long>(r2.det.races_observed),
                static_cast<unsigned long long>(r1.det.races_observed));
    ++failures;
  }

  std::remove(supp_path);
  if (failures == 0) {
    std::printf("serve_soak: self-check passed\n");
    return 0;
  }
  std::printf("serve_soak: %d self-check failure(s)\n", failures);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  support::flag_parser flags;
  flags.define("tasks", "1000000", "stop after this many spawned tasks");
  flags.define("seconds", "0", "wall-clock budget in seconds (0 = none)");
  flags.define("rss-budget", "0",
               "hard resident-set cap in MB, checked every request (0 = off)");
  flags.define("epoch-reset", "2048",
               "epoch compaction interval in spawns (0 = off)");
  flags.define("racy-every", "8",
               "every Nth request is the fixed known-racy program");
  flags.define("max-reports", "32", "detailed race reports retained");
  flags.define("error-limit", "0",
               "per-(site,site) report limit, Valgrind-style (0 = off)");
  flags.define("error-limit-global", "0", "global report limit (0 = off)");
  flags.define("progen-tasks", "120", "task cap per generated request");
  flags.define("seed-base", "1", "first progen request seed");
  flags.define("progress-every", "0",
               "print a progress/footprint line every N requests (0 = off)");
  flags.define("suppressions", "", "known-race suppression file to load");
  flags.define("metrics-out", "",
               "write a final obs registry snapshot to this JSON path");
  flags.define("self-check", "false",
               "run the seconds-scale deterministic invariant check (ctest)");
  flags.parse(argc, argv);

  if (flags.get_bool("self-check")) return run_self_check();

  std::signal(SIGUSR1, on_sigusr1);

  detect::suppression_set supp;
  soak_config cfg;
  cfg.task_target = static_cast<std::uint64_t>(flags.get_int("tasks"));
  cfg.seconds = static_cast<std::uint64_t>(flags.get_int("seconds"));
  cfg.rss_budget_mb = static_cast<std::uint64_t>(flags.get_int("rss-budget"));
  cfg.epoch_reset = static_cast<std::size_t>(flags.get_int("epoch-reset"));
  cfg.racy_every = static_cast<std::uint64_t>(flags.get_int("racy-every"));
  cfg.max_reports = static_cast<std::size_t>(flags.get_int("max-reports"));
  cfg.error_limit_per_pair =
      static_cast<std::uint64_t>(flags.get_int("error-limit"));
  cfg.error_limit_global =
      static_cast<std::uint64_t>(flags.get_int("error-limit-global"));
  cfg.progen_tasks = static_cast<int>(flags.get_int("progen-tasks"));
  cfg.seed_base = static_cast<std::uint64_t>(flags.get_int("seed-base"));
  cfg.progress_every =
      static_cast<std::uint64_t>(flags.get_int("progress-every"));
  cfg.metrics_out = flags.get_string("metrics-out");
  const std::string supp_path = flags.get_string("suppressions");
  if (!supp_path.empty()) {
    std::string err;
    if (!supp.load_file(supp_path, &err)) {
      std::printf("serve_soak: cannot load %s: %s\n", supp_path.c_str(),
                  err.c_str());
      return 2;
    }
    cfg.suppressions = &supp;
  }

  const soak_result r = run_soak(cfg);
  print_summary(cfg, r);
  if (r.failures == 0) {
    std::printf("serve_soak: all service-mode invariants held\n");
    return 0;
  }
  std::printf("serve_soak: %d failure(s)\n", r.failures);
  return 1;
}
