// Developer tool: replay one progen seed and dump per-location disagreement
// details between the detector and the step-level oracle.
#include <cstdio>
#include <cstdlib>
#include <set>
#include "futrace/baselines/oracle_detector.hpp"
#include "futrace/detect/race_detector.hpp"
#include "futrace/progen/random_program.hpp"
#include "futrace/runtime/runtime.hpp"

using namespace futrace;

struct tracer : execution_observer {
  void on_task_spawn(task_id p, task_id c, task_kind k) override {
    printf("  spawn %u -> %u (%s)\n", p, c, task_kind_name(k));
  }
  void on_task_end(task_id t) override { printf("  end %u\n", t); }
  void on_finish_start(task_id o) override { printf("  fstart %u\n", o); }
  void on_finish_end(task_id o, std::span<const task_id> j) override {
    printf("  fend %u [", o);
    for (task_id t : j) printf("%u ", t);
    printf("]\n");
  }
  void on_get(task_id w, task_id t) override { printf("  get %u <- %u\n", w, t); }
  void on_read(task_id t, const void* a, std::size_t, access_site) override {
    printf("  read t%u %p\n", t, a);
  }
  void on_write(task_id t, const void* a, std::size_t, access_site) override {
    printf("  write t%u %p\n", t, a);
  }
};

int main(int argc, char** argv) {
  progen::progen_config cfg;
  cfg.seed = argc > 1 ? strtoull(argv[1], nullptr, 10) : 10;
  progen::random_program prog(cfg);
  detect::race_detector det;
  baselines::oracle_detector oracle;
  tracer tr;
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  rt.add_observer(&oracle);
  if (argc > 2) rt.add_observer(&tr);
  rt.run([&] { prog(); });

  auto var_of = [&](const void* a) {
    for (int i = 0; i < prog.num_vars(); ++i)
      if (prog.var_address(i) == a) return i;
    return -1;
  };
  std::set<int> d, o;
  for (const void* a : det.racy_locations()) d.insert(var_of(a));
  for (const void* a : oracle.racy_locations()) o.insert(var_of(a));
  printf("detector:");
  for (int v : d) printf(" %d", v);
  printf("\noracle:  ");
  for (int v : o) printf(" %d", v);
  printf("\n");
  const auto& g = oracle.graph();
  for (const auto& p : oracle.racy_pairs()) {
    const int v = var_of(p.location);
    if (d.count(v) && !o.count(v)) continue;
    if (d.count(v)) continue;
    printf("missed var %d (%p): step %u (task %u,%s) || step %u (task %u,%s)\n",
           v, p.location, p.first, g.task_of(p.first),
           p.first_is_write ? "W" : "R", p.second, g.task_of(p.second),
           p.second_is_write ? "W" : "R");
  }
  return 0;
}
