/// fault_soak: randomized fault-injection soak across all three engines.
///
/// For each seed the driver derives a deterministic fault plan and runs the
/// property-test program generator (serial modes) and two builtin
/// parallel-safe programs (parallel mode) under it, asserting the failure
/// model the runtime promises:
///
///   1. Determinism: the same (program seed, plan) produces byte-identical
///      outcomes on repeated serial depth-first runs.
///   2. Passivity: an installed injector with an empty plan changes nothing
///      relative to the uninstrumented baseline.
///   3. Mode agreement: serial elision and serial DFS suffer the same fault
///      at the same program point (same stats, same outcome class).
///   4. Detector robustness: injected allocation failures never change
///      program-side results; detector counters keep counting, the verdict
///      only loses (never invents) races, and degraded() reports it.
///   5. Cleanup: after any faulted run the ambient engine context is clear
///      and a fresh runtime works, in every mode — no hang, no leaked
///      worker, no leaked task (the engine destructor asserts this).
///
/// --stress-accesses N runs the resource-cap acceptance check instead: an
/// N-access trace against a byte-capped shadow memory plus an injected
/// allocation failure must complete, degrade gracefully, and keep counting.

#include <algorithm>
#include <cstdio>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "futrace/detect/race_detector.hpp"
#include "futrace/inject/fault_injector.hpp"
#include "futrace/progen/random_program.hpp"
#include "futrace/runtime/runtime.hpp"
#include "futrace/support/flags.hpp"
#include "futrace/support/rng.hpp"

namespace {

using namespace futrace;

int g_failures = 0;

void fail(std::uint64_t seed, const char* invariant, const std::string& detail) {
  std::printf("FAIL seed=%llu %s: %s\n",
              static_cast<unsigned long long>(seed), invariant,
              detail.c_str());
  ++g_failures;
}

/// Everything observable about one run, for byte-level comparison.
struct outcome {
  bool completed = false;
  std::string error_kind;  // exception class, "" when completed
  std::string error_what;
  progen::progen_stats stats{};
  std::uint64_t det_reads = 0;
  std::uint64_t det_writes = 0;
  std::vector<int> racy_vars;  // indices into the program's variable array
  bool det_degraded = false;
};

bool stats_equal(const progen::progen_stats& a, const progen::progen_stats& b) {
  return a.reads == b.reads && a.writes == b.writes &&
         a.range_reads == b.range_reads && a.range_writes == b.range_writes &&
         a.gets == b.gets && a.asyncs == b.asyncs && a.futures == b.futures &&
         a.finishes == b.finishes && a.promises == b.promises &&
         a.puts == b.puts && a.promise_gets == b.promise_gets;
}

bool outcomes_equal(const outcome& a, const outcome& b) {
  return a.completed == b.completed && a.error_kind == b.error_kind &&
         a.error_what == b.error_what && stats_equal(a.stats, b.stats) &&
         a.det_reads == b.det_reads && a.det_writes == b.det_writes &&
         a.racy_vars == b.racy_vars && a.det_degraded == b.det_degraded;
}

std::string describe(const outcome& o) {
  if (o.completed) return "completed";
  return o.error_kind + ": " + o.error_what;
}

bool subset(const std::vector<int>& small, const std::vector<int>& big) {
  for (int v : small) {
    if (std::find(big.begin(), big.end(), v) == big.end()) return false;
  }
  return true;
}

/// Runs `fn` inside a fresh runtime and classifies the result.
template <typename Fn>
void classify(runtime& rt, outcome& out, Fn&& fn) {
  try {
    rt.run(fn);
    out.completed = true;
  } catch (const inject::injected_fault& e) {
    out.error_kind = "injected_fault";
    out.error_what = e.what();
  } catch (const detect::race_found_error& e) {
    out.error_kind = "race_found_error";
    out.error_what = e.what();
  } catch (const deadlock_error& e) {
    out.error_kind = "deadlock_error";
    out.error_what = e.what();
  } catch (const usage_error& e) {
    out.error_kind = "usage_error";
    out.error_what = e.what();
  } catch (const futrace::runtime_error& e) {
    out.error_kind = "runtime_error";
    out.error_what = e.what();
  } catch (const std::bad_alloc&) {
    out.error_kind = "bad_alloc";
  } catch (const std::exception& e) {
    out.error_kind = "exception";
    out.error_what = e.what();
  }
}

/// One serial execution of the generated program. `plan` may be null (no
/// injector installed); a detector is attached in serial_dfs mode only.
outcome run_serial(exec_mode mode, progen::random_program& prog,
                   const inject::fault_plan* plan) {
  outcome out;
  std::unique_ptr<inject::fault_injector> inj;
  std::unique_ptr<inject::scoped_injector> guard;
  if (plan != nullptr) {
    inj = std::make_unique<inject::fault_injector>(*plan);
    guard = std::make_unique<inject::scoped_injector>(*inj);
  }
  detect::race_detector det;
  runtime rt({.mode = mode});
  if (mode == exec_mode::serial_dfs) rt.add_observer(&det);
  classify(rt, out, [&prog] { prog(); });
  out.stats = prog.stats();
  if (mode == exec_mode::serial_dfs) {
    const auto c = det.counters();
    out.det_reads = c.reads;
    out.det_writes = c.writes;
    out.det_degraded = c.degraded;
    for (const void* addr : det.racy_locations()) {
      for (int i = 0; i < prog.num_vars(); ++i) {
        if (prog.var_address(i) == addr) out.racy_vars.push_back(i);
      }
    }
  }
  return out;
}

/// The ambient context must be clear and a fresh runtime must work after
/// every run, faulted or not.
void check_cleanup(std::uint64_t seed, exec_mode mode, const char* where) {
  if (detail::ctx().eng != nullptr) {
    fail(seed, where, "ambient engine context not cleared after run");
    return;
  }
  int observed = 0;
  runtime rt({.mode = mode, .workers = 2, .deadlock_timeout_ms = 5000});
  try {
    rt.run([&observed] {
      finish([&observed] {
        async([&observed] { observed = 1; });
      });
    });
  } catch (const std::exception& e) {
    fail(seed, where, std::string("fresh runtime failed after run: ") + e.what());
    return;
  }
  if (observed != 1) fail(seed, where, "fresh runtime lost a task");
}

/// Derives the serial-mode fault plan for a seed. Roughly half the plans
/// throw somewhere, a quarter deny allocations, the rest drop puts or stay
/// empty (control group).
inject::fault_plan serial_plan_for(std::uint64_t seed) {
  support::xoshiro256 rng(seed ^ 0xFA01D5EEDULL);
  inject::fault_plan p;
  p.seed = seed;
  switch (rng.below(8)) {
    case 0:
      p.throw_at_spawn = 1 + rng.below(40);
      break;
    case 1:
      p.throw_at_get = 1 + rng.below(60);
      break;
    case 2:
      p.throw_at_put = 1 + rng.below(10);
      break;
    case 3:
    case 4:
      p.fail_alloc_at = 1 + rng.below(64);
      if (rng.chance(0.5)) p.fail_alloc_every = 1 + rng.below(8);
      break;
    case 5:
      p.drop_put_at = 1 + rng.below(6);
      break;
    default:
      break;  // empty plan: control group
  }
  return p;
}

void soak_serial_seed(std::uint64_t seed) {
  progen::progen_config cfg;
  cfg.seed = seed;
  cfg.max_tasks = 120;
  progen::random_program prog(cfg);

  // Uninstrumented baseline, then the empty-plan passivity check.
  const outcome base = run_serial(exec_mode::serial_dfs, prog, nullptr);
  inject::fault_plan empty;
  empty.seed = seed;
  const outcome with_empty = run_serial(exec_mode::serial_dfs, prog, &empty);
  if (!outcomes_equal(base, with_empty)) {
    fail(seed, "passivity",
         "empty plan changed the run: " + describe(base) + " vs " +
             describe(with_empty));
  }

  // The seed's real plan: determinism across repeated DFS runs.
  const inject::fault_plan plan = serial_plan_for(seed);
  const outcome first = run_serial(exec_mode::serial_dfs, prog, &plan);
  check_cleanup(seed, exec_mode::serial_dfs, "serial-cleanup");
  const outcome second = run_serial(exec_mode::serial_dfs, prog, &plan);
  if (!outcomes_equal(first, second)) {
    fail(seed, "determinism",
         plan.describe() + ": " + describe(first) + " vs " + describe(second));
  }

  // Mode agreement: the elision engine executes the identical depth-first
  // order, so the same plan must fault the same program point. Allocation
  // faults are exempt from the stats comparison only in that elision has no
  // detector — but shadow degradation never aborts the program, so stats
  // still agree.
  const outcome elision = run_serial(exec_mode::serial_elision, prog, &plan);
  if (elision.completed != first.completed ||
      elision.error_kind != first.error_kind ||
      !stats_equal(elision.stats, first.stats)) {
    fail(seed, "mode-agreement",
         plan.describe() + ": elision " + describe(elision) + " vs dfs " +
             describe(first));
  }

  // Detector robustness under allocation faults: program-side results are
  // unchanged, counters keep counting, the verdict only loses races.
  if (plan.fail_alloc_at != 0) {
    if (first.completed != base.completed ||
        !stats_equal(first.stats, base.stats)) {
      fail(seed, "alloc-transparency",
           "allocation fault changed program behavior: " + describe(base) +
               " vs " + describe(first));
    }
    if (first.det_reads != base.det_reads ||
        first.det_writes != base.det_writes) {
      fail(seed, "alloc-counters", "degraded detector stopped counting");
    }
    if (!subset(first.racy_vars, base.racy_vars)) {
      fail(seed, "alloc-precision",
           "degraded detector invented a race not in the baseline");
    }
  }
}

// ---- Parallel-safe builtin programs ----------------------------------------
// progen's generated programs mutate generator state from task bodies and are
// serial-only by design; the parallel soak uses these two instead.

int future_tree(int depth) {
  if (depth == 0) return 1;
  auto left = async_future([depth] { return future_tree(depth - 1); });
  auto right = async_future([depth] { return future_tree(depth - 1); });
  return left.get() + right.get();
}

int promise_pipeline(int stages) {
  std::vector<promise<int>> links(static_cast<std::size_t>(stages) + 1);
  finish([&links, stages] {
    for (int i = 1; i <= stages; ++i) {
      async([&links, i] { links[i].put(links[i - 1].get() + 1); });
    }
    links[0].put(0);
  });
  return links[static_cast<std::size_t>(stages)].get();
}

inject::fault_plan parallel_plan_for(std::uint64_t seed) {
  support::xoshiro256 rng(seed ^ 0x9A8A11E1ULL);
  inject::fault_plan p;
  p.seed = seed;
  if (rng.chance(0.5)) p.perturb_steals = true;
  if (rng.chance(0.4)) p.yield_every = 1 + static_cast<std::uint32_t>(rng.below(16));
  switch (rng.below(6)) {
    case 0:
      p.throw_at_spawn = 1 + rng.below(40);
      break;
    case 1:
      p.throw_at_get = 1 + rng.below(60);
      break;
    case 2:
      p.throw_at_put = 1 + rng.below(8);
      break;
    default:
      break;
  }
  // Dropped fulfillments force a real watchdog timeout per run; sample them.
  if (seed % 8 == 3) p.drop_put_at = 1 + rng.below(6);
  return p;
}

void soak_parallel_seed(std::uint64_t seed, std::uint32_t watchdog_ms) {
  const inject::fault_plan plan = parallel_plan_for(seed);
  inject::fault_injector inj(plan);
  const bool pipeline = seed % 2 == 1;
  const int depth = 5, stages = 24;
  const int expected = pipeline ? stages : 1 << depth;

  outcome out;
  {
    inject::scoped_injector guard(inj);
    runtime rt({.mode = exec_mode::parallel,
                .workers = 1 + static_cast<unsigned>(seed % 4),
                .deadlock_timeout_ms = watchdog_ms});
    int result = -1;
    classify(rt, out, [&result, pipeline, depth, stages] {
      result = pipeline ? promise_pipeline(stages) : future_tree(depth);
    });
    if (out.completed && result != expected) {
      fail(seed, "parallel-value",
           plan.describe() + ": got " + std::to_string(result) +
               ", expected " + std::to_string(expected));
    }
  }

  const auto fired = inj.snapshot();
  if (fired.faults_fired() == 0 && !out.completed) {
    fail(seed, "parallel-spurious",
         plan.describe() + ": failed with no fault fired: " + describe(out));
  }
  if (!out.completed && out.error_kind != "injected_fault" &&
      out.error_kind != "deadlock_error") {
    fail(seed, "parallel-error-class",
         plan.describe() + ": unexpected " + describe(out));
  }
  if (fired.dropped_puts > 0 && out.completed && pipeline) {
    fail(seed, "parallel-lost-put",
         plan.describe() + ": pipeline completed despite a dropped put");
  }
  check_cleanup(seed, exec_mode::parallel, "parallel-cleanup");
}

// ---- Resource-cap acceptance: big trace against a capped shadow memory -----

int run_stress(std::uint64_t accesses) {
  constexpr std::size_t k_locations = 1u << 17;
  constexpr std::size_t k_shadow_cap = 1u << 20;  // 1 MiB
  inject::fault_plan plan;
  plan.fail_alloc_at = 5000;  // injected failure fires before the byte cap
  inject::fault_injector inj(plan);
  inject::scoped_injector guard(inj);

  detect::race_detector det(
      {.max_reports = 8, .max_shadow_bytes = k_shadow_cap});
  runtime rt({.mode = exec_mode::serial_dfs});
  rt.add_observer(&det);
  shared_array<int> data(k_locations);
  rt.run([&data, accesses] {
    std::uint64_t done = 0;
    while (done < accesses) {
      for (std::size_t i = 0; i < k_locations && done < accesses; ++i) {
        data.write(i, static_cast<int>(i));
        ++done;
      }
    }
  });

  const auto c = det.counters();
  std::printf("stress: %llu accesses, %llu locations tracked, "
              "%llu untracked accesses, degraded=%d, failed allocs=%llu\n",
              static_cast<unsigned long long>(c.shared_mem_accesses),
              static_cast<unsigned long long>(c.locations),
              static_cast<unsigned long long>(c.untracked_accesses),
              c.degraded ? 1 : 0,
              static_cast<unsigned long long>(inj.snapshot().failed_allocs));
  int rc = 0;
  if (c.shared_mem_accesses != accesses) {
    std::printf("FAIL stress: counters stopped counting\n");
    rc = 1;
  }
  if (!det.degraded() || !c.degraded) {
    std::printf("FAIL stress: degradation not reported\n");
    rc = 1;
  }
  if (c.locations >= k_locations) {
    std::printf("FAIL stress: shadow memory did not stop materializing\n");
    rc = 1;
  }
  if (inj.snapshot().failed_allocs == 0) {
    std::printf("FAIL stress: injected allocation failure never fired\n");
    rc = 1;
  }
  if (c.races_observed != 0) {
    std::printf("FAIL stress: race invented on a race-free trace\n");
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  support::flag_parser flags;
  flags.define("seeds", "200", "number of fault-plan seeds to soak");
  flags.define("seed-base", "1", "first seed value");
  flags.define("watchdog-ms", "600",
               "parallel deadlock watchdog timeout per wait");
  flags.define("stress-accesses", "0",
               "run the shadow-memory cap stress test with N accesses "
               "instead of the soak");
  flags.parse(argc, argv);

  const std::uint64_t stress =
      static_cast<std::uint64_t>(flags.get_int("stress-accesses"));
  if (stress > 0) return run_stress(stress);

  const std::uint64_t seeds =
      static_cast<std::uint64_t>(flags.get_int("seeds"));
  const std::uint64_t base =
      static_cast<std::uint64_t>(flags.get_int("seed-base"));
  const auto watchdog_ms =
      static_cast<std::uint32_t>(flags.get_int("watchdog-ms"));

  for (std::uint64_t s = base; s < base + seeds; ++s) {
    soak_serial_seed(s);
    soak_parallel_seed(s, watchdog_ms);
    if ((s - base + 1) % 50 == 0) {
      std::printf("... %llu/%llu seeds\n",
                  static_cast<unsigned long long>(s - base + 1),
                  static_cast<unsigned long long>(seeds));
    }
  }
  if (g_failures == 0) {
    std::printf("fault_soak: %llu seeds x {elision, dfs, parallel} passed\n",
                static_cast<unsigned long long>(seeds));
    return 0;
  }
  std::printf("fault_soak: %d failure(s)\n", g_failures);
  return 1;
}
